//! Umbrella crate of the SetSketch reproduction workspace.
//!
//! Re-exports every member crate so the runnable examples and the
//! cross-crate integration tests have a single dependency root. Library
//! users should depend on the individual crates directly:
//!
//! * [`setsketch`] — the paper's contribution;
//! * [`minhash`], [`hyperloglog`], [`hyperminhash`], [`thetasketch`] —
//!   the baselines;
//! * [`sketch_core`] — the unifying trait layer over all sketch families;
//! * [`sketch_store`] — the concurrent sharded registry of named sketches;
//! * [`lsh`] — similarity search on sketch signatures;
//! * [`sketch_rand`], [`sketch_math`] — the substrates;
//! * [`simulation`] — the figure-regeneration harness.
//!
//! The README below is included verbatim so its quick-start snippet is
//! compiled and run as a doctest.
#![doc = include_str!("../README.md")]

pub use hyperloglog;
pub use hyperminhash;
pub use lsh;
pub use minhash;
pub use setsketch;
pub use simulation;
pub use sketch_core;
pub use sketch_math;
pub use sketch_rand;
pub use sketch_store;
pub use thetasketch;
