//! Property-based tests (proptest) of the store's concurrency and
//! persistence invariants.
//!
//! * Shard-parallel `ingest` followed by merge-down must equal
//!   single-threaded insertion — for every sketch family implementing
//!   the `sketch-core` traits (the inserts are idempotent and
//!   commutative, so thread interleaving must be invisible).
//! * Snapshots of populated stores must round-trip through serde.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::{MinHash, OnePermutationHashing, SuperMinHash};
use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_core::{BatchInsert, Mergeable};
use sketch_store::{SketchStore, StoreSnapshot};
use thetasketch::ThetaSketch;

/// One generated workload: four "threads" worth of element batches.
type Batches = Vec<Vec<u64>>;

fn batches_strategy() -> impl Strategy<Value = Batches> {
    vec(vec(0u64..2_000, 0..80), 4)
}

/// Ingests the four batches from four real threads into two overlapping
/// keys, then checks key states and the merged-down union against
/// single-threaded references.
fn parallel_matches_sequential<S>(
    factory: impl Fn() -> S + Clone + Send + Sync + 'static,
    batches: &Batches,
) -> Result<(), TestCaseError>
where
    S: BatchInsert + Mergeable + Clone + PartialEq + std::fmt::Debug + Send + Sync,
{
    // Thread t writes key "k{t % 2}": threads 0/2 and 1/3 collide.
    let store = SketchStore::builder(factory.clone()).shards(4).build();
    std::thread::scope(|scope| {
        for (t, batch) in batches.iter().enumerate() {
            let store = &store;
            scope.spawn(move || store.ingest(&format!("k{}", t % 2), batch));
        }
    });

    for key_index in 0..2usize {
        let mut expected = factory();
        for (t, batch) in batches.iter().enumerate() {
            if t % 2 == key_index {
                expected.insert_batch(batch);
            }
        }
        let ingested_any = batches.iter().enumerate().any(|(t, _)| t % 2 == key_index);
        if ingested_any {
            let actual = store
                .get(&format!("k{key_index}"))
                .expect("key was ingested");
            prop_assert_eq!(actual, expected, "key k{} diverged", key_index);
        }
    }

    let mut expected_union = factory();
    for batch in batches {
        expected_union.insert_batch(batch);
    }
    if let Some(merged) = store.merge_down().expect("compatible by construction") {
        prop_assert_eq!(merged, expected_union, "merge-down diverged");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_ingest_setsketch1(batches in batches_strategy()) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        parallel_matches_sequential(move || SetSketch1::new(cfg, 1), &batches)?;
    }

    #[test]
    fn parallel_ingest_setsketch2(batches in batches_strategy()) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        parallel_matches_sequential(move || SetSketch2::new(cfg, 2), &batches)?;
    }

    #[test]
    fn parallel_ingest_ghll(batches in batches_strategy()) {
        let cfg = GhllConfig::hyperloglog(64).unwrap();
        parallel_matches_sequential(move || GhllSketch::new(cfg, 3), &batches)?;
    }

    #[test]
    fn parallel_ingest_minhash(batches in batches_strategy()) {
        parallel_matches_sequential(|| MinHash::new(64, 4), &batches)?;
    }

    #[test]
    fn parallel_ingest_superminhash(batches in batches_strategy()) {
        parallel_matches_sequential(|| SuperMinHash::new(64, 5), &batches)?;
    }

    #[test]
    fn parallel_ingest_oph(batches in batches_strategy()) {
        parallel_matches_sequential(|| OnePermutationHashing::new(64, 6), &batches)?;
    }

    #[test]
    fn parallel_ingest_hyperminhash(batches in batches_strategy()) {
        let cfg = HyperMinHashConfig::new(64, 10).unwrap();
        parallel_matches_sequential(move || HyperMinHash::new(cfg, 7), &batches)?;
    }

    #[test]
    fn parallel_ingest_thetasketch(batches in batches_strategy()) {
        parallel_matches_sequential(|| ThetaSketch::new(128, 8), &batches)?;
    }

    /// A populated store's snapshot survives serde round-tripping bit
    /// for bit, for representative register-array and min-value sketches.
    #[test]
    fn snapshot_serde_roundtrip(
        batches in vec(vec(0u64..5_000, 1..60), 1..6),
        shards in 1usize..6,
    ) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let store = SketchStore::builder(move || SetSketch2::new(cfg, 9)).shards(shards).build();
        for (i, batch) in batches.iter().enumerate() {
            store.ingest(&format!("key-{i}"), batch);
        }
        let snapshot = store.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serializes");
        let back: StoreSnapshot<SetSketch2> = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&back, &snapshot);
        // And the restored store answers queries identically.
        let restored = SketchStore::from_snapshot(back, move || SetSketch2::new(cfg, 9));
        for (i, _) in batches.iter().enumerate() {
            let key = format!("key-{i}");
            prop_assert_eq!(restored.get(&key), store.get(&key));
        }

        let mh_store = SketchStore::builder(|| MinHash::new(64, 3)).shards(shards).build();
        for (i, batch) in batches.iter().enumerate() {
            mh_store.ingest(&format!("key-{i}"), batch);
        }
        let snapshot = mh_store.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serializes");
        let back: StoreSnapshot<MinHash> = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, snapshot);
    }
}
