//! Property-based tests (proptest) of the core invariants.
//!
//! These complement the example-based unit tests with randomized checks
//! of the laws that must hold for *every* input: set-semantics of the
//! insert/merge algebra, estimator feasibility ranges, codec losslessness
//! and workload-generator consistency.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::codec::{pack_registers, unpack_registers};
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use simulation::workload::SetPair;
use sketch_math::{inclusion_exclusion_jaccard, ml_jaccard, ml_jaccard_b1, JointCounts};
use thetasketch::ThetaSketch;

fn small_config() -> SetSketchConfig {
    SetSketchConfig::new(32, 2.0, 20.0, 62).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sketch state depends only on the *set* of inserted elements:
    /// order and multiplicity never matter.
    #[test]
    fn state_is_a_function_of_the_set(
        mut elements in vec(0u64..1000, 1..60),
        seed in 0u64..8,
    ) {
        let mut in_order = SetSketch1::new(small_config(), seed);
        for &e in &elements {
            in_order.insert_u64(e);
        }
        elements.sort_unstable();
        elements.dedup();
        elements.reverse();
        let mut deduped_reversed = SetSketch1::new(small_config(), seed);
        for &e in &elements {
            deduped_reversed.insert_u64(e);
            deduped_reversed.insert_u64(e);
        }
        prop_assert_eq!(in_order, deduped_reversed);
    }

    /// merge(sketch(A), sketch(B)) == sketch(A ∪ B), for SetSketch2.
    #[test]
    fn merge_is_union(
        a in vec(0u64..500, 0..40),
        b in vec(0u64..500, 0..40),
    ) {
        let cfg = small_config();
        let mut sa = SetSketch2::new(cfg, 1);
        let mut sb = SetSketch2::new(cfg, 1);
        let mut sab = SetSketch2::new(cfg, 1);
        for &e in &a {
            sa.insert_u64(e);
            sab.insert_u64(e);
        }
        for &e in &b {
            sb.insert_u64(e);
            sab.insert_u64(e);
        }
        prop_assert_eq!(sa.merged(&sb).unwrap(), sab);
    }

    /// Register values never decrease as more elements arrive, and K_low
    /// stays a valid lower bound throughout.
    #[test]
    fn registers_grow_and_bound_stays_valid(
        batches in vec(vec(0u64..10_000, 1..50), 1..6),
    ) {
        let mut sketch = SetSketch1::new(small_config(), 3);
        let mut previous = sketch.registers().to_vec();
        for batch in &batches {
            for &e in batch {
                sketch.insert_u64(e);
            }
            let current = sketch.registers().to_vec();
            for (p, c) in previous.iter().zip(&current) {
                prop_assert!(c >= p);
            }
            let min = current.iter().copied().min().unwrap();
            prop_assert!(sketch.k_low() <= min);
            previous = current;
        }
    }

    /// Cardinality estimates are finite, nonnegative, and zero exactly for
    /// the empty sketch (in unsaturated configurations).
    #[test]
    fn cardinality_estimates_are_feasible(elements in vec(0u64..100_000, 0..100)) {
        let mut sketch = SetSketch1::new(small_config(), 4);
        for &e in &elements {
            sketch.insert_u64(e);
        }
        let estimate = sketch.estimate_cardinality();
        if elements.is_empty() {
            prop_assert_eq!(estimate, 0.0);
        } else {
            prop_assert!(estimate.is_finite());
            prop_assert!(estimate > 0.0);
        }
    }

    /// The ML Jaccard estimate always lies in the feasible interval
    /// [0, min(u/v, v/u)] for arbitrary counts.
    #[test]
    fn ml_jaccard_stays_feasible(
        d_plus in 0u32..200,
        d_minus in 0u32..200,
        d0 in 0u32..200,
        n_u in 1.0f64..1e6,
        n_v in 1.0f64..1e6,
        b in 1.0001f64..2.7,
    ) {
        let counts = JointCounts::new(d_plus, d_minus, d0);
        let total = n_u + n_v;
        let (u, v) = (n_u / total, n_v / total);
        let j = ml_jaccard(counts, b, u, v);
        let j_max = (u / v).min(v / u);
        prop_assert!((0.0..=j_max + 1e-9).contains(&j), "j = {j}, max {j_max}");
    }

    /// The closed form (17) agrees with Brent maximization near b = 1.
    #[test]
    fn closed_form_matches_numerical_ml(
        d_plus in 0u32..500,
        d_minus in 0u32..500,
        d0 in 0u32..500,
        u_scaled in 1u32..99,
    ) {
        prop_assume!(d_plus + d_minus + d0 > 0);
        let u = u_scaled as f64 / 100.0;
        let v = 1.0 - u;
        let counts = JointCounts::new(d_plus, d_minus, d0);
        let closed = ml_jaccard_b1(counts, u, v);
        let numerical = ml_jaccard(counts, 1.0 + 1e-9, u, v);
        prop_assert!((closed - numerical).abs() < 1e-4,
            "closed {closed} vs numerical {numerical}");
    }

    /// Inclusion-exclusion output is always inside the feasible range.
    #[test]
    fn inclusion_exclusion_stays_feasible(
        n_u in 0.0f64..1e9,
        n_v in 0.0f64..1e9,
        n_union in 0.0f64..2e9,
    ) {
        let j = inclusion_exclusion_jaccard(n_u, n_v, n_union);
        prop_assert!(j >= 0.0);
        prop_assert!(j <= 1.0 + 1e-12);
    }

    /// Bit-packing roundtrips for arbitrary register contents and widths.
    #[test]
    fn codec_roundtrips(
        values in vec(0u32..64, 0..200),
        extra_bits in 0u32..10,
    ) {
        let bits = 6 + extra_bits;
        let packed = pack_registers(&values, bits);
        let unpacked = unpack_registers(&packed, values.len(), bits, 63).unwrap();
        prop_assert_eq!(values, unpacked);
    }

    /// The pair workload solver conserves the union cardinality and keeps
    /// component sizes consistent.
    #[test]
    fn set_pair_solver_is_consistent(
        union in 1u64..1_000_000,
        j_scaled in 0u32..=100,
        ratio_exp in -30i32..=30,
    ) {
        let jaccard = j_scaled as f64 / 100.0;
        let ratio = 10f64.powf(ratio_exp as f64 / 10.0);
        let pair = SetPair::from_union_jaccard_ratio(union, jaccard, ratio);
        prop_assert_eq!(pair.union(), union);
        prop_assert_eq!(pair.n_u() + pair.n2, union);
        prop_assert_eq!(pair.n_v() + pair.n1, union);
        prop_assert!((pair.jaccard() - jaccard).abs() <= 1.0 / union as f64);
    }

    /// Binary state encoding roundtrips for random register contents.
    #[test]
    fn sketch_binary_state_roundtrips(elements in vec(0u64..100_000, 0..80)) {
        let mut sketch = SetSketch1::new(small_config(), 11);
        for &e in &elements {
            sketch.insert_u64(e);
        }
        let restored = SetSketch1::from_bytes(&sketch.to_bytes()).unwrap();
        prop_assert_eq!(sketch, restored);
    }

    /// GHLL merge equals recording the union, for arbitrary overlapping
    /// element sets, and the binary codec roundtrips the result.
    #[test]
    fn ghll_merge_is_union_and_codec_roundtrips(
        a in vec(0u64..400, 0..40),
        b in vec(0u64..400, 0..40),
    ) {
        let cfg = GhllConfig::hyperloglog(32).unwrap();
        let mut sa = GhllSketch::new(cfg, 1);
        let mut sb = GhllSketch::new(cfg, 1);
        let mut sab = GhllSketch::new(cfg, 1);
        for &e in &a {
            sa.insert_u64(e);
            sab.insert_u64(e);
        }
        for &e in &b {
            sb.insert_u64(e);
            sab.insert_u64(e);
        }
        let merged = sa.merged(&sb).unwrap();
        prop_assert_eq!(&merged, &sab);
        let restored = GhllSketch::from_bytes(&merged.to_bytes()).unwrap();
        prop_assert_eq!(restored, merged);
    }

    /// HyperMinHash merge equals recording the union.
    #[test]
    fn hyperminhash_merge_is_union(
        a in vec(0u64..400, 0..40),
        b in vec(0u64..400, 0..40),
    ) {
        let cfg = HyperMinHashConfig::new(32, 6).unwrap();
        let mut sa = HyperMinHash::new(cfg, 1);
        let mut sb = HyperMinHash::new(cfg, 1);
        let mut sab = HyperMinHash::new(cfg, 1);
        for &e in &a {
            sa.insert_u64(e);
            sab.insert_u64(e);
        }
        for &e in &b {
            sb.insert_u64(e);
            sab.insert_u64(e);
        }
        prop_assert_eq!(sa.merged(&sb).unwrap(), sab);
    }

    /// Theta sketch set algebra respects containment: the intersection
    /// estimate never exceeds either operand's estimate, and the union
    /// estimate never falls below.
    #[test]
    fn theta_algebra_respects_containment(
        a in vec(0u64..2000, 1..80),
        b in vec(0u64..2000, 1..80),
    ) {
        let mut sa = ThetaSketch::new(32, 1);
        let mut sb = ThetaSketch::new(32, 1);
        for &e in &a {
            sa.insert_u64(e);
        }
        for &e in &b {
            sb.insert_u64(e);
        }
        let union = sa.union(&sb).unwrap();
        let inter = sa.intersect(&sb).unwrap();
        prop_assert!(inter.estimate() <= union.estimate() + 1e-9);
        prop_assert!(union.estimate() >= sa.estimate().max(sb.estimate()) - 1e-9);
        // Exact-mode check: with few distinct elements everything is exact.
        let set_a: std::collections::HashSet<u64> = a.iter().copied().collect();
        let set_b: std::collections::HashSet<u64> = b.iter().copied().collect();
        if set_a.len() + set_b.len() <= 32 {
            prop_assert_eq!(
                union.estimate() as usize,
                set_a.union(&set_b).count()
            );
            prop_assert_eq!(
                inter.estimate() as usize,
                set_a.intersection(&set_b).count()
            );
        }
    }

    /// Dice, overlap and cosine derived from a joint estimate are always
    /// inside [0, 1], whatever the estimated inputs.
    #[test]
    fn similarity_coefficients_stay_normalized(
        n_u in 0.1f64..1e9,
        n_v in 0.1f64..1e9,
        j_scaled in 0u32..=100,
    ) {
        let j_max = (n_u / n_v).min(n_v / n_u);
        let j = j_max * j_scaled as f64 / 100.0;
        let q = sketch_math::JointQuantities::new(n_u, n_v, j);
        for value in [q.dice, q.overlap, q.cosine, q.inclusion_u, q.inclusion_v] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&value), "{value}");
        }
    }
}
