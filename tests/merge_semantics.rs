//! Cross-crate integration tests of the algebraic merge/insert laws
//! shared by every sketch family (idempotency, commutativity,
//! associativity — the properties §1 of the paper singles out as the
//! reason MinHash and HLL dominate practice).

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::MinHash;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_rand::mix64;

fn elements(stream: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| mix64((stream << 40) | i))
}

/// Exercises the three-way merge laws on an arbitrary mergeable sketch.
macro_rules! check_merge_laws {
    ($make:expr, $insert:ident, $merge:ident) => {{
        let mut a = $make;
        let mut b = $make;
        let mut c = $make;
        for e in elements(1, 500) {
            a.$insert(e);
        }
        for e in elements(2, 700) {
            b.$insert(e);
        }
        for e in elements(3, 300) {
            c.$insert(e);
        }
        // Commutativity.
        assert_eq!(a.$merge(&b).unwrap(), b.$merge(&a).unwrap());
        // Associativity.
        let ab_c = a.$merge(&b).unwrap().$merge(&c).unwrap();
        let a_bc = a.$merge(&b.$merge(&c).unwrap()).unwrap();
        assert_eq!(ab_c, a_bc);
        // Idempotency.
        assert_eq!(a.$merge(&a).unwrap(), a);
        // Merge with the empty sketch is the identity.
        let empty = $make;
        assert_eq!(a.$merge(&empty).unwrap(), a);
    }};
}

#[test]
fn setsketch1_merge_laws() {
    let cfg = SetSketchConfig::new(128, 2.0, 20.0, 62).unwrap();
    check_merge_laws!(SetSketch1::new(cfg, 9), insert_u64, merged);
}

#[test]
fn setsketch2_merge_laws() {
    let cfg = SetSketchConfig::new(128, 1.02, 20.0, 4000).unwrap();
    check_merge_laws!(SetSketch2::new(cfg, 9), insert_u64, merged);
}

#[test]
fn ghll_merge_laws() {
    let cfg = GhllConfig::hyperloglog(128).unwrap();
    check_merge_laws!(GhllSketch::new(cfg, 9), insert_u64, merged);
}

#[test]
fn minhash_merge_laws() {
    check_merge_laws!(MinHash::new(128, 9), insert_u64, merged);
}

#[test]
fn hyperminhash_merge_laws() {
    let cfg = HyperMinHashConfig::new(128, 8).unwrap();
    check_merge_laws!(HyperMinHash::new(cfg, 9), insert_u64, merged);
}

/// Merging n shards equals inserting the union, for every family at once.
#[test]
fn sharded_recording_equals_global_recording() {
    let cfg = SetSketchConfig::new(256, 1.001, 20.0, (1 << 16) - 2).unwrap();
    let shards = 8u64;
    let per_shard = 2000u64;

    let mut global = SetSketch2::new(cfg, 3);
    let mut merged: Option<SetSketch2> = None;
    for shard in 0..shards {
        let mut local = SetSketch2::new(cfg, 3);
        // Overlapping shard contents: elements are shared across shards.
        for e in elements(shard / 2, per_shard) {
            local.insert_u64(e);
            global.insert_u64(e);
        }
        merged = Some(match merged {
            None => local,
            Some(acc) => acc.merged(&local).unwrap(),
        });
    }
    assert_eq!(merged.unwrap(), global);
}

/// The estimate of a union never falls below the estimate of a part
/// (registers only grow under merging).
#[test]
fn union_estimates_are_monotone() {
    let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    let mut a = SetSketch1::new(cfg, 5);
    let mut b = SetSketch1::new(cfg, 5);
    for e in elements(10, 5000) {
        a.insert_u64(e);
    }
    for e in elements(11, 5000) {
        b.insert_u64(e);
    }
    let union = a.merged(&b).unwrap();
    let sum_a: f64 = a
        .registers()
        .iter()
        .zip(union.registers())
        .map(|(&x, &y)| y as f64 - x as f64)
        .sum();
    assert!(sum_a >= 0.0, "union registers must dominate");
    assert!(union.estimate_cardinality() >= a.estimate_cardinality() * 0.999);
    assert!(union.estimate_cardinality() >= b.estimate_cardinality() * 0.999);
}
