//! Serialization integration tests: every sketch family roundtrips
//! through serde (JSON) and — where provided — the compact binary codec,
//! and restored sketches keep working (insert, merge, estimate).

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::{MinHash, SuperMinHash};
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_rand::mix64;

fn elements(stream: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| mix64((stream << 40) | i))
}

#[test]
fn setsketch_json_roundtrip_continues_working() {
    let cfg = SetSketchConfig::example_16bit();
    let mut original = SetSketch1::new(cfg, 1);
    original.extend(elements(1, 10_000));

    let json = serde_json::to_string(&original).unwrap();
    let mut restored: SetSketch1 = serde_json::from_str(&json).unwrap();
    assert_eq!(original, restored);

    // The restored sketch accepts further inserts identically.
    let mut reference = original.clone();
    for e in elements(2, 1000) {
        reference.insert_u64(e);
        restored.insert_u64(e);
    }
    assert_eq!(reference, restored);
    // And merges with pre-serialization sketches.
    assert_eq!(
        reference.merged(&original).unwrap(),
        restored.merged(&original).unwrap()
    );
}

#[test]
fn setsketch_binary_roundtrip_is_compact() {
    let cfg = SetSketchConfig::example_16bit();
    let mut sketch = SetSketch2::new(cfg, 2);
    sketch.extend(elements(3, 50_000));

    let bytes = sketch.to_bytes();
    // Header (41 bytes) + 4096 registers x 16 bits.
    assert_eq!(bytes.len(), 41 + cfg.packed_bytes());
    let restored = SetSketch2::from_bytes(&bytes).unwrap();
    assert_eq!(sketch, restored);
    assert!((restored.estimate_cardinality() - sketch.estimate_cardinality()).abs() < 1e-9);
}

#[test]
fn setsketch_binary_is_much_smaller_than_json() {
    let cfg = SetSketchConfig::new(1024, 2.0, 20.0, 62).unwrap();
    let mut sketch = SetSketch1::new(cfg, 3);
    sketch.extend(elements(4, 5000));
    let json = serde_json::to_string(&sketch).unwrap();
    let bytes = sketch.to_bytes();
    assert!(
        bytes.len() * 3 < json.len(),
        "binary {} vs json {}",
        bytes.len(),
        json.len()
    );
}

#[test]
fn ghll_json_roundtrip() {
    let cfg = GhllConfig::hyperloglog(512).unwrap();
    let mut sketch = GhllSketch::with_lower_bound_tracking(cfg, 4);
    sketch.extend(elements(5, 100_000));
    let json = serde_json::to_string(&sketch).unwrap();
    let restored: GhllSketch = serde_json::from_str(&json).unwrap();
    assert_eq!(sketch, restored);
    assert!((restored.estimate_cardinality() - sketch.estimate_cardinality()).abs() < 1e-9);
}

#[test]
fn minhash_and_superminhash_json_roundtrip() {
    let mut minhash = MinHash::new(256, 5);
    minhash.extend(elements(6, 3000));
    let restored: MinHash =
        serde_json::from_str(&serde_json::to_string(&minhash).unwrap()).unwrap();
    assert_eq!(minhash, restored);

    let mut smh = SuperMinHash::new(256, 5);
    smh.extend(elements(6, 3000));
    let mut restored: SuperMinHash =
        serde_json::from_str(&serde_json::to_string(&smh).unwrap()).unwrap();
    assert_eq!(smh, restored);
    // The deserialized SuperMinHash must keep accepting inserts (its
    // scratch shuffle state is rebuilt lazily).
    for e in elements(7, 100) {
        smh.insert_u64(e);
        restored.insert_u64(e);
    }
    assert_eq!(smh, restored);
}

#[test]
fn hyperminhash_json_roundtrip() {
    let cfg = HyperMinHashConfig::new(256, 10).unwrap();
    let mut sketch = HyperMinHash::new(cfg, 6);
    sketch.extend(elements(8, 50_000));
    let restored: HyperMinHash =
        serde_json::from_str(&serde_json::to_string(&sketch).unwrap()).unwrap();
    assert_eq!(sketch, restored);
}

#[test]
fn cross_variant_deserialization_fails_loudly() {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let mut s1 = SetSketch1::new(cfg, 7);
    s1.extend(elements(9, 100));
    let json = serde_json::to_string(&s1).unwrap();
    let as_s2: Result<SetSketch2, _> = serde_json::from_str(&json);
    assert!(as_s2.is_err(), "variant tags must be enforced");
}

#[test]
fn tampered_payloads_are_rejected() {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let mut sketch = SetSketch1::new(cfg, 8);
    sketch.extend(elements(10, 1000));
    let mut value: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&sketch).unwrap()).unwrap();
    // Register value above q + 1 = 63.
    value["registers"][0] = serde_json::json!(64);
    assert!(serde_json::from_value::<SetSketch1>(value.clone()).is_err());
    // Wrong register count.
    value["registers"] = serde_json::json!([1, 2, 3]);
    assert!(serde_json::from_value::<SetSketch1>(value).is_err());
}
