//! Failure injection and adversarial-input robustness.
//!
//! Decoders must never panic on garbage; estimators must stay total
//! (finite or documented ±∞/0) on extreme register patterns that can
//! arise from misconfiguration or corrupted state.

use hyperloglog::GhllSketch;
use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig, SketchState};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the SetSketch binary decoder.
    #[test]
    fn setsketch_decoder_handles_garbage(bytes in vec(any::<u8>(), 0..256)) {
        let _ = SetSketch1::from_bytes(&bytes);
        let _ = SetSketch2::from_bytes(&bytes);
    }

    /// Arbitrary bytes never panic the GHLL binary decoder.
    #[test]
    fn ghll_decoder_handles_garbage(bytes in vec(any::<u8>(), 0..256)) {
        let _ = GhllSketch::from_bytes(&bytes);
    }

    /// Truncations and single-byte corruptions of a valid sketch either
    /// decode to *some* valid sketch or fail cleanly — never panic.
    #[test]
    fn setsketch_decoder_handles_corruption(
        flip_at in 0usize..300,
        truncate_to in 0usize..300,
    ) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let mut sketch = SetSketch1::new(cfg, 1);
        sketch.extend(0..500);
        let bytes = sketch.to_bytes().to_vec();

        let mut flipped = bytes.clone();
        let index = flip_at % flipped.len();
        flipped[index] ^= 0x55;
        let _ = SetSketch1::from_bytes(&flipped);

        let cut = truncate_to.min(bytes.len());
        let _ = SetSketch1::from_bytes(&bytes[..cut]);
    }

    /// Estimators stay total for arbitrary in-range register patterns
    /// loaded through the public state API.
    #[test]
    fn estimators_are_total_on_arbitrary_registers(
        registers in vec(0u32..=63, 64..=64),
    ) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let state = SketchState {
            variant: "setsketch1".to_owned(),
            config: cfg,
            seed: 1,
            registers,
        };
        let sketch = SetSketch1::from_state(state).unwrap();
        let simple = sketch.estimate_cardinality_simple();
        let corrected = sketch.estimate_cardinality();
        prop_assert!(!simple.is_nan());
        prop_assert!(!corrected.is_nan());
        prop_assert!(corrected >= 0.0);
        // Joint estimation against itself must report high similarity.
        let joint = sketch.estimate_joint(&sketch).unwrap();
        prop_assert!(!joint.quantities.jaccard.is_nan());
    }
}

/// Extreme register patterns exercised explicitly.
#[test]
fn estimators_on_extreme_patterns() {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let patterns: [(&str, Vec<u32>); 4] = [
        ("all zero", vec![0; 64]),
        ("all saturated", vec![63; 64]),
        (
            "alternating",
            (0..64).map(|i| if i % 2 == 0 { 0 } else { 63 }).collect(),
        ),
        ("single spike", {
            let mut v = vec![0; 64];
            v[0] = 63;
            v
        }),
    ];
    for (label, registers) in patterns {
        let state = SketchState {
            variant: "setsketch1".to_owned(),
            config: cfg,
            seed: 1,
            registers,
        };
        let sketch = SetSketch1::from_state(state).unwrap();
        let estimate = sketch.estimate_cardinality();
        assert!(!estimate.is_nan(), "{label}: NaN estimate");
        assert!(estimate >= 0.0, "{label}: negative estimate");
    }
}

/// A merged saturated + empty sketch still estimates.
#[test]
fn merge_of_extremes_estimates() {
    let cfg = SetSketchConfig::new(32, 2.0, 20.0, 5).unwrap();
    let mut saturated = SetSketch1::new(cfg, 1);
    saturated.extend(0..100_000);
    let empty = SetSketch1::new(cfg, 1);
    let merged = saturated.merged(&empty).unwrap();
    assert_eq!(merged, saturated);
    // Fully saturated small-q sketch diverges by design; never NaN.
    assert!(!merged.estimate_cardinality().is_nan());
}
