//! Accuracy and agreement tests of the §3.3 D₀-based approximate
//! query mode (`Verification::Approximate`) against the exact joint
//! estimator, plus coverage of the typed [`QueryOptions`] knobs.
//!
//! The corpus plants key pairs at known true Jaccard similarities
//! (disjoint suffixes around a shared prefix), so estimates can be
//! checked against ground truth, not just against each other:
//!
//! * approximate estimates stay within the §3.3 RMSE envelope of
//!   eq. (15) (`setsketch::locality::jaccard_upper_rmse`, Figure 4);
//! * at a threshold well separated from the planted similarity levels,
//!   the approximate sweep reports *exactly* the same pair membership
//!   as the exact sweep;
//! * at the degenerate threshold 0.0 (exhaustive fallback) both modes
//!   agree pair-for-pair on membership.

use setsketch::locality::jaccard_upper_rmse;
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_store::{Banding, Probe, QueryOptions, SketchStore, Verification};

const M: usize = 256;
const B: f64 = 1.001;
const ELEMENTS_PER_KEY: u64 = 1500;

fn config() -> SetSketchConfig {
    // Fine register scale: collision probability ≈ J (Figure 3 right),
    // the regime where Ĵ_up's RMSE matches MinHash (Figure 4).
    SetSketchConfig::new(M, B, 20.0, (1 << 16) - 2).unwrap()
}

/// Builds `pairs_per_level` planted key pairs per similarity level:
/// pair `p` shares a prefix sized for its level's Jaccard, with
/// disjoint per-key suffixes. Keys are `key-{index:04}`; pair `p` is
/// keys `2p` and `2p + 1`.
fn planted_store(levels: &[f64], pairs_per_level: usize) -> SketchStore<SetSketch1> {
    let cfg = config();
    let store = SketchStore::builder(move || SetSketch1::new(cfg, 42))
        .shards(8)
        .build();
    let mut batch: Vec<u64> = Vec::new();
    for (level_index, &jaccard) in levels.iter().enumerate() {
        for p in 0..pairs_per_level {
            let pair = (level_index * pairs_per_level + p) as u64;
            // Solve J = s / (2L − s) for the shared prefix length s.
            let shared = (2.0 * ELEMENTS_PER_KEY as f64 * jaccard / (1.0 + jaccard)).round() as u64;
            for side in 0..2u64 {
                let key = 2 * pair + side;
                batch.clear();
                batch.extend(10_000_000 * (pair + 1)..10_000_000 * (pair + 1) + shared);
                batch.extend(
                    1_000_000_000 + 10_000_000 * key
                        ..1_000_000_000 + 10_000_000 * key + (ELEMENTS_PER_KEY - shared),
                );
                store.ingest(&format!("key-{key:04}"), &batch);
            }
        }
    }
    store
}

fn key(index: usize) -> String {
    format!("key-{index:04}")
}

/// Approximate estimates of planted pairs stay within the §3.3 RMSE
/// envelope (with slack for the finite pair sample and estimated
/// cardinalities), per planted similarity level.
#[test]
fn approximate_estimates_within_section33_rmse_envelope() {
    let levels = [0.4, 0.6, 0.8];
    let pairs_per_level = 16;
    let store = planted_store(&levels, pairs_per_level);

    // Sweep low enough that every planted pair is reported.
    let approx = store
        .all_pairs_with(0.2, &QueryOptions::default().approximate())
        .expect("compatible");
    let lookup = |left: &str, right: &str| {
        approx
            .iter()
            .find(|p| p.left == left && p.right == right)
            .map(|p| p.quantities.jaccard)
    };

    for (level_index, &jaccard) in levels.iter().enumerate() {
        let envelope = jaccard_upper_rmse(B, M, jaccard);
        let mut squared_error_sum = 0.0;
        for p in 0..pairs_per_level {
            let pair = level_index * pairs_per_level + p;
            let estimate = lookup(&key(2 * pair), &key(2 * pair + 1))
                .unwrap_or_else(|| panic!("planted pair {pair} at J={jaccard} not reported"));
            let error = estimate - jaccard;
            assert!(
                error.abs() < 6.0 * envelope,
                "pair {pair}: estimate {estimate} vs J={jaccard} (envelope {envelope})"
            );
            squared_error_sum += error * error;
        }
        let rmse = (squared_error_sum / pairs_per_level as f64).sqrt();
        assert!(
            rmse < 2.0 * envelope,
            "J={jaccard}: RMSE {rmse} exceeds twice the §3.3 envelope {envelope}"
        );
    }
}

/// With planted levels far from the threshold, the approximate sweep
/// must agree with the exact sweep pair for pair — same membership,
/// same order — and report only the high-similarity pairs.
#[test]
fn approximate_membership_matches_exact_at_separated_threshold() {
    let store = planted_store(&[0.3, 0.75], 12);
    let exact = store.all_pairs(0.5).expect("compatible");
    let approx = store
        .all_pairs_with(0.5, &QueryOptions::default().approximate())
        .expect("compatible");

    // 12 planted pairs at J = 0.75 clear the threshold; the 0.3 level
    // sits ~7 RMSE below it.
    assert_eq!(exact.len(), 12, "exact sweep reported unexpected pairs");
    let memberships = |pairs: &[sketch_store::SimilarPair]| {
        pairs
            .iter()
            .map(|p| (p.left.clone(), p.right.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        memberships(&exact),
        memberships(&approx),
        "approximate and exact sweeps disagree on membership"
    );
    // Same pairs, different estimators: approximate quantities must
    // still be close to the exact ones.
    for (e, a) in exact.iter().zip(&approx) {
        assert!(
            (e.quantities.jaccard - a.quantities.jaccard).abs() < 0.1,
            "pair ({}, {}): exact {} vs approximate {}",
            e.left,
            e.right,
            e.quantities.jaccard,
            a.quantities.jaccard
        );
    }
}

/// At threshold 0.0 no banding reaches the recall target, both modes
/// fall back to the exhaustive candidate set, and every pair must be
/// reported by both — pair-for-pair identical membership.
#[test]
fn degenerate_threshold_agrees_pair_for_pair() {
    let store = planted_store(&[0.5], 4); // 8 keys -> 28 pairs
    let exact = store.all_pairs_exhaustive(0.0).expect("compatible");
    let approx = store
        .all_pairs_with(0.0, &QueryOptions::default().approximate())
        .expect("compatible");
    assert_eq!(exact.len(), 28, "every pair qualifies at threshold 0");
    assert_eq!(approx.len(), 28);
    for (e, a) in exact.iter().zip(&approx) {
        assert_eq!((&e.left, &e.right), (&a.left, &a.right));
    }
    // The exhaustive-with-options variant agrees as well.
    let approx_exhaustive = store
        .all_pairs_exhaustive_with(0.0, &QueryOptions::default().approximate())
        .expect("compatible");
    assert_eq!(approx, approx_exhaustive);
}

/// Approximate top-k ranks the planted partner first, like exact mode.
#[test]
fn approximate_top_k_finds_the_planted_partner() {
    let store = planted_store(&[0.7], 8);
    let options = QueryOptions::default().approximate();
    let neighbors = store
        .similar_keys_with(&key(0), 3, 0.5, &options)
        .expect("key exists");
    assert_eq!(neighbors[0].key, key(1), "partner must rank first");
    assert!(
        (neighbors[0].quantities.jaccard - 0.7).abs() < 0.1,
        "approximate Jaccard {}",
        neighbors[0].quantities.jaccard
    );
}

/// The remaining QueryOptions knobs: worker cap and probe policy leave
/// results unchanged; recall target and forced banding are reflected in
/// the index state diagnostics.
#[test]
fn query_options_knobs_behave() {
    let store = planted_store(&[0.3, 0.75], 6);

    // A single-threaded verification pass returns identical results.
    let default_run = store.all_pairs(0.5).expect("compatible");
    let single = store
        .all_pairs_with(0.5, &QueryOptions::default().threads(1))
        .expect("compatible");
    assert_eq!(default_run, single);

    // Probe policy cannot change a complete top-k (only candidate
    // generation differs; the exhaustive floor fills the rest).
    let auto = store.similar_keys(&key(0), 2).expect("key exists");
    let never = store
        .similar_keys_with(
            &key(0),
            2,
            0.5,
            &QueryOptions::default().probe(Probe::Never),
        )
        .expect("key exists");
    let always = store
        .similar_keys_with(
            &key(0),
            2,
            0.5,
            &QueryOptions::default().probe(Probe::Always),
        )
        .expect("key exists");
    assert_eq!(auto, never);
    assert_eq!(auto, always);

    // A lower recall target re-tunes the banding to more rows (more
    // selective) and is recorded in the index diagnostics.
    store.build_similarity_index_with(0.5, &QueryOptions::default().recall_target(0.5));
    let info = store.similarity_index_info().expect("index built");
    assert_eq!(info.recall_target, 0.5);
    let loose_rows = info.banding.expect("tunable at J=0.5").rows;
    store.build_similarity_index(0.5);
    let tight_rows = store
        .similarity_index_info()
        .expect("index built")
        .banding
        .expect("tunable")
        .rows;
    assert!(
        loose_rows >= tight_rows,
        "recall 0.5 banding ({loose_rows} rows) must be at least as selective as 0.98 ({tight_rows} rows)"
    );

    // A forced banding layout bypasses the tuner and still prunes
    // correctly (results match the default sweep at this corpus).
    let forced = QueryOptions::default().banding(Banding::new(64, 4));
    let forced_pairs = store.all_pairs_with(0.5, &forced).expect("compatible");
    assert_eq!(
        store.similarity_index_info().expect("built").banding,
        Some(Banding::new(64, 4))
    );
    assert_eq!(default_run, forced_pairs);

    // Verification::Exact is the default and the fluent exact() resets.
    assert_eq!(
        QueryOptions::default().approximate().exact().verification,
        Verification::Exact
    );
}

/// An invalid (NaN) recall target must be rejected up front — silently
/// missing the index cache's operating-point match would re-band the
/// whole store on every query.
#[test]
#[should_panic(expected = "recall target")]
fn nan_recall_target_is_rejected() {
    let store = planted_store(&[0.5], 1);
    store.build_similarity_index_with(0.5, &QueryOptions::default().recall_target(f64::NAN));
}
