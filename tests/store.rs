//! Integration tests of the serving stack: unified traits + sharded
//! concurrent store, driven across every sketch family.
//!
//! The central acceptance check lives here: ≥ 4 threads ingesting into
//! *overlapping* keys must produce exactly the state single-threaded
//! insertion produces, and the merged-down cardinality / Jaccard
//! estimates must match the single-threaded reference within estimator
//! tolerance.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::{MinHash, OnePermutationHashing, SuperMinHash};
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_core::{BatchInsert, CardinalityEstimator, JointEstimator, Mergeable, Sketch};
use sketch_store::{SketchStore, StoreError};
use thetasketch::ThetaSketch;

const THREADS: u64 = 6;
const KEYS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Elements thread `t` contributes to key `k`: overlapping ranges so
/// every pair of threads collides on shared elements *and* shared keys.
fn thread_elements(t: u64, k: usize) -> Vec<u64> {
    let key_base = k as u64 * 1_000_000;
    // Each thread covers [t*600, t*600 + 2000): heavy overlap between
    // neighboring threads.
    (key_base + t * 600..key_base + t * 600 + 2_000).collect()
}

/// Single-threaded reference state for key `k`.
fn reference<S: BatchInsert>(mut sketch: S, k: usize) -> S {
    for t in 0..THREADS {
        sketch.insert_batch(&thread_elements(t, k));
    }
    sketch
}

/// Runs the concurrent-vs-sequential check for one sketch family: the
/// store is fed by `THREADS` threads over overlapping keys, then every
/// key's state must equal the single-threaded reference exactly.
fn assert_concurrent_matches_sequential<S>(factory: impl Fn() -> S + Clone + Send + Sync + 'static)
where
    S: BatchInsert + Mergeable + Clone + PartialEq + std::fmt::Debug + Send + Sync,
{
    let store = SketchStore::builder(factory.clone()).shards(4).build();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &store;
            scope.spawn(move || {
                for (k, key) in KEYS.iter().enumerate() {
                    store.ingest(key, &thread_elements(t, k));
                }
            });
        }
    });
    for (k, key) in KEYS.iter().enumerate() {
        let expected = reference(factory(), k);
        let actual = store.get(key).expect("key was ingested");
        assert_eq!(actual, expected, "key {key} diverged from reference");
    }
    // Merge-down across keys equals merging the references.
    let mut expected_all = reference(factory(), 0);
    for k in 1..KEYS.len() {
        expected_all
            .merge_from(&reference(factory(), k))
            .expect("compatible by construction");
    }
    let merged = store.merge_down().expect("mergeable").expect("non-empty");
    assert_eq!(merged, expected_all, "merge-down diverged from reference");
}

#[test]
fn concurrent_ingest_setsketch1() {
    let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    assert_concurrent_matches_sequential(move || SetSketch1::new(cfg, 1));
}

#[test]
fn concurrent_ingest_setsketch2() {
    let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    assert_concurrent_matches_sequential(move || SetSketch2::new(cfg, 2));
}

#[test]
fn concurrent_ingest_ghll() {
    let cfg = GhllConfig::hyperloglog(256).unwrap();
    assert_concurrent_matches_sequential(move || GhllSketch::new(cfg, 3));
}

#[test]
fn concurrent_ingest_minhash() {
    assert_concurrent_matches_sequential(|| MinHash::new(256, 4));
}

#[test]
fn concurrent_ingest_superminhash() {
    assert_concurrent_matches_sequential(|| SuperMinHash::new(256, 5));
}

#[test]
fn concurrent_ingest_oph() {
    assert_concurrent_matches_sequential(|| OnePermutationHashing::new(256, 6));
}

#[test]
fn concurrent_ingest_hyperminhash() {
    let cfg = HyperMinHashConfig::new(256, 10).unwrap();
    assert_concurrent_matches_sequential(move || HyperMinHash::new(cfg, 7));
}

#[test]
fn concurrent_ingest_thetasketch() {
    assert_concurrent_matches_sequential(|| ThetaSketch::new(512, 8));
}

/// The acceptance-criteria scenario in one test: ≥ 4 threads, overlapping
/// keys, and the *estimates* (not just states) checked against the
/// single-threaded reference within estimator tolerance.
#[test]
fn concurrent_estimates_match_reference_within_tolerance() {
    let cfg = SetSketchConfig::new(1024, 2.0, 20.0, 62).unwrap();
    let factory = move || SetSketch2::new(cfg, 9);
    let store = SketchStore::builder(factory).shards(8).build();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &store;
            scope.spawn(move || {
                for (k, key) in KEYS.iter().enumerate() {
                    store.ingest(key, &thread_elements(t, k));
                }
            });
        }
    });

    // Per-key truth: union of [t*600, t*600+2000) over t = 0..6 is
    // [0, 5000) shifted by the key base → 5000 distinct elements.
    let true_card = 5_000.0;
    for key in KEYS {
        let estimate = store.cardinality(key).expect("present");
        let rel = (estimate - true_card) / true_card;
        // RSD ≈ 1.04/sqrt(1024) ≈ 3.3 %; allow 5 sigma.
        assert!(rel.abs() < 0.17, "key {key}: estimate {estimate}");
    }

    // Jaccard of two keys with disjoint element spaces is 0; of a key
    // with itself 1. Also check against a single-threaded twin store.
    let twin = SketchStore::builder(factory).shards(8).build();
    for (k, key) in KEYS.iter().enumerate() {
        for t in 0..THREADS {
            twin.ingest(key, &thread_elements(t, k));
        }
    }
    for key in KEYS {
        let concurrent = store.get(key).unwrap();
        let sequential = twin.get(key).unwrap();
        // Deterministic states → identical estimates, not just close.
        assert_eq!(concurrent, sequential);
    }
    let j = store.jaccard("alpha", "beta").expect("present");
    assert!(j.abs() < 0.02, "disjoint keys: jaccard {j}");

    // Merged-down union: 3 disjoint blocks of 5000 → 15000.
    let union = store
        .union_cardinality(&["alpha", "beta", "gamma"])
        .expect("mergeable");
    let rel = (union - 15_000.0) / 15_000.0;
    assert!(rel.abs() < 0.17, "union estimate {union}");
}

/// Boxed trait objects work for heterogeneous recording pipelines.
#[test]
fn dyn_sketch_recording() {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let ghll = GhllConfig::hyperloglog(64).unwrap();
    let mut sketches: Vec<Box<dyn Sketch>> = vec![
        Box::new(SetSketch1::new(cfg, 1)),
        Box::new(GhllSketch::new(ghll, 1)),
        Box::new(MinHash::new(64, 1)),
        Box::new(ThetaSketch::new(64, 1)),
    ];
    for sketch in &mut sketches {
        sketch.insert_u64(42);
        sketch.insert_str("forty-two");
        sketch.insert_bytes(b"\x2a");
    }
}

/// A generic pipeline written once against the traits runs on every
/// family and produces sane joint estimates.
#[test]
fn generic_pipeline_over_families() {
    fn jaccard_of_ranges<S>(factory: impl Fn() -> S) -> f64
    where
        S: BatchInsert + JointEstimator + CardinalityEstimator,
    {
        let mut a = factory();
        let mut b = factory();
        a.insert_batch(&(0..3_000).collect::<Vec<_>>());
        b.insert_batch(&(1_500..4_500).collect::<Vec<_>>());
        a.jaccard(&b).expect("compatible")
    }

    let cfg = SetSketchConfig::new(1024, 1.5, 20.0, 100).unwrap();
    let hmh = HyperMinHashConfig::new(1024, 10).unwrap();
    // True Jaccard: 1500 / 4500 = 1/3.
    let truth = 1.0 / 3.0;
    assert!((jaccard_of_ranges(move || SetSketch1::new(cfg, 1)) - truth).abs() < 0.1);
    assert!((jaccard_of_ranges(|| MinHash::new(1024, 2)) - truth).abs() < 0.1);
    assert!((jaccard_of_ranges(|| SuperMinHash::new(1024, 3)) - truth).abs() < 0.1);
    assert!((jaccard_of_ranges(move || HyperMinHash::new(hmh, 4)) - truth).abs() < 0.1);
    assert!((jaccard_of_ranges(|| ThetaSketch::new(1024, 5)) - truth).abs() < 0.1);
}

/// The store surfaces the detailed SetSketch incompatibility through its
/// merge errors (the satellite fix of this PR, end to end).
#[test]
fn store_surfaces_mismatch_details() {
    let cfg = SetSketchConfig::new(128, 2.0, 20.0, 62).unwrap();
    let store = SketchStore::builder(move || SetSketch1::new(cfg, 10)).build();
    store.ingest("local", &(0..500).collect::<Vec<_>>());

    let other_cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    let mut foreign = SetSketch1::new(other_cfg, 77);
    foreign.extend(0..500);
    store.put("foreign", foreign);

    let err = store.union_cardinality(&["local", "foreign"]).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("configurations differ") && message.contains("m=128"),
        "missing config detail: {message}"
    );
    assert!(
        message.contains("seeds differ (left: 10, right: 77)"),
        "missing seed detail: {message}"
    );
    assert!(matches!(err, StoreError::Incompatible(_)));
}
