//! Property-based tests (proptest) pinning the LSH-pruned similarity
//! query engine to its exhaustive reference.
//!
//! * `all_pairs(0.0)` must equal `all_pairs_exhaustive(0.0)` — same
//!   pairs, same `JointQuantities` bit for bit: at threshold 0 every
//!   pair must be reported, no banding can promise that recall, and the
//!   engine is required to degrade to the exhaustive candidate set.
//! * For *any* threshold, every pair the pruned sweep reports must
//!   appear in the exhaustive sweep with identical quantities — the LSH
//!   stage may only prune, never alter verification.
//! * `similar_keys_at(key, k, 0.0)` must equal the brute-force top-k
//!   computed from per-pair `joint` calls (descending Jaccard, ties by
//!   ascending key), including tie-heavy stores with duplicated states.

use minhash::MinHash;
use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_store::SketchStore;

/// Batches of elements: one store key per batch. Small domains produce
/// overlapping (sometimes identical) sets, so ties and high-similarity
/// pairs are common.
fn keyed_batches() -> impl Strategy<Value = Vec<Vec<u64>>> {
    vec(vec(0u64..400, 0..60), 0..10)
}

fn setsketch_store(shards: usize) -> SketchStore<SetSketch1> {
    let cfg = SetSketchConfig::new(64, 1.001, 20.0, (1 << 16) - 2).unwrap();
    SketchStore::builder(move || SetSketch1::new(cfg, 11))
        .shards(shards)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pruned_all_pairs_at_threshold_zero_equals_exhaustive(
        batches in keyed_batches(),
        shards in 1usize..6,
    ) {
        let store = setsketch_store(shards);
        for (i, batch) in batches.iter().enumerate() {
            store.ingest(&format!("key-{i:02}"), batch);
        }
        let pruned = store.all_pairs(0.0).expect("compatible by construction");
        let exhaustive = store
            .all_pairs_exhaustive(0.0)
            .expect("compatible by construction");
        // Same pairs, same order, identical JointQuantities.
        prop_assert_eq!(pruned, exhaustive);
    }

    #[test]
    fn pruned_pairs_always_verify_identically(
        batches in keyed_batches(),
        threshold in 0.0f64..1.0,
    ) {
        let store = setsketch_store(4);
        for (i, batch) in batches.iter().enumerate() {
            store.ingest(&format!("key-{i:02}"), batch);
        }
        let pruned = store.all_pairs(threshold).expect("compatible");
        let exhaustive = store.all_pairs_exhaustive(threshold).expect("compatible");
        for pair in &pruned {
            let reference = exhaustive
                .iter()
                .find(|p| p.left == pair.left && p.right == pair.right);
            prop_assert_eq!(
                Some(&pair.quantities),
                reference.map(|p| &p.quantities),
                "pair ({}, {}) diverged from the exhaustive sweep",
                pair.left,
                pair.right
            );
        }
    }

    /// MinHash states through the same engine (the trait surface is
    /// family-generic): exhaustive pinning at threshold 0.
    #[test]
    fn minhash_pruned_all_pairs_at_zero_equals_exhaustive(
        batches in keyed_batches(),
    ) {
        let store = SketchStore::builder(|| MinHash::new(64, 5)).shards(3).build();
        for (i, batch) in batches.iter().enumerate() {
            store.ingest(&format!("key-{i:02}"), batch);
        }
        let pruned = store.all_pairs(0.0).expect("compatible");
        let exhaustive = store.all_pairs_exhaustive(0.0).expect("compatible");
        prop_assert_eq!(pruned, exhaustive);
    }

    #[test]
    fn top_k_matches_brute_force_with_ties(
        batches in keyed_batches(),
        k in 0usize..8,
    ) {
        let store = setsketch_store(4);
        for (i, batch) in batches.iter().enumerate() {
            store.ingest(&format!("key-{i:02}"), batch);
            // Every third key is duplicated under another name, making
            // exact Jaccard ties against any query commonplace.
            if i % 3 == 0 {
                store.ingest(&format!("dup-{i:02}"), batch);
            }
        }
        let keys = store.keys();
        let Some(query_key) = keys.first().cloned() else {
            // Empty store: no key to query.
            return Ok(());
        };

        // Threshold 0 forces the exhaustive candidate path, so the
        // result must be the *exact* top-k, ties included.
        let got = store
            .similar_keys_at(&query_key, k, 0.0)
            .expect("key exists");

        let mut expected: Vec<(String, sketch_store::JointQuantities)> = keys
            .iter()
            .filter(|key| **key != query_key)
            .map(|key| {
                let joint = store.joint(&query_key, key).expect("compatible");
                (key.clone(), joint)
            })
            .collect();
        expected.sort_by(|a, b| {
            b.1.jaccard
                .total_cmp(&a.1.jaccard)
                .then_with(|| a.0.cmp(&b.0))
        });
        expected.truncate(k);

        prop_assert_eq!(got.len(), expected.len());
        for (neighbor, (key, quantities)) in got.iter().zip(&expected) {
            prop_assert_eq!(&neighbor.key, key);
            prop_assert_eq!(&neighbor.quantities, quantities);
        }
    }
}
