//! End-to-end accuracy integration tests: empirical estimation errors of
//! every sketch family must match the paper's theoretical predictions
//! within sampling tolerance.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::MinHash;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_math::fisher;
use sketch_rand::mix64;

fn elements(stream: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| mix64((stream << 40) | i))
}

/// Empirical relative RMSE of cardinality estimates over several seeds.
fn cardinality_rmse<F: Fn(u64) -> f64>(truth: u64, runs: u64, estimate: F) -> f64 {
    let se: f64 = (0..runs)
        .map(|seed| {
            let e = estimate(seed);
            ((e - truth as f64) / truth as f64).powi(2)
        })
        .sum();
    (se / runs as f64).sqrt()
}

#[test]
fn setsketch1_cardinality_error_matches_rsd() {
    let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    let n = 30_000u64;
    let rmse = cardinality_rmse(n, 30, |seed| {
        let mut s = SetSketch1::new(cfg, seed);
        s.extend(elements(seed, n));
        s.estimate_cardinality()
    });
    let rsd = cfg.cardinality_rsd(); // 1.04/sqrt(256) ~ 6.5 %
    assert!(
        rmse < rsd * 1.45 && rmse > rsd * 0.6,
        "rmse {rmse} vs theoretical {rsd}"
    );
}

#[test]
fn setsketch2_small_set_error_beats_asymptote() {
    // Paper Fig. 5: SetSketch2's correlation helps below n = m.
    let cfg = SetSketchConfig::new(1024, 2.0, 20.0, 62).unwrap();
    let n = 50u64;
    let rmse = cardinality_rmse(n, 60, |seed| {
        let mut s = SetSketch2::new(cfg, seed);
        s.extend(elements(seed, n));
        s.estimate_cardinality()
    });
    assert!(
        rmse < cfg.cardinality_rsd() * 0.7,
        "rmse {rmse} should beat the asymptote {}",
        cfg.cardinality_rsd()
    );
}

#[test]
fn hyperloglog_error_matches_104_over_sqrt_m() {
    let cfg = GhllConfig::hyperloglog(256).unwrap();
    let n = 50_000u64;
    let rmse = cardinality_rmse(n, 30, |seed| {
        let mut s = GhllSketch::new(cfg, seed);
        s.extend(elements(seed + 100, n));
        s.estimate_cardinality()
    });
    let rsd = 1.04 / 16.0;
    assert!(
        rmse < rsd * 1.45 && rmse > rsd * 0.6,
        "rmse {rmse} vs theoretical {rsd}"
    );
}

#[test]
fn minhash_error_matches_one_over_sqrt_m() {
    let n = 20_000u64;
    let m = 1024usize;
    let rmse = cardinality_rmse(n, 25, |seed| {
        let mut s = MinHash::new(m, seed);
        s.extend(elements(seed + 200, n));
        s.estimate_cardinality()
    });
    let rsd = 1.0 / (m as f64).sqrt();
    assert!(
        rmse < rsd * 1.5 && rmse > rsd * 0.55,
        "rmse {rmse} vs theoretical {rsd}"
    );
}

/// Build a (U, V) pair with the prescribed structure on any sketch.
fn record_pair<S>(mut u: S, mut v: S, n1: u64, n2: u64, n3: u64, tag: u64) -> (S, S)
where
    S: SketchLike,
{
    for e in elements(tag * 3, n1) {
        u.add(e);
    }
    for e in elements(tag * 3 + 1, n2) {
        v.add(e);
    }
    for e in elements(tag * 3 + 2, n3) {
        u.add(e);
        v.add(e);
    }
    (u, v)
}

trait SketchLike {
    fn add(&mut self, e: u64);
}

impl SketchLike for SetSketch1 {
    fn add(&mut self, e: u64) {
        self.insert_u64(e);
    }
}

impl SketchLike for MinHash {
    fn add(&mut self, e: u64) {
        self.insert_u64(e);
    }
}

impl SketchLike for HyperMinHash {
    fn add(&mut self, e: u64) {
        self.insert_u64(e);
    }
}

#[test]
fn setsketch_jaccard_error_matches_fisher_information() {
    // b = 1.001, equal set sizes: the asymptotic RMSE equals the MinHash
    // bound sqrt(J(1-J)/m) (paper Fig. 2).
    let cfg = SetSketchConfig::new(1024, 1.001, 20.0, (1 << 16) - 2).unwrap();
    let (n1, n2, n3) = (10_000u64, 10_000, 5_000);
    let j_true = n3 as f64 / (n1 + n2 + n3) as f64;
    let runs = 30;
    let se: f64 = (0..runs)
        .map(|seed| {
            let (u, v) = record_pair(
                SetSketch1::new(cfg, seed),
                SetSketch1::new(cfg, seed),
                n1,
                n2,
                n3,
                seed + 500,
            );
            let est = u.estimate_joint(&v).unwrap().quantities.jaccard;
            (est - j_true) * (est - j_true)
        })
        .sum();
    let rmse = (se / runs as f64).sqrt();
    let theory = fisher::jaccard_rmse_theory(1024, 1.001, 0.5, 0.5, j_true);
    assert!(
        rmse < theory * 1.6 && rmse > theory * 0.5,
        "rmse {rmse} vs theory {theory}"
    );
}

#[test]
fn minhash_new_estimator_beats_classic_for_asymmetric_sets() {
    // Paper §4.1: for very different set sizes the new estimator's
    // advantage is largest.
    let (n1, n2, n3) = (20_000u64, 200, 300);
    let j_true = n3 as f64 / (n1 + n2 + n3) as f64;
    let runs = 40;
    let (mut se_new, mut se_classic) = (0.0f64, 0.0);
    for seed in 0..runs {
        let (u, v) = record_pair(
            MinHash::new(1024, seed),
            MinHash::new(1024, seed),
            n1,
            n2,
            n3,
            seed + 900,
        );
        let new = u.estimate_joint(&v).unwrap().jaccard;
        let classic = u.estimate_joint_classic(&v).unwrap().jaccard;
        se_new += (new - j_true) * (new - j_true);
        se_classic += (classic - j_true) * (classic - j_true);
    }
    assert!(
        se_new < se_classic,
        "new {se_new} should beat classic {se_classic}"
    );
}

#[test]
fn hyperminhash_matches_setsketch_accuracy_for_large_sets() {
    // Paper §5.3: for large sets HyperMinHash encodes joint information
    // as well as a SetSketch with the corresponding base.
    let cfg = HyperMinHashConfig::new(1024, 10).unwrap();
    let (n1, n2, n3) = (100_000u64, 100_000, 100_000);
    let j_true = n3 as f64 / 300_000.0;
    let runs = 15;
    let se: f64 = (0..runs)
        .map(|seed| {
            let (u, v) = record_pair(
                HyperMinHash::new(cfg, seed),
                HyperMinHash::new(cfg, seed),
                n1,
                n2,
                n3,
                seed + 1300,
            );
            let est = u.estimate_joint(&v).unwrap().jaccard;
            (est - j_true) * (est - j_true)
        })
        .sum();
    let rmse = (se / runs as f64).sqrt();
    let theory = fisher::jaccard_rmse_theory(1024, cfg.equivalent_base(), 0.5, 0.5, j_true);
    assert!(
        rmse < theory * 1.7,
        "rmse {rmse} should be near theory {theory}"
    );
}
