//! Cross-family consistency: the correspondences the paper proves between
//! SetSketch, MinHash, GHLL and HyperMinHash must show up empirically.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::MinHash;
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_rand::mix64;

fn elements(stream: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| mix64((stream << 40) | i))
}

/// All four families estimate the same cardinality for the same set,
/// within their respective error bounds.
#[test]
fn all_families_agree_on_cardinality() {
    let n = 80_000u64;
    let m = 1024usize;

    let sscfg = SetSketchConfig::new(m, 2.0, 20.0, 62).unwrap();
    let mut ss = SetSketch1::new(sscfg, 1);
    let mut mh = MinHash::new(m, 1);
    let ghllcfg = GhllConfig::hyperloglog(m).unwrap();
    let mut hll = GhllSketch::new(ghllcfg, 1);
    let hmhcfg = HyperMinHashConfig::new(m, 10).unwrap();
    let mut hmh = HyperMinHash::new(hmhcfg, 1);

    for e in elements(42, n) {
        ss.insert_u64(e);
        mh.insert_u64(e);
        hll.insert_u64(e);
        hmh.insert_u64(e);
    }

    for (label, estimate) in [
        ("setsketch", ss.estimate_cardinality()),
        ("minhash", mh.estimate_cardinality()),
        ("hll", hll.estimate_cardinality()),
        ("hyperminhash", hmh.estimate_cardinality()),
    ] {
        let rel = (estimate - n as f64) / n as f64;
        assert!(
            rel.abs() < 0.2,
            "{label}: estimate {estimate} deviates {rel}"
        );
    }
}

/// GHLL register values follow the SetSketch distribution with a = 1/m
/// (Lemma 20): the mean register value of a GHLL at cardinality n matches
/// a SetSketch1 configured with a = 1/m at the same n, up to stochastic-
/// averaging noise.
#[test]
fn ghll_matches_setsketch_with_a_one_over_m() {
    let m = 512usize;
    let n = 200_000u64;
    let ghll_cfg = GhllConfig::hyperloglog(m).unwrap();
    let ss_cfg = SetSketchConfig::new(m, 2.0, 1.0 / m as f64, 62).unwrap();

    let mut mean_ghll = 0.0f64;
    let mut mean_ss = 0.0f64;
    let runs = 5;
    for seed in 0..runs {
        let mut ghll = GhllSketch::new(ghll_cfg, seed);
        let mut ss = SetSketch1::new(ss_cfg, seed);
        for e in elements(seed + 50, n) {
            ghll.insert_u64(e);
            ss.insert_u64(e);
        }
        mean_ghll += ghll.registers().iter().map(|&k| k as f64).sum::<f64>();
        mean_ss += ss.registers().iter().map(|&k| k as f64).sum::<f64>();
    }
    mean_ghll /= (runs as usize * m) as f64;
    mean_ss /= (runs as usize * m) as f64;
    assert!(
        (mean_ghll - mean_ss).abs() < 0.1,
        "mean registers: ghll {mean_ghll} vs setsketch(a=1/m) {mean_ss}"
    );
}

/// SetSketch with b = 1.001 must reach the classic MinHash Jaccard
/// accuracy (paper Fig. 2): compare squared errors over multiple runs.
#[test]
fn small_base_setsketch_matches_minhash_jaccard_accuracy() {
    let m = 1024usize;
    let cfg = SetSketchConfig::new(m, 1.001, 20.0, (1 << 16) - 2).unwrap();
    let (n1, n2, n3) = (2000u64, 2000, 1000);
    let j_true = n3 as f64 / 5000.0;
    let runs = 100;
    let (mut se_ss, mut se_mh) = (0.0f64, 0.0);
    for seed in 0..runs {
        let mut ss_u = SetSketch1::new(cfg, seed);
        let mut ss_v = SetSketch1::new(cfg, seed);
        let mut mh_u = MinHash::new(m, seed);
        let mut mh_v = MinHash::new(m, seed);
        for e in elements(seed * 3 + 600, n1) {
            ss_u.insert_u64(e);
            mh_u.insert_u64(e);
        }
        for e in elements(seed * 3 + 601, n2) {
            ss_v.insert_u64(e);
            mh_v.insert_u64(e);
        }
        for e in elements(seed * 3 + 602, n3) {
            ss_u.insert_u64(e);
            ss_v.insert_u64(e);
            mh_u.insert_u64(e);
            mh_v.insert_u64(e);
        }
        let j_ss = ss_u.estimate_joint(&ss_v).unwrap().quantities.jaccard;
        let j_mh = mh_u.jaccard_classic(&mh_v).unwrap();
        se_ss += (j_ss - j_true) * (j_ss - j_true);
        se_mh += (j_mh - j_true) * (j_mh - j_true);
    }
    // SetSketch at b = 1.001 should be comparable to the dedicated MinHash
    // estimator, using a quarter of the memory (paper Fig. 2). Squared
    // errors are chi-square with ~100 degrees of freedom; 1.8x covers
    // ~4 sigma of that ratio noise.
    assert!(
        se_ss < se_mh * 1.8,
        "setsketch SE {se_ss} vs minhash SE {se_mh}"
    );
}

/// The equal-register fraction of two SetSketches stays inside the §3.3
/// collision probability bounds.
#[test]
fn collision_rate_respects_bounds() {
    let cfg = SetSketchConfig::new(4096, 1.2, 20.0, 4000).unwrap();
    for (seed, j_target) in [(1u64, 0.2f64), (2, 0.5), (3, 0.8)] {
        let union = 30_000u64;
        let n3 = (union as f64 * j_target) as u64;
        let half = (union - n3) / 2;
        let mut u = SetSketch1::new(cfg, seed);
        let mut v = SetSketch1::new(cfg, seed);
        for e in elements(seed * 3 + 700, half) {
            u.insert_u64(e);
        }
        for e in elements(seed * 3 + 701, half) {
            v.insert_u64(e);
        }
        for e in elements(seed * 3 + 702, n3) {
            u.insert_u64(e);
            v.insert_u64(e);
        }
        let equal = u
            .registers()
            .iter()
            .zip(v.registers())
            .filter(|(a, b)| a == b)
            .count() as f64
            / 4096.0;
        let j_exact = n3 as f64 / (2 * half + n3) as f64;
        let (lo, hi) = setsketch::collision_probability_bounds(1.2, j_exact);
        // Allow 4-sigma binomial noise around the bounds.
        let sigma = (hi * (1.0 - hi) / 4096.0).sqrt().max(1e-3);
        assert!(
            equal > lo - 4.0 * sigma && equal < hi + 4.0 * sigma,
            "j={j_exact}: equal fraction {equal} outside [{lo}, {hi}]"
        );
    }
}
