//! Smoke test: every figure driver of the experiment harness runs end to
//! end at tiny scale and produces a well-formed table. Guards the full
//! reproduction pipeline (workloads -> sketches -> estimators -> tables)
//! against regressions.

use simulation::{run_figure, Scale, ALL_FIGURES};

fn tiny_scale() -> Scale {
    Scale {
        cycles: 3,
        n_max: 120,
        pairs: 2,
        union_large: 1500,
        union_small: 200,
        union_large_minwise: 600,
        ratio_points_per_side: 1,
        m_joint: 32,
        m_minwise: 32,
        recording_n_max: 500,
        recording_runs: 1,
        threads: 2,
    }
}

#[test]
fn every_figure_runs_and_is_well_formed() {
    let scale = tiny_scale();
    for name in ALL_FIGURES {
        let table = run_figure(name, &scale);
        assert!(!table.rows.is_empty(), "{name} produced no rows");
        assert!(!table.columns.is_empty(), "{name} has no columns");
        for (i, row) in table.rows.iter().enumerate() {
            assert_eq!(row.len(), table.columns.len(), "{name} row {i} is ragged");
            for cell in row {
                assert!(!cell.is_empty(), "{name} row {i} has an empty cell");
            }
        }
        // The text rendering must not panic and must contain the name.
        assert!(table.to_text().contains(&table.name));
    }
}

#[test]
fn figures_write_csv_files() {
    let scale = tiny_scale();
    let dir = std::env::temp_dir().join("setsketch-figures-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    for name in ["fig1", "fig3", "fig11"] {
        let table = run_figure(name, &scale);
        let path = table.write_csv(&dir).expect("csv written");
        let content = std::fs::read_to_string(path).expect("csv readable");
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), table.rows.len() + 1);
        assert_eq!(lines[0].split(',').count(), table.columns.len());
    }
}
