//! Better joint estimates from *existing* HyperLogLog sketches.
//!
//! One of the paper's headline side results (§4.2): the SetSketch joint
//! estimator applies unchanged to persisted HLL states and clearly beats
//! the inclusion–exclusion principle — the previous state of the art — so
//! systems that already store HLLs can upgrade their intersection
//! estimates without touching the stored data.
//!
//! Run with `cargo run --release --example joint_from_hll`.

use hyperloglog::{GhllConfig, GhllSketch};

fn main() {
    let config = GhllConfig::hyperloglog(4096).expect("valid");

    // Imagine these were loaded from a sketch store: daily audiences of
    // two features with a known overlap.
    let mut feature_a = GhllSketch::new(config, 2024);
    let mut feature_b = GhllSketch::new(config, 2024);
    for user in 0..400_000u64 {
        feature_a.insert_u64(user);
    }
    for user in 250_000..650_000u64 {
        feature_b.insert_u64(user);
    }
    let true_intersection = 150_000.0;
    let true_jaccard = 150_000.0 / 650_000.0;

    // Check the §4.2 applicability condition before using the new
    // estimator: the union must be large enough that no register is zero
    // in both sketches.
    println!(
        "applicability threshold m*H_m ~ {:.0}, union is 650000 -> {}",
        feature_a.joint_ml_cardinality_threshold(),
        if feature_a
            .joint_ml_applicable(&feature_b)
            .expect("compatible")
        {
            "applicable"
        } else {
            "NOT applicable"
        }
    );

    let new = feature_a.estimate_joint(&feature_b).expect("applicable");
    let inex = feature_a
        .estimate_joint_inclusion_exclusion(&feature_b)
        .expect("compatible");

    println!("true:                jaccard {true_jaccard:.4}, intersection {true_intersection}");
    println!(
        "new estimator:       jaccard {:.4} ({:+.1}%), intersection {:.0} ({:+.1}%)",
        new.jaccard,
        (new.jaccard / true_jaccard - 1.0) * 100.0,
        new.intersection,
        (new.intersection / true_intersection - 1.0) * 100.0,
    );
    println!(
        "inclusion-exclusion: jaccard {:.4} ({:+.1}%), intersection {:.0} ({:+.1}%)",
        inex.jaccard,
        (inex.jaccard / true_jaccard - 1.0) * 100.0,
        inex.intersection,
        (inex.intersection / true_intersection - 1.0) * 100.0,
    );

    // Aggregate error over repeated draws: the new estimator's advantage
    // is systematic, not luck (paper Fig. 14).
    let runs = 20;
    let (mut se_new, mut se_inex) = (0.0f64, 0.0f64);
    for seed in 0..runs {
        let mut a = GhllSketch::new(config, seed);
        let mut b = GhllSketch::new(config, seed);
        let offset = (seed + 1) * 10_000_000;
        for user in offset..offset + 400_000 {
            a.insert_u64(user);
        }
        for user in offset + 250_000..offset + 650_000 {
            b.insert_u64(user);
        }
        let n = a.estimate_joint(&b).expect("applicable");
        let x = a
            .estimate_joint_inclusion_exclusion(&b)
            .expect("compatible");
        se_new += (n.jaccard - true_jaccard).powi(2);
        se_inex += (x.jaccard - true_jaccard).powi(2);
    }
    let rmse_new = (se_new / runs as f64).sqrt() / true_jaccard;
    let rmse_inex = (se_inex / runs as f64).sqrt() / true_jaccard;
    println!(
        "over {runs} runs: relative RMSE new {:.3} vs inclusion-exclusion {:.3} ({}x better)",
        rmse_new,
        rmse_inex,
        (rmse_inex / rmse_new).round()
    );
    assert!(rmse_new < rmse_inex, "the new estimator should dominate");
}
