//! Database-style approximate distinct counting across partitions.
//!
//! The workload the paper's introduction motivates: a table is split over
//! many partitions; each partition maintains a small sketch of a column's
//! values, and `COUNT(DISTINCT ...)` queries over arbitrary partition
//! subsets are answered by merging sketches — no rescan of the data.
//!
//! The example contrasts two SetSketch configurations (HLL-like `b = 2`
//! and similarity-grade `b = 1.001`) and a classic HyperLogLog on the same
//! data, printing estimate quality and memory footprint.
//!
//! Run with `cargo run --release --example distinct_count`.

use hyperloglog::{GhllConfig, GhllSketch};
use setsketch::{SetSketch2, SetSketchConfig};
use sketch_rand::mix64;

/// Synthetic partition: `rows` values drawn from a key space of
/// `key_space` distinct keys (so partitions overlap realistically).
fn partition_values(partition: u64, rows: u64, key_space: u64) -> impl Iterator<Item = u64> {
    // Duplicate keys across rows and partitions are the point.
    (0..rows).map(move |i| mix64(partition.wrapping_mul(0x9e37).wrapping_add(i)) % key_space)
}

fn main() {
    const PARTITIONS: u64 = 16;
    const ROWS_PER_PARTITION: u64 = 50_000;
    const KEY_SPACE: u64 = 300_000;

    // Ground truth for the full table.
    let mut truth = std::collections::HashSet::new();
    for p in 0..PARTITIONS {
        truth.extend(partition_values(p, ROWS_PER_PARTITION, KEY_SPACE));
    }
    println!(
        "table: {PARTITIONS} partitions x {ROWS_PER_PARTITION} rows, true distinct = {}",
        truth.len()
    );

    // Configuration A: HLL-like SetSketch (b = 2, 6-bit registers).
    let compact = SetSketchConfig::new(4096, 2.0, 20.0, 62).expect("valid");
    // Configuration B: similarity-grade SetSketch (b = 1.001, 16-bit).
    let precise = SetSketchConfig::example_16bit();
    // Baseline: classic HyperLogLog with the same register count.
    let hll_cfg = GhllConfig::hyperloglog(4096).expect("valid");

    let mut compact_shards: Vec<SetSketch2> = Vec::new();
    let mut precise_shards: Vec<SetSketch2> = Vec::new();
    let mut hll_shards: Vec<GhllSketch> = Vec::new();
    for p in 0..PARTITIONS {
        let mut c = SetSketch2::new(compact, 7);
        let mut f = SetSketch2::new(precise, 7);
        let mut h = GhllSketch::new(hll_cfg, 7);
        for value in partition_values(p, ROWS_PER_PARTITION, KEY_SPACE) {
            c.insert_u64(value);
            f.insert_u64(value);
            h.insert_u64(value);
        }
        compact_shards.push(c);
        precise_shards.push(f);
        hll_shards.push(h);
    }

    // Merge all partitions (any subset works the same way).
    let compact_all = compact_shards
        .iter()
        .skip(1)
        .fold(compact_shards[0].clone(), |acc, s| {
            acc.merged(s).expect("same config")
        });
    let precise_all = precise_shards
        .iter()
        .skip(1)
        .fold(precise_shards[0].clone(), |acc, s| {
            acc.merged(s).expect("same config")
        });
    let hll_all = hll_shards
        .iter()
        .skip(1)
        .fold(hll_shards[0].clone(), |acc, s| {
            acc.merged(s).expect("same config")
        });

    let truth_n = truth.len() as f64;
    let report = |label: &str, estimate: f64, bytes: usize| {
        println!(
            "{label:<26} estimate {estimate:>9.0}  error {:>6.2}%  sketch {bytes} bytes/partition",
            (estimate - truth_n) / truth_n * 100.0
        );
    };
    report(
        "SetSketch b=2 (6-bit)",
        compact_all.estimate_cardinality(),
        compact.packed_bytes(),
    );
    report(
        "SetSketch b=1.001 (16-bit)",
        precise_all.estimate_cardinality(),
        precise.packed_bytes(),
    );
    report(
        "HyperLogLog (6-bit)",
        hll_all.estimate_cardinality(),
        (4096usize * 6).div_ceil(8),
    );

    // Partition-subset query: distinct keys in partitions 0..4.
    let mut subset_truth = std::collections::HashSet::new();
    for p in 0..4 {
        subset_truth.extend(partition_values(p, ROWS_PER_PARTITION, KEY_SPACE));
    }
    let subset = precise_shards[..4]
        .iter()
        .skip(1)
        .fold(precise_shards[0].clone(), |acc, s| {
            acc.merged(s).expect("same config")
        });
    println!(
        "partitions 0..4: estimate {:.0}, true {}",
        subset.estimate_cardinality(),
        subset_truth.len()
    );

    // Bonus unique to SetSketch with small b: how similar are two
    // partitions' key sets?
    let joint = precise_shards[0]
        .estimate_joint(&precise_shards[1])
        .expect("same config");
    println!(
        "partition 0 vs 1: jaccard ~ {:.3}, shared keys ~ {:.0}",
        joint.quantities.jaccard, joint.quantities.intersection
    );
}
