//! A miniature sketch-serving service on top of [`sketch_store`].
//!
//! The shape mirrors `streaming_shards`, one layer up: a fleet of
//! ingest workers feeds *named* sketches (one per tenant) in a shared
//! concurrent store, while the query side answers cardinality,
//! similarity and union questions and ships a point-in-time snapshot of
//! the whole store as JSON.
//!
//! This example exercises the store's front door end to end:
//!
//! 1. **Builder construction** — `SketchStore::builder(factory)` with
//!    explicit shard, queue-depth and writer-thread knobs.
//! 2. **Pipelined ingest** — request threads enqueue into the
//!    `IngestPipeline` (bounded queues, dedicated writer threads,
//!    backpressure) instead of applying sketch updates themselves; a
//!    scoped-thread synchronous pass over the same workload is kept as
//!    the comparison path, and both must produce identical states.
//! 3. **Typed query options** — the all-pairs similarity sweep runs
//!    once with exact verification and once in the §3.3 D₀-based
//!    approximate-quantity mode (`QueryOptions::default().approximate()`).
//!
//! Run with `cargo run --release --example store_service`.

use setsketch::{SetSketch2, SetSketchConfig};
use sketch_rand::mix64;
use sketch_store::{QueryOptions, SketchStore};
use std::time::Instant;

const TENANTS: [&str; 4] = ["search", "ads", "mail", "maps"];
const WORKERS: u64 = 8;
const BATCHES_PER_WORKER: u64 = 40;
const BATCH: u64 = 2_000;

/// Tenant t records users whose id is divisible by (t + 1): nested
/// subsets with known overlaps.
fn tenant_events(worker: u64, batch: u64, tenant: usize) -> Vec<u64> {
    let offset = (worker * BATCHES_PER_WORKER + batch) * BATCH;
    (offset..offset + BATCH)
        .map(|i| mix64(i) % 1_000_000)
        .filter(|user| user % (tenant as u64 + 1) == 0)
        .collect()
}

fn main() {
    let config = SetSketchConfig::example_16bit();

    // --- Construction: the builder is the store's one front door. ----
    let store = SketchStore::builder(move || SetSketch2::new(config, 42))
        .shards(8)
        .queue_depth(256)
        .writer_threads(2)
        .build_shared();

    // --- Ingest, pipelined: 8 producers enqueue, 2 writers apply. ----
    // Producers never touch a shard lock; full queues block them
    // (backpressure) instead of growing memory.
    let pipelined = Instant::now();
    let pipeline = store.clone().pipeline();
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let pipeline = &pipeline;
            scope.spawn(move || {
                for batch in 0..BATCHES_PER_WORKER {
                    for (t, tenant) in TENANTS.iter().enumerate() {
                        pipeline.ingest(tenant, &tenant_events(worker, batch, t));
                    }
                }
            });
        }
    });
    pipeline.flush(); // every enqueued batch is applied past this point
    let pipelined = pipelined.elapsed();

    // --- The same workload, synchronously (the comparison path). -----
    // Scoped threads apply sketch updates themselves under shard locks;
    // idempotent + commutative inserts make the final states identical.
    let sync_store = SketchStore::builder(move || SetSketch2::new(config, 42))
        .shards(8)
        .build();
    let synchronous = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let sync_store = &sync_store;
            scope.spawn(move || {
                for batch in 0..BATCHES_PER_WORKER {
                    for (t, tenant) in TENANTS.iter().enumerate() {
                        sync_store.ingest(tenant, &tenant_events(worker, batch, t));
                    }
                }
            });
        }
    });
    let synchronous = synchronous.elapsed();

    for tenant in TENANTS {
        assert_eq!(
            store.get(tenant),
            sync_store.get(tenant),
            "pipelined and synchronous ingest must agree"
        );
    }
    println!(
        "ingested {} tenants on {} shards: pipelined {:.0} ms (2 writers) vs synchronous {:.0} ms — identical states",
        store.len(),
        store.shard_count(),
        pipelined.as_secs_f64() * 1e3,
        synchronous.as_secs_f64() * 1e3,
    );
    println!();

    // --- Queries. -----------------------------------------------------
    println!("{:<8} {:>12}", "tenant", "distinct");
    for tenant in TENANTS {
        let estimate = store.cardinality(tenant).expect("tenant exists");
        println!("{tenant:<8} {estimate:>12.0}");
    }
    println!();

    // Pairwise similarity: "search" holds every user, tenant t holds the
    // multiples of t+1, so J(search, tenant_t) = 1 / (t + 1).
    for (t, tenant) in TENANTS.iter().enumerate().skip(1) {
        let joint = store
            .joint("search", tenant)
            .expect("compatible by construction");
        println!(
            "J(search, {tenant}) = {:.3}   (expected {:.3}, intersection ≈ {:.0})",
            joint.jaccard,
            1.0 / (t as f64 + 1.0),
            joint.intersection,
        );
    }
    println!();

    // All-pairs sweep, exact vs the §3.3 approximate-quantity mode.
    let exact = store.all_pairs(0.4).expect("compatible");
    let approx = store
        .all_pairs_with(0.4, &QueryOptions::default().approximate())
        .expect("compatible");
    println!("all_pairs(J >= 0.4), exact verification:");
    for pair in &exact {
        println!(
            "  {} ~ {}  J = {:.3}",
            pair.left, pair.right, pair.quantities.jaccard
        );
    }
    println!("same sweep, Verification::Approximate (D₀-based, §3.3):");
    for pair in &approx {
        println!(
            "  {} ~ {}  J ≈ {:.3}",
            pair.left, pair.right, pair.quantities.jaccard
        );
    }
    println!();

    // Union across all tenants == "search" (everything else is a subset).
    let union = store
        .union_cardinality(&TENANTS)
        .expect("tenants are mergeable");
    let search = store.cardinality("search").expect("tenant exists");
    println!("union of all tenants: {union:.0} (search alone: {search:.0})");

    // --- Snapshot shipping. -------------------------------------------
    let snapshot = store.snapshot();
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    println!(
        "snapshot: {} sketches, {} bytes of JSON",
        snapshot.len(),
        json.len()
    );
    let restored: sketch_store::StoreSnapshot<SetSketch2> =
        serde_json::from_str(&json).expect("snapshot deserializes");
    let store2 = SketchStore::from_snapshot(restored, move || SetSketch2::new(config, 42));
    let j = store2
        .jaccard("search", "ads")
        .expect("restored store answers");
    println!("restored store answers J(search, ads) = {j:.3}");
}
