//! A replicated sketch service: three OS processes, one logical store.
//!
//! Run with `cargo run --release --example store_service`. The parent
//! process re-spawns itself three times (`store_service node <id>`);
//! each child recovers a durable store from its own scratch directory
//! (logging the [`sketch_store::RecoveryReport`] to stderr on
//! startup), binds a TCP server on an ephemeral loopback port, prints
//! `PORT <n>`, learns its peers' addresses over stdin, and gossips:
//! version-pruned delta pulls plus a rotating full anti-entropy pull,
//! every 50 ms. A node that comes up *empty* first pulls a peer's
//! checkpoint image (checkpoint-shipping bootstrap) and logs the
//! resulting [`sketch_cluster::BootstrapReport`] — the same path a
//! wiped replacement node takes in production. The parent then acts
//! as the client:
//!
//! 1. **Routed writes** — each tenant's events go to the tenant's
//!    consistent-hash owner only, as length-prefixed `Ingest` frames.
//!    A local reference store is fed the identical stream.
//! 2. **Convergence check, bit-for-bit** — the parent polls each node
//!    with a full `DeltaRequest` and compares every key's compact
//!    register payload against the reference store's. Replication is
//!    done when all three replicas ship byte-identical registers.
//! 3. **Cluster queries** — cardinality and Jaccard answered by single
//!    replicas; top-k similarity and union cardinality fanned out over
//!    all of them and merged client-side.
//! 4. **Clean shutdown** — a `Shutdown` frame per node; every child
//!    joins its threads and exits 0.
//!
//! Tenant t records users divisible by t + 1, so the expected overlap
//! structure is known exactly: J(search, tenant_t) = 1 / (t + 1).

use setsketch::{SetSketch2, SetSketchConfig};
use sketch_cluster::{
    BootstrapConfig, ClusterClient, ClusterNode, HashRing, Message, NodeId, Resilient, TcpServer,
    TcpTransport, Transport,
};
use sketch_core::CompactSketch;
use sketch_rand::mix64;
use sketch_store::SketchStore;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: [&str; 4] = ["search", "ads", "mail", "maps"];
const NODES: u32 = 3;
const EVENTS: u64 = 40_000;
const GOSSIP_EVERY: Duration = Duration::from_millis(50);

fn config() -> SetSketchConfig {
    SetSketchConfig::example_16bit()
}

fn store() -> SketchStore<SetSketch2> {
    let config = config();
    SketchStore::builder(move || SetSketch2::new(config, 42))
        .shards(8)
        .build()
}

/// A durable replica store: write-ahead logged into `dir`, recovered
/// from whatever the directory already holds.
fn durable_store(dir: &Path) -> SketchStore<SetSketch2> {
    let config = config();
    SketchStore::builder(move || SetSketch2::new(config, 42))
        .shards(8)
        .durable_dir(dir)
        .build()
}

/// Tenant t records users whose id is divisible by (t + 1): nested
/// subsets with known overlaps.
fn tenant_events(tenant: usize, range: std::ops::Range<u64>) -> Vec<u64> {
    range
        .map(|i| mix64(i) % 1_000_000)
        .filter(|user| user % (tenant as u64 + 1) == 0)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("node") => run_node(args[2].parse().expect("node id")),
        _ => run_cluster(),
    }
}

// --- Child: one replica process. ------------------------------------

fn run_node(id: NodeId) {
    // Each replica owns a scratch durable directory; a restart from
    // the same directory would replay the log, a wiped one bootstraps.
    let dir =
        std::env::temp_dir().join(format!("sketch-store-service-{}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create durable dir");
    let store = durable_store(&dir);
    let report = store
        .recovery_report()
        .expect("durable store has a report")
        .clone();
    eprintln!("node {id}: recovery: {report}");

    let peers: Vec<NodeId> = (0..NODES).collect();
    let node = Arc::new(ClusterNode::new(id, peers, store));
    let mut server = TcpServer::serve(Arc::clone(&node), "127.0.0.1:0").expect("bind loopback");

    // Handshake: tell the parent our port, learn everyone else's.
    println!("PORT {}", server.local_addr().port());
    std::io::stdout().flush().expect("flush port line");
    let mut line = String::new();
    std::io::stdin()
        .read_line(&mut line)
        .expect("read peer map");
    let transport = Arc::new(TcpTransport::new());
    for pair in line
        .trim()
        .strip_prefix("PEERS ")
        .expect("PEERS line")
        .split(' ')
    {
        let (peer, port) = pair.split_once(':').expect("id:port");
        let peer: NodeId = peer.parse().expect("peer id");
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("addr");
        transport.add_peer(peer, addr);
    }

    // Gossip in the background — with the bootstrap preamble, so an
    // empty store first ships a peer's checkpoint — and park until a
    // Shutdown frame arrives. A watcher logs the bootstrap report the
    // moment the preamble completes.
    let resilient = Arc::new(Resilient::new(transport));
    server.start_gossip_with_bootstrap(
        Arc::clone(&node),
        Arc::clone(&resilient),
        GOSSIP_EVERY,
        BootstrapConfig::default(),
    );
    let watched = Arc::clone(&node);
    std::thread::spawn(move || loop {
        if let Some(report) = watched.last_bootstrap() {
            eprintln!("node {id}: {report}");
            return;
        }
        std::thread::sleep(GOSSIP_EVERY);
    });
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// --- Parent: spawn, ingest, verify, query, shut down. ---------------

fn spawn_nodes() -> (Vec<Child>, Vec<u16>) {
    let exe = std::env::current_exe().expect("own path");
    let mut children = Vec::new();
    let mut ports = Vec::new();
    for id in 0..NODES {
        let mut child = Command::new(&exe)
            .args(["node", &id.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn node process");
        let stdout = child.stdout.as_mut().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("PORT line");
        let port: u16 = line
            .trim()
            .strip_prefix("PORT ")
            .expect("PORT line")
            .parse()
            .expect("port number");
        children.push(child);
        ports.push(port);
    }
    // Everyone knows everyone: ship the full peer map to each child.
    let map: Vec<String> = (0..NODES as usize)
        .map(|i| format!("{i}:{}", ports[i]))
        .collect();
    let map = format!("PEERS {}\n", map.join(" "));
    for child in &mut children {
        child
            .stdin
            .as_mut()
            .expect("child stdin")
            .write_all(map.as_bytes())
            .expect("send peer map");
    }
    (children, ports)
}

/// Pulls every node's full state and compares each key's compact
/// payload against the reference — returns true when all three
/// replicas are byte-identical to it.
fn replicas_match(transport: &TcpTransport, reference: &BTreeMap<String, Vec<u8>>) -> bool {
    for node in 0..NODES {
        let response = match transport.request(node, &Message::DeltaRequest { after: 0 }) {
            Ok(response) => response,
            Err(_) => return false,
        };
        let Message::Delta { entries, .. } = response else {
            return false;
        };
        if entries.len() != reference.len() {
            return false;
        }
        for entry in &entries {
            if reference.get(&entry.key) != Some(&entry.payload) {
                return false;
            }
        }
    }
    true
}

fn run_cluster() {
    let (mut children, ports) = spawn_nodes();
    let transport = Arc::new(TcpTransport::new());
    for (id, &port) in ports.iter().enumerate() {
        transport.add_peer(id as NodeId, format!("127.0.0.1:{port}").parse().unwrap());
    }
    let ids: Vec<NodeId> = (0..NODES).collect();
    let ring = HashRing::new(&ids);
    let reference = store();
    let client = ClusterClient::new(Arc::clone(&transport), ring, reference.empty_sketch());

    // --- Routed ingest: each tenant lives on its ring owner. ---------
    let started = Instant::now();
    for (t, tenant) in TENANTS.iter().enumerate() {
        println!("tenant {tenant:<8} -> node {}", client.owner(tenant));
        // Ship in batches, as a real event pipeline would.
        for chunk_start in (0..EVENTS).step_by(8_000) {
            let events = tenant_events(t, chunk_start..(chunk_start + 8_000).min(EVENTS));
            client.ingest(tenant, &events).expect("routed ingest");
            reference.ingest(tenant, &events);
        }
    }
    println!(
        "ingested {} tenants across {NODES} processes in {:.0} ms",
        TENANTS.len(),
        started.elapsed().as_secs_f64() * 1e3,
    );

    // --- Wait for gossip to replicate everything, bit-for-bit. ------
    let expected: BTreeMap<String, Vec<u8>> = TENANTS
        .iter()
        .map(|&tenant| {
            let sketch = reference.get(tenant).expect("tenant ingested");
            (tenant.to_owned(), sketch.compress())
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    let converge = Instant::now();
    while !replicas_match(&transport, &expected) {
        assert!(
            Instant::now() < deadline,
            "cluster failed to converge in 30 s"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(
        "all {NODES} replicas byte-identical to the reference after {:.0} ms of gossip",
        converge.elapsed().as_secs_f64() * 1e3,
    );
    println!();

    // --- Queries against the cluster. --------------------------------
    println!("{:<8} {:>12} {:>12}", "tenant", "cluster", "reference");
    for tenant in TENANTS {
        let remote = client.cardinality(tenant).expect("replica answers");
        let local = reference.cardinality(tenant).expect("tenant exists");
        assert_eq!(remote, local, "replicated estimate must match exactly");
        println!("{tenant:<8} {remote:>12.0} {local:>12.0}");
    }
    println!();
    for (t, tenant) in TENANTS.iter().enumerate().skip(1) {
        let j = client.jaccard("search", tenant).expect("pair answers");
        println!(
            "J(search, {tenant}) = {j:.3}   (expected {:.3})",
            1.0 / (t as f64 + 1.0)
        );
    }
    let neighbors = client.similar_keys("search", 3, 0.3).expect("fan-out");
    let ranked: Vec<String> = neighbors
        .iter()
        .map(|n| format!("{} ({:.3})", n.key, n.jaccard()))
        .collect();
    println!(
        "top-3 neighbors of search, merged from all replicas: {}",
        ranked.join(", ")
    );
    let union = client.union_cardinality(&TENANTS).expect("union fan-out");
    let search = client.cardinality("search").expect("tenant exists");
    println!("union of all tenants: {union:.0} (search alone: {search:.0})");
    println!();

    // --- Clean shutdown: one frame per node, children exit 0. --------
    for node in 0..NODES {
        client.shutdown_node(node).expect("shutdown frame");
    }
    for (id, mut child) in children.drain(..).enumerate() {
        let status = child.wait().expect("child exits");
        assert!(status.success(), "node {id} exited with {status}");
    }
    println!("all {NODES} node processes shut down cleanly");
}
