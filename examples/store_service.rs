//! A miniature sketch-serving service on top of [`sketch_store`].
//!
//! The shape mirrors `streaming_shards`, one layer up: instead of one
//! sketch per worker, a fleet of ingest workers feeds *named* sketches
//! (one per tenant) in a shared concurrent store, while the query side
//! answers cardinality, similarity and union questions and ships a
//! point-in-time snapshot of the whole store as JSON.
//!
//! Run with `cargo run --release --example store_service`.

use setsketch::{SetSketch2, SetSketchConfig};
use sketch_rand::mix64;
use sketch_store::SketchStore;

const TENANTS: [&str; 4] = ["search", "ads", "mail", "maps"];
const WORKERS: u64 = 8;
const BATCHES_PER_WORKER: u64 = 40;
const BATCH: u64 = 2_000;

fn main() {
    let config = SetSketchConfig::example_16bit();
    let store = SketchStore::with_shards(8, move || SetSketch2::new(config, 42));

    // --- Ingest: 8 workers, all writing every tenant concurrently. ----
    // Tenants overlap: "ads" sees a subset of "search" users, etc.
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let store = &store;
            scope.spawn(move || {
                for batch in 0..BATCHES_PER_WORKER {
                    let offset = (worker * BATCHES_PER_WORKER + batch) * BATCH;
                    for (t, tenant) in TENANTS.iter().enumerate() {
                        // Tenant t records users whose id is divisible by
                        // (t + 1): nested subsets with known overlaps.
                        let events: Vec<u64> = (offset..offset + BATCH)
                            .map(|i| mix64(i) % 1_000_000)
                            .filter(|user| user % (t as u64 + 1) == 0)
                            .collect();
                        store.ingest(tenant, &events);
                    }
                }
            });
        }
    });

    println!(
        "ingested {} tenants on {} shards",
        store.len(),
        store.shard_count()
    );
    println!();

    // --- Queries. -----------------------------------------------------
    println!("{:<8} {:>12}", "tenant", "distinct");
    for tenant in TENANTS {
        let estimate = store.cardinality(tenant).expect("tenant exists");
        println!("{tenant:<8} {estimate:>12.0}");
    }
    println!();

    // Pairwise similarity: "search" holds every user, tenant t holds the
    // multiples of t+1, so J(search, tenant_t) = 1 / (t + 1).
    for (t, tenant) in TENANTS.iter().enumerate().skip(1) {
        let joint = store
            .joint("search", tenant)
            .expect("compatible by construction");
        println!(
            "J(search, {tenant}) = {:.3}   (expected {:.3}, intersection ≈ {:.0})",
            joint.jaccard,
            1.0 / (t as f64 + 1.0),
            joint.intersection,
        );
    }
    println!();

    // Union across all tenants == "search" (everything else is a subset).
    let union = store
        .union_cardinality(&TENANTS)
        .expect("tenants are mergeable");
    let search = store.cardinality("search").expect("tenant exists");
    println!("union of all tenants: {union:.0} (search alone: {search:.0})");

    // --- Snapshot shipping. -------------------------------------------
    let snapshot = store.snapshot();
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    println!(
        "snapshot: {} sketches, {} bytes of JSON",
        snapshot.len(),
        json.len()
    );
    let restored: sketch_store::StoreSnapshot<SetSketch2> =
        serde_json::from_str(&json).expect("snapshot deserializes");
    let store2 = SketchStore::from_snapshot(restored, move || SetSketch2::new(config, 42));
    let j = store2
        .jaccard("search", "ads")
        .expect("restored store answers");
    println!("restored store answers J(search, ads) = {j:.3}");
}
