//! Quickstart: counting, similarity and distributed merging with SetSketch.
//!
//! Run with `cargo run --release --example quickstart`.

use setsketch::{SetSketch1, SetSketchConfig};

fn main() {
    // The paper's §2.3 example configuration: 4096 two-byte registers
    // (8 kB), base b = 1.001, good for cardinalities up to 1e18 with
    // ~1.56 % standard error and MinHash-grade similarity estimation.
    let config = SetSketchConfig::example_16bit();
    println!(
        "config: m={} b={} q={} -> {} bytes packed, expected error {:.2}%",
        config.m(),
        config.b(),
        config.q(),
        config.packed_bytes(),
        config.cardinality_rsd() * 100.0
    );

    // Two shards of one logical stream; the same seed makes them mergeable.
    let mut shard_a = SetSketch1::new(config, 42);
    let mut shard_b = SetSketch1::new(config, 42);

    // Record 60k user ids on shard A and 60k on shard B with 20k overlap.
    for user in 0..60_000u64 {
        shard_a.insert_u64(user);
    }
    for user in 40_000..100_000u64 {
        shard_b.insert_u64(user);
    }

    // Cardinality per shard.
    println!(
        "shard A ~ {:.0} distinct (true 60000)",
        shard_a.estimate_cardinality()
    );
    println!(
        "shard B ~ {:.0} distinct (true 60000)",
        shard_b.estimate_cardinality()
    );

    // Joint quantities straight from the two sketch states.
    let joint = shard_a.estimate_joint(&shard_b).expect("same config");
    println!(
        "jaccard ~ {:.4} (true {:.4})",
        joint.quantities.jaccard,
        20_000.0 / 100_000.0
    );
    println!(
        "intersection ~ {:.0} (true 20000), union ~ {:.0} (true 100000)",
        joint.quantities.intersection, joint.quantities.union_size
    );

    // Distributed union: merge the shards.
    let global = shard_a.merged(&shard_b).expect("same config");
    println!(
        "global ~ {:.0} distinct (true 100000)",
        global.estimate_cardinality()
    );

    // Inserts are idempotent: replaying a shard changes nothing.
    let mut replayed = global.clone();
    for user in 0..60_000u64 {
        replayed.insert_u64(user);
    }
    assert_eq!(replayed, global);
    println!("replaying shard A left the merged state unchanged (idempotent)");
}
