//! Distributed aggregation pipeline with binary sketch shipping.
//!
//! A realistic deployment shape: worker shards consume partial streams,
//! periodically ship their *binary* sketch states to a coordinator, which
//! merges them and answers global queries. Demonstrates the compact codec
//! (paper §2.3 memory footprint), merge-from-bytes, and that estimation
//! quality is unaffected by the number of checkpoints or the sharding.
//!
//! Run with `cargo run --release --example streaming_shards`.

use setsketch::{SetSketch2, SetSketchConfig};
use sketch_rand::mix64;

/// One worker shard: records its slice of the stream and emits binary
/// checkpoints.
struct Shard {
    sketch: SetSketch2,
    recorded: u64,
}

impl Shard {
    fn new(config: SetSketchConfig) -> Self {
        Self {
            // All shards share seed 7 so the coordinator can merge them.
            sketch: SetSketch2::new(config, 7),
            recorded: 0,
        }
    }

    /// Consumes a batch of events and returns a binary checkpoint.
    fn consume_and_checkpoint(&mut self, events: impl Iterator<Item = u64>) -> Vec<u8> {
        for event in events {
            self.sketch.insert_u64(event);
            self.recorded += 1;
        }
        self.sketch.to_bytes().to_vec()
    }
}

fn main() {
    let config = SetSketchConfig::example_16bit();
    const SHARDS: usize = 8;
    const ROUNDS: u64 = 5;
    const EVENTS_PER_ROUND: u64 = 20_000;

    let mut shards: Vec<Shard> = (0..SHARDS).map(|_| Shard::new(config)).collect();
    let mut coordinator = SetSketch2::new(config, 7);
    let mut shipped_bytes = 0usize;

    // Events are user ids; each id hashes to a home shard, but 30 % of
    // traffic is duplicated onto a random second shard (at-least-once
    // delivery) — idempotent inserts absorb the duplication.
    let mut true_users = std::collections::HashSet::new();
    for round in 0..ROUNDS {
        for (index, shard) in shards.iter_mut().enumerate() {
            let base = round * EVENTS_PER_ROUND;
            let events = (0..EVENTS_PER_ROUND).filter_map(|i| {
                let user = mix64(base + i) % 500_000;
                let home = (mix64(user) % SHARDS as u64) as usize;
                let duplicate = (mix64(user ^ 0xABCD) % 10 < 3)
                    && (mix64(user ^ 0x1234) % SHARDS as u64) as usize == index;
                (home == index || duplicate).then_some(user)
            });
            let checkpoint = shard.consume_and_checkpoint(events);
            shipped_bytes += checkpoint.len();
            // Coordinator merges the restored checkpoint.
            let restored = SetSketch2::from_bytes(&checkpoint).expect("valid checkpoint");
            coordinator.merge(&restored).expect("same config and seed");
        }
        for i in 0..EVENTS_PER_ROUND {
            true_users.insert(mix64(round * EVENTS_PER_ROUND + i) % 500_000);
        }
        println!(
            "round {round}: coordinator sees ~{:.0} distinct users (true {})",
            coordinator.estimate_cardinality(),
            true_users.len()
        );
    }

    let estimate = coordinator.estimate_cardinality();
    let truth = true_users.len() as f64;
    println!(
        "\nfinal: estimate {estimate:.0}, true {truth}, error {:+.2}%",
        (estimate - truth) / truth * 100.0
    );
    println!(
        "shipped {} checkpoints totalling {} kB ({} bytes per checkpoint)",
        SHARDS * ROUNDS as usize,
        shipped_bytes / 1024,
        config.packed_bytes() + 41,
    );
    assert!(((estimate - truth) / truth).abs() < 0.05);

    // Per-shard traffic overlap, a query only joint estimation answers.
    let a = &shards[0].sketch;
    let b = &shards[1].sketch;
    let joint = a.estimate_joint(b).expect("compatible");
    println!(
        "shard 0 vs shard 1: ~{:.0} users in common (duplicated traffic), jaccard {:.3}",
        joint.quantities.intersection, joint.quantities.jaccard
    );
}
