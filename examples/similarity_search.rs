//! Near-duplicate search with SetSketch signatures and banding LSH.
//!
//! Paper §3.3: SetSketch registers are locality-sensitive, so they can
//! replace MinHash in LSH indexes at a fraction of the space (2-byte
//! registers at b = 1.001 versus 8-byte MinHash components). This example
//! builds a small corpus of shingled "documents", indexes their sketches,
//! and answers nearest-neighbor queries with LSH candidate retrieval plus
//! precise joint-estimation filtering.
//!
//! Run with `cargo run --release --example similarity_search`.

use lsh::{collision_curve, LshIndex};
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_rand::mix64;

/// A synthetic document: a set of shingle hashes. Documents within one
/// "family" share a fraction of shingles with the family prototype.
fn document(family: u64, member: u64, shingles: u64, mutation: f64) -> Vec<u64> {
    (0..shingles)
        .map(|i| {
            let mutated =
                mix64(family * 1000 + member * 31 + i) % 1000 < (mutation * 1000.0) as u64;
            if mutated {
                mix64((family << 40) ^ (member << 20) ^ i ^ 0xabcdef)
            } else {
                mix64((family << 40) | i)
            }
        })
        .collect()
}

fn main() {
    let config = SetSketchConfig::example_16bit();
    const FAMILIES: u64 = 40;
    const MEMBERS: u64 = 5;
    const SHINGLES: u64 = 3000;

    // Banding: 512 bands x 8 rows over the 4096 registers. The S-curve
    // threshold sits near (1/512)^(1/8) ~ 0.46 register-collision rate.
    let index: LshIndex<(u64, u64)> = LshIndex::new(512, 8).expect("valid banding");
    println!(
        "S-curve: P(candidate | J=0.1) ~ {:.3}, P(candidate | J=0.8) ~ {:.3}",
        collision_curve(0.1, 512, 8),
        collision_curve(0.8, 512, 8)
    );

    // Index the corpus.
    let mut sketches = std::collections::HashMap::new();
    for family in 0..FAMILIES {
        for member in 0..MEMBERS {
            let mut sketch = SetSketch1::new(config, 99);
            for shingle in document(family, member, SHINGLES, 0.15) {
                sketch.insert_u64(shingle);
            }
            index.insert((family, member), sketch.registers());
            sketches.insert((family, member), sketch);
        }
    }
    println!("indexed {} documents", FAMILIES * MEMBERS);

    // Query: a fresh mutation of family 7.
    let mut query = SetSketch1::new(config, 99);
    for shingle in document(7, 999, SHINGLES, 0.2) {
        query.insert_u64(shingle);
    }

    let candidates = index.query(query.registers());
    println!("LSH returned {} candidates", candidates.len());

    // Filter candidates with the precise joint estimator (paper §3.3:
    // "for filtering, the presented more precise joint estimation approach
    // can be used ... to reduce the false positive rate").
    let mut scored: Vec<((u64, u64), f64)> = candidates
        .iter()
        .map(|id| {
            let joint = query
                .estimate_joint(&sketches[id])
                .expect("compatible sketches");
            (*id, joint.quantities.jaccard)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));

    println!("top matches:");
    for (id, jaccard) in scored.iter().take(5) {
        println!(
            "  family {:>2} member {}: jaccard ~ {:.3}",
            id.0, id.1, jaccard
        );
    }

    // All top hits must come from family 7.
    let false_family = scored
        .iter()
        .take(MEMBERS as usize)
        .filter(|((family, _), _)| *family != 7)
        .count();
    assert_eq!(false_family, 0, "query family should dominate the top hits");
    println!("all top-{MEMBERS} hits are from the query's family");
}
