//! Filling the gap: sweeping the base b between HyperLogLog and MinHash.
//!
//! SetSketch's base parameter continuously trades memory (larger b needs
//! fewer register bits) against joint-estimation accuracy (smaller b
//! approaches MinHash). This example records the same pair of sets at
//! several bases and prints, per base: packed sketch size, cardinality
//! error, and Jaccard estimation error — the "gap" between HLL and
//! MinHash made visible (paper §1.1, §2.3, Figure 2).
//!
//! Run with `cargo run --release --example tuning`.

use minhash::MinHash;
use setsketch::{SetSketch1, SetSketchConfig};

fn main() {
    const N: u64 = 50_000;
    const OVERLAP: u64 = 25_000; // J = 1/3
    let true_jaccard = OVERLAP as f64 / (2 * N - OVERLAP) as f64;
    let runs = 15u64;

    println!("true jaccard = {true_jaccard:.4}, m = 4096 registers everywhere\n");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "configuration", "bytes", "card. RMSE", "jaccard RMSE"
    );

    // Sweep bases from HLL-like to MinHash-like; q chosen per Lemma 5 for
    // n_max = 1e12.
    for &b in &[2.0f64, 1.2, 1.05, 1.02, 1.001] {
        let config =
            SetSketchConfig::recommended(4096, b, 1e12, 1e-6).expect("valid configuration");
        let (mut card_se, mut jac_se) = (0.0f64, 0.0f64);
        for seed in 0..runs {
            let offset = seed * 1_000_000_000;
            let mut u = SetSketch1::new(config, seed);
            let mut v = SetSketch1::new(config, seed);
            u.extend(offset..offset + N);
            v.extend(offset + N - OVERLAP..offset + 2 * N - OVERLAP);
            let joint = u.estimate_joint(&v).expect("compatible");
            card_se += ((u.estimate_cardinality() - N as f64) / N as f64).powi(2);
            jac_se += ((joint.quantities.jaccard - true_jaccard) / true_jaccard).powi(2);
        }
        println!(
            "SetSketch b={b:<10} {:>12} {:>13.2}% {:>13.2}%",
            config.packed_bytes(),
            (card_se / runs as f64).sqrt() * 100.0,
            (jac_se / runs as f64).sqrt() * 100.0,
        );
    }

    // MinHash reference: same m, 8-byte components.
    let (mut card_se, mut jac_se) = (0.0f64, 0.0f64);
    for seed in 0..runs {
        let offset = seed * 1_000_000_000;
        let mut u = MinHash::new(4096, seed);
        let mut v = MinHash::new(4096, seed);
        u.extend(offset..offset + N);
        v.extend(offset + N - OVERLAP..offset + 2 * N - OVERLAP);
        let joint = u.estimate_joint(&v).expect("compatible");
        card_se += ((u.estimate_cardinality() - N as f64) / N as f64).powi(2);
        jac_se += ((joint.jaccard - true_jaccard) / true_jaccard).powi(2);
    }
    println!(
        "{:<22} {:>12} {:>13.2}% {:>13.2}%",
        "MinHash (64-bit)",
        4096 * 8,
        (card_se / runs as f64).sqrt() * 100.0,
        (jac_se / runs as f64).sqrt() * 100.0,
    );

    println!(
        "\nb -> 1 approaches MinHash's similarity accuracy at 1/4 of its size;\n\
         b = 2 matches HyperLogLog's footprint (6-bit registers)."
    );
}
