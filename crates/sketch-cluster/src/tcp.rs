//! Real sockets: a frame-serving TCP server per node, and a
//! [`Transport`] that dials peers by address.
//!
//! Both sides speak the length-prefixed frame format from
//! [`wire`](crate::wire) over plain `std::net` TCP — no async runtime,
//! no external dependencies. Connections are short-lived: the
//! transport dials, writes one request frame, reads one response
//! frame, and hangs up. That keeps the server loop trivial (a thread
//! per live connection) and makes crash/restart behavior obvious; at
//! sketch scale the handshake cost is dwarfed by register payloads.
//!
//! Every socket the transport opens carries **deadlines**
//! ([`TcpTimeouts`]): connect, read and write each time out instead of
//! blocking forever, so one unresponsive peer (a SIGSTOPped process, a
//! blackholed route, a listener that accepts and then stalls) can
//! delay a caller by at most the configured deadline — it cannot wedge
//! the gossip loop. Layer [`Resilient`](crate::Resilient) on top for
//! retries and suspicion tracking.

use crate::bootstrap::BootstrapConfig;
use crate::error::ClusterError;
use crate::health::Resilient;
use crate::node::{ClusterNode, ClusterSketch};
use crate::transport::Transport;
use crate::wire::{read_frame, write_frame, FrameError, Message, NodeId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-socket deadlines for every exchange a [`TcpTransport`] makes.
///
/// Each phase of the exchange — dialing, writing the request frame,
/// reading the response frame — is bounded independently, so the worst
/// case against a fully unresponsive peer is the sum of the three, not
/// forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTimeouts {
    /// Deadline for establishing the connection.
    pub connect: Duration,
    /// Deadline for each blocking read on the socket.
    pub read: Duration,
    /// Deadline for each blocking write on the socket.
    pub write: Duration,
}

impl Default for TcpTimeouts {
    /// Five seconds per phase — generous against loaded peers, still
    /// bounded against dead ones.
    fn default() -> Self {
        TcpTimeouts {
            connect: Duration::from_secs(5),
            read: Duration::from_secs(5),
            write: Duration::from_secs(5),
        }
    }
}

impl TcpTimeouts {
    /// The same deadline for connect, read and write.
    pub fn uniform(deadline: Duration) -> Self {
        TcpTimeouts {
            connect: deadline,
            read: deadline,
            write: deadline,
        }
    }
}

/// A [`Transport`] that reaches peers over TCP, one connection per
/// exchange, every socket under [`TcpTimeouts`] deadlines.
#[derive(Default)]
pub struct TcpTransport {
    peers: RwLock<HashMap<NodeId, SocketAddr>>,
    timeouts: TcpTimeouts,
}

impl TcpTransport {
    /// An empty address book with default deadlines.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty address book with the given deadlines.
    pub fn with_timeouts(timeouts: TcpTimeouts) -> Self {
        TcpTransport {
            peers: RwLock::new(HashMap::new()),
            timeouts,
        }
    }

    /// The deadlines applied to every socket.
    pub fn timeouts(&self) -> TcpTimeouts {
        self.timeouts
    }

    /// Adds (or replaces) the address of `peer` — replacement is how a
    /// restarted node re-advertises itself under a new port.
    pub fn add_peer(&self, peer: NodeId, addr: SocketAddr) {
        self.peers.write().insert(peer, addr);
    }

    /// The known address of `peer`, if any.
    pub fn peer_addr(&self, peer: NodeId) -> Option<SocketAddr> {
        self.peers.read().get(&peer).copied()
    }
}

impl Transport for TcpTransport {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        let addr = self
            .peers
            .read()
            .get(&peer)
            .copied()
            .ok_or(ClusterError::UnknownPeer(peer))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.timeouts.connect)?;
        stream.set_read_timeout(Some(self.timeouts.read))?;
        stream.set_write_timeout(Some(self.timeouts.write))?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, message)?;
        Ok(read_frame(&mut stream)?)
    }
}

/// A node's serving half: accepts connections, answers request frames
/// with [`ClusterNode::handle`], and optionally runs the gossip timer.
///
/// Drop or [`shutdown`](Self::shutdown) stops the accept loop and the
/// gossip thread; a [`Message::Shutdown`] frame from any client does
/// the same remotely (the demo and CI use it to stop nodes cleanly).
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    gossip_handle: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`local_addr`](Self::local_addr)) and serves `node` on a
    /// background accept thread.
    pub fn serve<S: ClusterSketch>(
        node: Arc<ClusterNode<S>>,
        addr: impl ToSocketAddrs,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name(format!("cluster-accept-{}", node.id()))
            .spawn(move || accept_loop(listener, local_addr, node, accept_stop))?;
        Ok(TcpServer {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            gossip_handle: None,
        })
    }

    /// Starts the gossip thread: every `interval`, one
    /// [`gossip_tick`](ClusterNode::gossip_tick) over `transport` —
    /// any [`Transport`], so a [`TcpTransport`] can be wrapped in
    /// [`Resilient`](crate::Resilient) for retries and suspicion
    /// tracking. Transient per-peer failures are expected and ignored
    /// — the next tick retries.
    pub fn start_gossip<S: ClusterSketch, T: Transport + Send + Sync + 'static>(
        &mut self,
        node: Arc<ClusterNode<S>>,
        transport: Arc<T>,
        interval: Duration,
    ) {
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::Builder::new()
            .name(format!("cluster-gossip-{}", node.id()))
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let _ = node.gossip_tick(&*transport);
                }
            })
            .expect("spawn gossip thread");
        self.gossip_handle = Some(handle);
    }

    /// [`start_gossip`](Self::start_gossip) for a node that may be a
    /// cold replacement: before the tick loop starts, if the node
    /// [`needs_bootstrap`](ClusterNode::needs_bootstrap), the gossip
    /// thread first pulls a peer's checkpoint
    /// ([`ClusterNode::bootstrap`]), retrying on a fresh donor
    /// ordering every `interval` until some donor delivers — peers
    /// may still be coming up when a replaced node starts, so "no
    /// donor yet" is a condition to wait out, not an error. Delta
    /// sync then starts from the snapshot instead of from nothing.
    pub fn start_gossip_with_bootstrap<S: ClusterSketch, T: Transport + Send + Sync + 'static>(
        &mut self,
        node: Arc<ClusterNode<S>>,
        transport: Arc<Resilient<T>>,
        interval: Duration,
        config: BootstrapConfig,
    ) {
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::Builder::new()
            .name(format!("cluster-gossip-{}", node.id()))
            .spawn(move || {
                while node.needs_bootstrap() && !stop.load(Ordering::Acquire) {
                    if node.bootstrap(&transport, &config).is_ok() {
                        break;
                    }
                    std::thread::sleep(interval);
                }
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let _ = node.gossip_tick(&*transport);
                }
            })
            .expect("spawn gossip thread");
        self.gossip_handle = Some(handle);
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the gossip and accept threads and waits for both.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own — i.e. until some
    /// client sends a [`Message::Shutdown`] frame. This is how a node
    /// process parks its main thread while the accept and gossip
    /// threads do the work.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.gossip_handle.take() {
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.gossip_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<S: ClusterSketch>(
    listener: TcpListener,
    local_addr: SocketAddr,
    node: Arc<ClusterNode<S>>,
    stop: Arc<AtomicBool>,
) {
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let node = Arc::clone(&node);
        let conn_stop = Arc::clone(&stop);
        if let Ok(handle) = std::thread::Builder::new()
            .name(format!("cluster-conn-{}", node.id()))
            .spawn(move || serve_connection(stream, local_addr, &node, &conn_stop))
        {
            workers.push(handle);
        }
        workers.retain(|handle| !handle.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// Serves one connection until the client hangs up, a frame is
/// unrecoverable, or a [`Message::Shutdown`] arrives (which also stops
/// the whole server).
fn serve_connection<S: ClusterSketch>(
    mut stream: TcpStream,
    local_addr: SocketAddr,
    node: &ClusterNode<S>,
    stop: &AtomicBool,
) {
    stream.set_nodelay(true).ok();
    loop {
        let request = match read_frame(&mut stream) {
            Ok(message) => message,
            // Clean EOF or connection reset: the client is done.
            Err(FrameError::Io(_)) => return,
            // Malformed frame: report it and hang up — framing is
            // unrecoverable once the byte stream is off the rails. A
            // handshake mismatch (wrong magic, other protocol version)
            // gets the dedicated Unsupported code so old clients see a
            // typed refusal rather than a generic parse failure.
            Err(FrameError::Wire(error)) => {
                let code = if error.is_handshake_mismatch() {
                    crate::wire::ErrorCode::Unsupported
                } else {
                    crate::wire::ErrorCode::BadRequest
                };
                let reply = Message::Error {
                    code,
                    detail: error.to_string(),
                };
                let _ = write_frame(&mut stream, &reply);
                return;
            }
        };
        if matches!(request, Message::Shutdown) {
            let _ = write_frame(&mut stream, &Message::Ack);
            stop.store(true, Ordering::Release);
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(local_addr);
            return;
        }
        let response = node.handle(request);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}
