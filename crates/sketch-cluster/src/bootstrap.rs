//! Node bootstrap: checkpoint shipping for total-state loss.
//!
//! Delta sync and anti-entropy (see [`ClusterNode`]) assume the node
//! still *has* a store to reconcile. A replaced node — wiped disk,
//! fresh container, new machine under an old identity — has nothing,
//! and re-filling it one gossip full-pull at a time costs a full
//! state transfer **per peer**. Bootstrap instead ships one peer's
//! checkpoint image once:
//!
//! 1. **detect** — [`ClusterNode::needs_bootstrap`] is true when the
//!    local store is empty (cold start, or recovery found nothing);
//! 2. **pick a donor** — [`ClusterNode::bootstrap`] orders peers by
//!    [`Resilient`] health ([`Resilient::healthy_first`]) so a peer
//!    that just timed out is tried last, not first;
//! 3. **stream** — repeated [`Message::SnapshotRequest`] →
//!    [`Message::SnapshotChunk`] exchanges pull the donor's
//!    checkpoint image in CRC-validated, size-bounded chunks. Each
//!    chunk is an independent request/response, so a transport blip
//!    retries **that chunk** ([`BootstrapConfig::max_chunk_retries`]),
//!    not the whole stream, and a donor that re-exported mid-stream
//!    (its id changed) restarts accumulation instead of splicing two
//!    images;
//! 4. **install** — the image goes through
//!    [`install_checkpoint`](sketch_store::SketchStore::install_checkpoint),
//!    which validates every frame and payload *before* mutating
//!    anything: a truncated or bit-flipped image leaves the store
//!    exactly as it was, and the next donor is tried;
//! 5. **hand off** — the donor's write epoch becomes its high-water
//!    mark and (by default) every other peer's current epoch is
//!    probed and adopted, so the first sync rounds ship only writes
//!    newer than the snapshot. Keys that *only* a non-donor peer
//!    holds arrive through the rotating anti-entropy full pull — the
//!    standing repair channel, now doing bounded catch-up work
//!    instead of the whole transfer.
//!
//! Because sketch union merge is idempotent and commutative, none of
//! this needs coordination: installing a stale snapshot and then
//! delta-syncing converges to the same state as any other order.

use crate::error::ClusterError;
use crate::health::Resilient;
use crate::node::{ClusterNode, ClusterSketch};
use crate::transport::Transport;
use crate::wire::{Message, NodeId};
use sketch_math::crc32;

/// Hard ceiling on the chunk size a donor will serve, whatever the
/// requester asks for — keeps one snapshot frame far below the wire
/// frame limit and bounds per-exchange memory.
pub const MAX_SNAPSHOT_CHUNK_BYTES: usize = 4 << 20;

/// Default requested chunk size: big enough to amortize the exchange
/// round-trip, small enough that a retried chunk is cheap.
pub const DEFAULT_SNAPSHOT_CHUNK_BYTES: u32 = 256 * 1024;

/// Tuning knobs for one bootstrap attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// Requested bytes per [`Message::SnapshotChunk`] (the donor caps
    /// this at [`MAX_SNAPSHOT_CHUNK_BYTES`]).
    pub chunk_bytes: u32,
    /// How many times one chunk may fail (transport error or CRC
    /// mismatch) before the donor is abandoned.
    pub max_chunk_retries: u32,
    /// Donor-side freshness bound: serve the newest on-disk
    /// checkpoint only while the donor's write counter has advanced
    /// at most this far past it; otherwise the donor sweeps a fresh
    /// image. Larger values favor cheap disk serves, smaller values
    /// favor fresher images (the delta tail covers the gap either
    /// way).
    pub max_lag: u64,
    /// After installing, probe every non-donor peer's write epoch and
    /// adopt it as that peer's high-water mark, so the first sync
    /// rounds do not re-pull state the snapshot already covered.
    /// Keys unique to a non-donor peer then arrive via the rotating
    /// anti-entropy full pull. Disable to delta-pull every peer from
    /// zero instead (more bytes, no reliance on anti-entropy).
    pub fast_forward_peers: bool,
}

impl Default for BootstrapConfig {
    /// 256 KiB chunks, 3 retries per chunk, 1024-write checkpoint
    /// lag, fast-forward on.
    fn default() -> Self {
        BootstrapConfig {
            chunk_bytes: DEFAULT_SNAPSHOT_CHUNK_BYTES,
            max_chunk_retries: 3,
            max_lag: 1024,
            fast_forward_peers: true,
        }
    }
}

/// What one completed bootstrap accomplished — the replacement-node
/// counterpart of [`sketch_store::RecoveryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootstrapReport {
    /// The peer whose snapshot was installed.
    pub donor: NodeId,
    /// Peers tried before `donor` that failed (unreachable, refused,
    /// or shipped an image that did not validate), in trial order.
    pub failed_donors: Vec<NodeId>,
    /// Chunks successfully received and validated across the stream.
    pub chunks_received: u32,
    /// Chunks that succeeded only after at least one retry — each is
    /// a mid-stream failure the resume logic absorbed.
    pub chunks_resumed: u32,
    /// Times the donor superseded the stream mid-transfer (new
    /// snapshot id), forcing accumulation to restart from chunk 0.
    pub restarts: u32,
    /// Payload bytes received over the wire, including re-received
    /// chunks after stream restarts.
    pub bytes_received: u64,
    /// Size of the installed snapshot image.
    pub snapshot_bytes: u64,
    /// Keys the image carried into the local store.
    pub keys_installed: usize,
    /// The donor's write-counter value the snapshot covers — adopted
    /// as the donor's high-water mark.
    pub donor_epoch: u64,
    /// True when the image was union-merged into existing local state
    /// rather than bulk-installed into an empty store.
    pub merged: bool,
}

impl std::fmt::Display for BootstrapReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bootstrapped from node {}: {} keys ({} bytes, {} chunks) {} at donor epoch {}",
            self.donor,
            self.keys_installed,
            self.snapshot_bytes,
            self.chunks_received,
            if self.merged {
                "merged in"
            } else {
                "bulk-installed"
            },
            self.donor_epoch,
        )?;
        if self.chunks_resumed > 0 {
            write!(
                f,
                ", {} chunk(s) resumed after failure",
                self.chunks_resumed
            )?;
        }
        if self.restarts > 0 {
            write!(f, ", {} stream restart(s)", self.restarts)?;
        }
        if !self.failed_donors.is_empty() {
            write!(f, ", failed donors: {:?}", self.failed_donors)?;
        }
        Ok(())
    }
}

/// Stream-level accounting carried out of [`pull_snapshot`].
#[derive(Debug, Default, Clone, Copy)]
struct StreamStats {
    chunks_received: u32,
    chunks_resumed: u32,
    restarts: u32,
    bytes_received: u64,
}

/// Pulls one complete snapshot image from `donor`, chunk by chunk,
/// with per-chunk retry and stream-restart handling.
fn pull_snapshot(
    transport: &impl Transport,
    donor: NodeId,
    config: &BootstrapConfig,
) -> Result<(Vec<u8>, u64, StreamStats), ClusterError> {
    let mut buffer: Vec<u8> = Vec::new();
    let mut snapshot_id = 0u64;
    let mut chunk = 0u32;
    let mut stats = StreamStats::default();
    let mut failures_on_chunk = 0u32;
    loop {
        let request = Message::SnapshotRequest {
            snapshot_id,
            chunk,
            chunk_bytes: config.chunk_bytes,
            max_lag: config.max_lag,
        };
        let response = match transport.request(donor, &request) {
            Ok(response) => response,
            // Link failure: re-request the same chunk — this is the
            // resume path, not a restart of the stream.
            Err(ClusterError::Transport(detail)) => {
                failures_on_chunk += 1;
                if failures_on_chunk > config.max_chunk_retries {
                    return Err(ClusterError::Transport(detail));
                }
                continue;
            }
            Err(other) => return Err(other),
        };
        match response {
            Message::SnapshotChunk {
                snapshot_id: id,
                epoch,
                total_bytes,
                chunk: got,
                total_chunks,
                crc,
                data,
            } => {
                if id != snapshot_id && got == 0 {
                    // The donor started (or superseded) the stream:
                    // a fresh export always begins at chunk 0, and
                    // anything accumulated belongs to the old image.
                    if snapshot_id != 0 {
                        stats.restarts += 1;
                    }
                    buffer.clear();
                    snapshot_id = id;
                    chunk = 0;
                }
                if id != snapshot_id || got != chunk {
                    // A stale frame — an old stream's chunk or a
                    // reordered response — re-request the expected
                    // chunk like any other per-chunk failure.
                    failures_on_chunk += 1;
                    if failures_on_chunk > config.max_chunk_retries {
                        return Err(ClusterError::Protocol(format!(
                            "snapshot stream kept answering chunk {got} of stream {id} \
                             when chunk {chunk} of stream {snapshot_id} was requested"
                        )));
                    }
                    continue;
                }
                if crc32(&data) != crc {
                    // Corruption in flight: treat like a link failure
                    // and re-request the same chunk.
                    failures_on_chunk += 1;
                    if failures_on_chunk > config.max_chunk_retries {
                        return Err(ClusterError::BadPayload(format!(
                            "snapshot chunk {chunk} failed CRC validation repeatedly"
                        )));
                    }
                    continue;
                }
                if failures_on_chunk > 0 {
                    stats.chunks_resumed += 1;
                    failures_on_chunk = 0;
                }
                stats.chunks_received += 1;
                stats.bytes_received += data.len() as u64;
                buffer.extend_from_slice(&data);
                chunk += 1;
                if chunk >= total_chunks {
                    if buffer.len() as u64 != total_bytes {
                        return Err(ClusterError::BadPayload(format!(
                            "snapshot stream ended with {} bytes, donor announced {total_bytes}",
                            buffer.len()
                        )));
                    }
                    return Ok((buffer, epoch, stats));
                }
            }
            Message::Error { code, detail } => return Err(ClusterError::from_remote(code, detail)),
            other => {
                return Err(ClusterError::Protocol(format!(
                    "expected SnapshotChunk, got {other:?}"
                )))
            }
        }
    }
}

/// Asks `peer` for its current write epoch without transferring any
/// state: a `DeltaRequest` past any possible version returns an empty
/// delta stamped with the peer's write counter.
pub(crate) fn probe_write_epoch(
    transport: &impl Transport,
    peer: NodeId,
) -> Result<u64, ClusterError> {
    match transport.request(peer, &Message::DeltaRequest { after: u64::MAX })? {
        Message::Delta { up_to, .. } => Ok(up_to),
        Message::Error { code, detail } => Err(ClusterError::from_remote(code, detail)),
        other => Err(ClusterError::Protocol(format!(
            "expected Delta, got {other:?}"
        ))),
    }
}

impl<S: ClusterSketch> ClusterNode<S> {
    /// True when this node has no state and should bootstrap from a
    /// peer before joining gossip: a brand-new node, or one whose
    /// durable directory was lost entirely (recovery found nothing to
    /// replay).
    pub fn needs_bootstrap(&self) -> bool {
        self.store().is_empty()
    }

    /// Bootstraps this node from the healthiest reachable peer, using
    /// `resilient`'s suspicion state to order donors
    /// ([`Resilient::healthy_first`]) and its retry budget for each
    /// chunk exchange.
    pub fn bootstrap<T: Transport>(
        &self,
        resilient: &Resilient<T>,
        config: &BootstrapConfig,
    ) -> Result<BootstrapReport, ClusterError> {
        let donors = resilient.healthy_first(self.peers());
        self.bootstrap_via(resilient, &donors, config)
    }

    /// Bootstraps this node from the first donor in `donors` that
    /// delivers a snapshot that validates and installs; earlier
    /// failures are recorded in
    /// [`BootstrapReport::failed_donors`] and the next donor is tried
    /// — mid-stream donor death is survived by moving on, not by
    /// giving up.
    ///
    /// On success the donor's epoch becomes its high-water mark, the
    /// other peers are optionally fast-forwarded
    /// ([`BootstrapConfig::fast_forward_peers`]), and the report is
    /// retained ([`last_bootstrap`](Self::last_bootstrap)). The store
    /// is never left half-installed: a snapshot that fails validation
    /// changes nothing.
    pub fn bootstrap_via(
        &self,
        transport: &impl Transport,
        donors: &[NodeId],
        config: &BootstrapConfig,
    ) -> Result<BootstrapReport, ClusterError> {
        let mut failed_donors: Vec<NodeId> = Vec::new();
        let mut last_error: Option<ClusterError> = None;
        for &donor in donors {
            if donor == self.id() {
                continue;
            }
            let (image, epoch, stats) = match pull_snapshot(transport, donor, config) {
                Ok(parts) => parts,
                Err(error) => {
                    failed_donors.push(donor);
                    last_error = Some(error);
                    continue;
                }
            };
            let install = match self.store().install_checkpoint(&image) {
                Ok(install) => install,
                Err(error) => {
                    failed_donors.push(donor);
                    last_error = Some(ClusterError::BadPayload(error.to_string()));
                    continue;
                }
            };
            self.advance_high_water(donor, epoch);
            if config.fast_forward_peers {
                self.fast_forward_marks(transport, donor);
            }
            let report = BootstrapReport {
                donor,
                failed_donors,
                chunks_received: stats.chunks_received,
                chunks_resumed: stats.chunks_resumed,
                restarts: stats.restarts,
                bytes_received: stats.bytes_received,
                snapshot_bytes: image.len() as u64,
                keys_installed: install.entries,
                donor_epoch: epoch,
                merged: install.merged,
            };
            self.set_last_bootstrap(report.clone());
            return Ok(report);
        }
        Err(last_error
            .unwrap_or_else(|| ClusterError::Transport("no bootstrap donor available".to_owned())))
    }

    /// Adopts every non-donor peer's *current* write epoch as its
    /// high-water mark, so post-bootstrap delta sync ships only
    /// writes newer than the snapshot. Probe failures are ignored —
    /// an unreachable peer keeps mark 0 and is delta-pulled in full
    /// once it returns.
    fn fast_forward_marks(&self, transport: &impl Transport, donor: NodeId) {
        for &peer in self.peers() {
            if peer == donor {
                continue;
            }
            if let Ok(epoch) = probe_write_epoch(transport, peer) {
                self.advance_high_water(peer, epoch);
            }
        }
    }
}
