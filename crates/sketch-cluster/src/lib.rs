//! Replicated sketch-store service: wire protocol, delta sync,
//! anti-entropy.
//!
//! This crate turns a set of [`sketch_store::SketchStore`]s into one
//! logical, eventually-consistent service. It leans entirely on what
//! makes sketches special: **union merge is commutative, associative
//! and idempotent**, so replication needs no coordination, no
//! consensus, and no tombstones — ship registers, merge on receipt,
//! and every delivery order converges to the same state.
//!
//! The moving parts, bottom up:
//!
//! * [`wire`] — a length-prefixed binary frame protocol over plain
//!   byte streams. Compact register payloads
//!   ([`sketch_core::CompactSketch`]) ride inside delta frames;
//!   decoding is hostile-input safe (lengths validated before any
//!   allocation, typed errors, no panics).
//! * [`HashRing`] — consistent-hash routing: each key's writes go to
//!   one home node, so ingest load spreads without coordination.
//! * [`ClusterNode`] — one replica: answers protocol requests over its
//!   store and *pulls* deltas from peers. Sync rides the store's
//!   per-key version stamps: each node remembers a per-peer high-water
//!   mark and asks only for keys that moved past it, so a quiescent
//!   cluster exchanges near-empty frames. A rotating full pull
//!   (anti-entropy) heals whatever individual exchanges lose.
//! * [`Transport`] — the seam that makes all of this testable: the
//!   same node code runs over [`TcpTransport`] sockets (every socket
//!   under connect/read/write deadlines — [`TcpTimeouts`]), the
//!   deterministic in-process [`MemNetwork`], or a seeded
//!   [`FaultyTransport`] that drops, replays and partitions.
//! * [`Resilient`] — a transport wrapper adding bounded retries with
//!   jittered backoff and per-peer suspicion with half-open probes, so
//!   gossip skips a dead peer ([`ClusterError::Suspect`]) instead of
//!   re-spending its deadline budget on it every tick.
//! * **Bootstrap** — a node with *no* state (fresh machine, wiped
//!   disk) ships one healthy peer's checkpoint image in CRC-validated
//!   chunks ([`ClusterNode::bootstrap`], [`BootstrapConfig`]) instead
//!   of re-pulling full state from every peer, resumes mid-stream
//!   after transport failures, fails over to another donor if the
//!   first dies, and hands off to delta sync — the
//!   [`BootstrapReport`] says what happened.
//! * [`ClusterClient`] — routes writes by the ring and fans reads out
//!   across replicas (top-k similarity and union cardinality merge
//!   answers from every node); the `*_detailed` variants report
//!   [`FanOut::degraded`] when unreachable nodes were skipped.
//!
//! ```
//! use sketch_cluster::{ClusterClient, ClusterNode, HashRing, MemNetwork};
//! use sketch_store::SketchStore;
//! use std::sync::Arc;
//!
//! # use setsketch::{SetSketch1, SetSketchConfig};
//! // Every node shares one factory (same parameters + seed).
//! let config = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
//! let factory = move || SketchStore::builder(move || SetSketch1::new(config, 1)).build();
//! let ids = [0u32, 1, 2];
//! let net = Arc::new(MemNetwork::new());
//! let nodes: Vec<_> = ids
//!     .iter()
//!     .map(|&id| Arc::new(ClusterNode::new(id, ids, factory())))
//!     .collect();
//! for node in &nodes {
//!     net.register(Arc::clone(node));
//! }
//!
//! // Route writes through the ring, then let the replicas sync.
//! let client = ClusterClient::new(
//!     Arc::clone(&net),
//!     HashRing::new(&ids),
//!     nodes[0].store().empty_sketch(),
//! );
//! for user in 0..3000u64 {
//!     client.ingest("active-users", &[user]).unwrap();
//! }
//! for node in &nodes {
//!     node.sync_round(&net);
//! }
//!
//! // Now any replica answers.
//! for node in &nodes {
//!     let estimate = node.store().cardinality("active-users").unwrap();
//!     assert!((estimate / 3000.0 - 1.0).abs() < 0.2);
//! }
//! ```

mod bootstrap;
mod client;
mod error;
mod fault;
mod health;
mod node;
mod ring;
mod tcp;
mod transport;
pub mod wire;

pub use bootstrap::{
    BootstrapConfig, BootstrapReport, DEFAULT_SNAPSHOT_CHUNK_BYTES, MAX_SNAPSHOT_CHUNK_BYTES,
};
pub use client::{ClusterClient, FanOut};
pub use error::ClusterError;
pub use fault::{FaultPlan, FaultyTransport};
pub use health::{HealthPolicy, Resilient, RetryPolicy};
pub use node::{ClusterNode, ClusterSketch, SyncReport, DEFAULT_FULL_SYNC_EVERY};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use tcp::{TcpServer, TcpTimeouts, TcpTransport};
pub use transport::{MemNetwork, TrafficStats, Transport};
pub use wire::{ErrorCode, FrameError, Message, NodeId, WireEntry, WireError, WireNeighbor};
