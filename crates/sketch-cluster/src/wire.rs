//! The cluster's length-prefixed binary wire protocol.
//!
//! Every frame on a connection is `[2-byte magic "SK"][u8 protocol
//! version][u32 LE payload length][payload]`; the payload is one
//! [`Message`], encoded as a one-byte tag followed by its fields in
//! little-endian order. Variable-length fields (strings, byte buffers,
//! lists) carry a `u32` length/count prefix.
//!
//! The magic + version prologue is the protocol handshake: a reader
//! can tell "not my protocol" ([`WireError::BadMagic`]) from "my
//! protocol, a revision I don't speak"
//! ([`WireError::UnsupportedVersion`]) from the first three bytes,
//! before trusting any length field. Servers answer either with an
//! [`ErrorCode::Unsupported`] frame so old clients get a typed refusal
//! instead of a hang.
//!
//! The decoder is written for hostile input: every declared length is
//! validated against the bytes actually present **before** any
//! allocation is sized from it, so a malicious or corrupted length
//! field can neither panic the process nor balloon memory — it fails
//! with a typed [`WireError`]. Frame readers additionally cap the
//! payload length at [`MAX_FRAME_BYTES`] before reading the body.
//!
//! Sketch registers travel as the family's
//! [`CompactSketch`](sketch_core::CompactSketch) payloads inside
//! [`Message::Delta`] entries — warm and frozen store tiers ship their
//! already-compressed bytes end to end, and hot sketches are
//! compressed once at the sending edge.

use std::io::{self, Read, Write};

/// Identifier of one cluster node (also the consistent-hash ring's
/// member key).
pub type NodeId = u32;

/// Hard ceiling on a frame's payload length. A header declaring more
/// is rejected before the body is read or any buffer is allocated.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// The two magic bytes opening every frame — `"SK"`. A connection that
/// does not start with them is not speaking this protocol at all.
pub const PROTOCOL_MAGIC: [u8; 2] = *b"SK";

/// The protocol revision this build speaks. Bumped on any change to
/// frame layout or message encodings; a reader refuses other versions
/// with [`WireError::UnsupportedVersion`] rather than misparsing.
pub const PROTOCOL_VERSION: u8 = 1;

/// Typed decoding failures. Decoding never panics and never allocates
/// more than the input's own length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a declared field did.
    Truncated,
    /// The frame does not open with [`PROTOCOL_MAGIC`] — the peer is
    /// not speaking this protocol (or is a pre-handshake build whose
    /// first frame bytes are a length field).
    BadMagic {
        /// The two bytes found where the magic should be.
        found: [u8; 2],
    },
    /// The frame's version byte names a protocol revision this build
    /// does not speak.
    UnsupportedVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// A frame header declared a payload larger than
    /// [`MAX_FRAME_BYTES`].
    OversizedFrame {
        /// The declared payload length.
        declared: u64,
    },
    /// The leading tag byte names no known message.
    UnknownTag(u8),
    /// The trailing error-code byte names no known [`ErrorCode`].
    UnknownErrorCode(u16),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the message's last field.
    TrailingBytes {
        /// How many undecoded bytes were left over.
        extra: usize,
    },
    /// A declared element count cannot fit in the remaining bytes.
    LengthMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::BadMagic { found } => {
                write!(
                    f,
                    "frame magic {found:02x?} is not {PROTOCOL_MAGIC:02x?} — not this protocol"
                )
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "protocol version {found} not supported (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::OversizedFrame { declared } => {
                write!(
                    f,
                    "frame declares {declared} payload bytes (max {MAX_FRAME_BYTES})"
                )
            }
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            WireError::UnknownErrorCode(code) => write!(f, "unknown error code {code}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the message")
            }
            WireError::LengthMismatch => {
                write!(f, "declared length exceeds the bytes present")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True when the failure is a protocol-handshake mismatch (wrong
    /// magic or an unsupported version) rather than a malformed body —
    /// servers answer these with [`ErrorCode::Unsupported`].
    pub fn is_handshake_mismatch(&self) -> bool {
        matches!(
            self,
            WireError::BadMagic { .. } | WireError::UnsupportedVersion { .. }
        )
    }
}

/// Why a remote node refused a request ([`Message::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// A named key holds no sketch on the answering node.
    KeyNotFound = 1,
    /// The shipped state's configuration or seed does not match.
    Incompatible = 2,
    /// A compact payload failed to decompress.
    BadPayload = 3,
    /// The request carried an out-of-range parameter.
    BadRequest = 4,
    /// The node cannot serve this message type.
    Unsupported = 5,
    /// The node cannot serve the request *right now* (e.g. a snapshot
    /// donor with nothing to bootstrap from) — try another peer.
    Unavailable = 6,
}

impl ErrorCode {
    fn from_u16(code: u16) -> Result<Self, WireError> {
        Ok(match code {
            1 => ErrorCode::KeyNotFound,
            2 => ErrorCode::Incompatible,
            3 => ErrorCode::BadPayload,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Unsupported,
            6 => ErrorCode::Unavailable,
            other => return Err(WireError::UnknownErrorCode(other)),
        })
    }
}

/// One key's state inside a [`Message::Delta`]: key, source-side
/// version stamp, and the compact register payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEntry {
    /// The key whose registers the payload carries.
    pub key: String,
    /// The version the source store stamped the payload at.
    pub version: u64,
    /// The registers in the family's compact wire format.
    pub payload: Vec<u8>,
}

/// One ranked neighbor inside a [`Message::Neighbors`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireNeighbor {
    /// The neighboring key.
    pub key: String,
    /// Estimated Jaccard similarity, as IEEE-754 bits (bit-exact on
    /// the wire).
    pub jaccard_bits: u64,
}

impl WireNeighbor {
    /// Builds a neighbor from a key and its Jaccard estimate.
    pub fn new(key: String, jaccard: f64) -> Self {
        WireNeighbor {
            key,
            jaccard_bits: jaccard.to_bits(),
        }
    }

    /// The Jaccard estimate as a float.
    pub fn jaccard(&self) -> f64 {
        f64::from_bits(self.jaccard_bits)
    }
}

/// Every message of the cluster protocol. Requests and responses share
/// one enum — the protocol is strict request/response, one frame each
/// way per exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Pull request: "ship me every key whose version exceeds `after`"
    /// (in the answering store's write-counter domain). `after = 0`
    /// asks for the full state — the anti-entropy path.
    DeltaRequest {
        /// High-water version the requester has already applied.
        after: u64,
    },
    /// The delta: changed keys with compact payloads, plus the counter
    /// value the sweep covers (the requester's next high-water mark).
    Delta {
        /// Write-counter value the sweep observed before starting.
        up_to: u64,
        /// Changed keys in ascending key order.
        entries: Vec<WireEntry>,
    },
    /// Record a batch of elements under a key.
    Ingest {
        /// Target key.
        key: String,
        /// The elements to record.
        elements: Vec<u64>,
    },
    /// Ask for a key's estimated distinct count.
    Cardinality {
        /// The key to estimate.
        key: String,
    },
    /// Ask for the Jaccard similarity of two keys.
    Jaccard {
        /// First key.
        left: String,
        /// Second key.
        right: String,
    },
    /// Ask for the top-`k` most similar keys to `key` at a threshold.
    SimilarKeys {
        /// The query key.
        key: String,
        /// Maximum number of neighbors to return.
        k: u32,
        /// Similarity threshold to tune the candidate stage for, as
        /// IEEE-754 bits.
        threshold_bits: u64,
    },
    /// Ask for the union sketch over the listed keys (those present on
    /// the answering node), as a compact payload.
    UnionSketch {
        /// Keys to fold together.
        keys: Vec<String>,
    },
    /// Ask the serving process to stop accepting connections and exit
    /// its serve loop.
    Shutdown,
    /// Ask a donor for one chunk of its checkpoint image — the
    /// bootstrap stream is a sequence of these strict request/response
    /// exchanges, which is what makes resume-from-chunk after a
    /// mid-stream failure natural (the requester just re-asks for the
    /// chunk it is missing).
    SnapshotRequest {
        /// The export being streamed, as previously returned in a
        /// [`Message::SnapshotChunk`]; `0` asks the donor to start (or
        /// restart) a fresh export.
        snapshot_id: u64,
        /// Zero-based index of the requested chunk.
        chunk: u32,
        /// Requested chunk size in bytes (the donor may clamp it).
        chunk_bytes: u32,
        /// Maximum donor-side checkpoint lag (write-counter ticks) the
        /// requester accepts before the donor must sweep fresh.
        max_lag: u64,
    },
    /// One chunk of a donor's checkpoint image.
    SnapshotChunk {
        /// Identifies the export this chunk belongs to. A response
        /// carrying a different id than requested means the donor
        /// restarted the export — the requester resets to chunk 0.
        snapshot_id: u64,
        /// The donor's write counter covered by the image (the
        /// requester's high-water mark toward the donor once
        /// installed).
        epoch: u64,
        /// Total size of the full image in bytes.
        total_bytes: u64,
        /// Zero-based index of this chunk.
        chunk: u32,
        /// Number of chunks in the full image.
        total_chunks: u32,
        /// CRC32 of `data`, validated by the requester before the
        /// chunk is buffered.
        crc: u32,
        /// This chunk's slice of the image.
        data: Vec<u8>,
    },
    /// Positive acknowledgement with no payload.
    Ack,
    /// A scalar response (cardinality, Jaccard), as IEEE-754 bits.
    Value {
        /// The float result's bits.
        bits: u64,
    },
    /// Ranked neighbors for a [`Message::SimilarKeys`] request.
    Neighbors {
        /// Neighbors in descending-similarity order.
        items: Vec<WireNeighbor>,
    },
    /// A compact sketch payload (union sketch response).
    Payload {
        /// The compressed registers.
        bytes: Vec<u8>,
    },
    /// The request failed on the remote node.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

// Message tags. Gaps left between request and response ranges for
// future messages.
const TAG_DELTA_REQUEST: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_INGEST: u8 = 3;
const TAG_CARDINALITY: u8 = 4;
const TAG_JACCARD: u8 = 5;
const TAG_SIMILAR_KEYS: u8 = 6;
const TAG_UNION_SKETCH: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_SNAPSHOT_REQUEST: u8 = 9;
const TAG_ACK: u8 = 16;
const TAG_VALUE: u8 = 17;
const TAG_NEIGHBORS: u8 = 18;
const TAG_PAYLOAD: u8 = 19;
const TAG_ERROR: u8 = 20;
const TAG_SNAPSHOT_CHUNK: u8 = 21;

impl Message {
    /// Encodes the message payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::DeltaRequest { after } => {
                buf.push(TAG_DELTA_REQUEST);
                put_u64(&mut buf, *after);
            }
            Message::Delta { up_to, entries } => {
                buf.push(TAG_DELTA);
                put_u64(&mut buf, *up_to);
                put_u32(&mut buf, entries.len() as u32);
                for entry in entries {
                    put_str(&mut buf, &entry.key);
                    put_u64(&mut buf, entry.version);
                    put_bytes(&mut buf, &entry.payload);
                }
            }
            Message::Ingest { key, elements } => {
                buf.push(TAG_INGEST);
                put_str(&mut buf, key);
                put_u32(&mut buf, elements.len() as u32);
                for &element in elements {
                    put_u64(&mut buf, element);
                }
            }
            Message::Cardinality { key } => {
                buf.push(TAG_CARDINALITY);
                put_str(&mut buf, key);
            }
            Message::Jaccard { left, right } => {
                buf.push(TAG_JACCARD);
                put_str(&mut buf, left);
                put_str(&mut buf, right);
            }
            Message::SimilarKeys {
                key,
                k,
                threshold_bits,
            } => {
                buf.push(TAG_SIMILAR_KEYS);
                put_str(&mut buf, key);
                put_u32(&mut buf, *k);
                put_u64(&mut buf, *threshold_bits);
            }
            Message::UnionSketch { keys } => {
                buf.push(TAG_UNION_SKETCH);
                put_u32(&mut buf, keys.len() as u32);
                for key in keys {
                    put_str(&mut buf, key);
                }
            }
            Message::Shutdown => buf.push(TAG_SHUTDOWN),
            Message::SnapshotRequest {
                snapshot_id,
                chunk,
                chunk_bytes,
                max_lag,
            } => {
                buf.push(TAG_SNAPSHOT_REQUEST);
                put_u64(&mut buf, *snapshot_id);
                put_u32(&mut buf, *chunk);
                put_u32(&mut buf, *chunk_bytes);
                put_u64(&mut buf, *max_lag);
            }
            Message::SnapshotChunk {
                snapshot_id,
                epoch,
                total_bytes,
                chunk,
                total_chunks,
                crc,
                data,
            } => {
                buf.push(TAG_SNAPSHOT_CHUNK);
                put_u64(&mut buf, *snapshot_id);
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *total_bytes);
                put_u32(&mut buf, *chunk);
                put_u32(&mut buf, *total_chunks);
                put_u32(&mut buf, *crc);
                put_bytes(&mut buf, data);
            }
            Message::Ack => buf.push(TAG_ACK),
            Message::Value { bits } => {
                buf.push(TAG_VALUE);
                put_u64(&mut buf, *bits);
            }
            Message::Neighbors { items } => {
                buf.push(TAG_NEIGHBORS);
                put_u32(&mut buf, items.len() as u32);
                for item in items {
                    put_str(&mut buf, &item.key);
                    put_u64(&mut buf, item.jaccard_bits);
                }
            }
            Message::Payload { bytes } => {
                buf.push(TAG_PAYLOAD);
                put_bytes(&mut buf, bytes);
            }
            Message::Error { code, detail } => {
                buf.push(TAG_ERROR);
                put_u16(&mut buf, *code as u16);
                put_str(&mut buf, detail);
            }
        }
        buf
    }

    /// Decodes a message payload (the bytes after the frame length
    /// prefix). Rejects trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut cursor = Cursor::new(bytes);
        let tag = cursor.u8()?;
        let message = match tag {
            TAG_DELTA_REQUEST => Message::DeltaRequest {
                after: cursor.u64()?,
            },
            TAG_DELTA => {
                let up_to = cursor.u64()?;
                let count = cursor.count(MIN_ENTRY_BYTES)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = cursor.string()?;
                    let version = cursor.u64()?;
                    let payload = cursor.bytes()?;
                    entries.push(WireEntry {
                        key,
                        version,
                        payload,
                    });
                }
                Message::Delta { up_to, entries }
            }
            TAG_INGEST => {
                let key = cursor.string()?;
                let count = cursor.count(8)?;
                let mut elements = Vec::with_capacity(count);
                for _ in 0..count {
                    elements.push(cursor.u64()?);
                }
                Message::Ingest { key, elements }
            }
            TAG_CARDINALITY => Message::Cardinality {
                key: cursor.string()?,
            },
            TAG_JACCARD => Message::Jaccard {
                left: cursor.string()?,
                right: cursor.string()?,
            },
            TAG_SIMILAR_KEYS => Message::SimilarKeys {
                key: cursor.string()?,
                k: cursor.u32()?,
                threshold_bits: cursor.u64()?,
            },
            TAG_UNION_SKETCH => {
                let count = cursor.count(4)?;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(cursor.string()?);
                }
                Message::UnionSketch { keys }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_SNAPSHOT_REQUEST => Message::SnapshotRequest {
                snapshot_id: cursor.u64()?,
                chunk: cursor.u32()?,
                chunk_bytes: cursor.u32()?,
                max_lag: cursor.u64()?,
            },
            TAG_SNAPSHOT_CHUNK => Message::SnapshotChunk {
                snapshot_id: cursor.u64()?,
                epoch: cursor.u64()?,
                total_bytes: cursor.u64()?,
                chunk: cursor.u32()?,
                total_chunks: cursor.u32()?,
                crc: cursor.u32()?,
                data: cursor.bytes()?,
            },
            TAG_ACK => Message::Ack,
            TAG_VALUE => Message::Value {
                bits: cursor.u64()?,
            },
            TAG_NEIGHBORS => {
                let count = cursor.count(12)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = cursor.string()?;
                    let jaccard_bits = cursor.u64()?;
                    items.push(WireNeighbor { key, jaccard_bits });
                }
                Message::Neighbors { items }
            }
            TAG_PAYLOAD => Message::Payload {
                bytes: cursor.bytes()?,
            },
            TAG_ERROR => {
                let code = ErrorCode::from_u16(cursor.u16()?)?;
                let detail = cursor.string()?;
                Message::Error { code, detail }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        cursor.finish()?;
        Ok(message)
    }

    /// A stable, human-readable name of the message's variant — the
    /// key for per-kind traffic accounting and kind-plausible fault
    /// replay.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::DeltaRequest { .. } => "delta_request",
            Message::Delta { .. } => "delta",
            Message::Ingest { .. } => "ingest",
            Message::Cardinality { .. } => "cardinality",
            Message::Jaccard { .. } => "jaccard",
            Message::SimilarKeys { .. } => "similar_keys",
            Message::UnionSketch { .. } => "union_sketch",
            Message::Shutdown => "shutdown",
            Message::SnapshotRequest { .. } => "snapshot_request",
            Message::SnapshotChunk { .. } => "snapshot_chunk",
            Message::Ack => "ack",
            Message::Value { .. } => "value",
            Message::Neighbors { .. } => "neighbors",
            Message::Payload { .. } => "payload",
            Message::Error { .. } => "error",
        }
    }

    /// Encodes the message as a complete frame: magic, version byte,
    /// `u32` LE payload length, then the payload.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&PROTOCOL_MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Smallest possible encoded [`WireEntry`]: empty key (4), version
/// (8), empty payload (4).
const MIN_ENTRY_BYTES: usize = 16;

/// Bytes before the payload: magic (2) + version (1) + length (4).
const FRAME_HEADER_BYTES: usize = 7;

/// Writes one framed message.
pub fn write_frame(writer: &mut impl Write, message: &Message) -> io::Result<()> {
    writer.write_all(&message.encode_frame())?;
    writer.flush()
}

/// A framed read's failure: transport-level I/O or payload decoding.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed (includes clean EOF between
    /// frames, surfaced as `UnexpectedEof`).
    Io(io::Error),
    /// The payload did not decode.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(error) => write!(f, "frame I/O failed: {error}"),
            FrameError::Wire(error) => write!(f, "frame payload invalid: {error}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(error) => Some(error),
            FrameError::Wire(error) => Some(error),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(error: io::Error) -> Self {
        FrameError::Io(error)
    }
}

impl From<WireError> for FrameError {
    fn from(error: WireError) -> Self {
        FrameError::Wire(error)
    }
}

/// Reads one framed message. The magic and version are validated
/// before the length field is trusted, and the declared payload length
/// is validated against [`MAX_FRAME_BYTES`] **before** the body buffer
/// is allocated.
pub fn read_frame(reader: &mut impl Read) -> Result<Message, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    reader.read_exact(&mut header)?;
    if header[..2] != PROTOCOL_MAGIC {
        return Err(WireError::BadMagic {
            found: [header[0], header[1]],
        }
        .into());
    }
    if header[2] != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion { found: header[2] }.into());
    }
    let declared = u32::from_le_bytes(header[3..7].try_into().expect("4")) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::OversizedFrame {
            declared: declared as u64,
        }
        .into());
    }
    let mut payload = vec![0u8; declared];
    reader.read_exact(&mut payload)?;
    Ok(Message::decode(&payload)?)
}

fn put_u16(buf: &mut Vec<u8>, value: u16) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Bounded-allocation reader over a payload slice. Every length and
/// count is checked against the bytes actually remaining before any
/// buffer is sized from it.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Takes `len` raw bytes; fails (without allocating) when fewer
    /// remain.
    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if len > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.bytes.split_at(len);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an element count and validates it against the remaining
    /// bytes at `min_element_bytes` apiece, so
    /// `Vec::with_capacity(count)` is bounded by the input's own size.
    fn count(&mut self, min_element_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        let need = count
            .checked_mul(min_element_bytes)
            .ok_or(WireError::LengthMismatch)?;
        if need > self.remaining() {
            return Err(WireError::LengthMismatch);
        }
        Ok(count)
    }

    /// Reads a `u32`-length-prefixed byte buffer. The length is
    /// validated by [`take`](Self::take) before the copy allocates.
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Asserts the payload was consumed exactly.
    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.bytes.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let message = Message::Delta {
            up_to: 42,
            entries: vec![WireEntry {
                key: "k1".into(),
                version: 7,
                payload: vec![1, 2, 3],
            }],
        };
        let frame = message.encode_frame();
        let mut reader = frame.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap(), message);
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&PROTOCOL_MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]);
        let mut reader = frame.as_slice();
        match read_frame(&mut reader) {
            Err(FrameError::Wire(WireError::OversizedFrame { declared })) => {
                assert_eq!(declared, u32::MAX as u64);
            }
            other => panic!("expected oversized-frame error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_rejected_before_the_length_is_trusted() {
        // A pre-handshake frame: bare [len][payload]. The length bytes
        // land where the magic belongs and must be refused as such.
        let payload = Message::Ack.encode();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&[0u8; 8]); // enough bytes for the header read
        match read_frame(&mut frame.as_slice()) {
            Err(FrameError::Wire(error @ WireError::BadMagic { .. })) => {
                assert!(error.is_handshake_mismatch());
            }
            other => panic!("expected bad-magic error, got {other:?}"),
        }
    }

    #[test]
    fn future_version_rejected_as_unsupported() {
        let mut frame = Message::Ack.encode_frame();
        frame[2] = PROTOCOL_VERSION + 1;
        match read_frame(&mut frame.as_slice()) {
            Err(FrameError::Wire(error @ WireError::UnsupportedVersion { found })) => {
                assert_eq!(found, PROTOCOL_VERSION + 1);
                assert!(error.is_handshake_mismatch());
            }
            other => panic!("expected unsupported-version error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_count_is_bounded_by_input_length() {
        // A Delta claiming u32::MAX entries but carrying none: the
        // count validation must fail before any capacity is reserved.
        let mut payload = vec![TAG_DELTA];
        put_u64(&mut payload, 0);
        put_u32(&mut payload, u32::MAX);
        assert_eq!(Message::decode(&payload), Err(WireError::LengthMismatch));
    }

    #[test]
    fn snapshot_messages_roundtrip() {
        let request = Message::SnapshotRequest {
            snapshot_id: 7,
            chunk: 3,
            chunk_bytes: 65536,
            max_lag: 1000,
        };
        let chunk = Message::SnapshotChunk {
            snapshot_id: 7,
            epoch: 99,
            total_bytes: 10,
            chunk: 3,
            total_chunks: 4,
            crc: 0xDEAD_BEEF,
            data: vec![1, 2, 3],
        };
        for message in [request, chunk] {
            let frame = message.encode_frame();
            assert_eq!(read_frame(&mut frame.as_slice()).unwrap(), message);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Message::Ack.encode();
        payload.push(0);
        assert_eq!(
            Message::decode(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }
}
