//! Consistent-hash key routing across the cluster's nodes.
//!
//! Clients route each key's *writes* to one home node so ingest load
//! spreads evenly, while replication (delta sync + anti-entropy)
//! spreads every key's state to all replicas — reads can then fan out
//! to any of them. The ring is the classic construction: each node
//! projects `vnodes` points onto the `u64` hash circle, and a key is
//! owned by the node whose point follows the key's hash clockwise.
//! Adding or removing one node therefore only moves the keys adjacent
//! to its points — ~1/N of the key space — instead of reshuffling
//! everything, which is what keeps warm sketches on their home nodes
//! across membership changes.

use crate::wire::NodeId;
use sketch_rand::{hash_bytes, hash_u64};

/// Seed of the ring's hash points (fixed: every client and node must
/// agree on the mapping).
const RING_SEED: u64 = 0x5249_4e47_5345_4544; // "RINGSEED"

/// Default virtual-node count per member — enough that the largest
/// partition stays within a few percent of 1/N for small clusters.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over the cluster's node ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)` pairs sorted by point.
    points: Vec<(u64, NodeId)>,
    nodes: Vec<NodeId>,
}

impl HashRing {
    /// Builds a ring with [`DEFAULT_VNODES`] virtual nodes per member.
    ///
    /// # Panics
    /// Panics when `nodes` is empty.
    pub fn new(nodes: &[NodeId]) -> Self {
        Self::with_vnodes(nodes, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (≥ 1) per
    /// member.
    ///
    /// # Panics
    /// Panics when `nodes` is empty or `vnodes` is zero.
    pub fn with_vnodes(nodes: &[NodeId], vnodes: usize) -> Self {
        assert!(!nodes.is_empty(), "a ring needs at least one node");
        assert!(vnodes > 0, "each node needs at least one ring point");
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for &node in nodes {
            for vnode in 0..vnodes {
                let point = hash_u64(((node as u64) << 32) | vnode as u64, RING_SEED);
                points.push((point, node));
            }
        }
        // Ties (astronomically unlikely) resolve to the lower node id,
        // deterministically on every participant.
        points.sort_unstable();
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        HashRing { points, nodes }
    }

    /// The node owning `key`: the first ring point at or after the
    /// key's hash, wrapping around the circle.
    pub fn owner(&self, key: &str) -> NodeId {
        let hash = hash_bytes(key.as_bytes(), RING_SEED);
        let index = self.points.partition_point(|&(point, _)| point < hash);
        let (_, node) = self.points[index % self.points.len()];
        node
    }

    /// The distinct member node ids, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let ring = HashRing::new(&[0, 1, 2]);
        let again = HashRing::new(&[2, 0, 1]);
        for i in 0..200 {
            let key = format!("key-{i}");
            let owner = ring.owner(&key);
            assert!(owner < 3);
            assert_eq!(owner, again.owner(&key), "member order must not matter");
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let ring = HashRing::new(&[0, 1, 2]);
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for i in 0..3000 {
            *counts.entry(ring.owner(&format!("user-{i}"))).or_default() += 1;
        }
        for node in 0..3 {
            let share = counts[&node] as f64 / 3000.0;
            assert!(
                (share - 1.0 / 3.0).abs() < 0.15,
                "node {node} owns {share:.2} of keys"
            );
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::with_vnodes(&[7], 1);
        assert_eq!(ring.owner("anything"), 7);
        assert_eq!(ring.nodes(), &[7]);
    }

    #[test]
    fn removing_a_node_only_moves_its_keys() {
        let full = HashRing::new(&[0, 1, 2]);
        let reduced = HashRing::new(&[0, 1]);
        let mut moved = 0;
        let total = 2000;
        for i in 0..total {
            let key = format!("k{i}");
            let before = full.owner(&key);
            let after = reduced.owner(&key);
            if before != 2 {
                assert_eq!(before, after, "surviving nodes keep their keys");
            } else if before != after {
                moved += 1;
            }
        }
        assert!(moved > 0, "node 2's keys must be redistributed");
    }
}
