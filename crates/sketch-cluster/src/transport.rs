//! How frames travel between nodes.
//!
//! [`Transport`] is the single seam between the replication state
//! machine and the outside world: one blocking request/response
//! exchange per call. Three implementations exist —
//!
//! * [`MemNetwork`] (here): an in-process network for deterministic
//!   tests and benchmarks. It still runs every message through the
//!   real frame codec, so the bytes counted are the bytes a socket
//!   would carry;
//! * [`TcpTransport`](crate::TcpTransport): real sockets;
//! * [`FaultyTransport`](crate::FaultyTransport): a wrapper injecting
//!   drops, replays and partitions into either of the above.

use crate::error::ClusterError;
use crate::node::{ClusterNode, ClusterSketch};
use crate::wire::{read_frame, Message, NodeId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// A blocking request/response exchange with one peer.
///
/// Implementations must be usable from multiple threads (`&self`
/// receiver); sharing between nodes is the normal case.
pub trait Transport {
    /// Sends `message` to `peer` and returns the peer's response.
    ///
    /// # Errors
    /// [`ClusterError::UnknownPeer`] when no route to `peer` exists,
    /// [`ClusterError::Transport`] for delivery failures, and codec
    /// errors when a frame is malformed.
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError>;
}

impl<T: Transport + ?Sized> Transport for &T {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        (**self).request(peer, message)
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        (**self).request(peer, message)
    }
}

/// Byte and frame counters of a [`MemNetwork`] — what the benchmark
/// and the delta-pruning tests measure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Completed request/response exchanges.
    pub exchanges: u64,
    /// Encoded request bytes, including the 4-byte length prefixes.
    pub request_bytes: u64,
    /// Encoded response bytes, including the 4-byte length prefixes.
    pub response_bytes: u64,
}

impl TrafficStats {
    /// Total bytes that crossed the network in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

/// A request handler registered under a node id.
type Handler = Arc<dyn Fn(Message) -> Message + Send + Sync>;

/// Deterministic in-process network: requests are dispatched
/// synchronously to the registered node's [`ClusterNode::handle`] on
/// the caller's thread, in the caller's order.
///
/// Every exchange is encoded to a real length-prefixed frame and
/// decoded back on both legs, so (a) the codec is exercised by every
/// cluster test, and (b) [`TrafficStats`] reports exactly the bytes a
/// TCP deployment would move.
#[derive(Default)]
pub struct MemNetwork {
    handlers: RwLock<HashMap<NodeId, Handler>>,
    stats: Mutex<TrafficStats>,
    by_kind: Mutex<HashMap<&'static str, TrafficStats>>,
}

impl MemNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `node` as the handler for its id. A second
    /// registration under the same id replaces the first.
    pub fn register<S: ClusterSketch>(&self, node: Arc<ClusterNode<S>>) {
        let id = node.id();
        let handler: Handler = Arc::new(move |message| node.handle(message));
        self.handlers.write().insert(id, handler);
    }

    /// Traffic counters since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> TrafficStats {
        *self.stats.lock()
    }

    /// Traffic counters broken down by request kind
    /// ([`Message::kind`]), ascending by kind — what lets a benchmark
    /// attribute bytes to snapshot shipping vs delta sync vs
    /// anti-entropy on the same run.
    pub fn stats_by_kind(&self) -> Vec<(&'static str, TrafficStats)> {
        let mut out: Vec<_> = self
            .by_kind
            .lock()
            .iter()
            .map(|(&kind, &stats)| (kind, stats))
            .collect();
        out.sort_unstable_by_key(|&(kind, _)| kind);
        out
    }

    /// Zeroes the traffic counters (total and per-kind).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TrafficStats::default();
        self.by_kind.lock().clear();
    }
}

impl Transport for MemNetwork {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        let handler = self
            .handlers
            .read()
            .get(&peer)
            .cloned()
            .ok_or(ClusterError::UnknownPeer(peer))?;
        // Round-trip the request through the real frame codec.
        let request_frame = message.encode_frame();
        let delivered = read_frame(&mut request_frame.as_slice())?;
        let response = handler(delivered);
        let response_frame = response.encode_frame();
        let returned = read_frame(&mut response_frame.as_slice())?;
        let mut stats = self.stats.lock();
        stats.exchanges += 1;
        stats.request_bytes += request_frame.len() as u64;
        stats.response_bytes += response_frame.len() as u64;
        drop(stats);
        let mut by_kind = self.by_kind.lock();
        let entry = by_kind.entry(message.kind()).or_default();
        entry.exchanges += 1;
        entry.request_bytes += request_frame.len() as u64;
        entry.response_bytes += response_frame.len() as u64;
        Ok(returned)
    }
}
