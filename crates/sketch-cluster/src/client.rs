//! The client's view of the cluster: route writes by the ring, fan
//! reads out across replicas.
//!
//! Writes go to the key's ring owner so ingest load spreads ~1/N per
//! node; replication then carries every key everywhere, so reads can
//! be served by any replica. Point reads try the owner first (it has
//! the freshest registers for its own keys) and fall back to the other
//! replicas; set-wide queries — top-k similarity, union cardinality —
//! fan out to **all** nodes and merge, because between sync rounds a
//! freshly written key may exist only on its owner.

use crate::error::ClusterError;
use crate::ring::HashRing;
use crate::transport::Transport;
use crate::wire::{Message, NodeId, WireNeighbor};
use sketch_core::{CardinalityEstimator, CompactSketch, Mergeable};

/// A fan-out query's answer plus its coverage: which nodes could not
/// be reached (suspect, partitioned, timed out) and had to be skipped.
///
/// A degraded answer is still *correct over the replicas that
/// answered* — replication means skipped nodes usually hold nothing
/// unique — but a caller that needs full coverage can branch on
/// [`degraded`](Self::degraded) and retry later.
#[derive(Debug, Clone, PartialEq)]
pub struct FanOut<V> {
    /// The merged answer from every node that responded.
    pub value: V,
    /// True when at least one node was skipped.
    pub degraded: bool,
    /// The nodes that could not be reached, ascending.
    pub skipped: Vec<NodeId>,
}

/// A routing client over any [`Transport`].
///
/// `prototype` is an empty sketch from the cluster's shared factory;
/// it decodes the compact payloads that
/// [`union_cardinality`](ClusterClient::union_cardinality) merges
/// client-side.
pub struct ClusterClient<S, T> {
    transport: T,
    ring: HashRing,
    prototype: S,
}

impl<S, T> ClusterClient<S, T>
where
    S: Mergeable + CardinalityEstimator + CompactSketch + Clone,
    T: Transport,
{
    /// Builds a client over `transport` routing across `ring`.
    pub fn new(transport: T, ring: HashRing, prototype: S) -> Self {
        ClusterClient {
            transport,
            ring,
            prototype,
        }
    }

    /// The ring used for routing.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The transport the client routes through — handy for inspecting
    /// wrapper state ([`Resilient`](crate::Resilient) suspicion, fault
    /// injection in tests).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The node `key`'s writes are routed to.
    pub fn owner(&self, key: &str) -> NodeId {
        self.ring.owner(key)
    }

    /// Records `elements` into `key`'s sketch on its owner node.
    pub fn ingest(&self, key: &str, elements: &[u64]) -> Result<(), ClusterError> {
        let response = self.transport.request(
            self.ring.owner(key),
            &Message::Ingest {
                key: key.to_owned(),
                elements: elements.to_vec(),
            },
        )?;
        expect_ack(response)
    }

    /// Estimated distinct count under `key`. Tries the owner, then the
    /// remaining replicas (a key can be momentarily absent from nodes
    /// the last sync round has not reached).
    pub fn cardinality(&self, key: &str) -> Result<f64, ClusterError> {
        self.first_value(
            self.nodes_owner_first(key),
            &Message::Cardinality {
                key: key.to_owned(),
            },
        )
    }

    /// Estimated Jaccard similarity of two keys, owner of `left`
    /// first.
    pub fn jaccard(&self, left: &str, right: &str) -> Result<f64, ClusterError> {
        self.first_value(
            self.nodes_owner_first(left),
            &Message::Jaccard {
                left: left.to_owned(),
                right: right.to_owned(),
            },
        )
    }

    /// The `k` keys most similar to `key` across the **whole**
    /// cluster: every node answers from its replica, and the answers
    /// are merged — best Jaccard per key wins, descending, truncated
    /// to `k`. Nodes that do not hold `key` (or are unreachable) are
    /// skipped; the query fails only when *no* node can answer.
    pub fn similar_keys(
        &self,
        key: &str,
        k: usize,
        threshold: f64,
    ) -> Result<Vec<WireNeighbor>, ClusterError> {
        self.similar_keys_detailed(key, k, threshold)
            .map(|fan_out| fan_out.value)
    }

    /// [`similar_keys`](Self::similar_keys) with coverage reporting:
    /// the result is marked [`degraded`](FanOut::degraded) when any
    /// node was unreachable and had to be skipped.
    pub fn similar_keys_detailed(
        &self,
        key: &str,
        k: usize,
        threshold: f64,
    ) -> Result<FanOut<Vec<WireNeighbor>>, ClusterError> {
        let request = Message::SimilarKeys {
            key: key.to_owned(),
            k: k as u32,
            threshold_bits: threshold.to_bits(),
        };
        let mut best: Vec<WireNeighbor> = Vec::new();
        let mut answered = false;
        let mut skipped = Vec::new();
        let mut last_error = None;
        for &node in self.ring.nodes() {
            match self.transport.request(node, &request) {
                Ok(Message::Neighbors { items }) => {
                    answered = true;
                    for item in items {
                        match best.iter_mut().find(|have| have.key == item.key) {
                            Some(have) => {
                                if item.jaccard() > have.jaccard() {
                                    have.jaccard_bits = item.jaccard_bits;
                                }
                            }
                            None => best.push(item),
                        }
                    }
                }
                Ok(Message::Error { code, detail }) => {
                    last_error = Some(ClusterError::from_remote(code, detail));
                }
                Ok(other) => {
                    last_error = Some(ClusterError::Protocol(format!(
                        "expected Neighbors, got {other:?}"
                    )));
                }
                Err(error) => {
                    if error.is_transient() {
                        skipped.push(node);
                    }
                    last_error = Some(error);
                }
            }
        }
        if !answered {
            return Err(
                last_error.unwrap_or_else(|| ClusterError::Protocol("empty cluster".to_owned()))
            );
        }
        best.sort_by(|a, b| {
            b.jaccard()
                .partial_cmp(&a.jaccard())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key.cmp(&b.key))
        });
        best.truncate(k);
        skipped.sort_unstable();
        Ok(FanOut {
            value: best,
            degraded: !skipped.is_empty(),
            skipped,
        })
    }

    /// Estimated cardinality of the union of `keys`, cluster-wide:
    /// every node ships the compact union of the keys it holds, and
    /// the client merges those payloads into one sketch. Because
    /// merging is idempotent, replicas holding overlapping key subsets
    /// cannot inflate the estimate.
    pub fn union_cardinality(&self, keys: &[&str]) -> Result<f64, ClusterError> {
        self.union_cardinality_detailed(keys)
            .map(|fan_out| fan_out.value)
    }

    /// [`union_cardinality`](Self::union_cardinality) with coverage
    /// reporting: the result is marked [`degraded`](FanOut::degraded)
    /// when any node was unreachable and had to be skipped.
    pub fn union_cardinality_detailed(&self, keys: &[&str]) -> Result<FanOut<f64>, ClusterError> {
        let request = Message::UnionSketch {
            keys: keys.iter().map(|&key| key.to_owned()).collect(),
        };
        let mut merged: Option<S> = None;
        let mut skipped = Vec::new();
        let mut last_error = None;
        for &node in self.ring.nodes() {
            match self.transport.request(node, &request) {
                Ok(Message::Payload { bytes }) => {
                    let shipped = S::decompress(&self.prototype, &bytes)
                        .map_err(|error| ClusterError::BadPayload(error.to_string()))?;
                    merged = Some(match merged.take() {
                        None => shipped,
                        Some(have) => have
                            .merged_with(&shipped)
                            .map_err(|error| ClusterError::Incompatible(error.to_string()))?,
                    });
                }
                Ok(Message::Error { code, detail }) => {
                    let error = ClusterError::from_remote(code, detail);
                    // "I hold none of these keys" is a valid answer.
                    if !error.is_key_not_found() {
                        last_error = Some(error);
                    }
                }
                Ok(other) => {
                    last_error = Some(ClusterError::Protocol(format!(
                        "expected Payload, got {other:?}"
                    )));
                }
                Err(error) => {
                    if error.is_transient() {
                        skipped.push(node);
                    }
                    last_error = Some(error);
                }
            }
        }
        match merged {
            Some(sketch) => {
                skipped.sort_unstable();
                Ok(FanOut {
                    value: sketch.cardinality(),
                    degraded: !skipped.is_empty(),
                    skipped,
                })
            }
            None => Err(last_error.unwrap_or_else(|| ClusterError::KeyNotFound(keys.join(", ")))),
        }
    }

    /// Asks `node` to shut down (TCP servers stop serving; in-process
    /// nodes just acknowledge).
    pub fn shutdown_node(&self, node: NodeId) -> Result<(), ClusterError> {
        expect_ack(self.transport.request(node, &Message::Shutdown)?)
    }

    /// The current value of `node`'s store-global write counter,
    /// fetched without transferring any state. Useful for operators
    /// watching a bootstrapped node catch up: once the local
    /// high-water mark reaches this, the node has everything the peer
    /// has written.
    pub fn node_write_epoch(&self, node: NodeId) -> Result<u64, ClusterError> {
        crate::bootstrap::probe_write_epoch(&self.transport, node)
    }

    /// All nodes, with `key`'s ring owner moved to the front.
    fn nodes_owner_first(&self, key: &str) -> Vec<NodeId> {
        let owner = self.ring.owner(key);
        let mut nodes = vec![owner];
        nodes.extend(self.ring.nodes().iter().copied().filter(|&n| n != owner));
        nodes
    }

    /// Sends `request` to each node in order; returns the first
    /// numeric answer, or the last failure when every node refuses.
    fn first_value(&self, nodes: Vec<NodeId>, request: &Message) -> Result<f64, ClusterError> {
        let mut last_error = None;
        for node in nodes {
            match self.transport.request(node, request) {
                Ok(Message::Value { bits }) => return Ok(f64::from_bits(bits)),
                Ok(Message::Error { code, detail }) => {
                    last_error = Some(ClusterError::from_remote(code, detail));
                }
                Ok(other) => {
                    last_error = Some(ClusterError::Protocol(format!(
                        "expected Value, got {other:?}"
                    )));
                }
                Err(error) => last_error = Some(error),
            }
        }
        Err(last_error.unwrap_or_else(|| ClusterError::Protocol("empty cluster".to_owned())))
    }
}

fn expect_ack(response: Message) -> Result<(), ClusterError> {
    match response {
        Message::Ack => Ok(()),
        Message::Error { code, detail } => Err(ClusterError::from_remote(code, detail)),
        other => Err(ClusterError::Protocol(format!(
            "expected Ack, got {other:?}"
        ))),
    }
}
