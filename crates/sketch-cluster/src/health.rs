//! Failure-hardened transport: bounded retries with jittered backoff,
//! and per-peer health tracking with half-open probes. [`Resilient`]
//! carries the full story.

use crate::error::ClusterError;
use crate::transport::Transport;
use crate::wire::{Message, NodeId};
use parking_lot::Mutex;
use sketch_rand::{Rng64, WyRand};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Retry behavior for transport-level failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per exchange (1 = no retries). Clamped to at
    /// least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep (before jitter).
    pub max_backoff: Duration,
    /// Seed for the jitter stream — fixed seed, reproducible schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 20 ms base backoff capped at 500 ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (useful where the caller has its
    /// own retry loop, e.g. anti-entropy).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// When a peer becomes suspect and how often it is re-probed.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failed exchanges before the peer is suspect.
    /// Clamped to at least 1.
    pub suspect_after: u32,
    /// How long suspect requests fail fast before one half-open probe
    /// is allowed through.
    pub probe_after: Duration,
}

impl Default for HealthPolicy {
    /// Suspect after 3 consecutive failures, probe every 2 s.
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 3,
            probe_after: Duration::from_secs(2),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum PeerState {
    Healthy,
    /// Fail fast until `retry_at`, then let one probe through.
    Suspect {
        retry_at: Instant,
    },
}

struct PeerHealth {
    consecutive_failures: u32,
    state: PeerState,
}

/// How a request was admitted past the health gate.
enum Admission {
    /// Peer healthy: full retry budget.
    Open,
    /// Half-open probe: single attempt, no retries.
    Probe,
    /// Suspect and not yet due for a probe: refuse locally.
    Refuse,
}

/// A [`Transport`] wrapper adding the two behaviors a real network
/// needs that a bare transport does not have:
///
/// * **bounded retries** — a transport-level failure (refused
///   connection, reset, timeout) is retried up to
///   [`RetryPolicy::max_attempts`] times with exponential backoff and
///   seeded jitter, so a blip does not surface to callers and a
///   thundering herd of peers does not re-dial in lockstep;
/// * **suspicion** — after [`HealthPolicy::suspect_after`]
///   *consecutive* failed exchanges, the peer is marked suspect and
///   further requests fail **immediately** with
///   [`ClusterError::Suspect`], without touching the network. Every
///   [`HealthPolicy::probe_after`], one half-open probe is let
///   through; if it succeeds the peer is healthy again, if it fails
///   the suspicion window re-arms. That is what keeps a gossip tick
///   from spending its whole deadline budget on a peer that has been
///   dead for minutes.
///
/// Only transport-level failures count against health: a peer that
/// *answers* — even with an error frame — is alive, and its counter
/// resets. [`ClusterError::UnknownPeer`] (no route configured)
/// neither counts nor retries; it is an address-book problem, not a
/// link problem.
///
/// The wrapper composes with everything that takes a [`Transport`]:
/// gossip loops, [`ClusterClient`](crate::ClusterClient), fault
/// injection in tests.
pub struct Resilient<T> {
    inner: T,
    retry: RetryPolicy,
    health: HealthPolicy,
    peers: Mutex<HashMap<NodeId, PeerHealth>>,
    rng: Mutex<WyRand>,
}

impl<T: Transport> Resilient<T> {
    /// Wraps `inner` with the default policies.
    pub fn new(inner: T) -> Self {
        Self::with_policies(inner, RetryPolicy::default(), HealthPolicy::default())
    }

    /// Wraps `inner` with explicit retry and health policies.
    pub fn with_policies(inner: T, retry: RetryPolicy, health: HealthPolicy) -> Self {
        Resilient {
            inner,
            retry,
            health,
            peers: Mutex::new(HashMap::new()),
            rng: Mutex::new(WyRand::new(retry.jitter_seed)),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// True when `peer` is currently suspected down.
    pub fn is_suspect(&self, peer: NodeId) -> bool {
        matches!(
            self.peers.lock().get(&peer).map(|h| h.state),
            Some(PeerState::Suspect { .. })
        )
    }

    /// Every currently suspect peer, ascending.
    pub fn suspects(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .peers
            .lock()
            .iter()
            .filter(|(_, h)| matches!(h.state, PeerState::Suspect { .. }))
            .map(|(&peer, _)| peer)
            .collect();
        out.sort_unstable();
        out
    }

    /// Current consecutive-failure count for `peer` (0 when unknown or
    /// healthy since its last success).
    pub fn consecutive_failures(&self, peer: NodeId) -> u32 {
        self.peers
            .lock()
            .get(&peer)
            .map(|h| h.consecutive_failures)
            .unwrap_or(0)
    }

    /// Clears all recorded state for `peer` — call when a node is
    /// known to have restarted and re-advertised, so the first
    /// exchange is not burned as a half-open probe.
    pub fn forget(&self, peer: NodeId) {
        self.peers.lock().remove(&peer);
    }

    /// Orders `peers` healthiest first: non-suspect before suspect,
    /// then by fewest consecutive failures, ties broken by id for
    /// determinism. This is how bootstrap picks its donor — the peer
    /// that has been answering gossip is tried before the one that
    /// just timed out.
    pub fn healthy_first(&self, peers: &[NodeId]) -> Vec<NodeId> {
        let mut out = peers.to_vec();
        out.sort_by_key(|&peer| (self.is_suspect(peer), self.consecutive_failures(peer), peer));
        out
    }

    /// Consults (and updates) the health gate for one exchange.
    fn admit(&self, peer: NodeId) -> Admission {
        let mut peers = self.peers.lock();
        let Some(entry) = peers.get_mut(&peer) else {
            return Admission::Open;
        };
        match entry.state {
            PeerState::Healthy => Admission::Open,
            PeerState::Suspect { retry_at } => {
                let now = Instant::now();
                if now < retry_at {
                    Admission::Refuse
                } else {
                    // Re-arm the window immediately so concurrent
                    // callers keep failing fast while this one probes.
                    entry.state = PeerState::Suspect {
                        retry_at: now + self.health.probe_after,
                    };
                    Admission::Probe
                }
            }
        }
    }

    fn record_success(&self, peer: NodeId) {
        let mut peers = self.peers.lock();
        if let Some(entry) = peers.get_mut(&peer) {
            entry.consecutive_failures = 0;
            entry.state = PeerState::Healthy;
        }
    }

    fn record_failure(&self, peer: NodeId) {
        let mut peers = self.peers.lock();
        let entry = peers.entry(peer).or_insert(PeerHealth {
            consecutive_failures: 0,
            state: PeerState::Healthy,
        });
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        if entry.consecutive_failures >= self.health.suspect_after.max(1) {
            entry.state = PeerState::Suspect {
                retry_at: Instant::now() + self.health.probe_after,
            };
        }
    }

    /// Jittered exponential backoff before attempt `attempt + 1`
    /// (`attempt` counts from 1): `base · 2^(attempt−1)` capped at
    /// `max_backoff`, scaled by a factor in `[0.5, 1.5)`.
    fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .retry
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = doubled.min(self.retry.max_backoff);
        let jitter = 0.5 + self.rng.lock().unit_exclusive();
        capped.mul_f64(jitter)
    }
}

impl<T: Transport> Transport for Resilient<T> {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        let budget = match self.admit(peer) {
            Admission::Refuse => return Err(ClusterError::Suspect(peer)),
            Admission::Probe => 1,
            Admission::Open => self.retry.max_attempts.max(1),
        };
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.inner.request(peer, message) {
                // Only link-level failures retry and count against
                // health; anything else means the exchange reached a
                // live peer.
                Err(ClusterError::Transport(detail)) => {
                    if attempt < budget {
                        std::thread::sleep(self.backoff(attempt));
                        continue;
                    }
                    self.record_failure(peer);
                    return Err(ClusterError::Transport(detail));
                }
                Err(ClusterError::UnknownPeer(peer)) => {
                    return Err(ClusterError::UnknownPeer(peer));
                }
                outcome => {
                    self.record_success(peer);
                    return outcome;
                }
            }
        }
    }
}
