//! Error domain of cluster operations.

use crate::wire::{ErrorCode, FrameError, NodeId, WireError};
use sketch_store::StoreError;

/// Errors surfaced by cluster nodes, transports and clients.
#[derive(Debug)]
pub enum ClusterError {
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The transport could not complete the exchange (connection
    /// refused, reset, dropped frame, partition, …). Transient by
    /// nature: delta sync retries on the next round.
    Transport(String),
    /// The target node is not known to the transport.
    UnknownPeer(NodeId),
    /// The peer is currently suspected down by failure tracking (see
    /// `Resilient`): the exchange was refused locally, without
    /// touching the network, until a half-open probe clears it.
    Suspect(NodeId),
    /// The remote node answered with an error.
    Remote {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// The remote node's detail string.
        detail: String,
    },
    /// A key holds no sketch (local or remote).
    KeyNotFound(String),
    /// A shipped state's configuration or seed does not match.
    Incompatible(String),
    /// A compact payload failed to decompress.
    BadPayload(String),
    /// The peer answered with a message type the exchange does not
    /// allow.
    Protocol(String),
}

impl ClusterError {
    /// Maps a remote error frame to the matching local variant, so
    /// callers can branch on [`ClusterError::KeyNotFound`] without
    /// caring whether the miss was local or remote.
    pub fn from_remote(code: ErrorCode, detail: String) -> Self {
        match code {
            ErrorCode::KeyNotFound => ClusterError::KeyNotFound(detail),
            ErrorCode::Incompatible => ClusterError::Incompatible(detail),
            ErrorCode::BadPayload => ClusterError::BadPayload(detail),
            _ => ClusterError::Remote { code, detail },
        }
    }

    /// True when the failure is a missing key rather than a fault.
    pub fn is_key_not_found(&self) -> bool {
        matches!(self, ClusterError::KeyNotFound(_))
    }

    /// True for transport-level failures that a later retry may clear
    /// (the anti-entropy loop treats these as routine).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ClusterError::Transport(_) | ClusterError::UnknownPeer(_) | ClusterError::Suspect(_)
        )
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Wire(error) => write!(f, "wire protocol error: {error}"),
            ClusterError::Transport(detail) => write!(f, "transport failed: {detail}"),
            ClusterError::UnknownPeer(peer) => write!(f, "no route to node {peer}"),
            ClusterError::Suspect(peer) => {
                write!(f, "node {peer} suspected down; exchange skipped")
            }
            ClusterError::Remote { code, detail } => {
                write!(f, "remote node refused ({code:?}): {detail}")
            }
            ClusterError::KeyNotFound(key) => write!(f, "no sketch under key {key:?}"),
            ClusterError::Incompatible(detail) => {
                write!(f, "incompatible sketch state: {detail}")
            }
            ClusterError::BadPayload(detail) => {
                write!(f, "compact payload rejected: {detail}")
            }
            ClusterError::Protocol(detail) => {
                write!(f, "unexpected response: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<WireError> for ClusterError {
    fn from(error: WireError) -> Self {
        ClusterError::Wire(error)
    }
}

impl From<FrameError> for ClusterError {
    fn from(error: FrameError) -> Self {
        match error {
            FrameError::Io(error) => ClusterError::Transport(error.to_string()),
            FrameError::Wire(error) => ClusterError::Wire(error),
        }
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(error: std::io::Error) -> Self {
        ClusterError::Transport(error.to_string())
    }
}

impl From<StoreError> for ClusterError {
    fn from(error: StoreError) -> Self {
        match error {
            StoreError::KeyNotFound(key) => ClusterError::KeyNotFound(key),
            StoreError::Incompatible(source) => ClusterError::Incompatible(source.to_string()),
            other => ClusterError::Protocol(other.to_string()),
        }
    }
}
