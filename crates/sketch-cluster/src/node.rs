//! One replica: a [`SketchStore`] plus the replication state machine.
//!
//! A [`ClusterNode`] answers protocol requests ([`ClusterNode::handle`])
//! and *pulls* deltas from its peers ([`ClusterNode::sync_with`]):
//!
//! * each node tracks, per peer, the **high-water version** it has
//!   applied from that peer's write counter;
//! * a sync round asks every peer for "keys whose version moved past my
//!   high-water mark" and union-merges the answers into the local
//!   store — versions only advance locally when registers actually
//!   change, so a mesh of mutually syncing replicas quiesces once
//!   everyone holds everything;
//! * a periodic **anti-entropy** pull re-fetches one peer's *full*
//!   state (high-water 0), healing whatever individual delta exchanges
//!   lost to drops, crashes or partitions.
//!
//! The state machine performs no I/O of its own: every exchange goes
//! through a caller-supplied [`Transport`], so the same node code runs
//! over real TCP sockets, the deterministic in-memory network, or the
//! fault-injecting wrapper — which is what makes convergence and
//! partition tests exact instead of timing-dependent.

use crate::bootstrap::{BootstrapReport, MAX_SNAPSHOT_CHUNK_BYTES};
use crate::error::ClusterError;
use crate::transport::Transport;
use crate::wire::{ErrorCode, Message, NodeId, WireEntry, WireNeighbor};
use parking_lot::Mutex;
use sketch_core::{
    BatchInsert, CardinalityEstimator, CompactSketch, JointEstimator, Mergeable, Signature,
};
use sketch_math::crc32;
use sketch_store::{SketchStore, StoreError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The trait bundle a sketch family needs to serve in a cluster:
/// batched recording, union merging, joint + cardinality estimation,
/// register signatures (similarity queries), a compact wire codec, and
/// value semantics. Implemented automatically for every type with the
/// parts — all eight families in this workspace qualify.
pub trait ClusterSketch:
    BatchInsert
    + Mergeable
    + JointEstimator
    + CardinalityEstimator
    + Signature
    + CompactSketch
    + Clone
    + PartialEq
    + Send
    + Sync
    + 'static
{
}

impl<T> ClusterSketch for T where
    T: BatchInsert
        + Mergeable
        + JointEstimator
        + CardinalityEstimator
        + Signature
        + CompactSketch
        + Clone
        + PartialEq
        + Send
        + Sync
        + 'static
{
}

/// What one delta exchange with a peer accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// The peer the delta was pulled from.
    pub peer: NodeId,
    /// Keys the peer shipped (entries in the delta frame).
    pub keys_received: usize,
    /// Keys whose local registers actually changed when merged.
    pub keys_changed: usize,
    /// The peer's write-counter value the sweep covered — the new
    /// high-water mark.
    pub up_to: u64,
}

/// How often a gossip tick upgrades one peer's delta pull to a full
/// anti-entropy pull (every N-th tick, rotating through peers).
pub const DEFAULT_FULL_SYNC_EVERY: u64 = 8;

/// How many snapshot exports a donor keeps alive at once. Two is
/// enough for one in-flight bootstrap plus one straggler resuming a
/// superseded stream; anything older re-exports on demand.
const MAX_CACHED_EXPORTS: usize = 2;

/// One cached checkpoint image being streamed to bootstrappers. The
/// image is immutable once exported; chunks are sliced out of it on
/// demand, so a resume after transport failure re-reads the same
/// bytes.
struct SnapshotExport {
    id: u64,
    epoch: u64,
    image: Arc<[u8]>,
}

/// One replica of the cluster: a node id, the local store, and the
/// per-peer replication bookkeeping.
pub struct ClusterNode<S> {
    id: NodeId,
    peers: Vec<NodeId>,
    store: SketchStore<S>,
    /// Decoding prototype for compact payloads shipped by peers (same
    /// factory configuration cluster-wide).
    prototype: S,
    /// Per-peer high-water mark: the highest write-counter value of
    /// that peer whose keys have all been applied here.
    high_water: Mutex<HashMap<NodeId, u64>>,
    /// Gossip tick counter; drives the anti-entropy rotation.
    ticks: AtomicU64,
    full_sync_every: u64,
    /// Donor side of node bootstrap: cached checkpoint images being
    /// streamed out, newest last.
    exports: Mutex<Vec<SnapshotExport>>,
    /// Export id allocator (ids start at 1; 0 on the wire means
    /// "start a fresh stream").
    export_ids: AtomicU64,
    /// The report of the last completed bootstrap of *this* node, if
    /// any — kept for operators ([`last_bootstrap`](Self::last_bootstrap)).
    last_bootstrap: Mutex<Option<BootstrapReport>>,
}

impl<S: ClusterSketch> ClusterNode<S> {
    /// Wraps a store as cluster node `id` with the given peer set
    /// (`id` itself is filtered out defensively).
    ///
    /// The store's factory fixes the sketch configuration and hash
    /// seed; **every node of one cluster must be built from the same
    /// factory**, or shipped payloads will be rejected as
    /// incompatible.
    pub fn new(id: NodeId, peers: impl IntoIterator<Item = NodeId>, store: SketchStore<S>) -> Self {
        let prototype = store.empty_sketch();
        let peers: Vec<NodeId> = peers.into_iter().filter(|&peer| peer != id).collect();
        ClusterNode {
            id,
            peers,
            store,
            prototype,
            high_water: Mutex::new(HashMap::new()),
            ticks: AtomicU64::new(0),
            full_sync_every: DEFAULT_FULL_SYNC_EVERY,
            exports: Mutex::new(Vec::new()),
            export_ids: AtomicU64::new(0),
            last_bootstrap: Mutex::new(None),
        }
    }

    /// Overrides how often a gossip tick runs a full anti-entropy pull
    /// (default [`DEFAULT_FULL_SYNC_EVERY`]; `0` disables them).
    pub fn full_sync_every(mut self, every: u64) -> Self {
        self.full_sync_every = every;
        self
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The peers this node syncs from.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// The local store.
    pub fn store(&self) -> &SketchStore<S> {
        &self.store
    }

    /// The high-water mark currently held for `peer` (0 when no delta
    /// has been applied yet).
    pub fn high_water(&self, peer: NodeId) -> u64 {
        self.high_water.lock().get(&peer).copied().unwrap_or(0)
    }

    /// Answers one protocol request. Never panics on request content:
    /// malformed parameters and store failures come back as
    /// [`Message::Error`].
    pub fn handle(&self, request: Message) -> Message {
        match request {
            Message::DeltaRequest { after } => {
                let delta = self.store.delta_since(after);
                Message::Delta {
                    up_to: delta.up_to,
                    entries: delta
                        .entries
                        .into_iter()
                        .map(|entry| WireEntry {
                            key: entry.key,
                            version: entry.version,
                            payload: entry.payload,
                        })
                        .collect(),
                }
            }
            // A pushed delta (duplicated or relayed frame): merging is
            // idempotent, so applying it unconditionally is safe. No
            // high-water bookkeeping — only pulls advance marks.
            Message::Delta { entries, .. } => match self.apply_entries(&entries) {
                Ok(_) => Message::Ack,
                Err(error) => error_message(&error),
            },
            Message::Ingest { key, elements } => {
                self.store.ingest(&key, &elements);
                Message::Ack
            }
            Message::Cardinality { key } => match self.store.cardinality(&key) {
                Ok(value) => Message::Value {
                    bits: value.to_bits(),
                },
                Err(error) => store_error_message(&error),
            },
            Message::Jaccard { left, right } => match self.store.jaccard(&left, &right) {
                Ok(value) => Message::Value {
                    bits: value.to_bits(),
                },
                Err(error) => store_error_message(&error),
            },
            Message::SimilarKeys {
                key,
                k,
                threshold_bits,
            } => {
                let threshold = f64::from_bits(threshold_bits);
                if !(0.0..=1.0).contains(&threshold) {
                    return Message::Error {
                        code: ErrorCode::BadRequest,
                        detail: format!("similarity threshold {threshold} outside [0, 1]"),
                    };
                }
                match self.store.similar_keys_at(&key, k as usize, threshold) {
                    Ok(neighbors) => Message::Neighbors {
                        items: neighbors
                            .into_iter()
                            .map(|n| WireNeighbor::new(n.key, n.quantities.jaccard))
                            .collect(),
                    },
                    Err(error) => store_error_message(&error),
                }
            }
            Message::UnionSketch { keys } => {
                let present: Vec<&str> = keys
                    .iter()
                    .map(String::as_str)
                    .filter(|key| self.store.contains_key(key))
                    .collect();
                if present.is_empty() {
                    return Message::Error {
                        code: ErrorCode::KeyNotFound,
                        detail: "none of the requested keys is present".to_owned(),
                    };
                }
                match self.store.merge_keys(&present) {
                    Ok(merged) => Message::Payload {
                        bytes: merged.compress(),
                    },
                    Err(error) => store_error_message(&error),
                }
            }
            Message::SnapshotRequest {
                snapshot_id,
                chunk,
                chunk_bytes,
                max_lag,
            } => self.serve_snapshot_chunk(snapshot_id, chunk, chunk_bytes, max_lag),
            // Shutdown is transport-level: the serving loop intercepts
            // it; a node reached in-process just acknowledges.
            Message::Shutdown => Message::Ack,
            other => Message::Error {
                code: ErrorCode::Unsupported,
                detail: format!("not a request message: {other:?}"),
            },
        }
    }

    /// Merges a batch of shipped entries into the local store.
    /// Returns `(keys_received, keys_changed)`.
    fn apply_entries(&self, entries: &[WireEntry]) -> Result<(usize, usize), ClusterError> {
        let mut changed = 0;
        for entry in entries {
            let sketch = S::decompress(&self.prototype, &entry.payload)
                .map_err(|error| ClusterError::BadPayload(error.to_string()))?;
            if self.store.merge_in(&entry.key, &sketch)? {
                changed += 1;
            }
        }
        Ok((entries.len(), changed))
    }

    /// Pulls one delta from `peer` over `transport`: asks for
    /// everything past the current high-water mark, merges the
    /// entries, and advances the mark (monotonically — a reordered
    /// stale response can never regress it).
    pub fn sync_with(
        &self,
        transport: &impl Transport,
        peer: NodeId,
    ) -> Result<SyncReport, ClusterError> {
        self.pull_from(transport, peer, self.high_water(peer))
    }

    /// Anti-entropy pull: fetches `peer`'s **full** state regardless
    /// of the high-water mark. Heals any divergence left behind by
    /// dropped frames or partitions, at full-transfer cost.
    pub fn full_sync_with(
        &self,
        transport: &impl Transport,
        peer: NodeId,
    ) -> Result<SyncReport, ClusterError> {
        self.pull_from(transport, peer, 0)
    }

    fn pull_from(
        &self,
        transport: &impl Transport,
        peer: NodeId,
        after: u64,
    ) -> Result<SyncReport, ClusterError> {
        let response = transport.request(peer, &Message::DeltaRequest { after })?;
        match response {
            Message::Delta { up_to, entries } => {
                let (keys_received, keys_changed) = self.apply_entries(&entries)?;
                let mut marks = self.high_water.lock();
                let mark = marks.entry(peer).or_insert(0);
                *mark = (*mark).max(up_to);
                let up_to = *mark;
                drop(marks);
                Ok(SyncReport {
                    peer,
                    keys_received,
                    keys_changed,
                    up_to,
                })
            }
            Message::Error { code, detail } => Err(ClusterError::from_remote(code, detail)),
            other => Err(ClusterError::Protocol(format!(
                "expected Delta, got {other:?}"
            ))),
        }
    }

    /// One delta pull from every peer. Per-peer failures are returned,
    /// not raised — a down peer must not stop the others from syncing.
    pub fn sync_round(
        &self,
        transport: &impl Transport,
    ) -> Vec<(NodeId, Result<SyncReport, ClusterError>)> {
        self.peers
            .iter()
            .map(|&peer| (peer, self.sync_with(transport, peer)))
            .collect()
    }

    /// One gossip tick: a delta pull from every peer, plus — every
    /// [`full_sync_every`](Self::full_sync_every)-th tick — a full
    /// anti-entropy pull from one peer, rotating through the peer set.
    /// This is what the TCP server's gossip thread runs on its timer;
    /// tests drive it directly for determinism.
    pub fn gossip_tick(
        &self,
        transport: &impl Transport,
    ) -> Vec<(NodeId, Result<SyncReport, ClusterError>)> {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let mut reports = self.sync_round(transport);
        if self.full_sync_every > 0 && !self.peers.is_empty() && tick % self.full_sync_every == 0 {
            let peer = self.peers[(tick / self.full_sync_every) as usize % self.peers.len()];
            reports.push((peer, self.full_sync_with(transport, peer)));
        }
        reports
    }

    /// The report of the last bootstrap this node completed, if any.
    pub fn last_bootstrap(&self) -> Option<BootstrapReport> {
        self.last_bootstrap.lock().clone()
    }

    pub(crate) fn set_last_bootstrap(&self, report: BootstrapReport) {
        *self.last_bootstrap.lock() = Some(report);
    }

    /// Advances the high-water mark held for `peer` to at least
    /// `up_to` (monotonic — a stale value can never regress it).
    pub(crate) fn advance_high_water(&self, peer: NodeId, up_to: u64) {
        let mut marks = self.high_water.lock();
        let mark = marks.entry(peer).or_insert(0);
        *mark = (*mark).max(up_to);
    }

    /// Donor side of node bootstrap: serves one CRC-framed chunk of a
    /// checkpoint image.
    ///
    /// `snapshot_id == 0` (or an id this donor no longer caches)
    /// starts a fresh export and answers with **chunk 0** of the new
    /// stream regardless of the requested index — the requester
    /// detects the id change and restarts accumulation, so a donor
    /// restart mid-stream cannot splice two different images together.
    fn serve_snapshot_chunk(
        &self,
        snapshot_id: u64,
        chunk: u32,
        chunk_bytes: u32,
        max_lag: u64,
    ) -> Message {
        let chunk_len = (chunk_bytes as usize).min(MAX_SNAPSHOT_CHUNK_BYTES);
        if chunk_len == 0 {
            return Message::Error {
                code: ErrorCode::BadRequest,
                detail: "snapshot chunk_bytes must be at least 1".to_owned(),
            };
        }
        let mut exports = self.exports.lock();
        let cached = (snapshot_id != 0)
            .then(|| exports.iter().find(|export| export.id == snapshot_id))
            .flatten();
        let (id, epoch, image, chunk) = match cached {
            Some(export) => (export.id, export.epoch, Arc::clone(&export.image), chunk),
            None => {
                // Unknown stream: refuse if there is nothing to ship,
                // otherwise export fresh and restart at chunk 0.
                if self.store.is_empty() {
                    return Message::Error {
                        code: ErrorCode::Unavailable,
                        detail: "nothing to bootstrap from: store is empty".to_owned(),
                    };
                }
                let exported = self.store.export_checkpoint(max_lag);
                let id = self.export_ids.fetch_add(1, Ordering::Relaxed) + 1;
                let image: Arc<[u8]> = exported.bytes.into();
                exports.push(SnapshotExport {
                    id,
                    epoch: exported.write_epoch,
                    image: Arc::clone(&image),
                });
                if exports.len() > MAX_CACHED_EXPORTS {
                    exports.remove(0);
                }
                (id, exported.write_epoch, image, 0)
            }
        };
        drop(exports);
        let total_chunks = image.len().div_ceil(chunk_len).max(1) as u32;
        if chunk >= total_chunks {
            return Message::Error {
                code: ErrorCode::BadRequest,
                detail: format!("snapshot chunk {chunk} out of range (total {total_chunks})"),
            };
        }
        let start = chunk as usize * chunk_len;
        let end = (start + chunk_len).min(image.len());
        let data = image[start..end].to_vec();
        Message::SnapshotChunk {
            snapshot_id: id,
            epoch,
            total_bytes: image.len() as u64,
            chunk,
            total_chunks,
            crc: crc32(&data),
            data,
        }
    }
}

/// Encodes a [`ClusterError`] as a wire error frame.
fn error_message(error: &ClusterError) -> Message {
    let (code, detail) = match error {
        ClusterError::KeyNotFound(key) => (ErrorCode::KeyNotFound, key.clone()),
        ClusterError::Incompatible(detail) => (ErrorCode::Incompatible, detail.clone()),
        ClusterError::BadPayload(detail) => (ErrorCode::BadPayload, detail.clone()),
        other => (ErrorCode::Unsupported, other.to_string()),
    };
    Message::Error { code, detail }
}

/// Encodes a [`StoreError`] as a wire error frame.
fn store_error_message(error: &StoreError) -> Message {
    let (code, detail) = match error {
        StoreError::KeyNotFound(key) => (ErrorCode::KeyNotFound, key.clone()),
        StoreError::Incompatible(source) => (ErrorCode::Incompatible, source.to_string()),
        other => (ErrorCode::BadRequest, other.to_string()),
    };
    Message::Error { code, detail }
}
