//! Fault injection for convergence tests.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and, driven by a seeded
//! [`WyRand`], makes exchanges fail the ways real networks do:
//!
//! * **drop** — the exchange errors; the caller saw nothing;
//! * **stale replay** — a previously recorded response for the same
//!   peer is returned instead of a fresh one. From the caller's view
//!   this is a duplicated or reordered frame arriving late: it must be
//!   absorbed by idempotent merging and the monotonic high-water mark;
//! * **duplicate** — the request is delivered twice (the peer handles
//!   it both times), modeling a retransmitted request frame;
//! * **partition** — a peer set is unreachable until healed, modeling
//!   a network split.
//!
//! The wrapper is deterministic for a fixed seed and call sequence —
//! rerunning a failing test replays the identical fault schedule.

use crate::error::ClusterError;
use crate::transport::Transport;
use crate::wire::{Message, NodeId};
use parking_lot::Mutex;
use sketch_rand::{Rng64, WyRand};
use std::collections::{HashMap, HashSet};

/// Per-fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Chance an exchange is dropped entirely.
    pub drop: f64,
    /// Chance a recorded earlier response is replayed instead of
    /// performing a fresh exchange.
    pub stale_replay: f64,
    /// Chance the request is delivered to the peer twice.
    pub duplicate: f64,
}

impl FaultPlan {
    /// A plan that never injects anything (partitions still work).
    pub fn none() -> Self {
        FaultPlan {
            drop: 0.0,
            stale_replay: 0.0,
            duplicate: 0.0,
        }
    }

    /// A lossy-but-livable mix: 20% drops, 10% stale replays, 10%
    /// duplicated deliveries.
    pub fn lossy() -> Self {
        FaultPlan {
            drop: 0.20,
            stale_replay: 0.10,
            duplicate: 0.10,
        }
    }
}

struct FaultState {
    rng: WyRand,
    /// Last few responses per peer, fodder for stale replays.
    recorded: HashMap<NodeId, Vec<Message>>,
    /// Peers currently unreachable through this transport.
    partitioned: HashSet<NodeId>,
    injected: u64,
}

/// How many old responses per peer are kept for stale replays.
const REPLAY_DEPTH: usize = 4;

/// A [`Transport`] wrapper that injects faults per [`FaultPlan`].
///
/// Each node under test gets its **own** wrapper around the shared
/// inner network, so partitions can be asymmetric and fault schedules
/// independent per node.
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, drawing fault decisions from `seed`.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        FaultyTransport {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng: WyRand::new(seed),
                recorded: HashMap::new(),
                partitioned: HashSet::new(),
                injected: 0,
            }),
        }
    }

    /// Makes `peer` unreachable until [`heal`](Self::heal)ed.
    pub fn partition(&self, peer: NodeId) {
        self.state.lock().partitioned.insert(peer);
    }

    /// Restores reachability of `peer`.
    pub fn heal(&self, peer: NodeId) {
        self.state.lock().partitioned.remove(&peer);
    }

    /// Restores reachability of every peer.
    pub fn heal_all(&self) {
        self.state.lock().partitioned.clear();
    }

    /// How many faults (drops, replays, duplicates) have fired so far
    /// — lets tests assert the schedule actually injected something.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        enum Verdict {
            Partitioned,
            Drop,
            Replay(Message),
            Duplicate,
            Clean,
        }
        let verdict = {
            let mut state = self.state.lock();
            if state.partitioned.contains(&peer) {
                Verdict::Partitioned
            } else if state.rng.unit_exclusive() < self.plan.drop {
                state.injected += 1;
                Verdict::Drop
            } else if state.rng.unit_exclusive() < self.plan.stale_replay {
                // Replay only if something was recorded for this peer;
                // otherwise run the exchange cleanly.
                let roll = state.rng.next_u64() as usize;
                let replay = state
                    .recorded
                    .get(&peer)
                    .filter(|history| !history.is_empty())
                    .map(|history| history[roll % history.len()].clone());
                match replay {
                    Some(message) => {
                        state.injected += 1;
                        Verdict::Replay(message)
                    }
                    None => Verdict::Clean,
                }
            } else if state.rng.unit_exclusive() < self.plan.duplicate {
                state.injected += 1;
                Verdict::Duplicate
            } else {
                Verdict::Clean
            }
        };
        match verdict {
            Verdict::Partitioned => Err(ClusterError::Transport(format!(
                "partitioned from node {peer}"
            ))),
            Verdict::Drop => Err(ClusterError::Transport(format!(
                "frame to node {peer} dropped"
            ))),
            Verdict::Replay(message) => Ok(message),
            Verdict::Duplicate => {
                // The peer sees the request twice; the caller gets the
                // second response.
                let _ = self.inner.request(peer, message)?;
                let response = self.inner.request(peer, message)?;
                self.record(peer, &response);
                Ok(response)
            }
            Verdict::Clean => {
                let response = self.inner.request(peer, message)?;
                self.record(peer, &response);
                Ok(response)
            }
        }
    }
}

impl<T: Transport> FaultyTransport<T> {
    fn record(&self, peer: NodeId, response: &Message) {
        let mut state = self.state.lock();
        let history = state.recorded.entry(peer).or_default();
        if history.len() == REPLAY_DEPTH {
            history.remove(0);
        }
        history.push(response.clone());
    }
}
