//! Fault injection for convergence tests.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and, driven by a seeded
//! [`WyRand`], makes exchanges fail the ways real networks do:
//!
//! * **drop** — the exchange errors; the caller saw nothing;
//! * **stale replay** — a previously recorded response *to the same
//!   kind of request* for the same peer is returned instead of a
//!   fresh one. From the caller's view this is a duplicated or
//!   reordered frame arriving late: it must be absorbed by idempotent
//!   merging, the monotonic high-water mark, or (for snapshot
//!   streams) chunk-index validation;
//! * **duplicate** — the request is delivered twice (the peer handles
//!   it both times), modeling a retransmitted request frame;
//! * **partition** — a peer set is unreachable until healed, modeling
//!   a network split;
//! * **mid-stream cut** — a one-shot, counter-armed failure of a
//!   snapshot exchange ([`cut_snapshot_stream`]
//!   (FaultyTransport::cut_snapshot_stream)): the first N chunk
//!   exchanges pass, then one fails, modeling a donor connection
//!   dying partway through a bootstrap transfer.
//!
//! The wrapper is deterministic for a fixed seed and call sequence:
//! every `request` consumes exactly the same number of values from
//! the random stream whatever verdict falls, so the fault schedule
//! depends only on the *order and count* of exchanges — adding new
//! message types to the protocol, or changing which faults a plan
//! enables, cannot shift the decisions made for later exchanges.
//! Rerunning a failing test replays the identical schedule.

use crate::error::ClusterError;
use crate::transport::Transport;
use crate::wire::{Message, NodeId};
use parking_lot::Mutex;
use sketch_rand::{Rng64, WyRand};
use std::collections::{HashMap, HashSet};

/// Per-fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Chance an exchange is dropped entirely.
    pub drop: f64,
    /// Chance a recorded earlier response is replayed instead of
    /// performing a fresh exchange.
    pub stale_replay: f64,
    /// Chance the request is delivered to the peer twice.
    pub duplicate: f64,
}

impl FaultPlan {
    /// A plan that never injects anything (partitions and armed
    /// snapshot cuts still work).
    pub fn none() -> Self {
        FaultPlan {
            drop: 0.0,
            stale_replay: 0.0,
            duplicate: 0.0,
        }
    }

    /// A lossy-but-livable mix: 20% drops, 10% stale replays, 10%
    /// duplicated deliveries.
    pub fn lossy() -> Self {
        FaultPlan {
            drop: 0.20,
            stale_replay: 0.10,
            duplicate: 0.10,
        }
    }
}

struct FaultState {
    rng: WyRand,
    /// Last few responses per (peer, request kind), fodder for stale
    /// replays. Keying by request kind keeps a replay *plausible* —
    /// a delta response is never replayed to a snapshot request —
    /// which models frame reordering within one exchange type rather
    /// than protocol corruption.
    recorded: HashMap<(NodeId, &'static str), Vec<Message>>,
    /// Peers currently unreachable through this transport.
    partitioned: HashSet<NodeId>,
    /// Armed one-shot snapshot-stream cuts: peer → how many more
    /// snapshot exchanges pass before one fails.
    snapshot_cuts: HashMap<NodeId, u32>,
    injected: u64,
}

/// How many old responses per (peer, kind) are kept for stale replays.
const REPLAY_DEPTH: usize = 4;

/// A [`Transport`] wrapper that injects faults per [`FaultPlan`].
///
/// Each node under test gets its **own** wrapper around the shared
/// inner network, so partitions can be asymmetric and fault schedules
/// independent per node.
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, drawing fault decisions from `seed`.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        FaultyTransport {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng: WyRand::new(seed),
                recorded: HashMap::new(),
                partitioned: HashSet::new(),
                snapshot_cuts: HashMap::new(),
                injected: 0,
            }),
        }
    }

    /// Makes `peer` unreachable until [`heal`](Self::heal)ed.
    pub fn partition(&self, peer: NodeId) {
        self.state.lock().partitioned.insert(peer);
    }

    /// Restores reachability of `peer`.
    pub fn heal(&self, peer: NodeId) {
        self.state.lock().partitioned.remove(&peer);
    }

    /// Restores reachability of every peer.
    pub fn heal_all(&self) {
        self.state.lock().partitioned.clear();
    }

    /// Arms a one-shot mid-stream cut against `peer`: the next
    /// `after_chunks` snapshot exchanges pass through cleanly, then
    /// exactly one fails with a transport error — the donor's
    /// connection dying partway through a bootstrap transfer — after
    /// which the stream flows again. Counter-based, not random, so
    /// tests cut at an exact chunk boundary.
    pub fn cut_snapshot_stream(&self, peer: NodeId, after_chunks: u32) {
        self.state.lock().snapshot_cuts.insert(peer, after_chunks);
    }

    /// How many faults (drops, replays, duplicates, snapshot cuts)
    /// have fired so far — lets tests assert the schedule actually
    /// injected something.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        enum Verdict {
            Partitioned,
            Cut,
            Drop,
            Replay(Message),
            Duplicate,
            Clean,
        }
        let kind = message.kind();
        let verdict = {
            let mut state = self.state.lock();
            // Fixed draw discipline: exactly three unit rolls and one
            // index draw per request, whatever the verdict — see the
            // module docs for why.
            let drop_roll = state.rng.unit_exclusive();
            let replay_roll = state.rng.unit_exclusive();
            let duplicate_roll = state.rng.unit_exclusive();
            let pick = state.rng.next_u64() as usize;
            if state.partitioned.contains(&peer) {
                Verdict::Partitioned
            } else if kind == "snapshot_request" && state.snapshot_cuts.contains_key(&peer) {
                // An armed cut overrides the random schedule for
                // snapshot exchanges: pass deterministically until
                // the counter runs out, then fail exactly once.
                let remaining = state
                    .snapshot_cuts
                    .get_mut(&peer)
                    .expect("checked contains_key above");
                if *remaining == 0 {
                    state.snapshot_cuts.remove(&peer);
                    state.injected += 1;
                    Verdict::Cut
                } else {
                    *remaining -= 1;
                    Verdict::Clean
                }
            } else if drop_roll < self.plan.drop {
                state.injected += 1;
                Verdict::Drop
            } else if replay_roll < self.plan.stale_replay {
                // Replay only if something was recorded for this peer
                // and request kind; otherwise run the exchange
                // cleanly.
                let replay = state
                    .recorded
                    .get(&(peer, kind))
                    .filter(|history| !history.is_empty())
                    .map(|history| history[pick % history.len()].clone());
                match replay {
                    Some(message) => {
                        state.injected += 1;
                        Verdict::Replay(message)
                    }
                    None => Verdict::Clean,
                }
            } else if duplicate_roll < self.plan.duplicate {
                state.injected += 1;
                Verdict::Duplicate
            } else {
                Verdict::Clean
            }
        };
        match verdict {
            Verdict::Partitioned => Err(ClusterError::Transport(format!(
                "partitioned from node {peer}"
            ))),
            Verdict::Cut => Err(ClusterError::Transport(format!(
                "snapshot stream to node {peer} cut mid-transfer"
            ))),
            Verdict::Drop => Err(ClusterError::Transport(format!(
                "frame to node {peer} dropped"
            ))),
            Verdict::Replay(message) => Ok(message),
            Verdict::Duplicate => {
                // The peer sees the request twice; the caller gets the
                // second response.
                let _ = self.inner.request(peer, message)?;
                let response = self.inner.request(peer, message)?;
                self.record(peer, kind, &response);
                Ok(response)
            }
            Verdict::Clean => {
                let response = self.inner.request(peer, message)?;
                self.record(peer, kind, &response);
                Ok(response)
            }
        }
    }
}

impl<T: Transport> FaultyTransport<T> {
    fn record(&self, peer: NodeId, kind: &'static str, response: &Message) {
        let mut state = self.state.lock();
        let history = state.recorded.entry((peer, kind)).or_default();
        if history.len() == REPLAY_DEPTH {
            history.remove(0);
        }
        history.push(response.clone());
    }
}
