//! The real-socket path: two nodes serving on 127.0.0.1 ephemeral
//! ports, syncing over actual TCP frames, answering a routed client,
//! and shutting down cleanly (threads joined, no leaks, no hangs).

use setsketch::{SetSketch1, SetSketchConfig};
use sketch_cluster::{
    ClusterClient, ClusterNode, HashRing, Message, TcpServer, TcpTransport, Transport,
};
use sketch_store::SketchStore;
use std::sync::Arc;

fn factory() -> impl Fn() -> SetSketch1 + Clone + Send + Sync + 'static {
    let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    move || SetSketch1::new(config, 13)
}

#[test]
fn two_tcp_nodes_converge_and_shut_down() {
    let make = factory();
    let ids = [0u32, 1];
    let nodes: Vec<_> = ids
        .iter()
        .map(|&id| {
            let store = SketchStore::builder(make.clone()).shards(4).build();
            Arc::new(ClusterNode::new(id, ids, store))
        })
        .collect();

    // Bind both servers on ephemeral loopback ports, then teach one
    // shared transport both addresses.
    let servers: Vec<TcpServer> = nodes
        .iter()
        .map(|node| TcpServer::serve(Arc::clone(node), "127.0.0.1:0").expect("bind loopback"))
        .collect();
    let transport = Arc::new(TcpTransport::new());
    for (&id, server) in ids.iter().zip(&servers) {
        transport.add_peer(id, server.local_addr());
    }

    // Reference store fed the full stream; the nodes get disjoint
    // halves through real Ingest frames.
    let reference = SketchStore::builder(make).shards(4).build();
    let ring = HashRing::new(&ids);
    let client = ClusterClient::new(
        Arc::clone(&transport),
        ring,
        nodes[0].store().empty_sketch(),
    );
    for user in 0..2_000u64 {
        let key = format!("shard-{}", user % 3);
        client.ingest(&key, &[user]).unwrap();
        reference.ingest(&key, &[user]);
    }

    // Sync over the sockets until quiescent.
    for round in 0.. {
        assert!(round < 8, "TCP cluster did not quiesce");
        let mut shipped = 0;
        for node in &nodes {
            for (_, report) in node.sync_round(&*transport) {
                shipped += report.expect("loopback sync").keys_received;
            }
        }
        if shipped == 0 {
            break;
        }
    }

    // Bit-for-bit convergence across the wire.
    for node in &nodes {
        for key in reference.keys() {
            assert_eq!(
                node.store().get(&key),
                reference.get(&key),
                "node {} state of {key:?} diverged over TCP",
                node.id()
            );
        }
    }
    let expected = reference.cardinality("shard-0").unwrap();
    assert_eq!(client.cardinality("shard-0").unwrap(), expected);

    // A Shutdown frame stops a server remotely; the socket then
    // refuses further exchanges.
    client.shutdown_node(0).unwrap();
    let addr0 = transport.peer_addr(0).unwrap();
    for server in servers {
        server.shutdown();
    }
    assert!(
        transport
            .request(
                0,
                &Message::Cardinality {
                    key: "shard-0".into()
                }
            )
            .is_err(),
        "node 0 still serving {addr0} after shutdown"
    );
}
