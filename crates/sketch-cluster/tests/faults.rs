//! Convergence under injected faults: dropped frames, stale replays,
//! duplicated deliveries and healed partitions must all be absorbed by
//! idempotent merging plus anti-entropy — every replica still ends up
//! bit-for-bit on the reference state, deterministically (seeded fault
//! schedules).

use setsketch::{SetSketch1, SetSketchConfig};
use sketch_cluster::{ClusterNode, FaultPlan, FaultyTransport, MemNetwork, NodeId};
use sketch_store::SketchStore;
use std::sync::Arc;

fn factory() -> impl Fn() -> SetSketch1 + Clone + Send + Sync + 'static {
    let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    move || SetSketch1::new(config, 5)
}

type Node = Arc<ClusterNode<SetSketch1>>;

/// Three nodes on one in-memory network, each reaching it through its
/// **own** fault wrapper (so partitions can be asymmetric and each
/// node draws an independent seeded fault schedule).
fn faulty_cluster(
    plan: FaultPlan,
) -> (
    Arc<MemNetwork>,
    Vec<Node>,
    Vec<FaultyTransport<Arc<MemNetwork>>>,
) {
    let ids: Vec<NodeId> = vec![0, 1, 2];
    let net = Arc::new(MemNetwork::new());
    let make = factory();
    let nodes: Vec<Node> = ids
        .iter()
        .map(|&id| {
            let store = SketchStore::builder(make.clone()).shards(4).build();
            Arc::new(ClusterNode::new(id, ids.iter().copied(), store))
        })
        .collect();
    for node in &nodes {
        net.register(Arc::clone(node));
    }
    let transports = ids
        .iter()
        .map(|&id| FaultyTransport::new(Arc::clone(&net), plan, 0xFA17 + id as u64))
        .collect();
    (net, nodes, transports)
}

fn reference_store() -> SketchStore<SetSketch1> {
    SketchStore::builder(factory()).shards(4).build()
}

fn ingest_disjoint(nodes: &[Node], reference: &SketchStore<SetSketch1>) {
    for (i, node) in nodes.iter().enumerate() {
        for key in 0..6u64 {
            let name = format!("stream-{key}");
            let slice: Vec<u64> = (0..400)
                .map(|j| (i as u64) * 1_000_000 + key * 1_000 + j)
                .collect();
            node.store().ingest(&name, &slice);
            reference.ingest(&name, &slice);
        }
    }
}

fn assert_converged(nodes: &[Node], reference: &SketchStore<SetSketch1>) {
    let mut expected = reference.keys();
    expected.sort_unstable();
    for node in nodes {
        let mut keys = node.store().keys();
        keys.sort_unstable();
        assert_eq!(keys, expected, "node {} key set diverged", node.id());
        for key in &expected {
            assert_eq!(
                node.store().get(key),
                reference.get(key),
                "node {} state of {key:?} diverged",
                node.id()
            );
        }
    }
}

/// Under a 20%-drop / 10%-replay / 10%-duplicate schedule, gossip
/// (delta pulls + rotating anti-entropy) still converges every replica
/// bit-for-bit — and the schedule demonstrably injected faults.
#[test]
fn lossy_network_still_converges() {
    let (_net, nodes, transports) = faulty_cluster(FaultPlan::lossy());
    let reference = reference_store();
    ingest_disjoint(&nodes, &reference);

    for _ in 0..40 {
        for (node, transport) in nodes.iter().zip(&transports) {
            // Per-peer failures are expected here; gossip just retries
            // next tick.
            let _ = node.gossip_tick(transport);
        }
    }

    let injected: u64 = transports.iter().map(|t| t.faults_injected()).sum();
    assert!(injected > 0, "the fault schedule never fired");
    assert_converged(&nodes, &reference);
}

/// A partitioned node diverges while cut off, keeps serving its own
/// writes, and converges after the partition heals — pure
/// anti-entropy, no operator intervention.
#[test]
fn healed_partition_converges() {
    let (_net, nodes, transports) = faulty_cluster(FaultPlan::none());
    let reference = reference_store();

    // Cut node 2 off in both directions.
    transports[2].partition(0);
    transports[2].partition(1);
    transports[0].partition(2);
    transports[1].partition(2);

    // Everyone writes during the partition; node 2's writes are its
    // own islands.
    ingest_disjoint(&nodes, &reference);
    nodes[2].store().ingest("island", &[1, 2, 3]);
    reference.ingest("island", &[1, 2, 3]);

    for _ in 0..6 {
        for (node, transport) in nodes.iter().zip(&transports) {
            let reports = node.gossip_tick(transport);
            // Exchanges with the partitioned side must fail loudly but
            // transiently.
            for (peer, report) in reports {
                if let Err(error) = report {
                    assert!(
                        error.is_transient(),
                        "unexpected failure to {peer}: {error}"
                    );
                }
            }
        }
    }

    // The majority side converged with itself; node 2 is behind.
    assert_eq!(
        nodes[0].store().get("stream-0"),
        nodes[1].store().get("stream-0")
    );
    assert!(!nodes[0].store().contains_key("island"));
    assert_ne!(
        nodes[2].store().get("stream-0"),
        nodes[0].store().get("stream-0")
    );

    // Heal and gossip: everyone reaches the reference state.
    for transport in &transports {
        transport.heal_all();
    }
    for _ in 0..10 {
        for (node, transport) in nodes.iter().zip(&transports) {
            let _ = node.gossip_tick(transport);
        }
    }
    assert_converged(&nodes, &reference);
}

/// The same seed produces the same fault schedule: two identical runs
/// inject the identical number of faults and end in identical states —
/// a failing fault test replays exactly.
#[test]
fn fault_schedules_are_deterministic() {
    let run = || {
        let (_net, nodes, transports) = faulty_cluster(FaultPlan::lossy());
        let reference = reference_store();
        ingest_disjoint(&nodes, &reference);
        for _ in 0..15 {
            for (node, transport) in nodes.iter().zip(&transports) {
                let _ = node.gossip_tick(transport);
            }
        }
        let injected: Vec<u64> = transports.iter().map(|t| t.faults_injected()).collect();
        let states: Vec<_> = nodes
            .iter()
            .map(|n| {
                let mut keys = n.store().keys();
                keys.sort_unstable();
                keys.into_iter()
                    .map(|k| (k.clone(), n.store().get(&k)))
                    .collect::<Vec<_>>()
            })
            .collect();
        (injected, states)
    };
    assert_eq!(run(), run());
}
