//! Property tests of the wire codec: every message round-trips
//! bit-for-bit, and no mangled input — truncated, oversized,
//! bit-flipped or plain random — can panic the decoder or make it
//! allocate beyond the bytes actually present.

use proptest::collection::vec;
use proptest::prelude::*;
use sketch_cluster::wire::{
    read_frame, Message, NodeId, WireEntry, WireNeighbor, MAX_FRAME_BYTES, PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
};
use sketch_cluster::{ErrorCode, FrameError, WireError};

/// Builds a printable key from raw generator bytes, so string fields
/// see arbitrary lengths and characters without a string strategy.
fn key_from(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&b| char::from_u32(0x20 + (b as u32) % 0x5f).unwrap())
        .collect()
}

/// Decodes one generated tuple into a message, cycling through every
/// variant of the protocol (`kind` selects, the rest parameterize).
fn message_from((kind, words, bytes, extra): (u8, Vec<u64>, Vec<u8>, u64)) -> Message {
    let key = key_from(&bytes);
    match kind % 13 {
        0 => Message::DeltaRequest { after: extra },
        1 => Message::Delta {
            up_to: extra,
            entries: words
                .iter()
                .enumerate()
                .map(|(i, &version)| WireEntry {
                    key: format!("{key}-{i}"),
                    version,
                    payload: bytes.clone(),
                })
                .collect(),
        },
        2 => Message::Ingest {
            key,
            elements: words,
        },
        3 => Message::Cardinality { key },
        4 => Message::Jaccard {
            left: key,
            right: key_from(&bytes.iter().rev().copied().collect::<Vec<_>>()),
        },
        5 => Message::SimilarKeys {
            key,
            k: extra as u32,
            threshold_bits: extra.rotate_left(17),
        },
        6 => Message::UnionSketch {
            keys: words.iter().map(|w| format!("{key}-{w}")).collect(),
        },
        7 => Message::Shutdown,
        8 => Message::Ack,
        9 => Message::Value { bits: extra },
        10 => Message::Neighbors {
            items: words
                .iter()
                .enumerate()
                .map(|(i, &jaccard_bits)| WireNeighbor {
                    key: format!("{key}-{i}"),
                    jaccard_bits,
                })
                .collect(),
        },
        11 => Message::Payload { bytes },
        _ => Message::Error {
            code: match extra % 5 {
                0 => ErrorCode::KeyNotFound,
                1 => ErrorCode::Incompatible,
                2 => ErrorCode::BadPayload,
                3 => ErrorCode::BadRequest,
                _ => ErrorCode::Unsupported,
            },
            detail: key,
        },
    }
}

fn message_strategy() -> impl Strategy<Value = Message> {
    (
        0u8..13,
        vec(0u64..u64::MAX, 0..8),
        vec(0u8..=255, 0..48),
        0u64..u64::MAX,
    )
        .prop_map(message_from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity, and the framed form
    /// (length prefix + payload) round-trips through the reader too.
    #[test]
    fn roundtrip_is_bit_for_bit(message in message_strategy()) {
        let encoded = message.encode();
        let decoded = Message::decode(&encoded).expect("own encoding must decode");
        prop_assert_eq!(&decoded, &message);
        // Bit-for-bit: re-encoding the decoded message reproduces the
        // exact byte string, f64 payloads included.
        prop_assert_eq!(decoded.encode(), encoded);

        let frame = message.encode_frame();
        let framed = read_frame(&mut frame.as_slice()).expect("framed form must decode");
        prop_assert_eq!(&framed, &message);
    }

    /// Every strict prefix of a valid encoding is rejected with a
    /// typed error — the decoder never "completes" a cut-off message.
    #[test]
    fn truncation_is_always_detected(message in message_strategy(), cut in 0usize..10_000) {
        let encoded = message.encode();
        prop_assume!(encoded.len() > 1);
        let cut = 1 + cut % (encoded.len() - 1);
        let truncated = &encoded[..encoded.len() - cut];
        prop_assert!(Message::decode(truncated).is_err());
    }

    /// A frame whose length prefix is cut off, or whose body ends
    /// early, fails with an I/O-style frame error instead of hanging
    /// or panicking.
    #[test]
    fn truncated_frames_fail_cleanly(message in message_strategy(), cut in 1usize..10_000) {
        let frame = message.encode_frame();
        let cut = cut % frame.len();
        let short = &frame[..frame.len() - cut.max(1)];
        match read_frame(&mut &short[..]) {
            Err(FrameError::Io(_)) => {}
            other => prop_assert!(false, "expected Io error, got {:?}", other),
        }
    }

    /// Flipping any single bit of an encoding must never panic the
    /// decoder: it either decodes to some message (the flip landed in
    /// a value) or fails with a typed error.
    #[test]
    fn bit_flips_never_panic(
        message in message_strategy(),
        byte_pick in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut encoded = message.encode();
        let index = byte_pick % encoded.len();
        encoded[index] ^= 1 << bit;
        match Message::decode(&encoded) {
            Ok(mutated) => {
                // Whatever decoded must itself round-trip.
                let reencoded = mutated.encode();
                prop_assert_eq!(Message::decode(&reencoded).unwrap(), mutated);
            }
            Err(
                WireError::Truncated
                | WireError::BadMagic { .. }
                | WireError::UnsupportedVersion { .. }
                | WireError::UnknownTag(_)
                | WireError::UnknownErrorCode(_)
                | WireError::BadUtf8
                | WireError::TrailingBytes { .. }
                | WireError::LengthMismatch
                | WireError::OversizedFrame { .. },
            ) => {}
        }
    }

    /// Completely random byte soup never panics the decoder, and a
    /// declared count can never exceed the bytes present — so no
    /// hostile input can trigger an allocation larger than itself.
    #[test]
    fn random_bytes_never_panic(bytes in vec(0u8..=255, 0..512)) {
        let _ = Message::decode(&bytes);
    }

    /// Frame headers declaring more than [`MAX_FRAME_BYTES`] are
    /// rejected from the header bytes alone — before any buffer for
    /// the body is allocated.
    #[test]
    fn oversized_frames_rejected_from_header(excess in 1u32..1_000_000) {
        let declared = MAX_FRAME_BYTES as u32 + excess;
        let mut frame = PROTOCOL_MAGIC.to_vec();
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&declared.to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]);
        match read_frame(&mut frame.as_slice()) {
            Err(FrameError::Wire(WireError::OversizedFrame { declared: d })) => {
                prop_assert_eq!(d, declared as u64);
            }
            other => prop_assert!(false, "expected OversizedFrame, got {:?}", other),
        }
    }

    /// Every valid frame opens with the magic and the current protocol
    /// version, and **any** other version byte is refused as a
    /// handshake mismatch — for every message shape, before the length
    /// field is even consulted.
    #[test]
    fn handshake_version_is_enforced(message in message_strategy(), wrong in any::<u8>()) {
        let mut frame = message.encode_frame();
        prop_assert_eq!(&frame[..2], &PROTOCOL_MAGIC[..]);
        prop_assert_eq!(frame[2], PROTOCOL_VERSION);

        prop_assume!(wrong != PROTOCOL_VERSION);
        frame[2] = wrong;
        match read_frame(&mut frame.as_slice()) {
            Err(FrameError::Wire(error @ WireError::UnsupportedVersion { found })) => {
                prop_assert_eq!(found, wrong);
                prop_assert!(error.is_handshake_mismatch());
            }
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other),
        }
    }

    /// A frame whose opening bytes are not the magic is refused as
    /// "not this protocol" — in particular any pre-handshake
    /// `[len][payload]` frame, whose first bytes are a length field.
    #[test]
    fn handshake_magic_is_enforced(message in message_strategy(), a in any::<u8>(), b in any::<u8>()) {
        prop_assume!([a, b] != PROTOCOL_MAGIC);
        let mut frame = message.encode_frame();
        frame[0] = a;
        frame[1] = b;
        match read_frame(&mut frame.as_slice()) {
            Err(FrameError::Wire(error @ WireError::BadMagic { found })) => {
                prop_assert_eq!(found, [a, b]);
                prop_assert!(error.is_handshake_mismatch());
            }
            other => prop_assert!(false, "expected BadMagic, got {:?}", other),
        }
    }
}

/// The `NodeId` alias stays a plain `u32` — pinned here because ring
/// points pack `(node << 32) | vnode` into a `u64`.
#[test]
fn node_id_is_u32() {
    let id: NodeId = u32::MAX;
    assert_eq!(id as u64, 0xffff_ffff);
}
