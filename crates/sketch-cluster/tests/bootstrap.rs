//! Node bootstrap via checkpoint shipping: a node with no state pulls
//! one peer's checkpoint image in CRC-validated chunks, survives
//! mid-stream cuts and donor death, never half-installs, and hands off
//! to delta sync for bit-for-bit convergence.

use setsketch::{SetSketch1, SetSketchConfig};
use sketch_cluster::{
    BootstrapConfig, ClusterError, ClusterNode, FaultPlan, FaultyTransport, MemNetwork, Message,
    NodeId, Transport,
};
use sketch_math::crc32;
use sketch_store::SketchStore;
use std::sync::Arc;

fn factory() -> impl Fn() -> SetSketch1 + Clone + Send + Sync + 'static {
    let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    move || SetSketch1::new(config, 5)
}

type Node = Arc<ClusterNode<SetSketch1>>;

/// Chunk size small enough that the donated image needs several
/// chunks — resume and failover are only exercised mid-stream.
fn small_chunks() -> BootstrapConfig {
    BootstrapConfig {
        chunk_bytes: 64,
        ..BootstrapConfig::default()
    }
}

/// `count` nodes on one in-memory network. Nodes 0 and 1 carry state
/// (synced with each other); the rest start empty.
fn seeded_cluster(count: u32) -> (Arc<MemNetwork>, Vec<Node>) {
    let ids: Vec<NodeId> = (0..count).collect();
    let net = Arc::new(MemNetwork::new());
    let make = factory();
    let nodes: Vec<Node> = ids
        .iter()
        .map(|&id| {
            let store = SketchStore::builder(make.clone()).shards(4).build();
            Arc::new(ClusterNode::new(id, ids.iter().copied(), store))
        })
        .collect();
    for node in &nodes {
        net.register(Arc::clone(node));
    }
    for key in 0..6u64 {
        let name = format!("stream-{key}");
        let elements: Vec<u64> = (0..400).map(|j| key * 1_000 + j).collect();
        nodes[0].store().ingest(&name, &elements);
    }
    nodes[1].store().ingest("solo-1", &[7, 8, 9]);
    // Donors 0 and 1 hold identical full state before any bootstrap.
    nodes[0].sync_with(&net, 1).unwrap();
    nodes[1].sync_with(&net, 0).unwrap();
    (net, nodes)
}

fn assert_same_state(a: &Node, b: &Node) {
    let mut left = a.store().keys();
    left.sort_unstable();
    let mut right = b.store().keys();
    right.sort_unstable();
    assert_eq!(left, right, "key sets diverged");
    for key in &left {
        assert_eq!(
            a.store().get(key),
            b.store().get(key),
            "state of {key:?} diverged"
        );
    }
}

/// A cold node bootstraps from a donor in several chunks, then the
/// delta tail carries post-snapshot writes — ending bit-for-bit on the
/// donors' state.
#[test]
fn cold_node_bootstraps_and_converges() {
    let (net, nodes) = seeded_cluster(3);
    assert!(nodes[2].needs_bootstrap());

    let report = nodes[2]
        .bootstrap_via(&net, &[0, 1], &small_chunks())
        .unwrap();
    assert_eq!(report.donor, 0);
    assert!(report.failed_donors.is_empty());
    assert!(
        report.chunks_received > 1,
        "image fit one chunk; shrink chunk_bytes: {report:?}"
    );
    assert!(!report.merged, "an empty store must bulk-install");
    assert_eq!(report.keys_installed, 7);
    assert!(!nodes[2].needs_bootstrap());
    assert_eq!(nodes[2].last_bootstrap(), Some(report.clone()));
    // The snapshot alone already matches the donor.
    assert_same_state(&nodes[2], &nodes[0]);
    // Fast-forward adopted the donor's epoch as its high-water mark.
    assert_eq!(report.donor_epoch, nodes[2].high_water(0));

    // Writes after the snapshot arrive through ordinary delta sync.
    nodes[0].store().ingest("post-snapshot", &[1, 2, 3]);
    nodes[1].sync_with(&net, 0).unwrap();
    nodes[2].sync_round(&net);
    assert_same_state(&nodes[2], &nodes[0]);
    assert_same_state(&nodes[1], &nodes[0]);
}

/// A one-shot mid-stream cut (the donor connection dying between
/// chunks) is absorbed by re-requesting the same chunk — the report
/// records the resume, and the installed state is identical.
#[test]
fn bootstrap_resumes_after_midstream_cut() {
    let (net, nodes) = seeded_cluster(3);
    let transport = FaultyTransport::new(Arc::clone(&net), FaultPlan::none(), 0xB007);
    transport.cut_snapshot_stream(0, 2);

    let report = nodes[2]
        .bootstrap_via(&transport, &[0, 1], &small_chunks())
        .unwrap();
    assert_eq!(report.donor, 0, "a resumable cut must not fail the donor");
    assert!(report.failed_donors.is_empty());
    assert_eq!(report.chunks_resumed, 1);
    assert_eq!(transport.faults_injected(), 1);
    assert_same_state(&nodes[2], &nodes[0]);
}

/// When the donor dies mid-stream for good (no retry budget), the
/// bootstrapper abandons it, records the failure, and completes from
/// the next donor.
#[test]
fn donor_failover_midstream() {
    let (net, nodes) = seeded_cluster(3);
    let transport = FaultyTransport::new(Arc::clone(&net), FaultPlan::none(), 0xDEAD);
    // Two chunks flow from donor 0, then its stream fails — and with
    // no per-chunk retry budget, one failure is final.
    transport.cut_snapshot_stream(0, 2);
    let config = BootstrapConfig {
        max_chunk_retries: 0,
        ..small_chunks()
    };

    let report = nodes[2]
        .bootstrap_via(&transport, &[0, 1], &config)
        .unwrap();
    assert_eq!(report.donor, 1);
    assert_eq!(report.failed_donors, vec![0]);
    assert_same_state(&nodes[2], &nodes[1]);
}

/// Corrupts the first byte of every snapshot payload while fixing up
/// the chunk CRC, so the damage is only detectable at install time —
/// exercising the validate-before-mutate rollback, not the per-chunk
/// CRC.
struct CorruptingTransport<T> {
    inner: T,
    corrupt_peer: NodeId,
}

impl<T: Transport> Transport for CorruptingTransport<T> {
    fn request(&self, peer: NodeId, message: &Message) -> Result<Message, ClusterError> {
        let response = self.inner.request(peer, message)?;
        match response {
            Message::SnapshotChunk {
                snapshot_id,
                epoch,
                total_bytes,
                chunk,
                total_chunks,
                mut data,
                ..
            } if peer == self.corrupt_peer => {
                if let Some(byte) = data.first_mut() {
                    *byte ^= 0xFF;
                }
                Ok(Message::SnapshotChunk {
                    snapshot_id,
                    epoch,
                    total_bytes,
                    chunk,
                    total_chunks,
                    crc: crc32(&data),
                    data,
                })
            }
            other => Ok(other),
        }
    }
}

/// An image that validates chunk-by-chunk but fails whole-image
/// validation must leave the store untouched (no half-install), fail
/// that donor, and succeed from a clean one.
#[test]
fn corrupt_snapshot_rolls_back_and_fails_over() {
    let (net, nodes) = seeded_cluster(3);
    let transport = CorruptingTransport {
        inner: Arc::clone(&net),
        corrupt_peer: 0,
    };

    // Only the corrupting donor available: the whole bootstrap fails…
    let error = nodes[2]
        .bootstrap_via(&transport, &[0], &small_chunks())
        .unwrap_err();
    assert!(matches!(error, ClusterError::BadPayload(_)), "{error}");
    // …and the store is exactly as empty as before.
    assert!(nodes[2].needs_bootstrap());
    assert!(nodes[2].last_bootstrap().is_none());

    // With a clean donor behind it, bootstrap completes and records
    // the corrupt one as failed.
    let report = nodes[2]
        .bootstrap_via(&transport, &[0, 1], &small_chunks())
        .unwrap();
    assert_eq!(report.donor, 1);
    assert_eq!(report.failed_donors, vec![0]);
    assert_same_state(&nodes[2], &nodes[1]);
}

/// Bootstrapping into a store that already holds local state merges
/// instead of bulk-installing: local keys survive, shipped keys merge
/// idempotently.
#[test]
fn bootstrap_merges_into_nonempty_store() {
    let (net, nodes) = seeded_cluster(3);
    nodes[2].store().ingest("local-only", &[42, 43]);
    assert!(!nodes[2].needs_bootstrap());

    let report = nodes[2]
        .bootstrap_via(&net, &[0, 1], &small_chunks())
        .unwrap();
    assert!(report.merged);
    assert!(nodes[2].store().contains_key("local-only"));
    assert!(nodes[2].store().contains_key("stream-0"));
    assert_eq!(
        nodes[2].store().get("stream-0"),
        nodes[0].store().get("stream-0")
    );
}

/// The point of shipping a checkpoint: rejoining through bootstrap
/// moves fewer bytes than a gossip-only rejoin, which pulls the full
/// state once per peer.
#[test]
fn bootstrap_beats_full_pull_on_bytes() {
    let (net, nodes) = seeded_cluster(4);

    net.reset_stats();
    nodes[2]
        .bootstrap_via(&net, &[0, 1], &small_chunks())
        .unwrap();
    let bootstrap_bytes = net.stats().total_bytes();
    let by_kind = net.stats_by_kind();
    assert!(
        by_kind.iter().any(|&(kind, _)| kind == "snapshot_request"),
        "per-kind stats missed the snapshot stream: {by_kind:?}"
    );

    // A gossip-only rejoin: first sync round of a fresh node pulls
    // everything from every peer (high-water 0 everywhere).
    net.reset_stats();
    for (peer, report) in nodes[3].sync_round(&net) {
        report.unwrap_or_else(|error| panic!("pull from {peer} failed: {error}"));
    }
    let gossip_bytes = net.stats().total_bytes();

    assert_same_state(&nodes[2], &nodes[3]);
    assert!(
        bootstrap_bytes < gossip_bytes,
        "bootstrap moved {bootstrap_bytes} bytes, full-pull rejoin {gossip_bytes}"
    );
}
