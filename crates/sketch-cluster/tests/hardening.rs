//! Failure-hardened I/O: socket deadlines against stalled peers,
//! bounded retries, suspicion with half-open probes, degraded fan-out,
//! and the protocol-version handshake on real sockets.

use parking_lot::Mutex;
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_cluster::wire::{write_frame, PROTOCOL_MAGIC, PROTOCOL_VERSION};
use sketch_cluster::{
    ClusterClient, ClusterError, ClusterNode, ErrorCode, FaultPlan, FaultyTransport, HashRing,
    HealthPolicy, MemNetwork, Message, Resilient, RetryPolicy, TcpServer, TcpTimeouts,
    TcpTransport, Transport,
};
use sketch_store::SketchStore;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn factory() -> impl Fn() -> SetSketch1 + Clone + Send + Sync + 'static {
    let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    move || SetSketch1::new(config, 13)
}

fn node(id: u32, ids: [u32; 3]) -> Arc<ClusterNode<SetSketch1>> {
    let store = SketchStore::builder(factory()).shards(4).build();
    Arc::new(ClusterNode::new(id, ids, store))
}

/// The acceptance bound: a listener that accepts connections and then
/// never answers must delay a gossip tick by at most the configured
/// socket deadlines, not wedge it forever.
#[test]
fn stalled_listener_delays_a_tick_by_at_most_the_deadline() {
    // A black hole: accepts every connection, reads nothing, writes
    // nothing, keeps the sockets open so the client blocks in read.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let stalled_addr = listener.local_addr().unwrap();
    let park = Arc::new(AtomicBool::new(true));
    let park_flag = Arc::clone(&park);
    let hole = std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        let mut held = Vec::new();
        while park_flag.load(Ordering::Acquire) {
            if let Ok((stream, _)) = listener.accept() {
                held.push(stream);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    let deadline = Duration::from_millis(300);
    let transport = TcpTransport::with_timeouts(TcpTimeouts::uniform(deadline));
    transport.add_peer(9, stalled_addr);

    let gossiper = node(0, [0, 0, 9]);
    let started = Instant::now();
    let results = gossiper.sync_round(&transport);
    let elapsed = started.elapsed();

    let (_, outcome) = results.into_iter().find(|&(peer, _)| peer == 9).unwrap();
    let error = outcome.expect_err("a stalled peer cannot answer");
    assert!(error.is_transient(), "stall surfaced as {error}");
    // One exchange = connect + write + read, each bounded by
    // `deadline`; generous slack for a loaded CI box.
    assert!(
        elapsed < deadline * 3 + Duration::from_secs(1),
        "gossip tick took {elapsed:?} against a stalled listener (deadline {deadline:?})"
    );

    park.store(false, Ordering::Release);
    hole.join().unwrap();
}

/// A transport that fails a scripted number of times, then answers.
struct Flaky {
    failures_left: Mutex<u32>,
    calls: AtomicU32,
}

impl Flaky {
    fn failing(times: u32) -> Self {
        Flaky {
            failures_left: Mutex::new(times),
            calls: AtomicU32::new(0),
        }
    }
}

impl Transport for Flaky {
    fn request(&self, _peer: u32, _message: &Message) -> Result<Message, ClusterError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let mut left = self.failures_left.lock();
        if *left > 0 {
            *left -= 1;
            return Err(ClusterError::Transport("injected".into()));
        }
        Ok(Message::Ack)
    }
}

#[test]
fn retries_absorb_transient_blips() {
    let retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 7,
    };
    let resilient = Resilient::with_policies(Flaky::failing(2), retry, HealthPolicy::default());

    // Two failures fit inside a three-attempt budget: the caller never
    // sees them, and the peer's health is untouched.
    let response = resilient.request(1, &Message::Shutdown).unwrap();
    assert_eq!(response, Message::Ack);
    assert_eq!(resilient.inner().calls.load(Ordering::SeqCst), 3);
    assert_eq!(resilient.consecutive_failures(1), 0);
    assert!(!resilient.is_suspect(1));
}

#[test]
fn exhausted_retries_surface_the_transport_error() {
    let retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        jitter_seed: 7,
    };
    let resilient =
        Resilient::with_policies(Flaky::failing(u32::MAX), retry, HealthPolicy::default());

    let error = resilient.request(1, &Message::Shutdown).unwrap_err();
    assert!(matches!(error, ClusterError::Transport(_)));
    assert_eq!(resilient.inner().calls.load(Ordering::SeqCst), 2);
    // The whole exchange counts as ONE failure toward suspicion, not
    // one per attempt.
    assert_eq!(resilient.consecutive_failures(1), 1);
}

/// A transport that is down until flipped up, counting inner calls so
/// the test can prove fail-fast requests never touch the network.
struct Switchable {
    up: AtomicBool,
    calls: AtomicU32,
}

impl Transport for Switchable {
    fn request(&self, _peer: u32, _message: &Message) -> Result<Message, ClusterError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.up.load(Ordering::SeqCst) {
            Ok(Message::Ack)
        } else {
            Err(ClusterError::Transport("down".into()))
        }
    }
}

#[test]
fn suspicion_fails_fast_and_half_open_probes_recover() {
    let retry = RetryPolicy::none();
    let health = HealthPolicy {
        suspect_after: 2,
        probe_after: Duration::from_millis(50),
    };
    let resilient = Resilient::with_policies(
        Switchable {
            up: AtomicBool::new(false),
            calls: AtomicU32::new(0),
        },
        retry,
        health,
    );
    let calls = || resilient.inner().calls.load(Ordering::SeqCst);

    // Two consecutive failures arm suspicion.
    assert!(resilient.request(4, &Message::Shutdown).is_err());
    assert!(resilient.request(4, &Message::Shutdown).is_err());
    assert!(resilient.is_suspect(4));
    assert_eq!(resilient.suspects(), vec![4]);
    assert_eq!(calls(), 2);

    // While suspect, requests are refused locally — no network I/O.
    match resilient.request(4, &Message::Shutdown) {
        Err(ClusterError::Suspect(peer)) => assert_eq!(peer, 4),
        other => panic!("expected fail-fast Suspect, got {other:?}"),
    }
    assert_eq!(calls(), 2, "suspect request touched the network");

    // After the probe window one half-open attempt goes through; the
    // peer is still down, so suspicion re-arms.
    std::thread::sleep(Duration::from_millis(60));
    assert!(matches!(
        resilient.request(4, &Message::Shutdown),
        Err(ClusterError::Transport(_))
    ));
    assert_eq!(calls(), 3);
    assert!(matches!(
        resilient.request(4, &Message::Shutdown),
        Err(ClusterError::Suspect(_))
    ));
    assert_eq!(calls(), 3);

    // Peer comes back: the next probe succeeds and clears suspicion.
    resilient.inner().up.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(
        resilient.request(4, &Message::Shutdown).unwrap(),
        Message::Ack
    );
    assert!(!resilient.is_suspect(4));
    assert_eq!(resilient.consecutive_failures(4), 0);

    // Healthy again: full-speed exchanges, no probe gating.
    assert_eq!(
        resilient.request(4, &Message::Shutdown).unwrap(),
        Message::Ack
    );
}

#[test]
fn gossip_skips_suspect_peers_instead_of_wedging() {
    let ids = [0u32, 1, 2];
    let net = Arc::new(MemNetwork::new());
    let nodes: Vec<_> = ids.iter().map(|&id| node(id, ids)).collect();
    for n in &nodes {
        net.register(Arc::clone(n));
    }

    // Node 0 reaches the network through fault injection (node 2
    // partitioned away) under a Resilient wrapper that suspects after
    // two consecutive failures.
    let faulty = FaultyTransport::new(Arc::clone(&net), FaultPlan::none(), 11);
    faulty.partition(2);
    let resilient = Resilient::with_policies(
        faulty,
        RetryPolicy::none(),
        HealthPolicy {
            suspect_after: 2,
            probe_after: Duration::from_secs(3600),
        },
    );

    nodes[0].store().ingest("events", &[1, 2, 3]);
    for _ in 0..2 {
        let _ = nodes[0].gossip_tick(&resilient);
    }
    assert!(resilient.is_suspect(2), "partitioned peer never suspected");

    // Subsequent ticks fail the dead peer fast (Suspect, no network
    // attempt) while the live peer still syncs.
    let results = nodes[0].sync_round(&resilient);
    for (peer, outcome) in results {
        match (peer, outcome) {
            (1, Ok(_)) => {}
            (2, Err(ClusterError::Suspect(suspect))) => assert_eq!(suspect, 2),
            (peer, outcome) => panic!("peer {peer}: unexpected outcome {outcome:?}"),
        }
    }
}

#[test]
fn degraded_fanout_reports_the_skipped_nodes() {
    let ids = [0u32, 1, 2];
    let net = Arc::new(MemNetwork::new());
    let nodes: Vec<_> = ids.iter().map(|&id| node(id, ids)).collect();
    for n in &nodes {
        net.register(Arc::clone(n));
    }
    for n in &nodes {
        for user in 0..500u64 {
            n.store().ingest("events", &[user]);
            n.store().ingest("sessions", &[user / 2]);
        }
    }

    let faulty = FaultyTransport::new(Arc::clone(&net), FaultPlan::none(), 5);
    let client = ClusterClient::new(faulty, HashRing::new(&ids), nodes[0].store().empty_sketch());

    // Full coverage first: nothing skipped.
    let full = client
        .union_cardinality_detailed(&["events", "sessions"])
        .unwrap();
    assert!(!full.degraded);
    assert!(full.skipped.is_empty());

    // Partition one replica: the fan-out still answers (every node
    // holds every key) but flags the hole in coverage.
    client.transport().partition(2);
    let partial = client
        .union_cardinality_detailed(&["events", "sessions"])
        .unwrap();
    assert!(partial.degraded);
    assert_eq!(partial.skipped, vec![2]);
    assert!((partial.value / full.value - 1.0).abs() < 1e-9);

    let neighbors = client.similar_keys_detailed("events", 4, 0.0).unwrap();
    assert!(neighbors.degraded);
    assert_eq!(neighbors.skipped, vec![2]);
    assert!(neighbors.value.iter().any(|n| n.key == "sessions"));

    // Healed: coverage is whole again.
    client.transport().heal_all();
    let healed = client
        .union_cardinality_detailed(&["events", "sessions"])
        .unwrap();
    assert!(!healed.degraded);
}

/// Old-format and future-version frames get a typed `Unsupported`
/// refusal from a live server instead of a hang or a reset.
#[test]
fn version_mismatch_gets_a_typed_refusal_over_tcp() {
    let server_node = node(0, [0, 0, 0]);
    let server = TcpServer::serve(Arc::clone(&server_node), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // A pre-handshake client: bare [len][payload] framing.
    let payload = Message::Cardinality {
        key: "events".into(),
    }
    .encode();
    let mut old_style = (payload.len() as u32).to_le_bytes().to_vec();
    old_style.extend_from_slice(&payload);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&old_style).unwrap();
    match sketch_cluster::wire::read_frame(&mut stream) {
        Ok(Message::Error { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("expected Unsupported refusal, got {other:?}"),
    }

    // A same-magic, future-version client.
    let mut future = Message::Ack.encode_frame();
    assert_eq!(&future[..2], &PROTOCOL_MAGIC[..]);
    future[2] = PROTOCOL_VERSION + 1;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&future).unwrap();
    match sketch_cluster::wire::read_frame(&mut stream) {
        Ok(Message::Error { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("expected Unsupported refusal, got {other:?}"),
    }

    // A current-version client still gets real answers afterwards.
    let transport = TcpTransport::new();
    transport.add_peer(0, addr);
    server_node.store().ingest("events", &[1, 2, 3]);
    match transport.request(
        0,
        &Message::Cardinality {
            key: "events".into(),
        },
    ) {
        Ok(Message::Value { bits }) => assert!(f64::from_bits(bits) > 0.0),
        other => panic!("expected Value, got {other:?}"),
    }

    server.shutdown();
}

/// The server answers a handshake refusal with a frame the *current*
/// protocol can read — pinned so refusals stay machine-readable.
#[test]
fn refusal_frames_are_current_version() {
    let server_node = node(0, [0, 0, 0]);
    let server = TcpServer::serve(Arc::clone(&server_node), "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut bad = Message::Ack.encode_frame();
    bad[0] = b'X';
    stream.write_all(&bad).unwrap();
    // Also prove it at the byte level: first three reply bytes are the
    // magic + current version.
    let mut header = [0u8; 3];
    stream.read_exact(&mut header).unwrap();
    assert_eq!(&header[..2], &PROTOCOL_MAGIC[..]);
    assert_eq!(header[2], PROTOCOL_VERSION);

    server.shutdown();
}

/// `write_frame` and raw `encode_frame` bytes agree — the two send
/// paths cannot drift apart on the handshake prologue.
#[test]
fn write_frame_emits_the_handshake_prologue() {
    let message = Message::DeltaRequest { after: 17 };
    let mut sent = Vec::new();
    write_frame(&mut sent, &message).unwrap();
    assert_eq!(sent, message.encode_frame());
    assert_eq!(&sent[..2], &PROTOCOL_MAGIC[..]);
    assert_eq!(sent[2], PROTOCOL_VERSION);
}
