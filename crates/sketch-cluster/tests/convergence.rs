//! Deterministic convergence: an in-process cluster fed disjoint
//! streams must end up, on **every** replica, bit-for-bit identical to
//! one store fed the full stream — and once converged, delta sync must
//! go quiet (no echo ping-pong, nothing re-shipped for tier moves,
//! exactly one key shipped after one key changes).

use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_cluster::{ClusterClient, ClusterNode, HashRing, MemNetwork, NodeId};
use sketch_core::{
    BatchInsert, CardinalityEstimator, CompactSketch, JointEstimator, Mergeable, Signature,
};
use sketch_store::SketchStore;
use std::sync::Arc;

/// Rounds of all-pairs delta sync after which a healthy cluster must
/// be quiescent (information needs ≤ diameter rounds to reach
/// everyone; versions settle one round later).
const MAX_ROUNDS: usize = 8;

fn setsketch_factory() -> impl Fn() -> SetSketch1 + Clone + Send + Sync + 'static {
    let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    move || SetSketch1::new(config, 7)
}

/// Builds `n` nodes over one in-memory network, all from one factory.
fn cluster<S, F>(n: u32, factory: F) -> (Arc<MemNetwork>, Vec<Arc<ClusterNode<S>>>)
where
    S: BatchInsert
        + Mergeable
        + JointEstimator
        + CardinalityEstimator
        + Signature
        + CompactSketch
        + Clone
        + PartialEq
        + Send
        + Sync
        + 'static,
    F: Fn() -> S + Clone + Send + Sync + 'static,
{
    let ids: Vec<NodeId> = (0..n).collect();
    let net = Arc::new(MemNetwork::new());
    let nodes: Vec<_> = ids
        .iter()
        .map(|&id| {
            let store = SketchStore::builder(factory.clone()).shards(4).build();
            Arc::new(ClusterNode::new(id, ids.iter().copied(), store))
        })
        .collect();
    for node in &nodes {
        net.register(Arc::clone(node));
    }
    (net, nodes)
}

/// Runs all-pairs sync rounds until a full round ships zero keys;
/// returns how many rounds that took. Panics (test failure) if the
/// cluster is still chattering after [`MAX_ROUNDS`].
fn sync_until_quiescent<S>(net: &Arc<MemNetwork>, nodes: &[Arc<ClusterNode<S>>]) -> usize
where
    S: sketch_cluster::ClusterSketch,
{
    for round in 1..=MAX_ROUNDS {
        let mut shipped = 0usize;
        for node in nodes {
            for (peer, report) in node.sync_round(&**net) {
                let report = report.unwrap_or_else(|e| panic!("sync with node {peer} failed: {e}"));
                shipped += report.keys_received;
            }
        }
        if shipped == 0 {
            return round;
        }
    }
    panic!("cluster still shipping keys after {MAX_ROUNDS} all-pairs rounds");
}

/// Asserts every replica holds exactly the reference's keys with
/// bit-for-bit identical sketch state.
fn assert_replicas_match_reference<S>(nodes: &[Arc<ClusterNode<S>>], reference: &SketchStore<S>)
where
    S: sketch_cluster::ClusterSketch + std::fmt::Debug,
{
    let mut expected = reference.keys();
    expected.sort_unstable();
    for node in nodes {
        let mut keys = node.store().keys();
        keys.sort_unstable();
        assert_eq!(keys, expected, "node {} key set diverged", node.id());
        for key in &expected {
            assert_eq!(
                node.store().get(key),
                reference.get(key),
                "node {} state of {key:?} diverged from the reference",
                node.id()
            );
        }
    }
}

/// Three nodes ingest disjoint thirds of one stream into the same key;
/// after sync every replica is register-identical to a single store
/// fed the whole stream.
#[test]
fn disjoint_streams_converge_bit_for_bit() {
    let factory = setsketch_factory();
    let (net, nodes) = cluster(3, factory.clone());
    let reference = SketchStore::builder(factory).shards(4).build();

    let per_node = 4_000u64;
    for (i, node) in nodes.iter().enumerate() {
        let slice: Vec<u64> = (i as u64 * per_node..(i as u64 + 1) * per_node).collect();
        node.store().ingest("events", &slice);
        reference.ingest("events", &slice);
    }

    let rounds = sync_until_quiescent(&net, &nodes);
    assert!(rounds <= MAX_ROUNDS);
    assert_replicas_match_reference(&nodes, &reference);

    // Convergence is semantic too: every replica answers the full
    // stream's cardinality with the reference's exact estimate.
    let expected = reference.cardinality("events").unwrap();
    for node in &nodes {
        assert_eq!(node.store().cardinality("events").unwrap(), expected);
    }
}

/// Client-routed ingest (consistent-hash owner per key) plus sync
/// converges every replica onto the reference, and fan-out queries
/// answer cluster-wide.
#[test]
fn routed_ingest_replicates_everywhere() {
    let factory = setsketch_factory();
    let (net, nodes) = cluster(3, factory.clone());
    let reference = SketchStore::builder(factory).shards(4).build();
    let ring = HashRing::new(&[0, 1, 2]);
    let client = ClusterClient::new(Arc::clone(&net), ring, nodes[0].store().empty_sketch());

    for user in 0..300u64 {
        let key = format!("cohort-{}", user % 7);
        client.ingest(&key, &[user]).unwrap();
        reference.ingest(&key, &[user]);
    }
    // Writes spread across owners: no node holds all 7 keys yet.
    assert!(nodes.iter().all(|n| n.store().len() < 7));

    sync_until_quiescent(&net, &nodes);
    assert_replicas_match_reference(&nodes, &reference);

    // Point reads, fan-out similarity and fan-out union all answer.
    let expected = reference.cardinality("cohort-0").unwrap();
    assert_eq!(client.cardinality("cohort-0").unwrap(), expected);
    let neighbors = client.similar_keys("cohort-0", 3, 0.0).unwrap();
    assert_eq!(neighbors.len(), 3);
    let expected_union = reference
        .merge_keys(&["cohort-0", "cohort-1", "cohort-2"])
        .unwrap()
        .cardinality();
    let union = client
        .union_cardinality(&["cohort-0", "cohort-1", "cohort-2"])
        .unwrap();
    assert_eq!(union, expected_union);
}

/// After convergence a second sync ships nothing, and mutating exactly
/// one key ships exactly that one key — the version floor prunes the
/// rest. This is the wire-cost contract the benchmark measures.
#[test]
fn delta_sync_ships_only_what_moved() {
    let factory = setsketch_factory();
    let (net, nodes) = cluster(2, factory);
    for k in 0..20u64 {
        nodes[0]
            .store()
            .ingest(&format!("key-{k}"), &[k * 100, k * 100 + 1]);
    }

    // First pull: everything ships.
    let report = nodes[1].sync_with(&*net, 0).unwrap();
    assert_eq!(report.keys_received, 20);
    assert_eq!(report.keys_changed, 20);

    // Node 0 pulls back: node 1's merges created fresh local versions,
    // so the keys ship once more — but change nothing on node 0 ...
    let echo = nodes[0].sync_with(&*net, 1).unwrap();
    assert_eq!(echo.keys_received, 20);
    assert_eq!(echo.keys_changed, 0);
    // ... and because unchanged merges do NOT bump versions, the echo
    // dies immediately: both directions are now silent.
    assert_eq!(nodes[1].sync_with(&*net, 0).unwrap().keys_received, 0);
    assert_eq!(nodes[0].sync_with(&*net, 1).unwrap().keys_received, 0);

    // One key moves; exactly one key ships.
    nodes[0].store().ingest("key-7", &[999_999]);
    let delta = nodes[1].sync_with(&*net, 0).unwrap();
    assert_eq!(delta.keys_received, 1);
    assert_eq!(delta.keys_changed, 1);
    assert_eq!(nodes[1].sync_with(&*net, 0).unwrap().keys_received, 0);
}

/// Tier demotions/promotions rearrange how registers are stored, not
/// what they say — so a store under heavy tier churn ships nothing
/// new after convergence.
#[test]
fn tier_churn_ships_nothing() {
    let factory = setsetch_tiered_factory();
    let ids = [0u32, 1];
    let net = Arc::new(MemNetwork::new());
    // Node 0 runs under maximal demotion pressure; node 1 is plain.
    let store0 = SketchStore::builder(factory.clone())
        .shards(4)
        .memory_budget_bytes(1)
        .demote_after_writes(1)
        .build();
    let store1 = SketchStore::builder(factory).shards(4).build();
    let node0 = Arc::new(ClusterNode::new(0, ids, store0));
    let node1 = Arc::new(ClusterNode::new(1, ids, store1));
    net.register(Arc::clone(&node0));
    net.register(Arc::clone(&node1));

    for k in 0..12u64 {
        node0
            .store()
            .ingest(&format!("cold-{k}"), &[k, k + 50, k + 500]);
    }
    let first = node1.sync_with(&*net, 0).unwrap();
    assert_eq!(first.keys_received, 12);

    // Force tier churn on node 0: reads promote cold slots back to
    // hot, maintenance demotes them again. No register changes.
    for k in 0..12u64 {
        let key = format!("cold-{k}");
        let _ = node0.store().get(&key);
        let _ = node0.store().cardinality(&key);
    }

    let after_churn = node1.sync_with(&*net, 0).unwrap();
    assert_eq!(
        after_churn.keys_received, 0,
        "tier moves must not re-ship keys"
    );
}

fn setsetch_tiered_factory() -> impl Fn() -> SetSketch1 + Clone + Send + Sync + 'static {
    let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    move || SetSketch1::new(config, 11)
}

/// One step of a generated cluster workload.
#[derive(Debug, Clone)]
enum Op {
    /// Node `node` locally ingests `len` elements from `start` into
    /// key number `key`.
    Ingest {
        node: usize,
        key: usize,
        start: u64,
        len: u64,
    },
    /// One all-pairs sync round, mid-stream.
    SyncRound,
}

fn decode_op((kind, packed, start, len): (u8, usize, u64, u64)) -> Op {
    // `packed` carries node (÷5) and key (%5) in one value: the
    // vendored proptest shim caps tuples at four elements.
    match kind {
        0..=5 => Op::Ingest {
            node: (packed / 5) % 3,
            key: packed % 5,
            start,
            len,
        },
        _ => Op::SyncRound,
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec((0u8..8, 0usize..15, 0u64..10_000, 1u64..60), 1..40)
        .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of per-node ingests and mid-stream sync rounds
    /// converges every replica onto the single-store reference,
    /// bit-for-bit, for every generated script.
    #[test]
    fn generated_workloads_converge(ops in ops_strategy()) {
        let factory = setsketch_factory();
        let (net, nodes) = cluster(3, factory.clone());
        let reference = SketchStore::builder(factory).shards(4).build();

        for op in &ops {
            match op {
                Op::Ingest { node, key, start, len } => {
                    let batch: Vec<u64> = (*start..start + len).collect();
                    let name = format!("k{key}");
                    nodes[*node].store().ingest(&name, &batch);
                    reference.ingest(&name, &batch);
                }
                Op::SyncRound => {
                    for node in &nodes {
                        for (_, report) in node.sync_round(&*net) {
                            prop_assert!(report.is_ok());
                        }
                    }
                }
            }
        }

        sync_until_quiescent(&net, &nodes);

        let mut expected = reference.keys();
        expected.sort_unstable();
        for node in &nodes {
            let mut keys = node.store().keys();
            keys.sort_unstable();
            prop_assert_eq!(&keys, &expected);
            for key in &expected {
                prop_assert_eq!(
                    node.store().get(key),
                    reference.get(key),
                    "node {} state of {} diverged",
                    node.id(),
                    key
                );
            }
        }
    }
}
