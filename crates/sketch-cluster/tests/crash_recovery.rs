//! The whole-system durability story: a live TCP node is SIGKILLed
//! mid-ingest, restarted from its write-ahead log, and the three-node
//! cluster reconverges bit-for-bit. The disk-loss variants go further:
//! the durable directory itself is destroyed between kill and restart,
//! so the WAL has nothing to say and the node must rebuild through
//! checkpoint-shipping bootstrap — including surviving its donor being
//! SIGKILLed mid-stream.
//!
//! The victim runs as a real OS process (this test binary re-executes
//! itself — see [`crash_child_serve`]) so the kill is a genuine
//! `SIGKILL`: no destructors, no flushes, nothing but what the WAL's
//! fsync discipline already put on disk. The parent keeps ingesting
//! through the kill, so some requests die on the wire; every op the
//! victim *acknowledged* must survive (it runs
//! [`FsyncPolicy::Always`]), and every op that errored is re-sent
//! after restart — at-least-once delivery, which idempotent sketch
//! merging absorbs.

use setsketch::{SetSketch2, SetSketchConfig};
use sketch_cluster::{
    BootstrapConfig, ClusterNode, Message, NodeId, Resilient, TcpServer, TcpTransport, Transport,
};
use sketch_core::CompactSketch;
use sketch_rand::mix64;
use sketch_store::{FsyncPolicy, SketchStore};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const IDS: [NodeId; 3] = [0, 1, 2];
const VICTIM: NodeId = 2;
const OPS: u64 = 240;
const KILL_AT: u64 = 120;
const KEYS: u64 = 8;
const GOSSIP_EVERY: Duration = Duration::from_millis(50);

fn config() -> SetSketchConfig {
    SetSketchConfig::example_16bit()
}

fn plain_store() -> SketchStore<SetSketch2> {
    let config = config();
    SketchStore::builder(move || SetSketch2::new(config, 42))
        .shards(4)
        .build()
}

fn durable_store(dir: &Path) -> SketchStore<SetSketch2> {
    let config = config();
    SketchStore::builder(move || SetSketch2::new(config, 42))
        .shards(4)
        .durable_dir(dir)
        .fsync_policy(FsyncPolicy::Always)
        .build()
}

fn op_key(op: u64) -> String {
    format!("key-{}", op % KEYS)
}

fn op_elements(op: u64) -> Vec<u64> {
    (0..32).map(|i| mix64(op * 64 + i) % 100_000).collect()
}

/// Scratch durable directory, removed when the test ends.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sketch-crash-recovery-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// --- Child half: one durable TCP replica, run via self-exec. ---------

/// When `CRASH_CHILD_DIR` is set, this "test" is actually the victim
/// node's serving process: recover the durable store from that
/// directory, serve on an ephemeral port, print `PORT <n>` and
/// `RECOVERED <records>` lines, learn peers from one `PEERS` stdin
/// line, gossip until a Shutdown frame (or a SIGKILL) arrives. With
/// `CRASH_CHILD_BOOTSTRAP` also set, the gossip thread first
/// bootstraps from a peer's checkpoint when the store came up empty,
/// and a `BOOTSTRAP <keys>` line reports the installed key count.
/// With the variables unset — the normal test run — it does nothing.
#[test]
fn crash_child_serve() {
    let Ok(dir) = std::env::var("CRASH_CHILD_DIR") else {
        return;
    };
    let store = durable_store(Path::new(&dir));
    let report = store.recovery_report().expect("durable store has a report");
    let recovered = report.checkpoint_entries + report.records_replayed;
    let node = Arc::new(ClusterNode::new(VICTIM, IDS, store));
    let mut server = TcpServer::serve(Arc::clone(&node), "127.0.0.1:0").expect("bind loopback");

    println!("PORT {}", server.local_addr().port());
    println!("RECOVERED {recovered}");
    std::io::stdout().flush().expect("flush handshake");

    let mut line = String::new();
    std::io::stdin()
        .read_line(&mut line)
        .expect("read peer map");
    let transport = Arc::new(TcpTransport::new());
    for pair in line
        .trim()
        .strip_prefix("PEERS ")
        .expect("PEERS line")
        .split(' ')
    {
        let (peer, port) = pair.split_once(':').expect("id:port");
        transport.add_peer(
            peer.parse().expect("peer id"),
            format!("127.0.0.1:{port}").parse().expect("addr"),
        );
    }
    if std::env::var("CRASH_CHILD_BOOTSTRAP").is_ok() {
        server.start_gossip_with_bootstrap(
            Arc::clone(&node),
            Arc::new(Resilient::new(transport)),
            GOSSIP_EVERY,
            BootstrapConfig::default(),
        );
        // Report once the gossip thread's bootstrap lands (the store
        // recovered empty, so it always runs one).
        let report = loop {
            match node.last_bootstrap() {
                Some(report) => break report,
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        println!("BOOTSTRAP {}", report.keys_installed);
        std::io::stdout().flush().expect("flush bootstrap line");
    } else {
        server.start_gossip(Arc::clone(&node), transport, GOSSIP_EVERY);
    }
    server.wait();
}

/// Spawns the victim process against `dir` and parses its handshake:
/// (child, port, records recovered at startup).
fn spawn_victim(dir: &Path) -> (Child, u16, u64) {
    spawn_victim_with(dir, false)
}

/// [`spawn_victim`], optionally in bootstrap mode
/// (`CRASH_CHILD_BOOTSTRAP`): the child will pull a peer's checkpoint
/// before gossiping and print a `BOOTSTRAP <keys>` line (read it with
/// [`read_bootstrap_keys`] after sending the peer map).
fn spawn_victim_with(dir: &Path, bootstrap: bool) -> (Child, u16, u64) {
    let exe = std::env::current_exe().expect("own path");
    let mut command = Command::new(&exe);
    command
        .args(["crash_child_serve", "--exact", "--nocapture"])
        .env("CRASH_CHILD_DIR", dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if bootstrap {
        command.env("CRASH_CHILD_BOOTSTRAP", "1");
    }
    let mut child = command.spawn().expect("spawn victim process");
    let stdout = child.stdout.as_mut().expect("victim stdout");
    let mut reader = BufReader::new(stdout);
    let port = handshake_value(&mut reader, "PORT ").parse().expect("port");
    let recovered = handshake_value(&mut reader, "RECOVERED ")
        .parse()
        .expect("recovered count");
    (child, port, recovered)
}

/// Reads lines until one carries `marker`, returning what follows it.
/// The marker may land mid-line: the child's libtest harness prints
/// `test crash_child_serve ... ` without a newline before the test
/// body's own output starts.
fn handshake_value(reader: &mut BufReader<&mut ChildStdout>, marker: &str) -> String {
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("victim stdout line") > 0,
            "victim exited before printing {marker:?}"
        );
        if let Some(at) = line.find(marker) {
            return line[at + marker.len()..].trim().to_owned();
        }
    }
}

/// Reads the `BOOTSTRAP <keys>` line a bootstrap-mode child prints
/// after its checkpoint pull lands. Safe to call with a fresh reader:
/// the line is only emitted after the peer map is sent, so the spawn
/// handshake's reader cannot have buffered past it.
fn read_bootstrap_keys(child: &mut Child) -> u64 {
    let stdout = child.stdout.as_mut().expect("victim stdout");
    let mut reader = BufReader::new(stdout);
    handshake_value(&mut reader, "BOOTSTRAP ")
        .parse()
        .expect("bootstrap key count")
}

fn send_peer_map(child: &mut Child, ports: &BTreeMap<NodeId, u16>) {
    let map: Vec<String> = ports
        .iter()
        .map(|(id, port)| format!("{id}:{port}"))
        .collect();
    child
        .stdin
        .as_mut()
        .expect("victim stdin")
        .write_all(format!("PEERS {}\n", map.join(" ")).as_bytes())
        .expect("send peer map");
}

/// One node's full state as key → compact payload, pulled over TCP.
fn full_state(transport: &TcpTransport, node: NodeId) -> Option<BTreeMap<String, Vec<u8>>> {
    match transport.request(node, &Message::DeltaRequest { after: 0 }) {
        Ok(Message::Delta { entries, .. }) => Some(
            entries
                .into_iter()
                .map(|entry| (entry.key, entry.payload))
                .collect(),
        ),
        _ => None,
    }
}

// --- Parent half: the actual scenario. -------------------------------

#[test]
fn sigkill_mid_ingest_then_restart_reconverges_bit_for_bit() {
    if std::env::var("CRASH_CHILD_DIR").is_ok() {
        // This process IS a victim child; only crash_child_serve runs.
        return;
    }
    let scratch = Scratch::new();
    let transport = Arc::new(TcpTransport::new());

    // Two in-process survivor nodes with live TCP servers + gossip.
    let survivors: Vec<Arc<ClusterNode<SetSketch2>>> = [0, 1]
        .iter()
        .map(|&id| Arc::new(ClusterNode::new(id, IDS, plain_store())))
        .collect();
    let mut servers: Vec<TcpServer> = survivors
        .iter()
        .map(|node| TcpServer::serve(Arc::clone(node), "127.0.0.1:0").expect("bind survivor"))
        .collect();
    let mut ports: BTreeMap<NodeId, u16> = BTreeMap::new();
    for (node, server) in survivors.iter().zip(&servers) {
        ports.insert(node.id(), server.local_addr().port());
        transport.add_peer(node.id(), server.local_addr());
    }

    // The victim: a durable child process, killed without warning.
    let (mut victim, victim_port, recovered) = spawn_victim(&scratch.0);
    assert_eq!(recovered, 0, "fresh durable dir must recover nothing");
    ports.insert(VICTIM, victim_port);
    transport.add_peer(VICTIM, format!("127.0.0.1:{victim_port}").parse().unwrap());
    send_peer_map(&mut victim, &ports);
    for (node, server) in survivors.iter().zip(servers.iter_mut()) {
        server.start_gossip(Arc::clone(node), Arc::clone(&transport), GOSSIP_EVERY);
    }

    // Ingest straight at the victim; SIGKILL it mid-stream. Every op
    // it acked is fsynced; every op that failed is remembered.
    let reference = plain_store();
    let mut unacked: Vec<u64> = Vec::new();
    for op in 0..OPS {
        if op == KILL_AT {
            victim.kill().expect("SIGKILL victim");
        }
        reference.ingest(&op_key(op), &op_elements(op));
        let request = Message::Ingest {
            key: op_key(op),
            elements: op_elements(op),
        };
        match transport.request(VICTIM, &request) {
            Ok(Message::Ack) => {}
            _ => unacked.push(op),
        }
    }
    victim.wait().expect("reap killed victim");
    assert!(
        !unacked.is_empty() && unacked.len() < OPS as usize,
        "kill landed outside the ingest window ({} unacked)",
        unacked.len()
    );

    // Restart from the same durable directory: the WAL replays the
    // acked ops, the node re-advertises under its new port, and the
    // parent re-sends everything that was never acknowledged.
    let (mut victim, victim_port, recovered) = spawn_victim(&scratch.0);
    assert!(
        recovered > 0,
        "restart must replay the pre-crash log (got {recovered} records)"
    );
    ports.insert(VICTIM, victim_port);
    transport.add_peer(VICTIM, format!("127.0.0.1:{victim_port}").parse().unwrap());
    send_peer_map(&mut victim, &ports);
    for &op in &unacked {
        let request = Message::Ingest {
            key: op_key(op),
            elements: op_elements(op),
        };
        match transport.request(VICTIM, &request) {
            Ok(Message::Ack) => {}
            other => panic!("re-sent op {op} refused: {other:?}"),
        }
    }

    // Reconvergence: all three nodes byte-identical to the reference.
    let expected: BTreeMap<String, Vec<u8>> = reference
        .keys()
        .into_iter()
        .map(|key| {
            let payload = reference.get(&key).expect("reference key").compress();
            (key, payload)
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let converged = IDS
            .iter()
            .all(|&node| full_state(&transport, node).as_ref() == Some(&expected));
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cluster failed to reconverge after SIGKILL + restart"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Clean teardown: Shutdown frame to the victim, join everything.
    match transport.request(VICTIM, &Message::Shutdown) {
        Ok(Message::Ack) => {}
        other => panic!("victim refused shutdown: {other:?}"),
    }
    let status = victim.wait().expect("victim exits");
    assert!(status.success(), "victim exited with {status}");
    for server in servers {
        server.shutdown();
    }
}

/// Expected full state of `reference` as key → compact payload.
fn expected_state(reference: &SketchStore<SetSketch2>) -> BTreeMap<String, Vec<u8>> {
    reference
        .keys()
        .into_iter()
        .map(|key| {
            let payload = reference.get(&key).expect("reference key").compress();
            (key, payload)
        })
        .collect()
}

/// Polls until every node in `nodes` reports exactly `expected`.
fn await_convergence(
    transport: &TcpTransport,
    nodes: &[NodeId],
    expected: &BTreeMap<String, Vec<u8>>,
    what: &str,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if nodes
            .iter()
            .all(|&node| full_state(transport, node).as_ref() == Some(expected))
        {
            return;
        }
        assert!(Instant::now() < deadline, "{what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Total node loss, not just a crash: the victim is SIGKILLed **and
/// its durable directory destroyed**, so restart recovers nothing and
/// the WAL cannot help. The replacement node must rebuild itself by
/// pulling a survivor's checkpoint (bootstrap), then catch the tail
/// through delta sync — no client replays anything.
#[test]
fn disk_loss_then_bootstrap_reconverges_bit_for_bit() {
    if std::env::var("CRASH_CHILD_DIR").is_ok() {
        return;
    }
    let scratch = Scratch::new();
    let transport = Arc::new(TcpTransport::new());

    let survivors: Vec<Arc<ClusterNode<SetSketch2>>> = [0, 1]
        .iter()
        .map(|&id| Arc::new(ClusterNode::new(id, IDS, plain_store())))
        .collect();
    let mut servers: Vec<TcpServer> = survivors
        .iter()
        .map(|node| TcpServer::serve(Arc::clone(node), "127.0.0.1:0").expect("bind survivor"))
        .collect();
    let mut ports: BTreeMap<NodeId, u16> = BTreeMap::new();
    for (node, server) in survivors.iter().zip(&servers) {
        ports.insert(node.id(), server.local_addr().port());
        transport.add_peer(node.id(), server.local_addr());
    }

    let (mut victim, victim_port, recovered) = spawn_victim(&scratch.0);
    assert_eq!(recovered, 0, "fresh durable dir must recover nothing");
    ports.insert(VICTIM, victim_port);
    transport.add_peer(VICTIM, format!("127.0.0.1:{victim_port}").parse().unwrap());
    send_peer_map(&mut victim, &ports);
    for (node, server) in survivors.iter().zip(servers.iter_mut()) {
        server.start_gossip(Arc::clone(node), Arc::clone(&transport), GOSSIP_EVERY);
    }

    // Ingest at the victim; every op must ack (no kill yet).
    let reference = plain_store();
    for op in 0..OPS {
        reference.ingest(&op_key(op), &op_elements(op));
        let request = Message::Ingest {
            key: op_key(op),
            elements: op_elements(op),
        };
        match transport.request(VICTIM, &request) {
            Ok(Message::Ack) => {}
            other => panic!("op {op} refused: {other:?}"),
        }
    }
    let expected = expected_state(&reference);
    // Wait until the survivors replicated everything — they are about
    // to become the only copy in existence.
    await_convergence(
        &transport,
        &[0, 1],
        &expected,
        "survivors failed to replicate before the disk loss",
    );

    // SIGKILL, then destroy the durable directory outright.
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap killed victim");
    std::fs::remove_dir_all(&scratch.0).expect("wipe durable dir");
    std::fs::create_dir_all(&scratch.0).expect("recreate durable dir");

    // The replacement recovers nothing and must bootstrap.
    let (mut victim, victim_port, recovered) = spawn_victim_with(&scratch.0, true);
    assert_eq!(recovered, 0, "wiped dir must recover nothing");
    ports.insert(VICTIM, victim_port);
    transport.add_peer(VICTIM, format!("127.0.0.1:{victim_port}").parse().unwrap());
    send_peer_map(&mut victim, &ports);
    let bootstrapped = read_bootstrap_keys(&mut victim);
    assert_eq!(
        bootstrapped, KEYS,
        "bootstrap must ship every key the survivors hold"
    );

    // Bit-for-bit reconvergence of all three replicas, with no client
    // re-sending a single op.
    await_convergence(
        &transport,
        &IDS,
        &expected,
        "cluster failed to reconverge after total disk loss",
    );

    match transport.request(VICTIM, &Message::Shutdown) {
        Ok(Message::Ack) => {}
        other => panic!("victim refused shutdown: {other:?}"),
    }
    let status = victim.wait().expect("victim exits");
    assert!(status.success(), "victim exited with {status}");
    for server in servers {
        server.shutdown();
    }
}

/// A transport wrapper that SIGKILLs the donor process after a fixed
/// number of snapshot chunks have streamed from it — a genuinely dead
/// donor mid-transfer, not a simulated error.
struct KillSwitch {
    inner: Arc<TcpTransport>,
    donor: NodeId,
    child: Mutex<Child>,
    kill_after: u32,
    chunks_seen: AtomicU32,
}

impl Transport for KillSwitch {
    fn request(
        &self,
        peer: NodeId,
        message: &Message,
    ) -> Result<Message, sketch_cluster::ClusterError> {
        let response = self.inner.request(peer, message)?;
        if peer == self.donor && matches!(response, Message::SnapshotChunk { .. }) {
            let seen = self.chunks_seen.fetch_add(1, Ordering::SeqCst) + 1;
            if seen == self.kill_after {
                self.child
                    .lock()
                    .expect("kill switch lock")
                    .kill()
                    .expect("SIGKILL donor mid-stream");
            }
        }
        Ok(response)
    }
}

/// Donor failover under real process death: a wiped node starts
/// bootstrapping from the durable child, the child is SIGKILLed
/// mid-stream, and the bootstrap completes from the second donor —
/// ending bit-for-bit on the surviving replica's state.
#[test]
fn donor_sigkill_mid_stream_fails_over() {
    if std::env::var("CRASH_CHILD_DIR").is_ok() {
        return;
    }
    let scratch = Scratch::new();
    let transport = Arc::new(TcpTransport::new());

    // One in-process survivor (the fallback donor) and the durable
    // child (the first donor).
    let survivor = Arc::new(ClusterNode::new(0, IDS, plain_store()));
    let server = TcpServer::serve(Arc::clone(&survivor), "127.0.0.1:0").expect("bind survivor");
    let mut ports: BTreeMap<NodeId, u16> = BTreeMap::new();
    ports.insert(0, server.local_addr().port());
    transport.add_peer(0, server.local_addr());

    let (mut victim, victim_port, _) = spawn_victim(&scratch.0);
    ports.insert(VICTIM, victim_port);
    transport.add_peer(VICTIM, format!("127.0.0.1:{victim_port}").parse().unwrap());
    send_peer_map(&mut victim, &ports);

    // Both donors must hold the full state before the transfer starts.
    for op in 0..OPS {
        let request = Message::Ingest {
            key: op_key(op),
            elements: op_elements(op),
        };
        match transport.request(VICTIM, &request) {
            Ok(Message::Ack) => {}
            other => panic!("op {op} refused: {other:?}"),
        }
    }
    let expected = match full_state(&transport, VICTIM) {
        Some(state) => state,
        None => panic!("donor state unreadable"),
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while survivor
        .sync_with(transport.as_ref(), VICTIM)
        .map(|report| report.keys_received)
        .unwrap_or(usize::MAX)
        != 0
    {
        assert!(Instant::now() < deadline, "survivor never caught up");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The replacement node bootstraps in-process, donors ordered so
    // the doomed child streams first.
    let replacement = ClusterNode::new(1, IDS, plain_store());
    let kill_switch = KillSwitch {
        inner: Arc::clone(&transport),
        donor: VICTIM,
        child: Mutex::new(victim),
        kill_after: 2,
        chunks_seen: AtomicU32::new(0),
    };
    let config = BootstrapConfig {
        chunk_bytes: 4096,
        ..BootstrapConfig::default()
    };
    let report = replacement
        .bootstrap_via(&kill_switch, &[VICTIM, 0], &config)
        .unwrap();
    assert_eq!(report.donor, 0, "bootstrap must fail over to the survivor");
    assert_eq!(report.failed_donors, vec![VICTIM]);
    assert_eq!(
        kill_switch.chunks_seen.load(Ordering::SeqCst),
        2,
        "the donor died before streaming the expected chunks"
    );

    // The installed state matches the reference bit-for-bit.
    let installed: BTreeMap<String, Vec<u8>> = replacement
        .store()
        .keys()
        .into_iter()
        .map(|key| {
            let payload = replacement
                .store()
                .get(&key)
                .expect("installed key")
                .compress();
            (key, payload)
        })
        .collect();
    assert_eq!(installed, expected);

    kill_switch
        .child
        .into_inner()
        .expect("reap lock")
        .wait()
        .expect("reap killed donor");
    server.shutdown();
}
