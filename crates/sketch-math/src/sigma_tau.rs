//! The series σ_b and τ_b of the corrected cardinality estimator
//! (paper eq. (18) and Appendix B).
//!
//! The corrected estimator replaces the contribution of saturated registers
//! (value 0 or q+1) by expectations under the register value distribution:
//!
//! * σ_b(x) = x + (b−1) Σ_{k≥1} b^{k−1} x^{b^k} handles registers clipped
//!   at 0 (x is the fraction C₀/m of zero registers),
//! * τ_b(x) = 1 − x + (b−1) Σ_{k≥0} b^{−k−1} (x^{b^{−k}} − 1) handles
//!   registers clipped at q+1 (x is 1 − C_{q+1}/m).
//!
//! For b = 2 these specialize to the HyperLogLog estimator of
//! Ertl (arXiv:1702.01284) used in Redis.

/// Evaluates σ_b(x) for `x ∈ [0, 1]`; σ_b(1) diverges and returns
/// `f64::INFINITY` (an all-zero sketch must estimate cardinality 0).
///
/// # Panics
/// Panics if `b <= 1` or `x` is outside `[0, 1]`.
pub fn sigma_b(b: f64, x: f64) -> f64 {
    assert!(b > 1.0, "sigma_b requires b > 1");
    assert!((0.0..=1.0).contains(&x), "sigma_b requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return f64::INFINITY;
    }
    let ln_b = b.ln();
    let ln_x = x.ln(); // < 0
    let mut sum = 0.0f64;
    let mut k = 1u64;
    loop {
        // term = b^{k-1} x^{b^k} = exp((k-1) ln b + b^k ln x)
        let bk = ((k as f64) * ln_b).exp();
        let exponent = (k as f64 - 1.0) * ln_b + bk * ln_x;
        if exponent < -745.0 {
            break; // underflows to zero; all later terms are even smaller
        }
        sum += exponent.exp();
        k += 1;
        if k > 100_000_000 {
            break; // safety stop; unreachable for b > 1 + 1e-7
        }
    }
    x + (b - 1.0) * sum
}

/// Evaluates τ_b(x) for `x ∈ [0, 1]`; τ_b(0) = τ_b(1) = 0.
///
/// # Panics
/// Panics if `b <= 1` or `x` is outside `[0, 1]`.
pub fn tau_b(b: f64, x: f64) -> f64 {
    assert!(b > 1.0, "tau_b requires b > 1");
    assert!((0.0..=1.0).contains(&x), "tau_b requires x in [0, 1]");
    if x == 0.0 || x == 1.0 {
        return 0.0;
    }
    let ln_b = b.ln();
    let ln_x = x.ln();
    let mut sum = 0.0f64;
    let mut k = 0u64;
    loop {
        // term = b^{-k-1} (x^{b^{-k}} - 1); x^{b^{-k}} - 1 = expm1(b^{-k} ln x)
        let b_neg_k = (-(k as f64) * ln_b).exp();
        let weight = (-((k as f64) + 1.0) * ln_b).exp();
        let term = weight * (b_neg_k * ln_x).exp_m1();
        sum += term;
        // |term| ~ b^{-2k-1} |ln x| for large k: geometric decay.
        if term.abs() < (1.0 - x).abs() * 1e-18 + 1e-300 {
            break;
        }
        k += 1;
        if k > 100_000_000 {
            break; // safety stop; unreachable for b > 1 + 1e-7
        }
    }
    1.0 - x + (b - 1.0) * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (non-telescoped) evaluation of sigma from its definition as
    /// Σ_{k<=0} estimated histogram mass, used as an independent oracle:
    /// sigma_b(x) = Σ_{k=1..∞} b^{k-1} (x^{b^{k-1}} - x^{b^k}) ... the
    /// telescoped identity of Appendix B.
    fn sigma_oracle(b: f64, x: f64) -> f64 {
        let mut sum = 0.0;
        for k in 1..2000 {
            let bk1 = b.powi(k - 1);
            let bk = b.powi(k);
            let term = bk1 * (x.powf(bk1) - x.powf(bk));
            sum += term;
            if term.abs() < 1e-18 && k > 8 {
                break;
            }
        }
        sum
    }

    fn tau_oracle(b: f64, x: f64) -> f64 {
        let mut sum = 0.0;
        for k in 0..2000 {
            let bq_k = b.powi(-k); // b^{q-k} with q = 0 shift
            let bq_k1 = b.powi(-k - 1);
            let term = bq_k1 * (x.powf(bq_k1) - x.powf(bq_k));
            sum += term;
        }
        sum
    }

    #[test]
    fn sigma_matches_untelescoped_oracle() {
        for &b in &[1.2, 2.0, 3.0] {
            for &x in &[0.01, 0.25, 0.5, 0.9, 0.999] {
                let fast = sigma_b(b, x);
                let slow = sigma_oracle(b, x);
                assert!(
                    (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                    "b={b} x={x}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn tau_matches_untelescoped_oracle() {
        for &b in &[1.3, 2.0, 4.0] {
            for &x in &[0.05, 0.5, 0.95] {
                let fast = tau_b(b, x);
                let slow = tau_oracle(b, x);
                assert!(
                    (fast - slow).abs() <= 1e-9 * slow.abs().max(1e-6),
                    "b={b} x={x}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn sigma_boundary_values() {
        assert_eq!(sigma_b(2.0, 0.0), 0.0);
        assert!(sigma_b(2.0, 1.0).is_infinite());
    }

    #[test]
    fn tau_boundary_values() {
        assert_eq!(tau_b(2.0, 0.0), 0.0);
        assert_eq!(tau_b(2.0, 1.0), 0.0);
    }

    #[test]
    fn sigma_is_monotonically_increasing() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = sigma_b(2.0, x);
            assert!(v > prev, "sigma not increasing at x={x}");
            prev = v;
        }
    }

    #[test]
    fn tau_is_nonnegative() {
        for &b in &[1.1, 2.0, 8.0] {
            for i in 0..=100 {
                let x = i as f64 / 100.0;
                let v = tau_b(b, x);
                assert!(v >= 0.0, "tau_b({b}, {x}) = {v}");
            }
        }
    }

    #[test]
    fn sigma_converges_for_b_near_one() {
        // x close to 1 and b close to 1 is the stress case for convergence.
        let v = sigma_b(1.001, 1.0 - 1.0 / 4096.0);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn tau_converges_for_b_near_one() {
        let v = tau_b(1.001, 0.5);
        assert!(v.is_finite() && v >= 0.0);
    }
}
