//! Exact binomial probability computations.
//!
//! Figure 4 of the paper plots the *theoretical* RMSE of the
//! collision-count estimator Ĵ_up, whose input D₀ is binomially distributed.
//! Rather than simulating, the experiment harness computes the exact
//! expectation over the binomial distribution; this module supplies the
//! log-space pmf built on a cached log-factorial table.

/// Binomial pmf evaluator with a precomputed log-factorial table.
#[derive(Debug, Clone)]
pub struct BinomialPmf {
    /// `ln_fact[i] = ln(i!)`.
    ln_fact: Vec<f64>,
}

impl BinomialPmf {
    /// Prepares tables for evaluating pmfs with `n <= n_max`.
    pub fn new(n_max: usize) -> Self {
        let mut ln_fact = Vec::with_capacity(n_max + 1);
        ln_fact.push(0.0);
        let mut acc = 0.0f64;
        for i in 1..=n_max {
            acc += (i as f64).ln();
            ln_fact.push(acc);
        }
        Self { ln_fact }
    }

    /// Natural log of the binomial coefficient `C(n, k)`.
    ///
    /// # Panics
    /// Panics if `k > n` or `n` exceeds the table size.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        assert!(k <= n, "k must not exceed n");
        self.ln_fact[n] - self.ln_fact[k] - self.ln_fact[n - k]
    }

    /// pmf of `Binomial(n, p)` at `k`.
    pub fn pmf(&self, n: usize, k: usize, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if p == 1.0 {
            return if k == n { 1.0 } else { 0.0 };
        }
        let ln_p =
            self.ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln_1p_off();
        ln_p.exp()
    }

    /// Expectation `E[f(K)]` for `K ~ Binomial(n, p)` by direct summation.
    pub fn expectation<F: Fn(usize) -> f64>(&self, n: usize, p: f64, f: F) -> f64 {
        (0..=n).map(|k| self.pmf(n, k, p) * f(k)).sum()
    }
}

/// Helper: `ln(x)` written as `ln_1p(x - 1)` for better accuracy when x is
/// near 1 (the common case for `1 - p` with small `p`).
trait Ln1pOff {
    fn ln_1p_off(self) -> f64;
}

impl Ln1pOff for f64 {
    #[inline]
    fn ln_1p_off(self) -> f64 {
        (self - 1.0).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let pmf = BinomialPmf::new(4096);
        for &(n, p) in &[(10usize, 0.3), (100, 0.01), (4096, 0.5), (4096, 0.999)] {
            let total = pmf.expectation(n, p, |_| 1.0);
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn pmf_matches_small_cases() {
        let pmf = BinomialPmf::new(16);
        // Binomial(4, 0.5): pmf = C(4,k)/16.
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0];
        for (k, &e) in expected.iter().enumerate() {
            assert!((pmf.pmf(4, k, 0.5) - e / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn expectation_matches_mean_and_variance() {
        let pmf = BinomialPmf::new(512);
        let (n, p) = (512usize, 0.37);
        let mean = pmf.expectation(n, p, |k| k as f64);
        let var = pmf.expectation(n, p, |k| {
            let d = k as f64 - n as f64 * p;
            d * d
        });
        assert!((mean - n as f64 * p).abs() < 1e-8);
        assert!((var - n as f64 * p * (1.0 - p)).abs() < 1e-6);
    }

    #[test]
    fn degenerate_probabilities() {
        let pmf = BinomialPmf::new(8);
        assert_eq!(pmf.pmf(8, 0, 0.0), 1.0);
        assert_eq!(pmf.pmf(8, 3, 0.0), 0.0);
        assert_eq!(pmf.pmf(8, 8, 1.0), 1.0);
        assert_eq!(pmf.pmf(8, 7, 1.0), 0.0);
    }

    #[test]
    fn ln_choose_symmetry() {
        let pmf = BinomialPmf::new(100);
        for k in 0..=100 {
            let a = pmf.ln_choose(100, k);
            let b = pmf.ln_choose(100, 100 - k);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "k must not exceed n")]
    fn rejects_k_above_n() {
        BinomialPmf::new(10).ln_choose(5, 6);
    }
}
