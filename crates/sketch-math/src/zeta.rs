//! The function ζ_b (paper eq. (10), Lemma 11).
//!
//! ζ_b(x₁, x₂) = Σ_{k=-∞}^{∞} e^{-b^{x₁-k}} − e^{-b^{x₂-k}} ≈ x₂ − x₁.
//! The joint estimator replaces ζ_b by the difference of its arguments; the
//! relative error of that step is below 10⁻⁵ for b ≤ 2 (Lemma 11). This
//! module provides the exact series so tests can verify the approximation
//! quality claimed by the paper.

/// Evaluates ζ_b(x₁, x₂) by direct series summation (requires `x₁ <= x₂`).
///
/// # Panics
/// Panics if `b <= 1` or `x₁ > x₂`.
pub fn zeta(b: f64, x1: f64, x2: f64) -> f64 {
    assert!(b > 1.0, "zeta requires b > 1");
    assert!(x1 <= x2, "zeta requires x1 <= x2");
    if x1 == x2 {
        return 0.0;
    }
    let ln_b = b.ln();
    let term = |k: i64| -> f64 {
        let e1 = (-((x1 - k as f64) * ln_b).exp()).exp();
        let e2 = (-((x2 - k as f64) * ln_b).exp()).exp();
        e1 - e2
    };
    // Around k ≈ x the difference peaks; it decays in both directions.
    let center = x1.round() as i64;
    let mut sum = term(center);
    let mut k = center + 1;
    loop {
        let v = term(k);
        sum += v;
        if v.abs() < sum.abs() * 1e-18 || k - center > 20_000_000 {
            break;
        }
        k += 1;
    }
    let mut k = center - 1;
    loop {
        let v = term(k);
        sum += v;
        if v.abs() < sum.abs() * 1e-18 || center - k > 20_000_000 {
            break;
        }
        k -= 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_approximates_difference_for_b2() {
        // Lemma 11: relative error below 9.885e-6 for b = 2.
        for &(x1, x2) in &[(0.0, 1.0), (0.3, 2.7), (-1.5, 0.5), (10.0, 10.1)] {
            let z = zeta(2.0, x1, x2);
            let rel = ((z - (x2 - x1)) / (x2 - x1)).abs();
            assert!(rel < 9.885e-6, "x1={x1} x2={x2} rel={rel}");
        }
    }

    #[test]
    fn zeta_error_shrinks_as_b_approaches_one() {
        let rel = |b: f64| {
            let z = zeta(b, 0.25, 1.75);
            ((z - 1.5) / 1.5).abs()
        };
        assert!(rel(1.2) < rel(2.0).max(1e-30) + 1e-12);
        assert!(rel(1.2) < 1e-10);
    }

    #[test]
    fn zeta_of_equal_arguments_is_zero() {
        assert_eq!(zeta(2.0, 1.5, 1.5), 0.0);
    }

    #[test]
    fn zeta_is_shift_invariant() {
        // zeta_b(x1 + 1, x2 + 1) = zeta_b(x1, x2) by reindexing k.
        let a = zeta(1.7, 0.2, 0.9);
        let b = zeta(1.7, 1.2, 1.9);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "x1 <= x2")]
    fn zeta_rejects_descending_arguments() {
        zeta(2.0, 1.0, 0.0);
    }
}
