//! Fisher information of the Jaccard similarity (paper Lemmas 15 and 19).
//!
//! For known cardinalities the register comparison counts (D⁺, D⁻, D₀) are
//! multinomial and the Fisher information I(J) has a closed form. Its
//! inverse square root is the asymptotic RMSE of the maximum-likelihood
//! estimator (m → ∞) and provides the "theory" series of Figures 2, 6–9 and
//! 13–18 of the paper.

use crate::pb::p_b;

/// Fisher information I(J) for base `b > 1` (Lemma 15).
///
/// `u` and `v` are the relative cardinalities n_U/(n_U+n_V) and
/// n_V/(n_U+n_V) with `u + v = 1`; `j` must lie in `[0, min(u/v, v/u))`
/// (the information diverges at the upper end of the interval).
pub fn fisher_information(m: usize, b: f64, u: f64, v: f64, j: f64) -> f64 {
    assert!(b > 1.0, "use fisher_information_b1 for the b -> 1 limit");
    debug_assert!((u + v - 1.0).abs() < 1e-9);
    let p_plus = p_b(b, u - v * j);
    let p_minus = p_b(b, v - u * j);
    let p_zero = 1.0 - p_plus - p_minus;
    let bp_plus = b.powf(p_plus);
    let bp_minus = b.powf(p_minus);
    let factor = m as f64 * (b - 1.0) * (b - 1.0) / (b * b * b.ln() * b.ln());
    factor
        * ((v * bp_plus).powi(2) / p_plus
            + (u * bp_minus).powi(2) / p_minus
            + (v * bp_plus + u * bp_minus).powi(2) / p_zero)
}

/// Fisher information in the limit b → 1 (Lemma 19):
/// I(J) = m·u·v·(1−J) / (J·(u−vJ)·(v−uJ)).
pub fn fisher_information_b1(m: usize, u: f64, v: f64, j: f64) -> f64 {
    debug_assert!((u + v - 1.0).abs() < 1e-9);
    m as f64 * u * v * (1.0 - j) / (j * (u - v * j) * (v - u * j))
}

/// Asymptotic RMSE of the ML Jaccard estimator with known cardinalities:
/// I(J)^{-1/2}. Pass `b == 1.0` for the MinHash-style limit.
pub fn jaccard_rmse_theory(m: usize, b: f64, u: f64, v: f64, j: f64) -> f64 {
    let info = if b == 1.0 {
        fisher_information_b1(m, u, v, j)
    } else {
        fisher_information(m, b, u, v, j)
    };
    1.0 / info.sqrt()
}

/// RMSE of the classic MinHash estimator (fraction of equal registers):
/// sqrt(J (1−J) / m). The reference line of Figures 2 and 4.
pub fn minhash_rmse(m: usize, j: f64) -> f64 {
    (j * (1.0 - j) / m as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b1_limit_matches_small_b() {
        for &j in &[0.1, 0.5, 0.9] {
            for &(u, v) in &[(0.5f64, 0.5f64), (1.0 / 3.0, 2.0 / 3.0)] {
                if j >= (u / v).min(v / u) {
                    continue;
                }
                let exact = fisher_information(4096, 1.0 + 1e-7, u, v, j);
                let limit = fisher_information_b1(4096, u, v, j);
                assert!(
                    ((exact - limit) / limit).abs() < 1e-4,
                    "j={j} u={u}: {exact} vs {limit}"
                );
            }
        }
    }

    #[test]
    fn equal_cardinality_b1_matches_minhash_bound() {
        // Lemma 19 with u = v = 1/2 gives I^{-1/2} = sqrt(J(1-J)/m).
        let m = 4096;
        for &j in &[0.05, 0.3, 0.7, 0.95] {
            let theory = jaccard_rmse_theory(m, 1.0, 0.5, 0.5, j);
            let minhash = minhash_rmse(m, j);
            assert!(((theory - minhash) / minhash).abs() < 1e-12);
        }
    }

    #[test]
    fn asymmetric_cardinalities_beat_minhash_for_b1() {
        // Lemma 19: the ratio is <= 1, strictly below 1 when u != v.
        let m = 256;
        let (u, v) = (1.0 / 3.0, 2.0 / 3.0);
        for &j in &[0.1, 0.3] {
            let theory = jaccard_rmse_theory(m, 1.0, u, v, j);
            assert!(theory < minhash_rmse(m, j));
        }
    }

    #[test]
    fn information_increases_with_m() {
        let i_small = fisher_information(256, 2.0, 0.5, 0.5, 0.4);
        let i_large = fisher_information(4096, 2.0, 0.5, 0.5, 0.4);
        assert!((i_large / i_small - 16.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_ratio_grows_with_b_for_equal_sets() {
        // Figure 2 (left): larger b means larger relative RMSE.
        let m = 4096;
        let j = 0.5;
        let r_small = jaccard_rmse_theory(m, 1.001, 0.5, 0.5, j) / minhash_rmse(m, j);
        let r_large = jaccard_rmse_theory(m, 2.0, 0.5, 0.5, j) / minhash_rmse(m, j);
        assert!(r_small < r_large);
        assert!((r_small - 1.0).abs() < 0.01, "b=1.001 ratio {r_small}");
        assert!(r_large < 2.0, "b=2 ratio {r_large}");
    }

    #[test]
    fn information_diverges_at_jaccard_limit() {
        let (u, v) = (0.4, 0.6);
        let j_max: f64 = (u / v_f(v, u)).min(v / u);
        fn v_f(v: f64, _u: f64) -> f64 {
            v
        }
        let near = fisher_information(100, 2.0, u, v, j_max - 1e-9);
        let far = fisher_information(100, 2.0, u, v, j_max * 0.5);
        assert!(near > 1e6 * far);
    }
}
