//! Fixed-width bit packing of register arrays.
//!
//! Sketch memory-footprint claims (paper §2.3) assume registers stored in
//! `⌈log₂(q+2)⌉` bits each. This module is the shared packing substrate
//! used by the SetSketch and GHLL binary codecs: little-endian bit order,
//! widths 1..=32.

/// Errors raised when unpacking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitPackError {
    /// Fewer input bytes than `ceil(m * bits / 8)`.
    Truncated,
    /// A decoded value exceeds the allowed maximum.
    ValueOutOfRange,
    /// Width outside 1..=32.
    InvalidBitWidth,
}

impl std::fmt::Display for BitPackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitPackError::Truncated => write!(f, "packed buffer is truncated"),
            BitPackError::ValueOutOfRange => write!(f, "decoded value exceeds maximum"),
            BitPackError::InvalidBitWidth => write!(f, "bit width must be between 1 and 32"),
        }
    }
}

impl std::error::Error for BitPackError {}

/// Packs `values` into `bits` bits each.
///
/// # Panics
/// Panics if `bits` is outside `1..=32` or any value does not fit.
pub fn pack_bits(values: &[u32], bits: u32) -> Vec<u8> {
    assert!((1..=32).contains(&bits), "bit width must be 1..=32");
    let mask = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    let mut out = Vec::with_capacity((values.len() * bits as usize).div_ceil(8));
    let mut buffer: u64 = 0;
    let mut filled: u32 = 0;
    for &v in values {
        assert!(v <= mask, "value {v} exceeds {bits} bits");
        buffer |= (v as u64) << filled;
        filled += bits;
        while filled >= 8 {
            out.push((buffer & 0xff) as u8);
            buffer >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push((buffer & 0xff) as u8);
    }
    out
}

/// Unpacks `m` values of `bits` bits each, validating against `max_value`.
pub fn unpack_bits(
    bytes: &[u8],
    m: usize,
    bits: u32,
    max_value: u32,
) -> Result<Vec<u32>, BitPackError> {
    if !(1..=32).contains(&bits) {
        return Err(BitPackError::InvalidBitWidth);
    }
    let needed = (m * bits as usize).div_ceil(8);
    if bytes.len() < needed {
        return Err(BitPackError::Truncated);
    }
    let mask = if bits == 32 {
        u32::MAX as u64
    } else {
        (1u64 << bits) - 1
    };
    let mut values = Vec::with_capacity(m);
    let mut buffer: u64 = 0;
    let mut filled: u32 = 0;
    let mut iter = bytes.iter();
    for _ in 0..m {
        while filled < bits {
            let byte = *iter.next().ok_or(BitPackError::Truncated)?;
            buffer |= (byte as u64) << filled;
            filled += 8;
        }
        let v = (buffer & mask) as u32;
        if v > max_value {
            return Err(BitPackError::ValueOutOfRange);
        }
        values.push(v);
        buffer >>= bits;
        filled -= bits;
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_widths() {
        for bits in [1u32, 5, 6, 8, 16, 31, 32] {
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            let values: Vec<u32> = (0..100u32)
                .map(|i| i.wrapping_mul(2_654_435_761) & mask)
                .collect();
            let packed = pack_bits(&values, bits);
            assert_eq!(unpack_bits(&packed, 100, bits, mask).unwrap(), values);
        }
    }

    #[test]
    fn size_formula() {
        assert_eq!(pack_bits(&[0; 4096], 6).len(), 3072);
        assert_eq!(pack_bits(&[0; 5], 3).len(), 2);
        assert!(pack_bits(&[], 7).is_empty());
    }

    #[test]
    fn error_cases() {
        let packed = pack_bits(&[3; 10], 6);
        assert_eq!(
            unpack_bits(&packed[..packed.len() - 1], 10, 6, 63),
            Err(BitPackError::Truncated)
        );
        assert_eq!(
            unpack_bits(&packed, 10, 6, 2),
            Err(BitPackError::ValueOutOfRange)
        );
        assert_eq!(
            unpack_bits(&packed, 10, 0, 63),
            Err(BitPackError::InvalidBitWidth)
        );
    }
}
