//! Fixed-width bit packing of register arrays.
//!
//! Sketch memory-footprint claims (paper §2.3) assume registers stored in
//! `⌈log₂(q+2)⌉` bits each. This module is the shared packing substrate
//! used by the SetSketch and GHLL binary codecs: little-endian bit order,
//! widths 1..=32.

/// Errors raised when unpacking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitPackError {
    /// Fewer input bytes than `ceil(m * bits / 8)`.
    Truncated,
    /// A decoded value exceeds the allowed maximum.
    ValueOutOfRange,
    /// Width outside 1..=32.
    InvalidBitWidth,
    /// An offset-codec header is malformed (impossible width or
    /// exception count).
    MalformedHeader,
    /// An offset-codec exception names a position outside `0..m`, or
    /// repeats a position.
    IndexOutOfRange,
}

impl std::fmt::Display for BitPackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitPackError::Truncated => write!(f, "packed buffer is truncated"),
            BitPackError::ValueOutOfRange => write!(f, "decoded value exceeds maximum"),
            BitPackError::InvalidBitWidth => write!(f, "bit width must be between 1 and 32"),
            BitPackError::MalformedHeader => write!(f, "offset codec header is malformed"),
            BitPackError::IndexOutOfRange => {
                write!(
                    f,
                    "offset codec exception index is out of range or repeated"
                )
            }
        }
    }
}

impl std::error::Error for BitPackError {}

/// Packs `values` into `bits` bits each.
///
/// # Panics
/// Panics if `bits` is outside `1..=32` or any value does not fit.
pub fn pack_bits(values: &[u32], bits: u32) -> Vec<u8> {
    assert!((1..=32).contains(&bits), "bit width must be 1..=32");
    let mask = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    let mut out = Vec::with_capacity((values.len() * bits as usize).div_ceil(8));
    let mut buffer: u64 = 0;
    let mut filled: u32 = 0;
    for &v in values {
        assert!(v <= mask, "value {v} exceeds {bits} bits");
        buffer |= (v as u64) << filled;
        filled += bits;
        while filled >= 8 {
            out.push((buffer & 0xff) as u8);
            buffer >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push((buffer & 0xff) as u8);
    }
    out
}

/// Unpacks `m` values of `bits` bits each, validating against `max_value`.
pub fn unpack_bits(
    bytes: &[u8],
    m: usize,
    bits: u32,
    max_value: u32,
) -> Result<Vec<u32>, BitPackError> {
    if !(1..=32).contains(&bits) {
        return Err(BitPackError::InvalidBitWidth);
    }
    let needed = (m * bits as usize).div_ceil(8);
    if bytes.len() < needed {
        return Err(BitPackError::Truncated);
    }
    let mask = if bits == 32 {
        u32::MAX as u64
    } else {
        (1u64 << bits) - 1
    };
    let mut values = Vec::with_capacity(m);
    let mut buffer: u64 = 0;
    let mut filled: u32 = 0;
    let mut iter = bytes.iter();
    for _ in 0..m {
        while filled < bits {
            let byte = *iter.next().ok_or(BitPackError::Truncated)?;
            buffer |= (byte as u64) << filled;
            filled += 8;
        }
        let v = (buffer & mask) as u32;
        if v > max_value {
            return Err(BitPackError::ValueOutOfRange);
        }
        values.push(v);
        buffer >>= bits;
        filled -= bits;
    }
    Ok(values)
}

/// Size in bytes of the offset-codec header: base (u32), inline bit
/// width (u8), exception count (u32).
const OFFSET_HEADER: usize = 9;

/// Wire size in bytes of one exception entry: position (u32) + value
/// (u32).
const EXCEPTION_BYTES: usize = 8;

/// Compresses `values` as offsets from their minimum plus a sparse
/// exception list — the HyperLogLogLog-style layout the SetSketch warm
/// tier uses, with the sketch's `K_low` lower bound as the shared base.
///
/// The codec picks the inline bit width `w` that minimizes total size:
/// values whose offset from the base fits in `w` bits are stored inline
/// at `w` bits each; the rest become `(position, value)` exception
/// entries. For concentrated register distributions (base-2 SetSketch,
/// HyperLogLog) offsets span a handful of bits, so the packed form runs
/// 4–10× smaller than resident `u32` registers.
///
/// Layout: `base: u32 LE | w: u8 | exceptions: u32 LE |`
/// `exceptions × (position: u32 LE, value: u32 LE) | inline offsets`
/// (`w` bits each, little-endian bit order; absent when `w == 0`).
/// Exception positions hold the placeholder `2^w − 1` inline.
///
/// Round-trips bit-for-bit through [`unpack_offsets`] for any input.
pub fn pack_offsets(values: &[u32]) -> Vec<u8> {
    let base = values.iter().copied().min().unwrap_or(0);
    // Histogram of offset bit lengths; cumulative counts give the
    // exception count at every candidate width in one pass.
    let mut by_bits = [0usize; 33];
    for &v in values {
        by_bits[(32 - (v - base).leading_zeros()) as usize] += 1;
    }
    let mut width = 0u32;
    let mut best_cost = usize::MAX;
    let mut inline = 0usize;
    for (w, &bucket) in by_bits.iter().enumerate() {
        inline += bucket;
        let exceptions = values.len() - inline;
        let cost = EXCEPTION_BYTES * exceptions + (values.len() * w).div_ceil(8);
        if cost < best_cost {
            best_cost = cost;
            width = w as u32;
        }
        if exceptions == 0 {
            break; // wider widths only grow the inline section
        }
    }
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut exceptions: Vec<(u32, u32)> = Vec::new();
    let mut inline_values: Vec<u32> = Vec::with_capacity(values.len());
    for (i, &v) in values.iter().enumerate() {
        let offset = v - base;
        if offset > mask {
            exceptions.push((i as u32, v));
            inline_values.push(mask);
        } else {
            inline_values.push(offset);
        }
    }
    let mut out = Vec::with_capacity(OFFSET_HEADER + EXCEPTION_BYTES * exceptions.len());
    out.extend_from_slice(&base.to_le_bytes());
    out.push(width as u8);
    out.extend_from_slice(&(exceptions.len() as u32).to_le_bytes());
    for (position, value) in exceptions {
        out.extend_from_slice(&position.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    if width > 0 {
        out.extend_from_slice(&pack_bits(&inline_values, width));
    }
    out
}

/// Decompresses a [`pack_offsets`] buffer back into `m` values,
/// validating every reconstructed value against `max_value`.
pub fn unpack_offsets(bytes: &[u8], m: usize, max_value: u32) -> Result<Vec<u32>, BitPackError> {
    let header = bytes.get(..OFFSET_HEADER).ok_or(BitPackError::Truncated)?;
    let base = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
    let width = header[4] as u32;
    let exception_count = u32::from_le_bytes(header[5..9].try_into().expect("4-byte slice"));
    if width > 32 || exception_count as usize > m {
        return Err(BitPackError::MalformedHeader);
    }
    let exception_end = OFFSET_HEADER + EXCEPTION_BYTES * exception_count as usize;
    let exception_bytes = bytes
        .get(OFFSET_HEADER..exception_end)
        .ok_or(BitPackError::Truncated)?;
    let mut values = if width == 0 {
        vec![base; m]
    } else {
        let mut offsets = unpack_bits(&bytes[exception_end..], m, width, u32::MAX)?;
        for offset in &mut offsets {
            let value = (base as u64) + (*offset as u64);
            if value > max_value as u64 {
                return Err(BitPackError::ValueOutOfRange);
            }
            *offset = value as u32;
        }
        offsets
    };
    if base > max_value {
        return Err(BitPackError::ValueOutOfRange);
    }
    let mut last_position: Option<u32> = None;
    for entry in exception_bytes.chunks_exact(EXCEPTION_BYTES) {
        let position = u32::from_le_bytes(entry[0..4].try_into().expect("4-byte slice"));
        let value = u32::from_le_bytes(entry[4..8].try_into().expect("4-byte slice"));
        // Encoded positions are strictly ascending; enforcing that
        // rejects duplicates and keeps decoding order-insensitive.
        if position as usize >= m || last_position.is_some_and(|p| position <= p) {
            return Err(BitPackError::IndexOutOfRange);
        }
        if value > max_value {
            return Err(BitPackError::ValueOutOfRange);
        }
        values[position as usize] = value;
        last_position = Some(position);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_widths() {
        for bits in [1u32, 5, 6, 8, 16, 31, 32] {
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            let values: Vec<u32> = (0..100u32)
                .map(|i| i.wrapping_mul(2_654_435_761) & mask)
                .collect();
            let packed = pack_bits(&values, bits);
            assert_eq!(unpack_bits(&packed, 100, bits, mask).unwrap(), values);
        }
    }

    #[test]
    fn size_formula() {
        assert_eq!(pack_bits(&[0; 4096], 6).len(), 3072);
        assert_eq!(pack_bits(&[0; 5], 3).len(), 2);
        assert!(pack_bits(&[], 7).is_empty());
    }

    #[test]
    fn offsets_roundtrip_shapes() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![7],
            vec![5; 100],                                 // all equal: w = 0
            (0..4096u32).map(|i| 40 + (i % 7)).collect(), // tight band
            (0..100u32).map(|i| i * i).collect(),         // wide spread
            vec![0, u32::MAX, 0, 3],                      // extreme outlier
            (0..257u32)
                .map(|i| {
                    1000 + (i.wrapping_mul(2_654_435_761) % 5) + if i % 97 == 0 { 900 } else { 0 }
                })
                .collect(), // base + sparse exceptions
        ];
        for values in cases {
            let packed = pack_offsets(&values);
            let unpacked = unpack_offsets(&packed, values.len(), u32::MAX).unwrap();
            assert_eq!(values, unpacked);
        }
    }

    #[test]
    fn offsets_compress_concentrated_registers() {
        // Base-2 SetSketch-like registers: m = 4096 values within a
        // ~6-value band around K_low. Packed form must beat the 2.5×
        // target against 4-byte resident registers by a wide margin.
        let values: Vec<u32> = (0..4096u32).map(|i| 30 + (i % 6)).collect();
        let packed = pack_offsets(&values);
        assert!(
            packed.len() * 8 < 4096 * 4,
            "{} bytes is not ≥ 8× smaller than {}",
            packed.len(),
            4096 * 4
        );
    }

    #[test]
    fn offsets_error_cases() {
        let values: Vec<u32> = (0..64u32).map(|i| 10 + i % 4).collect();
        let packed = pack_offsets(&values);
        assert_eq!(
            unpack_offsets(&packed[..OFFSET_HEADER - 1], 64, u32::MAX),
            Err(BitPackError::Truncated)
        );
        assert_eq!(
            unpack_offsets(&packed[..packed.len() - 1], 64, u32::MAX),
            Err(BitPackError::Truncated)
        );
        assert_eq!(
            unpack_offsets(&packed, 64, 11),
            Err(BitPackError::ValueOutOfRange)
        );
        let mut bad_width = packed.clone();
        bad_width[4] = 33;
        assert_eq!(
            unpack_offsets(&bad_width, 64, u32::MAX),
            Err(BitPackError::MalformedHeader)
        );
        let mut bad_count = packed.clone();
        bad_count[5..9].copy_from_slice(&65u32.to_le_bytes());
        assert_eq!(
            unpack_offsets(&bad_count, 64, u32::MAX),
            Err(BitPackError::MalformedHeader)
        );
        // An exception whose position is out of range.
        let with_exception = pack_offsets(&[0, 0, 0, 1 << 20]);
        let mut bad_index = with_exception.clone();
        bad_index[OFFSET_HEADER..OFFSET_HEADER + 4].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            unpack_offsets(&bad_index, 4, u32::MAX),
            Err(BitPackError::IndexOutOfRange)
        );
        let mut bad_value = with_exception;
        bad_value[OFFSET_HEADER + 4..OFFSET_HEADER + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            unpack_offsets(&bad_value, 4, 1 << 21),
            Err(BitPackError::ValueOutOfRange)
        );
    }

    #[test]
    fn error_cases() {
        let packed = pack_bits(&[3; 10], 6);
        assert_eq!(
            unpack_bits(&packed[..packed.len() - 1], 10, 6, 63),
            Err(BitPackError::Truncated)
        );
        assert_eq!(
            unpack_bits(&packed, 10, 6, 2),
            Err(BitPackError::ValueOutOfRange)
        );
        assert_eq!(
            unpack_bits(&packed, 10, 0, 63),
            Err(BitPackError::InvalidBitWidth)
        );
    }
}
