//! Sketch-agnostic joint estimation machinery (paper §3.2, §4.1–4.3).
//!
//! The paper's joint estimator only needs, from any pair of sketches,
//!
//! 1. the comparison counts `D⁺`, `D⁻`, `D₀` of their register arrays,
//! 2. cardinality estimates (or true cardinalities) of both sets, and
//! 3. the base `b` of the register scale.
//!
//! This module hosts the estimator itself so that SetSketch, MinHash, GHLL
//! and HyperMinHash can all share one implementation: the log-likelihood
//! maximization via Brent's method, the closed form (17) for the b → 1
//! (MinHash) limit, the inclusion–exclusion fallback (13), and the algebra
//! that turns `(n_U, n_V, J)` into every other joint quantity (§3.2).

use crate::brent::maximize;
use crate::pb::p_b;

/// Register comparison counts between two sketches of equal size.
///
/// The convention is *max-sketch* oriented: `d_plus` counts registers where
/// the U-side dominates in the direction caused by elements of `U \ V`.
/// For max-based sketches (SetSketch, GHLL, HyperMinHash) that is
/// `K_Ui > K_Vi`; min-based MinHash must count `K_Ui < K_Vi` instead
/// (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JointCounts {
    /// Registers where the sketch of U dominates.
    pub d_plus: u32,
    /// Registers where the sketch of V dominates.
    pub d_minus: u32,
    /// Equal registers.
    pub d0: u32,
}

impl JointCounts {
    /// Creates counts; `m()` is their sum.
    pub fn new(d_plus: u32, d_minus: u32, d0: u32) -> Self {
        Self {
            d_plus,
            d_minus,
            d0,
        }
    }

    /// Builds counts from two register slices of equal length.
    ///
    /// For `u32` registers — every register-array sketch in this
    /// workspace — prefer [`from_u32`](Self::from_u32), which runs the
    /// vectorized comparison kernel instead of this element-wise loop.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_registers<T: Ord>(u: &[T], v: &[T]) -> Self {
        assert_eq!(u.len(), v.len(), "register arrays must have equal length");
        let mut counts = Self::new(0, 0, 0);
        for (a, b) in u.iter().zip(v) {
            match a.cmp(b) {
                std::cmp::Ordering::Greater => counts.d_plus += 1,
                std::cmp::Ordering::Less => counts.d_minus += 1,
                std::cmp::Ordering::Equal => counts.d0 += 1,
            }
        }
        counts
    }

    /// Builds counts from two `u32` register arrays through the
    /// vectorized [`compare_counts`](crate::kernels::compare_counts)
    /// kernel; semantically identical to
    /// [`from_registers`](Self::from_registers).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_u32(u: &[u32], v: &[u32]) -> Self {
        let (d_plus, d_minus, d0) = crate::kernels::compare_counts(u, v);
        Self::new(d_plus, d_minus, d0)
    }

    /// Total number of compared registers.
    pub fn m(&self) -> u32 {
        self.d_plus + self.d_minus + self.d0
    }

    /// Swaps the roles of U and V.
    pub fn swapped(&self) -> Self {
        Self {
            d_plus: self.d_minus,
            d_minus: self.d_plus,
            d0: self.d0,
        }
    }
}

/// Upper limit of the Jaccard similarity given relative cardinalities:
/// `min(u/v, v/u)` (paper §3.2).
#[inline]
fn jaccard_upper_limit(u: f64, v: f64) -> f64 {
    (u / v).min(v / u)
}

/// Maximum-likelihood estimate of the Jaccard similarity (paper §3.2).
///
/// `u` and `v` are relative cardinalities with `u + v = 1` (estimates or
/// true values); `b` is the register base (`> 1`; use [`ml_jaccard_b1`] for
/// the MinHash limit). The log-likelihood is strictly concave for
/// `b <= e` (Lemma 14), so Brent's method converges to the global maximum.
pub fn ml_jaccard(counts: JointCounts, b: f64, u: f64, v: f64) -> f64 {
    assert!(b > 1.0, "ml_jaccard requires b > 1; see ml_jaccard_b1");
    if counts.m() == 0 || u <= 0.0 || v <= 0.0 {
        return 0.0;
    }
    let j_max = jaccard_upper_limit(u, v);
    if counts.d_plus == 0 && counts.d_minus == 0 {
        // All registers equal: the likelihood increases monotonically in J.
        return j_max;
    }
    if counts.d0 == 0 && (counts.d_plus == 0 || counts.d_minus == 0) {
        // One sketch dominates everywhere: no overlap evidence at all.
        return 0.0;
    }
    let d_plus = counts.d_plus as f64;
    let d_minus = counts.d_minus as f64;
    let d0 = counts.d0 as f64;
    let log_likelihood = |j: f64| {
        let p_plus = p_b(b, (u - v * j).max(0.0));
        let p_minus = p_b(b, (v - u * j).max(0.0));
        let p_zero = 1.0 - p_plus - p_minus;
        let mut ll = 0.0;
        if d_plus > 0.0 {
            ll += d_plus * p_plus.ln();
        }
        if d_minus > 0.0 {
            ll += d_minus * p_minus.ln();
        }
        if d0 > 0.0 {
            ll += d0 * p_zero.ln();
        }
        ll
    };
    let result = maximize(log_likelihood, 0.0, j_max, 1e-12);
    result.x.clamp(0.0, j_max)
}

/// Closed-form ML estimate for the b → 1 limit (paper eq. (17), Lemma 18).
///
/// This is the new MinHash joint estimator that dominates the classic
/// equal-component estimator.
pub fn ml_jaccard_b1(counts: JointCounts, u: f64, v: f64) -> f64 {
    let m = counts.m();
    if m == 0 || u <= 0.0 || v <= 0.0 {
        return 0.0;
    }
    let d_plus = counts.d_plus as f64;
    let d_minus = counts.d_minus as f64;
    let d0 = counts.d0 as f64;
    let a = u * u * (d0 + d_minus);
    let c = v * v * (d0 + d_plus);
    let discriminant = (a - c) * (a - c) + 4.0 * d_minus * d_plus * u * u * v * v;
    let j = (a + c - discriminant.sqrt()) / (2.0 * m as f64 * u * v);
    j.clamp(0.0, jaccard_upper_limit(u, v))
}

/// Inclusion–exclusion estimate of the Jaccard similarity (paper eq. (13)),
/// trimmed to the feasible range `[0, min(n_u/n_v, n_v/n_u)]`.
pub fn inclusion_exclusion_jaccard(n_u: f64, n_v: f64, n_union: f64) -> f64 {
    if n_union <= 0.0 || n_u <= 0.0 || n_v <= 0.0 {
        return 0.0;
    }
    let j = (n_u + n_v - n_union) / n_union;
    j.clamp(0.0, (n_u / n_v).min(n_v / n_u))
}

/// All joint quantities of paper §3.2, derived from `(n_U, n_V, J)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointQuantities {
    /// Cardinality of U.
    pub n_u: f64,
    /// Cardinality of V.
    pub n_v: f64,
    /// Jaccard similarity J = |U ∩ V| / |U ∪ V|.
    pub jaccard: f64,
    /// |U ∪ V| = (n_U + n_V) / (1 + J).
    pub union_size: f64,
    /// |U ∩ V| = (n_U + n_V) J / (1 + J).
    pub intersection: f64,
    /// |U \ V| = (n_U − n_V J) / (1 + J).
    pub difference_uv: f64,
    /// |V \ U| = (n_V − n_U J) / (1 + J).
    pub difference_vu: f64,
    /// |U ∩ V| / sqrt(|U| |V|).
    pub cosine: f64,
    /// |U ∩ V| / |U|.
    pub inclusion_u: f64,
    /// |U ∩ V| / |V|.
    pub inclusion_v: f64,
    /// Sørensen–Dice coefficient 2|U ∩ V| / (|U| + |V|) = 2J/(1+J).
    ///
    /// The paper's conclusion notes the estimation approach extends to
    /// "other set similarity measures"; Dice and overlap are the two most
    /// common ones and are plain functions of (n_U, n_V, J).
    pub dice: f64,
    /// Overlap (Szymkiewicz–Simpson) coefficient |U ∩ V| / min(|U|, |V|).
    pub overlap: f64,
}

/// Inverts a monotonically non-decreasing register-collision-probability
/// curve `J ↦ P(K_Ui = K_Vi)` at an observed collision rate `p ∈ [0, 1]`
/// (paper §3.3, eq. (15)).
///
/// This is the generic form of the paper's D₀-based Jaccard estimators:
/// feeding the §3.3 *lower* bound `log_b(1 + J(b−1))` recovers Ĵ_up,
/// feeding the upper bound recovers Ĵ_low, and feeding the exact MinHash
/// probability `P = J` recovers the classic equal-component estimator
/// `Ĵ = D₀/m`. The curve is probed by bisection (64 halvings, i.e. to
/// f64 resolution), so only monotonicity is required — no closed-form
/// inverse. Observed rates below `curve(0)` clamp to 0, rates above
/// `curve(1)` clamp to 1.
pub fn invert_collision_probability(p: f64, curve: impl Fn(f64) -> f64) -> f64 {
    if !p.is_finite() {
        return 0.0;
    }
    if p <= curve(0.0) {
        return 0.0;
    }
    if p >= curve(1.0) {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if curve(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

impl JointQuantities {
    /// Derives every joint quantity from cardinalities and Jaccard
    /// similarity. Negative derived sizes (possible with estimated inputs)
    /// are clamped to zero.
    pub fn new(n_u: f64, n_v: f64, jaccard: f64) -> Self {
        let total = n_u + n_v;
        let denom = 1.0 + jaccard;
        let union_size = total / denom;
        let intersection = (total * jaccard / denom).max(0.0);
        let difference_uv = ((n_u - n_v * jaccard) / denom).max(0.0);
        let difference_vu = ((n_v - n_u * jaccard) / denom).max(0.0);
        let cosine = if n_u > 0.0 && n_v > 0.0 {
            intersection / (n_u * n_v).sqrt()
        } else {
            0.0
        };
        let inclusion_u = if n_u > 0.0 { intersection / n_u } else { 0.0 };
        let inclusion_v = if n_v > 0.0 { intersection / n_v } else { 0.0 };
        let dice = if total > 0.0 {
            2.0 * intersection / total
        } else {
            0.0
        };
        let smaller = n_u.min(n_v);
        let overlap = if smaller > 0.0 {
            (intersection / smaller).min(1.0)
        } else {
            0.0
        };
        Self {
            n_u,
            n_v,
            jaccard,
            union_size,
            intersection,
            difference_uv,
            difference_vu,
            cosine,
            inclusion_u,
            inclusion_v,
            dice,
            overlap,
        }
    }

    /// Joint quantities from the *approximate* D₀-based Jaccard estimate
    /// of paper §3.3: the observed equal-register fraction `d0 / m` is
    /// pushed through the inverse of the family's (monotone)
    /// register-collision-probability curve, and the resulting Jaccard —
    /// clamped to the feasible range `[0, min(n_u/n_v, n_v/n_u)]` — is
    /// expanded into all quantities via [`new`](Self::new).
    ///
    /// Unlike the maximum-likelihood estimator ([`ml_jaccard`]) this
    /// never iterates a likelihood: one curve inversion per call, which
    /// latency-critical bulk sweeps amortize further by tabulating the
    /// inverse over all `m + 1` possible `d0` values. The price is the
    /// §3.3 RMSE envelope (Figure 4) instead of the tighter ML error,
    /// and a conservative (downward-biased) estimate whenever the curve
    /// is the family's lower collision bound.
    pub fn from_collision_counts(
        n_u: f64,
        n_v: f64,
        counts: JointCounts,
        collision_probability: impl Fn(f64) -> f64,
    ) -> Self {
        let m = counts.m();
        if m == 0 {
            return Self::from_estimated_jaccard(n_u, n_v, 0.0);
        }
        let p = counts.d0 as f64 / m as f64;
        Self::from_estimated_jaccard(
            n_u,
            n_v,
            invert_collision_probability(p, collision_probability),
        )
    }

    /// Joint quantities from a Jaccard estimate produced elsewhere —
    /// e.g. a tabulated §3.3 collision-curve inversion — applying the
    /// same degenerate-cardinality handling and feasible-range clamp
    /// (`J ≤ min(n_u/n_v, n_v/n_u)`) as
    /// [`from_collision_counts`](Self::from_collision_counts), so bulk
    /// callers that precompute the inversion share one set of clamp
    /// semantics with the per-pair path.
    pub fn from_estimated_jaccard(n_u: f64, n_v: f64, jaccard: f64) -> Self {
        if n_u <= 0.0 || n_v <= 0.0 {
            return Self::new(n_u.max(0.0), n_v.max(0.0), 0.0);
        }
        Self::new(n_u, n_v, jaccard.clamp(0.0, jaccard_upper_limit(n_u, n_v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pb::p_b;

    /// Expected comparison counts for exact parameters, rounded to the
    /// nearest integers for an m large enough that rounding is negligible.
    fn expected_counts(m: u32, b: f64, u: f64, v: f64, j: f64) -> JointCounts {
        let p_plus = p_b(b, u - v * j);
        let p_minus = p_b(b, v - u * j);
        let d_plus = (m as f64 * p_plus).round() as u32;
        let d_minus = (m as f64 * p_minus).round() as u32;
        JointCounts::new(d_plus, d_minus, m - d_plus - d_minus)
    }

    #[test]
    fn ml_recovers_jaccard_from_expected_counts() {
        let m = 1 << 20;
        for &b in &[1.001, 1.2, 2.0] {
            for &j in &[0.05, 0.3, 0.6] {
                for &(u, v) in &[(0.5, 0.5), (0.4, 0.6)] {
                    if j >= (u / v_f(u, v)).min(v / u) {
                        continue;
                    }
                    let counts = expected_counts(m, b, u, v, j);
                    let est = ml_jaccard(counts, b, u, v);
                    assert!((est - j).abs() < 5e-3, "b={b} j={j} u={u}: est={est}");
                }
            }
        }
        fn v_f(_u: f64, v: f64) -> f64 {
            v
        }
    }

    #[test]
    fn closed_form_matches_brent_for_small_b() {
        let counts = JointCounts::new(700, 500, 2896);
        for &(u, v) in &[(0.5, 0.5), (0.35, 0.65)] {
            let brent = ml_jaccard(counts, 1.0 + 1e-9, u, v);
            let closed = ml_jaccard_b1(counts, u, v);
            assert!(
                (brent - closed).abs() < 1e-5,
                "u={u}: brent={brent} closed={closed}"
            );
        }
    }

    #[test]
    fn closed_form_matches_lemma18_stationarity() {
        // The closed form must zero the derivative of the b->1 likelihood.
        let counts = JointCounts::new(311, 177, 1560);
        let (u, v) = (0.45, 0.55);
        let j = ml_jaccard_b1(counts, u, v);
        let ll_prime = counts.d_plus as f64 * v / (v * j - u)
            + counts.d_minus as f64 * u / (u * j - v)
            + counts.d0 as f64 / j;
        assert!(ll_prime.abs() < 1e-6, "derivative {ll_prime}");
    }

    #[test]
    fn all_equal_registers_give_maximal_jaccard() {
        let counts = JointCounts::new(0, 0, 4096);
        assert_eq!(ml_jaccard(counts, 2.0, 0.5, 0.5), 1.0);
        assert_eq!(ml_jaccard_b1(counts, 0.5, 0.5), 1.0);
        // Asymmetric cardinalities cap J at min(u/v, v/u).
        let j = ml_jaccard(counts, 2.0, 0.25, 0.75);
        assert!((j - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fully_disjoint_registers_give_zero() {
        let counts = JointCounts::new(2048, 2048, 0);
        assert!(ml_jaccard(counts, 2.0, 0.5, 0.5) < 1e-6);
        assert!(ml_jaccard_b1(counts, 0.5, 0.5) < 1e-9);
    }

    #[test]
    fn empty_counts_are_handled() {
        let counts = JointCounts::new(0, 0, 0);
        assert_eq!(ml_jaccard(counts, 2.0, 0.5, 0.5), 0.0);
        assert_eq!(ml_jaccard_b1(counts, 0.5, 0.5), 0.0);
    }

    #[test]
    fn from_registers_counts_correctly() {
        let u = [5u32, 3, 7, 7, 1];
        let v = [4u32, 3, 9, 7, 2];
        let counts = JointCounts::from_registers(&u, &v);
        assert_eq!(counts, JointCounts::new(1, 2, 2));
        assert_eq!(counts.swapped(), JointCounts::new(2, 1, 2));
        assert_eq!(counts.m(), 5);
    }

    #[test]
    fn inclusion_exclusion_is_trimmed() {
        // Estimates implying negative intersections trim to 0.
        assert_eq!(inclusion_exclusion_jaccard(10.0, 10.0, 25.0), 0.0);
        // Estimates above the feasible range trim to min ratio.
        let j = inclusion_exclusion_jaccard(10.0, 30.0, 28.0);
        assert!((j - 10.0 / 30.0).abs() < 1e-12);
        // Interior case.
        let j = inclusion_exclusion_jaccard(100.0, 100.0, 150.0);
        assert!((j - 50.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn joint_quantities_match_set_algebra() {
        // |U| = 60, |V| = 90, |U ∩ V| = 30 -> union 120, J = 0.25.
        let q = JointQuantities::new(60.0, 90.0, 0.25);
        assert!((q.union_size - 120.0).abs() < 1e-9);
        assert!((q.intersection - 30.0).abs() < 1e-9);
        assert!((q.difference_uv - 30.0).abs() < 1e-9);
        assert!((q.difference_vu - 60.0).abs() < 1e-9);
        assert!((q.cosine - 30.0 / (60.0f64 * 90.0).sqrt()).abs() < 1e-12);
        assert!((q.inclusion_u - 0.5).abs() < 1e-12);
        assert!((q.inclusion_v - 1.0 / 3.0).abs() < 1e-12);
        // Dice = 2*30/150; overlap = 30/min(60, 90).
        assert!((q.dice - 60.0 / 150.0).abs() < 1e-12);
        assert!((q.overlap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dice_and_jaccard_are_consistent() {
        // Dice = 2J/(1+J) must hold for any inputs.
        for &(n_u, n_v, j) in &[(10.0, 20.0, 0.3), (5.0, 5.0, 1.0), (100.0, 1.0, 0.0)] {
            let q = JointQuantities::new(n_u, n_v, j);
            assert!((q.dice - 2.0 * j / (1.0 + j)).abs() < 1e-12);
        }
    }

    #[test]
    fn joint_quantities_clamp_negative_differences() {
        // An overestimated J may imply negative difference sizes.
        let q = JointQuantities::new(10.0, 100.0, 0.5);
        assert_eq!(q.difference_uv, 0.0);
        assert!(q.difference_vu > 0.0);
    }

    #[test]
    fn invert_collision_probability_inverts_monotone_curves() {
        // Identity curve (MinHash): inverse is the identity.
        for &p in &[0.0, 0.25, 0.6, 1.0] {
            let j = invert_collision_probability(p, |j| j);
            assert!((j - p).abs() < 1e-12, "p={p}: j={j}");
        }
        // §3.3 lower bound at b = 2: closed-form inverse is (2^p − 1).
        let curve = |j: f64| (1.0 + j).ln() / 2.0f64.ln();
        for &j_true in &[0.1, 0.5, 0.9] {
            let p = curve(j_true);
            let j = invert_collision_probability(p, curve);
            assert!((j - j_true).abs() < 1e-9, "j_true={j_true}: j={j}");
        }
        // Out-of-range observations clamp.
        assert_eq!(invert_collision_probability(-0.5, |j| j), 0.0);
        assert_eq!(invert_collision_probability(1.5, |j| j), 1.0);
        assert_eq!(invert_collision_probability(f64::NAN, |j| j), 0.0);
    }

    #[test]
    fn from_collision_counts_recovers_jaccard() {
        // 3 of 4 registers equal under the identity curve: J = 0.75.
        let counts = JointCounts::new(1, 0, 3);
        let q = JointQuantities::from_collision_counts(100.0, 100.0, counts, |j| j);
        assert!((q.jaccard - 0.75).abs() < 1e-12);
        assert!((q.intersection - 200.0 * 0.75 / 1.75).abs() < 1e-6);
        // Asymmetric cardinalities clamp to the feasible range.
        let q = JointQuantities::from_collision_counts(10.0, 100.0, counts, |j| j);
        assert!((q.jaccard - 0.1).abs() < 1e-12, "jaccard {}", q.jaccard);
    }

    #[test]
    fn from_collision_counts_handles_degenerate_inputs() {
        let q = JointQuantities::from_collision_counts(0.0, 50.0, JointCounts::new(0, 0, 8), |j| j);
        assert_eq!(q.jaccard, 0.0);
        assert_eq!(q.n_v, 50.0);
        let q =
            JointQuantities::from_collision_counts(10.0, 10.0, JointCounts::new(0, 0, 0), |j| j);
        assert_eq!(q.jaccard, 0.0);
    }

    #[test]
    fn symmetric_counts_give_symmetric_estimates() {
        let counts = JointCounts::new(500, 300, 3296);
        let j1 = ml_jaccard(counts, 2.0, 0.4, 0.6);
        let j2 = ml_jaccard(counts.swapped(), 2.0, 0.6, 0.4);
        assert!((j1 - j2).abs() < 1e-9);
    }
}
