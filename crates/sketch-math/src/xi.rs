//! The periodic functions ξ¹_b and ξ²_b (paper eq. (9), Lemmas 6, 8, 10).
//!
//! ξˢ_b(x) = (ln b / Γ(s)) · Σ_{k=-∞}^{∞} b^{s(x-k)} e^{-b^{x-k}} is periodic
//! in x with period 1 and oscillates around 1. The cardinality estimator of
//! the paper replaces it by the constant 1; Lemmas 8 and 10 bound the error
//! of that approximation by ~10⁻⁵ (s = 1) and ~10⁻⁴ (s = 2) for b ≤ 2.
//! Figure 11 of the paper plots the maximum deviation as a function of b,
//! which [`xi_max_deviation`] regenerates.

/// Evaluates ξˢ_b(x) for `s ∈ {1, 2}` by direct series summation.
///
/// Terms are evaluated in log space so that neither the double-exponential
/// decay towards k → -∞ nor the geometric decay towards k → +∞ overflows.
///
/// # Panics
/// Panics if `b <= 1` or `s` is not 1 or 2.
pub fn xi(s: u32, b: f64, x: f64) -> f64 {
    assert!(b > 1.0, "xi requires b > 1");
    assert!(s == 1 || s == 2, "xi is implemented for s in {{1, 2}}");
    let ln_b = b.ln();
    // Γ(1) = 1, Γ(2) = 1.
    let scale = ln_b;
    let sf = s as f64;

    // Reduce x to one period; the function is periodic with period 1.
    let x = x - x.floor();

    let term = |k: i64| -> f64 {
        let t = x - k as f64;
        let bt = (t * ln_b).exp();
        // b^{s t} e^{-b^t} = exp(s t ln b - b^t)
        (sf * t * ln_b - bt).exp()
    };

    let mut sum = term(0);
    // k -> +infinity: geometric decay with ratio b^{-s}.
    let mut k = 1i64;
    loop {
        let v = term(k);
        sum += v;
        if v < sum * 1e-18 || k > 20_000_000 {
            break;
        }
        k += 1;
    }
    // k -> -infinity: double-exponential decay.
    let mut k = -1i64;
    loop {
        let v = term(k);
        sum += v;
        if v < sum * 1e-18 || k < -10_000 {
            break;
        }
        k -= 1;
    }
    scale * sum
}

/// Maximum deviation of ξˢ_b from 1 over one period, `max_x |ξˢ_b(x) − 1|`,
/// scanned on a uniform grid of `grid` points (paper Figure 11).
pub fn xi_max_deviation(s: u32, b: f64, grid: usize) -> f64 {
    (0..grid)
        .map(|i| (xi(s, b, i as f64 / grid as f64) - 1.0).abs())
        .fold(0.0, f64::max)
}

/// Analytic upper bound of Lemma 8 for `max_x |ξ¹_b(x) − 1|`.
pub fn xi1_deviation_bound(b: f64) -> f64 {
    assert!(b > 1.0);
    let y = 2.0 * std::f64::consts::PI * std::f64::consts::PI / b.ln();
    2.0 / ((y.sinh() / y).sqrt() - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xi_is_close_to_one_for_b2() {
        // Lemma 8: |xi1_2(x) - 1| < 9.885e-6; Lemma 10: |xi2_2(x) - 1| < 9.015e-5.
        for i in 0..50 {
            let x = i as f64 / 50.0;
            assert!((xi(1, 2.0, x) - 1.0).abs() < 9.885e-6, "xi1 at x={x}");
            assert!((xi(2, 2.0, x) - 1.0).abs() < 9.015e-5, "xi2 at x={x}");
        }
    }

    #[test]
    fn xi_is_periodic() {
        for &b in &[1.2, 2.0, 3.0] {
            for &x in &[0.1, 0.35, 0.99] {
                let a = xi(1, b, x);
                let c = xi(1, b, x + 3.0);
                assert!((a - c).abs() < 1e-12 * a.abs());
            }
        }
    }

    #[test]
    fn xi_deviation_grows_with_b() {
        let d2 = xi_max_deviation(1, 2.0, 64);
        let d3 = xi_max_deviation(1, 3.0, 64);
        let d5 = xi_max_deviation(1, 5.0, 64);
        assert!(d2 < d3 && d3 < d5);
    }

    #[test]
    fn xi_deviation_respects_lemma8_bound() {
        for &b in &[1.5, 2.0, 3.0, 5.0] {
            let measured = xi_max_deviation(1, b, 128);
            let bound = xi1_deviation_bound(b);
            assert!(
                measured <= bound * (1.0 + 1e-9),
                "b={b}: measured {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn xi2_deviation_larger_than_xi1() {
        // Figure 11: the s = 2 curve lies above the s = 1 curve.
        for &b in &[1.5, 2.0, 3.0] {
            assert!(xi_max_deviation(2, b, 64) > xi_max_deviation(1, b, 64));
        }
    }

    #[test]
    fn xi_converges_for_small_b() {
        // b close to 1 needs many geometric terms; the series must still
        // converge to ~1 with tiny deviation.
        let v = xi(1, 1.05, 0.4);
        assert!((v - 1.0).abs() < 1e-10, "xi = {v}");
    }

    #[test]
    #[should_panic(expected = "b > 1")]
    fn xi_rejects_b_one() {
        xi(1, 1.0, 0.0);
    }
}
