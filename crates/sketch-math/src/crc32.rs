//! CRC-32 (IEEE 802.3) checksums for on-disk and on-wire framing.
//!
//! The durability layer frames every write-ahead-log record, checkpoint
//! entry and frozen-tier spill record with a CRC so that torn writes and
//! bit rot are *detected* instead of decoded into garbage registers. The
//! polynomial is the reflected IEEE one (`0xEDB88320`) — the same CRC as
//! zlib, PNG and Ethernet — so the vectors are easy to cross-check, and
//! the table is built in a `const` context so the lookup costs nothing
//! at startup.

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
}

/// The CRC-32/IEEE checksum of `bytes`.
///
/// Matches zlib's `crc32(0, bytes)`: initial value `0xFFFF_FFFF`, final
/// XOR `0xFFFF_FFFF`, reflected input and output.
pub fn crc32(bytes: &[u8]) -> u32 {
    finish(update(START, bytes))
}

/// The initial accumulator for an incremental CRC (see [`update`]).
pub const START: u32 = 0xFFFF_FFFF;

/// Folds `bytes` into a running CRC accumulator started at [`START`];
/// feed successive chunks, then call [`finish`]. Streaming the frame
/// header and payload separately avoids concatenating them just to
/// checksum the pair.
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc
}

/// Finalizes a running accumulator into the checksum value.
pub fn finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_strings() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let bytes: Vec<u8> = (0u32..1000).map(|i| (i * 31 % 251) as u8).collect();
        for split in [0, 1, 7, 500, 999, 1000] {
            let state = update(update(START, &bytes[..split]), &bytes[split..]);
            assert_eq!(finish(state), crc32(&bytes));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let bytes: Vec<u8> = (0u32..64).map(|i| i as u8).collect();
        let clean = crc32(&bytes);
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[position] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {position}:{bit}");
            }
        }
    }
}
