//! Streaming moment statistics for the experiment harness.
//!
//! Figure 5 (and 12) of the paper report the relative bias, the relative
//! RMSE and the *kurtosis* of cardinality estimates over thousands of
//! simulation cycles. [`RunningMoments`] accumulates the first four central
//! moments in one pass (Pébay's update formulas), and [`ErrorStats`] wraps
//! it with error measures relative to a known ground truth.

/// Single-pass accumulator for mean and 2nd–4th central moments.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Non-excess kurtosis μ₄/σ⁴ (3 for a normal distribution); `NaN` when
    /// the variance is zero.
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            f64::NAN
        } else {
            self.n as f64 * self.m4 / (self.m2 * self.m2)
        }
    }

    /// Skewness μ₃/σ³; `NaN` when the variance is zero.
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            f64::NAN
        } else {
            let n = self.n as f64;
            (n.sqrt() * self.m3) / self.m2.powf(1.5)
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let mean = self.mean + delta * n2 / n;
        let m2 = self.m2 + other.m2 + delta2 * n1 * n2 / n;
        let m3 = self.m3
            + other.m3
            + delta3 * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * n1 * n2 * (n1 * n1 - n1 * n2 + n2 * n2) / (n * n * n)
            + 6.0 * delta2 * (n1 * n1 * other.m2 + n2 * n2 * self.m2) / (n * n)
            + 4.0 * delta * (n1 * other.m3 - n2 * self.m3) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
    }
}

/// Error statistics of estimates against a known ground truth.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    truth: f64,
    moments: RunningMoments,
    sum_sq_err: f64,
}

impl ErrorStats {
    /// Creates an accumulator for estimates of the given true value.
    ///
    /// # Panics
    /// Panics if `truth` is not finite.
    pub fn new(truth: f64) -> Self {
        assert!(truth.is_finite(), "ground truth must be finite");
        Self {
            truth,
            moments: RunningMoments::new(),
            sum_sq_err: 0.0,
        }
    }

    /// Adds one estimate.
    pub fn push(&mut self, estimate: f64) {
        self.moments.push(estimate);
        let err = estimate - self.truth;
        self.sum_sq_err += err * err;
    }

    /// Number of estimates recorded.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// The ground-truth value the errors refer to.
    pub fn truth(&self) -> f64 {
        self.truth
    }

    /// Mean of the estimates.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Relative bias `(mean − truth) / truth`.
    pub fn relative_bias(&self) -> f64 {
        (self.moments.mean() - self.truth) / self.truth
    }

    /// Root-mean-square error about the *truth* (not the mean).
    pub fn rmse(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            (self.sum_sq_err / self.count() as f64).sqrt()
        }
    }

    /// RMSE divided by the true value.
    pub fn relative_rmse(&self) -> f64 {
        self.rmse() / self.truth.abs()
    }

    /// Kurtosis of the estimate distribution (paper Figure 5 bottom rows).
    pub fn kurtosis(&self) -> f64 {
        self.moments.kurtosis()
    }

    /// Merges another accumulator for the same truth.
    ///
    /// # Panics
    /// Panics if the truths differ.
    pub fn merge(&mut self, other: &ErrorStats) {
        assert_eq!(
            self.truth.to_bits(),
            other.truth.to_bits(),
            "cannot merge error stats of different ground truths"
        );
        self.moments.merge(&other.moments);
        self.sum_sq_err += other.sum_sq_err;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_constant_sequence() {
        let mut m = RunningMoments::new();
        for _ in 0..10 {
            m.push(4.0);
        }
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.variance(), 0.0);
        assert!(m.kurtosis().is_nan());
    }

    #[test]
    fn moments_match_two_point_distribution() {
        // Half -1, half +1: mean 0, variance 1, kurtosis 1.
        let mut m = RunningMoments::new();
        for i in 0..1000 {
            m.push(if i % 2 == 0 { -1.0 } else { 1.0 });
        }
        assert!(m.mean().abs() < 1e-12);
        assert!((m.variance() - 1.0).abs() < 1e-12);
        assert!((m.kurtosis() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kurtosis_of_uniform_grid() {
        // Continuous uniform kurtosis is 1.8; a fine grid approximates it.
        let mut m = RunningMoments::new();
        let n = 100_001;
        for i in 0..n {
            m.push(i as f64 / (n - 1) as f64);
        }
        assert!((m.kurtosis() - 1.8).abs() < 0.001, "{}", m.kurtosis());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut all = RunningMoments::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningMoments::new();
        let mut right = RunningMoments::new();
        for &x in &data[..200] {
            left.push(x);
        }
        for &x in &data[200..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-8);
        assert!((left.kurtosis() - all.kurtosis()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = RunningMoments::new();
        m.push(1.0);
        m.push(2.0);
        let before = (m.mean(), m.variance());
        m.merge(&RunningMoments::new());
        assert_eq!((m.mean(), m.variance()), before);

        let mut empty = RunningMoments::new();
        empty.merge(&m);
        assert_eq!(empty.mean(), m.mean());
    }

    #[test]
    fn error_stats_bias_and_rmse() {
        let mut e = ErrorStats::new(100.0);
        for &x in &[90.0, 110.0, 95.0, 105.0] {
            e.push(x);
        }
        assert!(e.relative_bias().abs() < 1e-12);
        // RMSE = sqrt((100 + 100 + 25 + 25)/4) = sqrt(62.5)
        assert!((e.rmse() - 62.5f64.sqrt()).abs() < 1e-12);
        assert!((e.relative_rmse() - 62.5f64.sqrt() / 100.0).abs() < 1e-12);
    }

    #[test]
    fn error_stats_detect_bias() {
        let mut e = ErrorStats::new(10.0);
        for _ in 0..100 {
            e.push(11.0);
        }
        assert!((e.relative_bias() - 0.1).abs() < 1e-12);
        assert!((e.relative_rmse() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_stats_merge() {
        let mut a = ErrorStats::new(50.0);
        let mut b = ErrorStats::new(50.0);
        a.push(40.0);
        b.push(60.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.relative_bias().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different ground truths")]
    fn error_stats_merge_rejects_mismatched_truth() {
        let mut a = ErrorStats::new(1.0);
        let b = ErrorStats::new(2.0);
        a.merge(&b);
    }
}
