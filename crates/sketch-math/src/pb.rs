//! The function p_b and friends (paper §3.2).
//!
//! p_b(x) = −log_b(1 − x·(b−1)/b) maps the relative-cardinality expressions
//! u − vJ and v − uJ to register-order probabilities (paper eq. (14)):
//! P(K_Ui > K_Vi) ≈ p_b(u − vJ) and P(K_Ui < K_Vi) ≈ p_b(v − uJ).
//! Lemma 17 establishes the limit p_b(x) → x as b → 1, which connects the
//! SetSketch estimator to the MinHash closed form.

/// Logarithm to base `b`.
#[inline]
pub fn log_b(b: f64, x: f64) -> f64 {
    x.ln() / b.ln()
}

/// Evaluates p_b(x) = −log_b(1 − x·(b−1)/b) for `b > 1`, or the limit `x`
/// for `b == 1`.
///
/// Valid for `x ∈ [0, 1]`; p_b(0) = 0 and p_b(1) = 1 for every b.
#[inline]
pub fn p_b(b: f64, x: f64) -> f64 {
    debug_assert!((-1e-9..=1.0 + 1e-9).contains(&x), "p_b domain: x = {x}");
    if b == 1.0 {
        return x;
    }
    // ln(1 - x (b-1)/b) via ln_1p for accuracy near x = 0.
    -(-x * (b - 1.0) / b).ln_1p() / b.ln()
}

/// First derivative p_b'(x) = (b−1)/(b·ln b) · b^{p_b(x)}
/// (see proof of Lemma 15); equals 1 for `b == 1`.
#[inline]
pub fn p_b_derivative(b: f64, x: f64) -> f64 {
    if b == 1.0 {
        return 1.0;
    }
    let inner = 1.0 - x * (b - 1.0) / b;
    (b - 1.0) / (b * b.ln()) / inner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_fixed() {
        for &b in &[1.001, 1.2, 2.0, std::f64::consts::E] {
            assert!(p_b(b, 0.0).abs() < 1e-15);
            assert!((p_b(b, 1.0) - 1.0).abs() < 1e-12, "b = {b}");
        }
    }

    #[test]
    fn limit_b_to_one_is_identity() {
        // Lemma 17.
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let v = p_b(1.0 + 1e-9, x);
            assert!((v - x).abs() < 1e-6, "x = {x}, p = {v}");
            assert_eq!(p_b(1.0, x), x);
        }
    }

    #[test]
    fn p_b_is_convex_and_below_identity() {
        // p_b' = (b-1)/(b ln b) · b^{p_b} is increasing in x, so p_b is
        // convex; with fixed endpoints p_b(0) = 0 and p_b(1) = 1 it lies
        // strictly below the identity in the interior.
        for &b in &[1.5, 2.0] {
            for i in 1..10 {
                let x = i as f64 / 10.0;
                assert!(p_b(b, x) < x, "b={b} x={x}");
                // Convexity via midpoint check.
                if x + 0.1 <= 1.0 {
                    let mid = p_b(b, x);
                    let chord = 0.5 * (p_b(b, x - 0.1) + p_b(b, x + 0.1));
                    assert!(mid <= chord + 1e-12, "b={b} x={x}");
                }
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-7;
        for &b in &[1.1, 2.0, 2.5] {
            for &x in &[0.05, 0.3, 0.7, 0.95] {
                let numeric = (p_b(b, x + h) - p_b(b, x - h)) / (2.0 * h);
                let analytic = p_b_derivative(b, x);
                assert!(
                    ((numeric - analytic) / analytic).abs() < 1e-6,
                    "b={b} x={x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn derivative_identity_b_pow_p() {
        // p_b'(x) = (b-1)/(b ln b) * b^{p_b(x)}.
        for &b in &[1.3, 2.0] {
            for &x in &[0.2, 0.6] {
                let lhs = p_b_derivative(b, x);
                let rhs = (b - 1.0) / (b * b.ln()) * b.powf(p_b(b, x));
                assert!(((lhs - rhs) / rhs).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn log_b_inverts_powf() {
        for &b in &[1.001, 2.0, 10.0] {
            for &x in &[0.5, 3.0, 100.0] {
                assert!((log_b(b, b.powf(x)) - x).abs() < 1e-9 * x.abs().max(1.0));
                let _ = x;
            }
        }
    }
}
