//! Numerical substrate for the SetSketch reproduction.
//!
//! The estimators of the paper (Ertl, VLDB 2021) are built from a small set
//! of mathematical components, all implemented here from scratch:
//!
//! * the periodic special functions ξ¹_b, ξ²_b and ζ_b (paper eqs. (9),
//!   (10), Lemmas 6–11) that quantify the quality of the estimator
//!   approximations,
//! * the converging series σ_b and τ_b of the small/large-range corrected
//!   cardinality estimator (paper eq. (18), Appendix B),
//! * the function p_b and its derivative appearing in the register-order
//!   probabilities (paper eq. (14)),
//! * Brent's derivative-free univariate optimizer used to maximize the
//!   joint log-likelihood (paper §3.2),
//! * the Fisher information of the Jaccard similarity (Lemmas 15 and 19),
//! * the sketch-agnostic joint estimation machinery (maximum-likelihood,
//!   closed form for b → 1, inclusion–exclusion) shared by SetSketch,
//!   MinHash, GHLL and HyperMinHash,
//! * base-b register scale tables ([`power_table::PowerTable`]),
//! * the vectorization-friendly register-plane kernels ([`kernels`]) all
//!   scan-heavy sketch hot paths (merge, `K_low` rescans, histogram
//!   builds, joint comparison counts) are built on,
//! * exact binomial error analysis and running moment statistics used by
//!   the experiment harness.

#![cfg_attr(feature = "nightly-simd", feature(portable_simd))]

pub mod binomial;
pub mod bitpack;
pub mod brent;
pub mod crc32;
pub mod fisher;
pub mod joint;
pub mod kernels;
pub mod pb;
pub mod power_table;
pub mod sigma_tau;
pub mod stats;
pub mod xi;
pub mod zeta;

pub use binomial::BinomialPmf;
pub use bitpack::{pack_bits, pack_offsets, unpack_bits, unpack_offsets, BitPackError};
pub use brent::{maximize, minimize, Extremum};
pub use crc32::crc32;
pub use fisher::{fisher_information, fisher_information_b1, jaccard_rmse_theory};
pub use joint::{
    inclusion_exclusion_jaccard, invert_collision_probability, ml_jaccard, ml_jaccard_b1,
    JointCounts, JointQuantities,
};
pub use pb::{log_b, p_b, p_b_derivative};
pub use power_table::PowerTable;
pub use sigma_tau::{sigma_b, tau_b};
pub use stats::{ErrorStats, RunningMoments};
pub use xi::{xi, xi_max_deviation};
pub use zeta::zeta;

/// The m-th harmonic number H_m = Σ_{i=1..m} 1/i.
///
/// Appears in the applicability condition for joint estimation from GHLL
/// sketches (paper §4.2): registers untouched in both sketches are expected
/// while the union cardinality is below `m · H_m` (coupon collector).
pub fn harmonic(m: usize) -> f64 {
    // Direct summation is exact enough for every m used by sketches; sum
    // small terms first to limit rounding error.
    (1..=m).rev().map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn harmonic_matches_asymptotic() {
        // H_m ~ ln m + gamma + 1/(2m)
        let m = 1_000_000;
        let gamma = 0.577_215_664_901_532_9;
        let approx = (m as f64).ln() + gamma + 1.0 / (2.0 * m as f64);
        assert!((harmonic(m) - approx).abs() < 1e-9);
    }
}
