//! Brent's method for derivative-free univariate optimization.
//!
//! The joint maximum-likelihood estimator of the paper maximizes a strictly
//! concave log-likelihood over a closed interval (§3.2: "the ML estimate for
//! J can be quickly and robustly found using standard univariate
//! optimization algorithms like Brent's method"). This is the classic
//! combination of golden-section search and successive parabolic
//! interpolation (Brent, *Algorithms for Minimization without Derivatives*,
//! 1973).

/// Result of a univariate optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extremum {
    /// Argument of the extremum.
    pub x: f64,
    /// Function value at [`Extremum::x`].
    pub value: f64,
    /// Number of function evaluations used.
    pub evaluations: u32,
}

/// Golden ratio constant (3 − √5)/2 used by golden-section steps.
const CGOLD: f64 = 0.381_966_011_250_105_1;
/// Protects against division by zero in the parabolic step.
const TINY: f64 = 1e-300;
/// Hard cap on iterations; Brent converges long before this.
const MAX_ITER: u32 = 200;

/// Minimizes `f` over the closed interval `[a, b]` to absolute argument
/// tolerance `tol`.
///
/// The function need not be differentiable; for a unimodal function the
/// returned point is the global minimum of the interval. For functions whose
/// minimum sits at an endpoint the endpoint is returned (up to `tol`).
///
/// # Panics
/// Panics if `a > b`, or if `tol` is not positive.
pub fn minimize<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Extremum {
    assert!(a <= b, "minimize requires a <= b");
    assert!(tol > 0.0, "minimize requires tol > 0");
    let (mut lo, mut hi) = (a, b);
    if lo == hi {
        let value = f(lo);
        return Extremum {
            x: lo,
            value,
            evaluations: 1,
        };
    }

    let mut evaluations = 0u32;
    let mut eval = |x: f64, evals: &mut u32| {
        *evals += 1;
        f(x)
    };

    // x: best point so far; w: second best; v: previous w.
    let mut x = lo + CGOLD * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = eval(x, &mut evaluations);
    let mut fw = fx;
    let mut fv = fx;
    // Step taken on the iteration before last (e) and last step (d).
    let mut e = 0.0f64;
    let mut d = 0.0f64;

    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + tol * 0.1 + 1e-12;
        let tol2 = 2.0 * tol1;
        if (x - mid).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Fit a parabola through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            // Accept the parabolic step only if it falls inside the bracket
            // and is smaller than half the step before last.
            if p.abs() < (0.5 * q * e_prev).abs()
                && p > q * (lo - x)
                && p < q * (hi - x)
                && q > TINY
            {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = if mid > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= mid { lo - x } else { hi - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = eval(u, &mut evaluations);
        if fu <= fx {
            if u >= x {
                lo = x;
            } else {
                hi = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }

    // The bracket endpoints may beat the interior point when the true
    // minimum is at the boundary of the original interval.
    let fa = eval(a, &mut evaluations);
    let fb = eval(b, &mut evaluations);
    let mut best = Extremum {
        x,
        value: fx,
        evaluations,
    };
    if fa < best.value {
        best.x = a;
        best.value = fa;
    }
    if fb < best.value {
        best.x = b;
        best.value = fb;
    }
    best.evaluations = evaluations;
    best
}

/// Maximizes `f` over `[a, b]` (wrapper over [`minimize`] of `-f`).
pub fn maximize<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Extremum {
    let result = minimize(|x| -f(x), a, b, tol);
    Extremum {
        x: result.x,
        value: -result.value,
        evaluations: result.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        let r = minimize(|x| (x - 1.25) * (x - 1.25) + 3.0, 0.0, 10.0, 1e-10);
        assert!((r.x - 1.25).abs() < 1e-7, "x = {}", r.x);
        assert!((r.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn finds_nontrivial_minimum() {
        // min of x^4 - 2x^2 on [0, 3] is at x = 1.
        let r = minimize(|x| x.powi(4) - 2.0 * x * x, 0.0, 3.0, 1e-10);
        assert!((r.x - 1.0).abs() < 1e-6, "x = {}", r.x);
        assert!((r.value + 1.0).abs() < 1e-10);
    }

    #[test]
    fn handles_boundary_minimum() {
        // Monotone increasing: minimum at the left endpoint.
        let r = minimize(|x| x.exp(), -1.0, 5.0, 1e-9);
        assert!((r.x + 1.0).abs() < 1e-5, "x = {}", r.x);
    }

    #[test]
    fn handles_right_boundary_minimum() {
        let r = minimize(|x| -x, 0.0, 2.0, 1e-9);
        assert!((r.x - 2.0).abs() < 1e-5, "x = {}", r.x);
    }

    #[test]
    fn maximize_flips_sign() {
        let r = maximize(|x| -(x - 0.3) * (x - 0.3), 0.0, 1.0, 1e-10);
        assert!((r.x - 0.3).abs() < 1e-6);
        assert!(r.value.abs() < 1e-10);
    }

    #[test]
    fn degenerate_interval() {
        let r = minimize(|x| x * x, 2.0, 2.0, 1e-9);
        assert_eq!(r.x, 2.0);
        assert_eq!(r.value, 4.0);
    }

    #[test]
    fn handles_steep_log_barrier() {
        // Shape of the joint log-likelihood: -ln terms exploding at both
        // boundaries with an interior maximum.
        let f = |x: f64| 10.0 * x.ln() + 5.0 * (1.0 - x).ln();
        let r = maximize(f, 1e-12, 1.0 - 1e-12, 1e-12);
        // Analytic maximum at x = 10/15.
        assert!((r.x - 10.0 / 15.0).abs() < 1e-6, "x = {}", r.x);
    }

    #[test]
    fn uses_reasonable_evaluation_count() {
        let r = minimize(|x| (x - 0.7).powi(2), 0.0, 1.0, 1e-10);
        assert!(r.evaluations < 60, "used {} evaluations", r.evaluations);
    }

    #[test]
    #[should_panic(expected = "a <= b")]
    fn rejects_reversed_interval() {
        minimize(|x| x, 1.0, 0.0, 1e-9);
    }
}
