//! Scalar reference implementations of the register kernels.
//!
//! These are the semantics ground truth: one plain loop per primitive,
//! written for clarity rather than speed. Property tests pin the
//! [`chunked`](super::chunked) (and, on nightly, `simd`) variants against
//! these, and the `register_kernels` benchmark reports the speedup of the
//! vectorized forms relative to them.

/// Element-wise maximum of `src` into `dst`; returns the minimum of the
/// merged result (0 when empty). See [`super::max_merge_min`].
pub fn max_merge_min(dst: &mut [u32], src: &[u32]) -> u32 {
    assert_eq!(
        dst.len(),
        src.len(),
        "register arrays must have equal length"
    );
    let mut min = u32::MAX;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s > *d {
            *d = s;
        }
        if *d < min {
            min = *d;
        }
    }
    if min == u32::MAX && dst.is_empty() {
        0
    } else {
        min
    }
}

/// Element-wise maximum of `src` into `dst` without the minimum scan.
/// See [`super::max_merge`].
pub fn max_merge(dst: &mut [u32], src: &[u32]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "register arrays must have equal length"
    );
    for (d, &s) in dst.iter_mut().zip(src) {
        if s > *d {
            *d = s;
        }
    }
}

/// Minimum register value (0 when empty). See [`super::min_scan`].
pub fn min_scan(values: &[u32]) -> u32 {
    values.iter().copied().min().unwrap_or(0)
}

/// Register value histogram. See [`super::histogram_counts`].
pub fn histogram_counts(values: &[u32], counts: &mut [u32]) {
    counts.fill(0);
    for &v in values {
        counts[v as usize] += 1;
    }
}

/// Three-way comparison counts `(D⁺, D⁻, D₀)`. See
/// [`super::compare_counts`].
pub fn compare_counts(u: &[u32], v: &[u32]) -> (u32, u32, u32) {
    assert_eq!(u.len(), v.len(), "register arrays must have equal length");
    let mut d_plus = 0u32;
    let mut d_minus = 0u32;
    let mut d0 = 0u32;
    for (&a, &b) in u.iter().zip(v) {
        match a.cmp(&b) {
            std::cmp::Ordering::Greater => d_plus += 1,
            std::cmp::Ordering::Less => d_minus += 1,
            std::cmp::Ordering::Equal => d0 += 1,
        }
    }
    (d_plus, d_minus, d0)
}
