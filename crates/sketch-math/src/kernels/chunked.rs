//! Auto-vectorization-friendly chunked implementations.
//!
//! Each primitive processes [`LANES`] registers per loop
//! iteration over independent per-lane accumulators and handles the
//! remainder with the scalar code. The lane loops are branch-free
//! (`max`/`min`/bool-to-int arithmetic instead of compares-and-jumps), so
//! LLVM lowers them to packed SIMD instructions on x86-64 and AArch64
//! without any target-feature or `unsafe` code.
//!
//! The histogram kernel is the exception: its scatter increment is
//! inherently serial, so the chunked form "only" splits the counting
//! across four interleaved accumulator stripes to break the
//! store-to-load dependency chain between equal adjacent values — the
//! dominant stall of a naive histogram loop on repetitive register
//! contents. The stripes live in one flat buffer sized from the caller's
//! `counts` length, so the optimization is applied exactly when the
//! bucket range is small (the `q + 2` buckets of real sketch configs).

use super::{scalar, LANES};

/// Threshold (in buckets) below which the histogram kernel uses
/// interleaved accumulator stripes; larger ranges fall back to the
/// single-stripe scalar loop to keep the working set small.
const HISTOGRAM_STRIPE_LIMIT: usize = 1 << 10;

/// Number of interleaved histogram accumulator stripes.
const STRIPES: usize = 4;

/// Element-wise maximum of `src` into `dst` fused with a minimum scan of
/// the result. See [`super::max_merge_min`].
pub fn max_merge_min(dst: &mut [u32], src: &[u32]) -> u32 {
    assert_eq!(
        dst.len(),
        src.len(),
        "register arrays must have equal length"
    );
    if dst.is_empty() {
        return 0;
    }
    let mut mins = [u32::MAX; LANES];
    let mut dst_chunks = dst.chunks_exact_mut(LANES);
    let mut src_chunks = src.chunks_exact(LANES);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        for lane in 0..LANES {
            let merged = d[lane].max(s[lane]);
            d[lane] = merged;
            mins[lane] = mins[lane].min(merged);
        }
    }
    let mut min = mins.into_iter().fold(u32::MAX, u32::min);
    let tail = dst_chunks.into_remainder();
    if !tail.is_empty() {
        min = min.min(scalar::max_merge_min(tail, src_chunks.remainder()));
    }
    min
}

/// Element-wise maximum of `src` into `dst` without the minimum scan.
/// See [`super::max_merge`].
pub fn max_merge(dst: &mut [u32], src: &[u32]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "register arrays must have equal length"
    );
    let mut dst_chunks = dst.chunks_exact_mut(LANES);
    let mut src_chunks = src.chunks_exact(LANES);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        for lane in 0..LANES {
            d[lane] = d[lane].max(s[lane]);
        }
    }
    scalar::max_merge(dst_chunks.into_remainder(), src_chunks.remainder());
}

/// Minimum register value. See [`super::min_scan`].
pub fn min_scan(values: &[u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mut mins = [u32::MAX; LANES];
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        for lane in 0..LANES {
            mins[lane] = mins[lane].min(chunk[lane]);
        }
    }
    let mut min = mins.into_iter().fold(u32::MAX, u32::min);
    for &v in chunks.remainder() {
        min = min.min(v);
    }
    min
}

/// Bucket capacity of the stack-allocated stripe buffer; ranges between
/// this and [`HISTOGRAM_STRIPE_LIMIT`] fall back to a heap buffer.
const STACK_STRIPE_BUCKETS: usize = 256;

/// Register value histogram. See [`super::histogram_counts`].
pub fn histogram_counts(values: &[u32], counts: &mut [u32]) {
    if counts.len() > HISTOGRAM_STRIPE_LIMIT || values.len() < 4 * STRIPES {
        return scalar::histogram_counts(values, counts);
    }
    if counts.len() <= STACK_STRIPE_BUCKETS {
        // The common case (q = 62 → 64 buckets) stays allocation-free:
        // merge and deserialize rebuild histograms through this path.
        let mut stripes = [0u32; STRIPES * STACK_STRIPE_BUCKETS];
        striped_counts(values, counts, &mut stripes[..STRIPES * counts.len()]);
    } else {
        let mut stripes = vec![0u32; STRIPES * counts.len()];
        striped_counts(values, counts, &mut stripes);
    }
}

/// Counts `values` into `counts` using four interleaved accumulator
/// stripes (`stripes.len() == 4 * counts.len()`, zeroed).
fn striped_counts(values: &[u32], counts: &mut [u32], stripes: &mut [u32]) {
    let buckets = counts.len();
    let (s0, rest) = stripes.split_at_mut(buckets);
    let (s1, rest) = rest.split_at_mut(buckets);
    let (s2, s3) = rest.split_at_mut(buckets);
    let mut chunks = values.chunks_exact(STRIPES);
    for chunk in &mut chunks {
        // Four independent counter arrays: equal adjacent register values
        // hit different cache lines' counters, so the increments pipeline
        // instead of serializing on store-to-load forwarding.
        s0[chunk[0] as usize] += 1;
        s1[chunk[1] as usize] += 1;
        s2[chunk[2] as usize] += 1;
        s3[chunk[3] as usize] += 1;
    }
    for &v in chunks.remainder() {
        s0[v as usize] += 1;
    }
    for (k, count) in counts.iter_mut().enumerate() {
        *count = s0[k] + s1[k] + s2[k] + s3[k];
    }
}

/// Three-way comparison counts `(D⁺, D⁻, D₀)`. See
/// [`super::compare_counts`].
pub fn compare_counts(u: &[u32], v: &[u32]) -> (u32, u32, u32) {
    assert_eq!(u.len(), v.len(), "register arrays must have equal length");
    let mut plus = [0u32; LANES];
    let mut minus = [0u32; LANES];
    let mut u_chunks = u.chunks_exact(LANES);
    let mut v_chunks = v.chunks_exact(LANES);
    for (a, b) in (&mut u_chunks).zip(&mut v_chunks) {
        for lane in 0..LANES {
            plus[lane] += (a[lane] > b[lane]) as u32;
            minus[lane] += (a[lane] < b[lane]) as u32;
        }
    }
    let mut d_plus: u32 = plus.iter().sum();
    let mut d_minus: u32 = minus.iter().sum();
    for (&a, &b) in u_chunks.remainder().iter().zip(v_chunks.remainder()) {
        d_plus += (a > b) as u32;
        d_minus += (a < b) as u32;
    }
    (d_plus, d_minus, u.len() as u32 - d_plus - d_minus)
}
