//! Explicit `std::simd` implementations (nightly only).
//!
//! Enabled by the non-default `nightly-simd` feature, which turns on the
//! `portable_simd` language feature — the crate does not compile with it
//! on a stable toolchain. Semantics are pinned to [`super::scalar`] by
//! the same property tests that cover [`super::chunked`].
//!
//! The histogram scatter has no portable SIMD formulation, so
//! [`histogram_counts`] reuses the chunked stripes.

use super::{chunked, LANES};
use std::simd::cmp::{SimdOrd, SimdPartialOrd};
use std::simd::num::SimdUint;
use std::simd::{Select, Simd};

type Lanes = Simd<u32, LANES>;

/// Element-wise maximum of `src` into `dst` fused with a minimum scan of
/// the result. See [`super::max_merge_min`].
pub fn max_merge_min(dst: &mut [u32], src: &[u32]) -> u32 {
    assert_eq!(
        dst.len(),
        src.len(),
        "register arrays must have equal length"
    );
    if dst.is_empty() {
        return 0;
    }
    let mut mins = Lanes::splat(u32::MAX);
    let mut dst_chunks = dst.chunks_exact_mut(LANES);
    let mut src_chunks = src.chunks_exact(LANES);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        let merged = Lanes::from_slice(d).simd_max(Lanes::from_slice(s));
        merged.copy_to_slice(d);
        mins = mins.simd_min(merged);
    }
    let mut min = mins.reduce_min();
    let tail = dst_chunks.into_remainder();
    if !tail.is_empty() {
        min = min.min(super::scalar::max_merge_min(tail, src_chunks.remainder()));
    }
    min
}

/// Element-wise maximum of `src` into `dst` without the minimum scan.
/// See [`super::max_merge`].
pub fn max_merge(dst: &mut [u32], src: &[u32]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "register arrays must have equal length"
    );
    let mut dst_chunks = dst.chunks_exact_mut(LANES);
    let mut src_chunks = src.chunks_exact(LANES);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        Lanes::from_slice(d)
            .simd_max(Lanes::from_slice(s))
            .copy_to_slice(d);
    }
    super::scalar::max_merge(dst_chunks.into_remainder(), src_chunks.remainder());
}

/// Minimum register value. See [`super::min_scan`].
pub fn min_scan(values: &[u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mut mins = Lanes::splat(u32::MAX);
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        mins = mins.simd_min(Lanes::from_slice(chunk));
    }
    let mut min = mins.reduce_min();
    for &v in chunks.remainder() {
        min = min.min(v);
    }
    min
}

/// Register value histogram. See [`super::histogram_counts`].
pub fn histogram_counts(values: &[u32], counts: &mut [u32]) {
    chunked::histogram_counts(values, counts)
}

/// Three-way comparison counts `(D⁺, D⁻, D₀)`. See
/// [`super::compare_counts`].
pub fn compare_counts(u: &[u32], v: &[u32]) -> (u32, u32, u32) {
    assert_eq!(u.len(), v.len(), "register arrays must have equal length");
    let mut plus = Lanes::splat(0);
    let mut minus = Lanes::splat(0);
    let one = Lanes::splat(1);
    let zero = Lanes::splat(0);
    let mut u_chunks = u.chunks_exact(LANES);
    let mut v_chunks = v.chunks_exact(LANES);
    for (a, b) in (&mut u_chunks).zip(&mut v_chunks) {
        let a = Lanes::from_slice(a);
        let b = Lanes::from_slice(b);
        plus += a.simd_gt(b).select(one, zero);
        minus += a.simd_lt(b).select(one, zero);
    }
    let mut d_plus = plus.reduce_sum();
    let mut d_minus = minus.reduce_sum();
    for (&a, &b) in u_chunks.remainder().iter().zip(v_chunks.remainder()) {
        d_plus += (a > b) as u32;
        d_minus += (a < b) as u32;
    }
    (d_plus, d_minus, u.len() as u32 - d_plus - d_minus)
}
