//! Vectorization-friendly register-plane kernels.
//!
//! Every scan-heavy hot path of the workspace's sketches reduces to one of
//! four primitives over `u32` register arrays:
//!
//! * [`max_merge_min`] — element-wise maximum of two register arrays (the
//!   union merge of every max-based sketch), fused with a minimum scan of
//!   the result so the merged sketch's `K_low` lower bound comes out of
//!   the same pass instead of a separate rescan (plain [`max_merge`]
//!   exists for consumers with no lower bound to maintain);
//! * [`min_scan`] — minimum register value (the `K_low` rescan of paper
//!   §2.2);
//! * [`histogram_counts`] — the full register value histogram
//!   (`C_0`, the bucketed interior counts, and `C_{q+1}`) in one pass,
//!   feeding the corrected cardinality estimator (18) and the incremental
//!   estimator state kept by `SetSketch`;
//! * [`compare_counts`] — the three-way `D⁺`/`D⁻`/`D₀` register
//!   comparison of the joint estimator (paper §3.2).
//!
//! Each primitive exists in two semantically identical implementations:
//! a plain [`scalar`] reference, and a [`chunked`] variant that processes
//! eight lanes per loop iteration with a scalar tail. The chunked form is
//! written so LLVM's auto-vectorizer turns the lane loop into SIMD on
//! every target with 128/256-bit vectors — no target features, no
//! `unsafe`. With the non-default `nightly-simd` feature (nightly
//! toolchain only) an explicit [`std::simd`] implementation is used
//! instead.
//!
//! The free functions at this level are the dispatchers used by the
//! sketch crates; the per-implementation modules stay public so tests and
//! benchmarks can compare them directly.

pub mod chunked;
pub mod scalar;
#[cfg(feature = "nightly-simd")]
pub mod simd;

/// Lane width of the [`chunked`] implementations (eight `u32`s — one
/// AVX2 vector, two NEON/SSE vectors).
pub const LANES: usize = 8;

#[cfg(not(feature = "nightly-simd"))]
use chunked as fastest;
#[cfg(feature = "nightly-simd")]
use simd as fastest;

/// Merges `src` into `dst` by element-wise maximum and returns the
/// minimum register value of the merged result (0 for empty arrays).
///
/// The fused minimum makes the separate `K_low` rescan after a merge
/// unnecessary: the returned value *is* the exact new lower bound.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn max_merge_min(dst: &mut [u32], src: &[u32]) -> u32 {
    fastest::max_merge_min(dst, src)
}

/// Merges `src` into `dst` by element-wise maximum, without the fused
/// minimum of [`max_merge_min`] — for consumers with no lower bound to
/// maintain (HyperMinHash, GHLL without `K_low` tracking).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn max_merge(dst: &mut [u32], src: &[u32]) {
    fastest::max_merge(dst, src)
}

/// Minimum register value of `values` (0 for an empty slice).
#[inline]
pub fn min_scan(values: &[u32]) -> u32 {
    fastest::min_scan(values)
}

/// Counts register values into `counts`: afterwards `counts[k]` is the
/// number of entries of `values` equal to `k`. The buffer is zeroed
/// first; its length must cover every occurring value (`q + 2` buckets
/// for a sketch with registers in `0..=q+1`, so `counts[0] = C_0` and
/// `counts[q + 1] = C_{q+1}`).
///
/// # Panics
/// Panics if a value of `values` is out of range for `counts`.
#[inline]
pub fn histogram_counts(values: &[u32], counts: &mut [u32]) {
    fastest::histogram_counts(values, counts)
}

/// Three-way register comparison `(D⁺, D⁻, D₀)`: the number of positions
/// where `u` exceeds, trails, or equals `v` (paper §3.2/§4.1).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn compare_counts(u: &[u32], v: &[u32]) -> (u32, u32, u32) {
    fastest::compare_counts(u, v)
}

/// Folds a `q + 2`-bucket register value histogram (as produced by
/// [`histogram_counts`]) into the corrected estimator's inputs
/// `(C_0, Σ_{0<k<q+1} C_k b^{-k}, C_{q+1})`, with one power-table lookup
/// per *occupied* interior bucket.
///
/// # Panics
/// Panics if `counts` has fewer than two buckets or the table does not
/// cover its range.
pub fn fold_histogram(
    counts: &[u32],
    table: &crate::power_table::PowerTable,
) -> (usize, f64, usize) {
    let limit = counts.len() - 1;
    let mut sum = 0.0f64;
    for (k, &count) in counts[1..limit].iter().enumerate() {
        if count > 0 {
            sum += count as f64 * table.pow_neg(k as u32 + 1);
        }
    }
    (counts[0] as usize, sum, counts[limit] as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, modulus: u32) -> Vec<u32> {
        // Deterministic pseudo-random register contents.
        (0..len as u64)
            .map(|i| {
                let x = i
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(17)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (x % modulus as u64) as u32
            })
            .collect()
    }

    #[test]
    fn implementations_agree_on_representative_lengths() {
        // Cover the empty slice, sub-lane lengths, exact multiples of the
        // lane width, and lengths with every possible tail size.
        for len in (0..=2 * LANES + 1).chain([64, 255, 256, 1000]) {
            let u = sample(len, 23);
            let v = sample(len.wrapping_mul(7) % 1001, 23);
            let v = {
                let mut v = v;
                v.resize(len, 3);
                v
            };

            assert_eq!(scalar::min_scan(&u), chunked::min_scan(&u), "len {len}");

            let mut dst_scalar = u.clone();
            let mut dst_chunked = u.clone();
            let min_scalar = scalar::max_merge_min(&mut dst_scalar, &v);
            let min_chunked = chunked::max_merge_min(&mut dst_chunked, &v);
            assert_eq!(dst_scalar, dst_chunked, "len {len}");
            assert_eq!(min_scalar, min_chunked, "len {len}");

            let mut plain_scalar = u.clone();
            let mut plain_chunked = u.clone();
            scalar::max_merge(&mut plain_scalar, &v);
            chunked::max_merge(&mut plain_chunked, &v);
            assert_eq!(plain_scalar, dst_scalar, "len {len}");
            assert_eq!(plain_chunked, dst_scalar, "len {len}");

            assert_eq!(
                scalar::compare_counts(&u, &v),
                chunked::compare_counts(&u, &v),
                "len {len}"
            );

            let mut counts_scalar = vec![0u32; 23];
            let mut counts_chunked = vec![u32::MAX; 23]; // must be zeroed
            scalar::histogram_counts(&u, &mut counts_scalar);
            chunked::histogram_counts(&u, &mut counts_chunked);
            assert_eq!(counts_scalar, counts_chunked, "len {len}");
        }
    }

    #[test]
    fn max_merge_min_merges_and_returns_minimum() {
        let mut dst = vec![3u32, 0, 7, 2];
        let src = vec![1u32, 5, 6, 2];
        let min = max_merge_min(&mut dst, &src);
        assert_eq!(dst, vec![3, 5, 7, 2]);
        assert_eq!(min, 2);
    }

    #[test]
    fn empty_slices_are_handled() {
        assert_eq!(max_merge_min(&mut [], &[]), 0);
        assert_eq!(min_scan(&[]), 0);
        assert_eq!(compare_counts(&[], &[]), (0, 0, 0));
        let mut counts = [7u32; 4];
        histogram_counts(&[], &mut counts);
        assert_eq!(counts, [0; 4]);
    }

    #[test]
    fn compare_counts_matches_manual() {
        let u = [5u32, 3, 7, 7, 1];
        let v = [4u32, 3, 9, 7, 2];
        assert_eq!(compare_counts(&u, &v), (1, 2, 2));
    }

    #[test]
    fn histogram_counts_sums_to_length() {
        let values = sample(777, 16);
        let mut counts = vec![0u32; 16];
        histogram_counts(&values, &mut counts);
        assert_eq!(counts.iter().sum::<u32>(), 777);
        for (k, &c) in counts.iter().enumerate() {
            let expect = values.iter().filter(|&&x| x == k as u32).count() as u32;
            assert_eq!(c, expect, "bucket {k}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn max_merge_min_rejects_length_mismatch() {
        max_merge_min(&mut [1, 2], &[1]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn compare_counts_rejects_length_mismatch() {
        compare_counts(&[1], &[1, 2]);
    }
}
