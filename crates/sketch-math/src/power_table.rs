//! Precomputed base-b register scales (paper §5.1).
//!
//! All sketches in this workspace map a uniform or exponential hash value
//! `x` to a register update value `k = max(0, min(q+1, ⌊1 − log_b x⌋))`.
//! Following the paper's reference implementation, the relevant powers of
//! b are precomputed in a sorted array and the update value is found by
//! binary search instead of a logarithm evaluation; the search can be
//! restricted to values greater than the current lower bound `K_low`,
//! "which further saves time with increasing cardinality". For b = 2 a
//! floating-point exponent fast path avoids the search entirely.

/// Precomputed powers `b^{-k}` for `k ∈ {0, ..., q+1}` with search helpers.
#[derive(Debug, Clone)]
pub struct PowerTable {
    b: f64,
    q: u32,
    /// `pow_neg[k] = b^{-k}` for `k = 0..=q+1`.
    pow_neg: Vec<f64>,
    base2: bool,
}

impl PowerTable {
    /// Builds the table for base `b > 1` and maximum register value `q + 1`.
    ///
    /// # Panics
    /// Panics if `b <= 1` or if `q + 1` would overflow `u32`.
    pub fn new(b: f64, q: u32) -> Self {
        assert!(b > 1.0, "PowerTable requires b > 1");
        assert!(q < u32::MAX, "q + 1 must fit into u32");
        let ln_b = b.ln();
        // exp per entry (rather than iterated multiplication) keeps the
        // relative error independent of k.
        let pow_neg: Vec<f64> = (0..=q as u64 + 1)
            .map(|k| (-(k as f64) * ln_b).exp())
            .collect();
        Self {
            b,
            q,
            pow_neg,
            base2: b == 2.0,
        }
    }

    /// The base b.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The register value limit parameter q (registers hold `0..=q+1`).
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// `b^{-k}` for `k ∈ {0, ..., q+1}`.
    #[inline]
    pub fn pow_neg(&self, k: u32) -> f64 {
        self.pow_neg[k as usize]
    }

    /// Register update value `max(0, min(q+1, ⌊1 − log_b x⌋))` for `x > 0`.
    #[inline]
    pub fn update_value(&self, x: f64) -> u32 {
        debug_assert!(x > 0.0);
        if self.base2 {
            return self.update_value_base2(x);
        }
        // k = #{ j in 0..=q : x <= b^{-j} }; pow_neg is strictly decreasing,
        // so this is a partition point on the first q+1 entries.
        let head = &self.pow_neg[..=self.q as usize];
        head.partition_point(|&t| t >= x) as u32
    }

    /// Like [`update_value`](Self::update_value) but returns `None` without
    /// a full search when the result would not exceed `k_low` (and hence
    /// could not modify any register).
    #[inline]
    pub fn update_value_above(&self, x: f64, k_low: u32) -> Option<u32> {
        debug_assert!(x > 0.0);
        if k_low > self.q {
            return None;
        }
        // k > k_low requires x <= b^{-k_low}.
        if x > self.pow_neg[k_low as usize] {
            return None;
        }
        if self.base2 {
            let k = self.update_value_base2(x);
            return (k > k_low).then_some(k);
        }
        let head = &self.pow_neg[k_low as usize..=self.q as usize];
        let k = k_low + head.partition_point(|&t| t >= x) as u32;
        (k > k_low).then_some(k)
    }

    /// Exponent-extraction fast path for b = 2: `⌊1 − log₂ x⌋` from the
    /// IEEE 754 representation.
    #[inline]
    fn update_value_base2(&self, x: f64) -> u32 {
        let bits = x.to_bits();
        let biased = ((bits >> 52) & 0x7ff) as i64;
        if biased == 0 {
            // Subnormal inputs cannot be produced by the unit-interval
            // samplers; fall back to the exact computation defensively.
            let k = 1.0 - x.log2();
            return (k.floor().max(0.0) as u64).min(self.q as u64 + 1) as u32;
        }
        let exponent = biased - 1023; // floor(log2 x) for non-powers of two
        let mantissa_zero = bits & 0x000f_ffff_ffff_ffff == 0;
        // x = 2^e * m with 1 <= m < 2: floor(1 - log2 x) = -e unless m == 1,
        // in which case it is 1 - e.
        let k = if mantissa_zero {
            1 - exponent
        } else {
            -exponent
        };
        k.clamp(0, self.q as i64 + 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(b: f64, q: u32, x: f64) -> u32 {
        let raw = (1.0 - x.ln() / b.ln()).floor();
        raw.clamp(0.0, q as f64 + 1.0) as u32
    }

    #[test]
    fn matches_direct_logarithm_generic_base() {
        for &b in &[1.001f64, 1.2, 2.5] {
            let q = 200;
            let table = PowerTable::new(b, q);
            let mut x = 1.5;
            for _ in 0..2000 {
                x *= 0.99;
                let got = table.update_value(x);
                let want = reference(b, q, x);
                // Binary search avoids the rounding hazards of log; allow
                // the reference to differ only at exact power boundaries.
                assert!(
                    got == want || (got as i64 - want as i64).abs() <= 1,
                    "b={b} x={x}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn exact_powers_belong_to_upper_interval() {
        // x = b^{-j} must map to k = j + 1 (the interval (b^{-k}, b^{1-k}]
        // is right-closed).
        let b = 1.5f64;
        let q = 50;
        let table = PowerTable::new(b, q);
        for j in 0..10u32 {
            let x = table.pow_neg(j);
            assert_eq!(table.update_value(x), j + 1, "j={j}");
        }
    }

    #[test]
    fn base2_fast_path_matches_generic() {
        let q = 62;
        let fast = PowerTable::new(2.0, q);
        // Build a non-fast-path table with nearly identical base.
        let slow = PowerTable::new(2.0 + 1e-13, q);
        let mut x = 1.9;
        for _ in 0..5000 {
            x *= 0.993;
            assert_eq!(fast.update_value(x), slow.update_value(x), "x={x}");
        }
        // Powers of two exactly.
        for e in 0..40 {
            let x = (2.0f64).powi(-e);
            assert_eq!(fast.update_value(x), (e as u32 + 1).min(q + 1), "e={e}");
        }
    }

    #[test]
    fn clamps_to_range() {
        let table = PowerTable::new(2.0, 10);
        assert_eq!(table.update_value(100.0), 0);
        assert_eq!(table.update_value(1e-30), 11);
        let table = PowerTable::new(1.001, 20);
        assert_eq!(table.update_value(2.0), 0);
        assert_eq!(table.update_value(1e-30), 21);
    }

    #[test]
    fn update_value_above_agrees_with_full_search() {
        for &b in &[1.02f64, 2.0] {
            let q = 300;
            let table = PowerTable::new(b, q);
            let mut x = 1.2;
            for i in 0..3000 {
                x *= 0.995;
                let k_low = (i / 40) as u32;
                let full = table.update_value(x);
                let fast = table.update_value_above(x, k_low);
                if full > k_low {
                    assert_eq!(fast, Some(full), "b={b} x={x} k_low={k_low}");
                } else {
                    assert_eq!(fast, None, "b={b} x={x} k_low={k_low}");
                }
            }
        }
    }

    #[test]
    fn update_value_above_saturated_lower_bound() {
        let table = PowerTable::new(2.0, 10);
        assert_eq!(table.update_value_above(1e-30, 11), None);
        assert_eq!(table.update_value_above(1e-30, 10), Some(11));
    }

    #[test]
    fn pow_neg_is_accurate() {
        let table = PowerTable::new(1.001, 1000);
        for &k in &[0u32, 1, 10, 500, 1001] {
            let want = (1.001f64).powi(-(k as i32));
            let got = table.pow_neg(k);
            assert!(((got - want) / want).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "b > 1")]
    fn rejects_base_one() {
        PowerTable::new(1.0, 10);
    }
}
