//! Property-based tests of the numerical substrate.

use proptest::prelude::*;
use sketch_math::{
    brent, harmonic, p_b, p_b_derivative, sigma_b, tau_b, BinomialPmf, PowerTable, RunningMoments,
};

proptest! {
    /// Brent finds the minimum of arbitrary shifted parabolas.
    #[test]
    fn brent_solves_parabolas(center in -100.0f64..100.0, scale in 0.01f64..100.0) {
        let r = brent::minimize(|x| scale * (x - center) * (x - center), -200.0, 200.0, 1e-10);
        prop_assert!((r.x - center).abs() < 1e-5, "found {} for center {center}", r.x);
    }

    /// p_b maps [0,1] into [0,1] monotonically for every base in the
    /// supported range.
    #[test]
    fn p_b_is_monotone_into_unit_interval(b in 1.000001f64..2.8) {
        let mut prev = 0.0f64;
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            let p = p_b(b, x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            prop_assert!(p >= prev - 1e-12);
            prop_assert!(p_b_derivative(b, x) > 0.0);
            prev = p;
        }
    }

    /// sigma and tau stay nonnegative and finite on the open unit interval
    /// for arbitrary bases.
    #[test]
    fn sigma_tau_are_well_behaved(b in 1.0001f64..8.0, x in 0.001f64..0.999) {
        let s = sigma_b(b, x);
        prop_assert!(s.is_finite() && s > 0.0);
        let t = tau_b(b, x);
        prop_assert!(t.is_finite() && t >= 0.0);
    }

    /// The power-table update value agrees with the direct formula for
    /// arbitrary bases and inputs.
    #[test]
    fn power_table_matches_formula(
        b in 1.001f64..3.0,
        q in 1u32..500,
        x in 1e-12f64..2.0,
    ) {
        let table = PowerTable::new(b, q);
        let got = table.update_value(x);
        let want = (1.0 - x.ln() / b.ln()).floor().clamp(0.0, q as f64 + 1.0) as u32;
        // The binary search resolves ties at exact powers differently from
        // the float formula; allow one step at boundaries.
        prop_assert!((got as i64 - want as i64).abs() <= 1, "{got} vs {want}");
    }

    /// Binomial pmfs sum to one for arbitrary parameters.
    #[test]
    fn binomial_pmf_normalizes(n in 1usize..300, p in 0.0f64..1.0) {
        let pmf = BinomialPmf::new(n);
        let total = pmf.expectation(n, p, |_| 1.0);
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    /// Moment accumulator merging equals sequential accumulation for any
    /// split point.
    #[test]
    fn moments_merge_anywhere(
        data in proptest::collection::vec(-100.0f64..100.0, 2..60),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut all = RunningMoments::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningMoments::new();
        let mut right = RunningMoments::new();
        for &x in &data[..split] {
            left.push(x);
        }
        for &x in &data[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert!((left.mean() - all.mean()).abs() < 1e-8);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6);
    }

    /// Harmonic numbers are increasing and bounded by 1 + ln m.
    #[test]
    fn harmonic_bounds(m in 1usize..10_000) {
        let h = harmonic(m);
        prop_assert!(h >= (m as f64).ln());
        prop_assert!(h <= 1.0 + (m as f64).ln());
        if m > 1 {
            prop_assert!(h > harmonic(m - 1));
        }
    }
}
