//! Direct numerical verification of the paper's lemmas that admit
//! grid-checking (the structural lemmas are enforced by the unit tests of
//! the modules that rely on them).

use sketch_math::{fisher, p_b, xi, zeta};

/// Lemma 13: 1 − p_b(u−vJ) − p_b(v−uJ) > 0 on the feasible domain.
#[test]
fn lemma13_equal_probability_is_positive() {
    for &b in &[1.001f64, 1.2, 2.0, 2.7] {
        for ui in 1..50 {
            let u = ui as f64 / 50.0;
            let v = 1.0 - u;
            let j_max = (u / v).min(v / u);
            for ji in 0..=20 {
                let j = j_max * ji as f64 / 20.0;
                let p0 = 1.0 - p_b(b, u - v * j) - p_b(b, v - u * j);
                assert!(p0 > 0.0, "b={b} u={u} j={j}: p0={p0}");
            }
        }
    }
}

/// Lemma 16: 0 <= (u−vJ)(v−uJ) <= (1−J)²/4, with equality at u=v=1/2.
#[test]
fn lemma16_product_bounds() {
    for ui in 1..100 {
        let u = ui as f64 / 100.0;
        let v = 1.0 - u;
        let j_max = (u / v).min(v / u);
        for ji in 0..=20 {
            let j = j_max * ji as f64 / 20.0;
            let product = (u - v * j) * (v - u * j);
            let upper = (1.0 - j) * (1.0 - j) / 4.0;
            assert!(product >= -1e-15, "u={u} j={j}");
            assert!(product <= upper + 1e-12, "u={u} j={j}: {product} > {upper}");
        }
    }
    // Right equality at u = v = 1/2.
    let j = 0.3f64;
    let product = (0.5 - 0.5 * j) * (0.5 - 0.5 * j);
    assert!((product - (1.0 - j) * (1.0 - j) / 4.0).abs() < 1e-15);
}

/// Lemma 17: p_b(x) -> x as b -> 1, uniformly on [0, 1].
#[test]
fn lemma17_p_b_limit() {
    for xi_ in 0..=20 {
        let x = xi_ as f64 / 20.0;
        let mut prev_gap = f64::INFINITY;
        for &b in &[1.5f64, 1.1, 1.01, 1.001, 1.0001] {
            let gap = (p_b(b, x) - x).abs();
            assert!(gap <= prev_gap + 1e-12, "convergence not monotone at x={x}");
            prev_gap = gap;
        }
        assert!(prev_gap < 1e-4, "x={x}: gap {prev_gap}");
    }
}

/// Lemma 11 (via ζ): the relative error of ζ_b(x1,x2) ≈ x2−x1 is below
/// the Lemma 8 bound — down to f64 rounding noise, below which the
/// analytic bound (e.g. ~1e-47 at b = 1.2) cannot be observed.
#[test]
fn lemma11_zeta_error_bound() {
    let (x1, x2) = (0.35, 1.9);
    let noise_floor = 1e-13;
    for &b in &[2.0f64, 1.5, 1.2] {
        let rel = ((zeta(b, x1, x2) - (x2 - x1)) / (x2 - x1)).abs();
        let bound = xi::xi1_deviation_bound(b).max(noise_floor);
        assert!(
            rel <= bound * (1.0 + 1e-9),
            "b={b}: rel {rel} > bound {bound}"
        );
    }
    // The bound itself decreases sharply with b.
    assert!(xi::xi1_deviation_bound(1.5) < xi::xi1_deviation_bound(2.0) * 1e-3);
}

/// Lemma 19 consistency: the b → 1 Fisher information dominates (is never
/// below) the b > 1 information for equal cardinalities — smaller b means
/// more extractable joint information.
#[test]
fn lemma19_information_ordering() {
    let m = 4096;
    for ji in 1..10 {
        let j = ji as f64 / 10.0;
        let i_b1 = fisher::fisher_information_b1(m, 0.5, 0.5, j);
        let i_12 = fisher::fisher_information(m, 1.2, 0.5, 0.5, j);
        let i_20 = fisher::fisher_information(m, 2.0, 0.5, 0.5, j);
        assert!(i_b1 >= i_12 * 0.999, "j={j}: {i_b1} < {i_12}");
        assert!(i_12 >= i_20 * 0.999, "j={j}: {i_12} < {i_20}");
    }
}

/// §3.1: the RSD formula is minimized as b → 1 where it equals 1/sqrt(m),
/// and equals ~1.04/sqrt(m) at b = 2.
#[test]
fn rsd_limits() {
    let rsd = |b: f64, m: f64| (((b + 1.0) / (b - 1.0) * b.ln() - 1.0) / m).sqrt();
    let m = 4096.0;
    assert!((rsd(1.0001, m) - 1.0 / m.sqrt()).abs() < 1e-6);
    assert!((rsd(2.0, m) * m.sqrt() - 1.04).abs() < 0.01);
    // Monotone increasing in b.
    assert!(rsd(1.5, m) < rsd(2.0, m));
    assert!(rsd(1.1, m) < rsd(1.5, m));
}
