//! Property tests pinning the vectorized register kernels to the scalar
//! reference implementations.
//!
//! Whatever implementation the dispatch layer selects (chunked on
//! stable, `std::simd` under the `nightly-simd` feature), the observable
//! behavior must be bit-identical to the scalar loops — for arbitrary
//! register contents and in particular for lengths that are not
//! multiples of the chunk width, where the tail handling lives.

use proptest::prelude::*;
use sketch_math::kernels;
use sketch_math::kernels::{chunked, scalar};

/// Register-like values: small enough for histogram buckets, with ties
/// made likely so all three comparison branches are exercised.
fn registers(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..64, 0..max_len)
}

proptest! {
    /// The dispatched merge kernel matches the scalar merge and returns
    /// the exact post-merge minimum for arbitrary lengths.
    #[test]
    fn max_merge_min_matches_scalar(mut u in registers(200), v in registers(200)) {
        let len = u.len().min(v.len());
        u.truncate(len);
        let v = &v[..len];
        let mut expect = u.clone();
        let expect_min = scalar::max_merge_min(&mut expect, v);
        // The plain (no fused minimum) variants produce the same merge.
        let mut plain = u.clone();
        kernels::max_merge(&mut plain, v);
        prop_assert_eq!(&plain, &expect);
        let mut plain_scalar = u.clone();
        scalar::max_merge(&mut plain_scalar, v);
        prop_assert_eq!(&plain_scalar, &expect);
        let got_min = kernels::max_merge_min(&mut u, v);
        prop_assert_eq!(&u, &expect);
        prop_assert_eq!(got_min, expect_min);
        // The fused minimum is the real minimum of the merged output.
        prop_assert_eq!(got_min, u.iter().copied().min().unwrap_or(0));
    }

    /// The chunked merge agrees with the scalar merge even when the two
    /// are compared directly (not through dispatch).
    #[test]
    fn chunked_merge_matches_scalar(mut u in registers(100), v in registers(100)) {
        let len = u.len().min(v.len());
        u.truncate(len);
        let v = &v[..len];
        let mut expect = u.clone();
        let expect_min = scalar::max_merge_min(&mut expect, v);
        let got_min = chunked::max_merge_min(&mut u, v);
        prop_assert_eq!(u, expect);
        prop_assert_eq!(got_min, expect_min);
    }

    /// Minimum scans agree for arbitrary contents and lengths.
    #[test]
    fn min_scan_matches_scalar(values in registers(300)) {
        prop_assert_eq!(kernels::min_scan(&values), scalar::min_scan(&values));
        prop_assert_eq!(chunked::min_scan(&values), scalar::min_scan(&values));
    }

    /// Histogram counting agrees bucket-for-bucket, including a dirty
    /// output buffer (the kernel must zero it).
    #[test]
    fn histogram_matches_scalar(values in registers(300)) {
        let mut expect = vec![0u32; 64];
        scalar::histogram_counts(&values, &mut expect);
        let mut got = vec![u32::MAX; 64];
        kernels::histogram_counts(&values, &mut got);
        prop_assert_eq!(&got, &expect);
        let mut got_chunked = vec![1u32; 64];
        chunked::histogram_counts(&values, &mut got_chunked);
        prop_assert_eq!(&got_chunked, &expect);
    }

    /// Three-way comparison counts agree and always sum to the length.
    #[test]
    fn compare_counts_matches_scalar(mut u in registers(300), v in registers(300)) {
        let len = u.len().min(v.len());
        u.truncate(len);
        let v = &v[..len];
        let expect = scalar::compare_counts(&u, v);
        let got = kernels::compare_counts(&u, v);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(chunked::compare_counts(&u, v), expect);
        let (d_plus, d_minus, d0) = got;
        prop_assert_eq!(d_plus + d_minus + d0, len as u32);
    }

    /// `JointCounts::from_u32` (the kernel-backed fast path) equals the
    /// generic `from_registers`.
    #[test]
    fn joint_counts_fast_path_matches_generic(mut u in registers(300), v in registers(300)) {
        let len = u.len().min(v.len());
        u.truncate(len);
        let v = &v[..len];
        let generic = sketch_math::JointCounts::from_registers(&u, v);
        let fast = sketch_math::JointCounts::from_u32(&u, v);
        prop_assert_eq!(fast, generic);
    }
}
