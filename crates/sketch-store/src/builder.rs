//! Fluent construction of a [`SketchStore`].
//!
//! [`SketchStore::builder`] is the store's single construction entry
//! point: the factory closure is mandatory (it fixes configuration and
//! hash seed for every sketch the store creates), everything else is an
//! optional knob with a production-minded default. Centralizing the
//! knobs here keeps the store's constructor surface stable as new ones
//! (eviction policies, snapshot spill, …) arrive: they become builder
//! methods instead of constructor variants.

use crate::pipeline::{PipelineDefaults, DEFAULT_QUEUE_DEPTH, DEFAULT_WRITER_THREADS};
use crate::store::{SketchStore, DEFAULT_SHARDS};
use std::sync::Arc;

/// Configures and builds a [`SketchStore`].
///
/// Returned by [`SketchStore::builder`]; every knob has a default, so
/// `SketchStore::builder(factory).build()` is the minimal form.
///
/// ```
/// use setsketch::{SetSketch2, SetSketchConfig};
/// use sketch_store::SketchStore;
///
/// let config = SetSketchConfig::example_16bit();
/// let store = SketchStore::builder(move || SetSketch2::new(config, 42))
///     .shards(8)            // write-contention granularity
///     .queue_depth(256)     // per-writer pipeline backlog bound
///     .writer_threads(2)    // dedicated pipeline writer threads
///     .build();
/// store.ingest("key", &[1, 2, 3]);
/// assert_eq!(store.len(), 1);
/// ```
pub struct StoreBuilder<S> {
    shards: usize,
    pipeline: PipelineDefaults,
    factory: Box<dyn Fn() -> S + Send + Sync>,
}

impl<S> StoreBuilder<S> {
    /// Starts a builder around the store's sketch factory.
    pub(crate) fn new(factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        StoreBuilder {
            shards: DEFAULT_SHARDS,
            pipeline: PipelineDefaults {
                queue_depth: DEFAULT_QUEUE_DEPTH,
                writer_threads: DEFAULT_WRITER_THREADS,
            },
            factory: Box::new(factory),
        }
    }

    /// Number of lock shards the key space is split across (default
    /// [`DEFAULT_SHARDS`]). More shards reduce write contention; the
    /// key→shard mapping is stable for a given count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bound on the number of operations each pipeline writer queues
    /// before producers block — the backpressure knob of
    /// [`SketchStore::pipeline`] (default
    /// [`DEFAULT_QUEUE_DEPTH`](crate::DEFAULT_QUEUE_DEPTH)).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.pipeline.queue_depth = depth;
        self
    }

    /// Number of dedicated writer threads each
    /// [`SketchStore::pipeline`] handle spawns (default
    /// [`DEFAULT_WRITER_THREADS`](crate::DEFAULT_WRITER_THREADS)).
    /// Shards are partitioned across writers, so counts beyond the
    /// shard count cannot add parallelism.
    pub fn writer_threads(mut self, writers: usize) -> Self {
        self.pipeline.writer_threads = writers;
        self
    }

    /// Builds the store.
    ///
    /// # Panics
    /// Panics if `shards`, `queue_depth` or `writer_threads` was set to
    /// zero.
    pub fn build(self) -> SketchStore<S> {
        assert!(self.shards > 0, "store needs at least one shard");
        assert!(
            self.pipeline.queue_depth > 0,
            "pipeline queues need depth of at least one operation"
        );
        assert!(
            self.pipeline.writer_threads > 0,
            "pipelines need at least one writer thread"
        );
        SketchStore::from_parts(self.shards, self.factory, self.pipeline)
    }

    /// Builds the store behind an [`Arc`] — the shape
    /// [`SketchStore::pipeline`] and multi-threaded servers want.
    ///
    /// # Panics
    /// As [`build`](Self::build).
    pub fn build_shared(self) -> Arc<SketchStore<S>> {
        Arc::new(self.build())
    }
}

impl<S> std::fmt::Debug for StoreBuilder<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreBuilder")
            .field("shards", &self.shards)
            .field("queue_depth", &self.pipeline.queue_depth)
            .field("writer_threads", &self.pipeline.writer_threads)
            .finish_non_exhaustive()
    }
}
