//! Fluent construction of a [`SketchStore`].
//!
//! [`SketchStore::builder`] is the store's single construction entry
//! point: the factory closure is mandatory (it fixes configuration and
//! hash seed for every sketch the store creates), everything else is an
//! optional knob with a production-minded default. Centralizing the
//! knobs here keeps the store's constructor surface stable as new ones
//! arrive: they become builder methods instead of constructor variants.
//!
//! The memory-tier knobs ([`memory_budget_bytes`], [`demote_after_writes`],
//! [`spill_dir`]) require the sketch type to implement
//! [`CompactSketch`] — setting either of the first two installs the
//! family's compression codec and turns the tier manager on; a store
//! built without them keeps every sketch resident and pays nothing.
//!
//! [`memory_budget_bytes`]: StoreBuilder::memory_budget_bytes
//! [`demote_after_writes`]: StoreBuilder::demote_after_writes
//! [`spill_dir`]: StoreBuilder::spill_dir

use crate::error::StoreError;
use crate::pipeline::{PipelineDefaults, DEFAULT_QUEUE_DEPTH, DEFAULT_WRITER_THREADS};
use crate::query::DEFAULT_INDEX_CACHE_CAPACITY;
use crate::store::{SketchStore, DEFAULT_SHARDS};
use crate::tier::{TierCodec, TierPolicy};
use crate::wal::{self, FsyncPolicy, WalApplier, DEFAULT_CHECKPOINT_AFTER_BYTES};
use sketch_core::{BatchInsert, CompactSketch, Mergeable};
use std::path::PathBuf;
use std::sync::Arc;

/// Configures and builds a [`SketchStore`].
///
/// Returned by [`SketchStore::builder`]; every knob has a default, so
/// `SketchStore::builder(factory).build()` is the minimal form.
///
/// ```
/// use setsketch::{SetSketch2, SetSketchConfig};
/// use sketch_store::SketchStore;
///
/// let config = SetSketchConfig::example_16bit();
/// let store = SketchStore::builder(move || SetSketch2::new(config, 42))
///     .shards(8)            // write-contention granularity
///     .queue_depth(256)     // per-writer pipeline backlog bound
///     .writer_threads(2)    // dedicated pipeline writer threads
///     .build();
/// store.ingest("key", &[1, 2, 3]);
/// assert_eq!(store.len(), 1);
/// ```
///
/// With tiering — cold keys compress in place, and spill to disk when
/// the budget is still exceeded:
///
/// ```
/// use setsketch::{SetSketch2, SetSketchConfig};
/// use sketch_store::SketchStore;
///
/// let config = SetSketchConfig::new(4096, 2.0, 20.0, 62).unwrap();
/// let store = SketchStore::builder(move || SetSketch2::new(config, 42))
///     .memory_budget_bytes(256 * 1024) // hot + warm ceiling
///     .demote_after_writes(64)         // periodic cold-key compression
///     .build();
/// for key in 0..100 {
///     store.ingest(&format!("key-{key}"), &(0..50).collect::<Vec<u64>>());
/// }
/// let stats = store.tier_stats();
/// assert_eq!(stats.total_keys(), 100);
/// assert!(stats.resident_bytes() <= 2 * 256 * 1024);
/// ```
pub struct StoreBuilder<S> {
    shards: usize,
    pipeline: PipelineDefaults,
    tier: TierPolicy,
    codec: Option<TierCodec<S>>,
    factory: Box<dyn Fn() -> S + Send + Sync>,
    durable: Option<DurableConfig<S>>,
    fsync: FsyncPolicy,
    checkpoint_after_bytes: u64,
    index_cache_capacity: usize,
}

/// Captured when [`StoreBuilder::durable_dir`] is called — the knob's
/// trait bounds are discharged there, so `build` needs none.
struct DurableConfig<S> {
    dir: PathBuf,
    codec: TierCodec<S>,
    applier: WalApplier<S>,
}

impl<S> StoreBuilder<S> {
    /// Starts a builder around the store's sketch factory.
    pub(crate) fn new(factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        StoreBuilder {
            shards: DEFAULT_SHARDS,
            pipeline: PipelineDefaults {
                queue_depth: DEFAULT_QUEUE_DEPTH,
                writer_threads: DEFAULT_WRITER_THREADS,
            },
            tier: TierPolicy::default(),
            codec: None,
            factory: Box::new(factory),
            durable: None,
            fsync: FsyncPolicy::Os,
            checkpoint_after_bytes: DEFAULT_CHECKPOINT_AFTER_BYTES,
            index_cache_capacity: DEFAULT_INDEX_CACHE_CAPACITY,
        }
    }

    /// Number of lock shards the key space is split across (default
    /// [`DEFAULT_SHARDS`]). More shards reduce write contention; the
    /// key→shard mapping is stable for a given count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bound on the number of operations each pipeline writer queues
    /// before producers block — the backpressure knob of
    /// [`SketchStore::pipeline`] (default
    /// [`DEFAULT_QUEUE_DEPTH`](crate::DEFAULT_QUEUE_DEPTH)).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.pipeline.queue_depth = depth;
        self
    }

    /// Number of dedicated writer threads each
    /// [`SketchStore::pipeline`] handle spawns (default
    /// [`DEFAULT_WRITER_THREADS`](crate::DEFAULT_WRITER_THREADS)).
    /// Shards are partitioned across writers, so counts beyond the
    /// shard count cannot add parallelism.
    pub fn writer_threads(mut self, writers: usize) -> Self {
        self.pipeline.writer_threads = writers;
        self
    }

    /// Ceiling on the store's resident bytes (hot sketches plus warm
    /// compressed payloads). Exceeding it triggers the second-chance
    /// clock scan, which compresses cold keys in place and — while
    /// still over budget — spills them to disk. The ceiling is a
    /// target, not a hard cap: a burst of writes can transiently
    /// overshoot until the next scan catches up.
    ///
    /// Enables the memory-tier manager (hence the [`CompactSketch`]
    /// bound — the family must provide a compression codec).
    ///
    /// # Panics
    /// Panics if `bytes == 0`.
    pub fn memory_budget_bytes(mut self, bytes: usize) -> Self
    where
        S: CompactSketch,
    {
        assert!(bytes > 0, "memory budget must be at least one byte");
        self.tier.memory_budget_bytes = Some(bytes);
        self.codec = Some(TierCodec::of());
        self
    }

    /// Runs a demotion scan every `writes` mutations even without
    /// budget pressure, compressing keys untouched since the previous
    /// scan. Use this to keep a long-tail keyspace compact when no hard
    /// budget is set (with a budget, scans also fire on pressure).
    ///
    /// Enables the memory-tier manager (hence the [`CompactSketch`]
    /// bound).
    ///
    /// # Panics
    /// Panics if `writes == 0`.
    pub fn demote_after_writes(mut self, writes: u64) -> Self
    where
        S: CompactSketch,
    {
        assert!(writes > 0, "demotion period must be at least one write");
        self.tier.demote_after_writes = Some(writes);
        self.codec = Some(TierCodec::of());
        self
    }

    /// Bound on the similarity-query engine's cached index states, one
    /// per distinct operating point — (threshold, recall target, forced
    /// banding, strategy) tuple (default
    /// [`DEFAULT_INDEX_CACHE_CAPACITY`](crate::DEFAULT_INDEX_CACHE_CAPACITY)).
    /// Raise it when a workload legitimately rotates through more
    /// operating points than that; each cached state holds band tables
    /// over every indexed key.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn index_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "index cache needs capacity for at least one state"
        );
        self.index_cache_capacity = capacity;
        self
    }

    /// Parent directory for the store's spill segments (default: the OS
    /// temp directory). The store creates a uniquely named subdirectory
    /// on first spill and removes it — with every segment file — when
    /// dropped. Only consulted when tiering is enabled.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.tier.spill_dir = Some(dir.into());
        self
    }

    /// Makes the store **durable**: every mutation appends a CRC-framed
    /// record to a write-ahead log under `dir` before applying, and
    /// building from the same directory later recovers the store —
    /// loading the newest checkpoint, replaying the log tail, truncating
    /// a torn final record and quarantining bit-rotted ones (what was
    /// found is reported by [`SketchStore::recovery_report`] as a
    /// [`RecoveryReport`](crate::RecoveryReport)).
    ///
    /// The directory is created if absent and must be private to this
    /// store. Pair with [`fsync_policy`](Self::fsync_policy) to choose
    /// what survives power loss, and
    /// [`checkpoint_after_bytes`](Self::checkpoint_after_bytes) to bound
    /// replay time.
    ///
    /// The trait bounds are what replay needs: re-ingesting elements
    /// ([`BatchInsert`]), re-applying replica merges ([`Mergeable`] +
    /// `Clone` + `PartialEq`) and decoding put/checkpoint payloads
    /// ([`CompactSketch`]).
    pub fn durable_dir(mut self, dir: impl Into<PathBuf>) -> Self
    where
        S: BatchInsert + Mergeable + Clone + PartialEq + CompactSketch,
    {
        self.durable = Some(DurableConfig {
            dir: dir.into(),
            codec: TierCodec::of(),
            applier: WalApplier::of(),
        });
        self
    }

    /// When WAL appends reach the disk (default [`FsyncPolicy::Os`]).
    /// Only consulted when a [`durable_dir`](Self::durable_dir) is set.
    ///
    /// # Panics
    /// Panics if the policy is `EveryN(0)`.
    pub fn fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        if let FsyncPolicy::EveryN(n) = policy {
            assert!(n > 0, "fsync period must be at least one record");
        }
        self.fsync = policy;
        self
    }

    /// Log bytes to accumulate before the store cuts the next
    /// checkpoint (default 8 MiB). Smaller values bound recovery replay
    /// tighter at the cost of more frequent full-store sweeps. Only
    /// consulted when a [`durable_dir`](Self::durable_dir) is set.
    ///
    /// # Panics
    /// Panics if `bytes == 0`.
    pub fn checkpoint_after_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "checkpoint threshold must be at least one byte");
        self.checkpoint_after_bytes = bytes;
        self
    }

    /// Builds the store.
    ///
    /// # Panics
    /// Panics if `shards`, `queue_depth` or `writer_threads` was set to
    /// zero, or if a [`durable_dir`](Self::durable_dir) was set and the
    /// durability layer fails to initialize (directory not creatable,
    /// log not writable) — use [`try_build`](Self::try_build) to handle
    /// that case. Recovering from a *corrupt* log is not a panic: bad
    /// records are quarantined into the [`RecoveryReport`].
    ///
    /// [`RecoveryReport`]: crate::RecoveryReport
    pub fn build(self) -> SketchStore<S> {
        match self.try_build() {
            Ok(store) => store,
            Err(error) => panic!("store construction failed: {error}"),
        }
    }

    /// Builds the store, surfacing durability initialization failures
    /// as [`StoreError::Durability`] instead of panicking.
    ///
    /// # Errors
    /// [`StoreError::Durability`] when the durable directory cannot be
    /// created or its write-ahead log cannot be opened or scanned.
    ///
    /// # Panics
    /// As [`build`](Self::build) for the zero-value knob asserts.
    pub fn try_build(self) -> Result<SketchStore<S>, StoreError> {
        assert!(self.shards > 0, "store needs at least one shard");
        assert!(
            self.pipeline.queue_depth > 0,
            "pipeline queues need depth of at least one operation"
        );
        assert!(
            self.pipeline.writer_threads > 0,
            "pipelines need at least one writer thread"
        );
        let durable = self.durable;
        // A durable store always carries the family codec: checkpoint
        // entries restore warm, and put/merge-in records decode through
        // the tier prototype.
        let codec = self.codec.or_else(|| durable.as_ref().map(|d| d.codec));
        let mut store = SketchStore::from_parts(
            self.shards,
            self.factory,
            self.pipeline,
            self.tier,
            codec,
            self.index_cache_capacity,
        );
        if let Some(config) = durable {
            let (wal, report, latest_checkpoint) =
                wal::recover(&store, &config.dir, self.fsync, &config.applier)?;
            store.durability = Some(wal::durability_runtime(
                wal,
                report,
                latest_checkpoint,
                config.codec,
                self.checkpoint_after_bytes,
            ));
        }
        Ok(store)
    }

    /// Builds the store behind an [`Arc`] — the shape
    /// [`SketchStore::pipeline`] and multi-threaded servers want.
    ///
    /// # Panics
    /// As [`build`](Self::build).
    pub fn build_shared(self) -> Arc<SketchStore<S>> {
        Arc::new(self.build())
    }
}

impl<S> std::fmt::Debug for StoreBuilder<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreBuilder")
            .field("shards", &self.shards)
            .field("queue_depth", &self.pipeline.queue_depth)
            .field("writer_threads", &self.pipeline.writer_threads)
            .field("memory_budget_bytes", &self.tier.memory_budget_bytes)
            .field("demote_after_writes", &self.tier.demote_after_writes)
            .field("index_cache_capacity", &self.index_cache_capacity)
            .finish_non_exhaustive()
    }
}
