//! Version-based delta extraction and CRDT-style merge application —
//! the store-side substrate of multi-node replication.
//!
//! Every slot carries a version stamped from the store's monotonic
//! write counter (see [`crate::store`]). A replica that has applied
//! everything up to counter value `v` can therefore ask for "all keys
//! whose version exceeds `v`" and receive exactly the keys that moved —
//! [`SketchStore::delta_since`] — with each key's registers as the
//! family's [`CompactSketch`] payload, so cold (warm/frozen) entries
//! ship their already-compressed bytes without rehydration and hot
//! entries are compressed on the way out.
//!
//! On the receiving side, [`SketchStore::merge_in`] applies a shipped
//! state with union-merge semantics (create on first sight, merge
//! otherwise). Merging is idempotent, commutative and associative, so
//! deltas may be duplicated, reordered or re-sent wholesale without
//! corrupting anything. The version stamp only moves when the merge
//! **changed** the local registers — an echo of state a replica already
//! holds does not re-mark the key as dirty, which is what lets a mesh
//! of replicas pulling deltas from each other quiesce instead of
//! ping-ponging unchanged keys forever.

use crate::error::StoreError;
use crate::store::{SketchStore, Slot};
use crate::tier::TierSlot;
use sketch_core::{CompactSketch, Mergeable};

/// One key's state inside a [`StoreDelta`]: the key, the version that
/// produced the payload, and the registers in the family's
/// [`CompactSketch`] wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEntry {
    /// The key whose state this entry carries.
    pub key: String,
    /// The slot version the payload was extracted at (in the *source*
    /// store's write-counter domain).
    pub version: u64,
    /// The registers, compressed through the family's
    /// [`CompactSketch`] codec.
    pub payload: Vec<u8>,
}

/// The keys of one store whose version moved past a floor, with their
/// compact payloads — what one replica ships to another during delta
/// sync (see [`SketchStore::delta_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDelta {
    /// Write-counter value observed **before** the sweep: every key
    /// stamped at or below this value is included (given it exceeds the
    /// requested floor), so a receiver that applies the delta may
    /// advance its high-water mark for this source to `up_to`. Keys
    /// stamped concurrently above `up_to` ship in the *next* delta —
    /// at-least-once, which idempotent merging makes harmless.
    pub up_to: u64,
    /// Changed keys in ascending key order.
    pub entries: Vec<DeltaEntry>,
}

impl StoreDelta {
    /// Number of keys the delta carries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key's version moved.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes across all entries.
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.payload.len()).sum()
    }
}

impl<S> SketchStore<S> {
    /// Current value of the store's monotonic write counter — the
    /// domain of every slot version. A replica that has applied a delta
    /// produced at counter value `v` holds everything stamped `≤ v`.
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch_load()
    }

    /// The version stamp of `key`'s slot, without promoting it out of
    /// a cold tier (`None` when the key holds no sketch).
    pub fn version_of(&self, key: &str) -> Option<u64> {
        self.shard(key).read().get(key).map(|slot| slot.version)
    }

    /// Every key with its version stamp, in ascending key order —
    /// point-in-time per shard, no promotion. The sweep a replication
    /// peer diffs against its high-water marks.
    pub fn key_versions(&self) -> Vec<(String, u64)> {
        let mut versions: Vec<(String, u64)> = self
            .shards()
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .iter()
                    .map(|(key, slot)| (key.clone(), slot.version))
                    .collect::<Vec<_>>()
            })
            .collect();
        versions.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        versions
    }

    /// Builds an empty sketch through the store's factory — the
    /// configuration and seed every stored sketch shares. Replication
    /// peers use it as the [`CompactSketch`] decoding prototype for
    /// payloads shipped from compatible stores.
    pub fn empty_sketch(&self) -> S {
        self.make_sketch()
    }
}

impl<S: CompactSketch> SketchStore<S> {
    /// Extracts every key whose version exceeds `after`, with its
    /// registers as a [`CompactSketch`] payload — the shipping side of
    /// delta sync.
    ///
    /// The sweep **peeks**: hot sketches are compressed on the way out,
    /// warm entries clone their already-compressed bytes, frozen
    /// entries read theirs from the spill segment — nothing is promoted
    /// or demoted, so shipping a delta never perturbs the memory tiers
    /// (tier moves do not bump versions, so they never appear in a
    /// delta either). `delta_since(0)` is a full-state transfer.
    ///
    /// Entries come back in ascending key order; see
    /// [`StoreDelta::up_to`] for the high-water-mark contract.
    pub fn delta_since(&self, after: u64) -> StoreDelta {
        // Read the counter *before* sweeping: a key stamped after this
        // load may be missed by its shard's read pass, so `up_to` must
        // not claim to cover it.
        let up_to = self.write_epoch_load();
        let mut entries = Vec::new();
        for shard in self.shards() {
            for (key, slot) in shard.read().iter() {
                if slot.version <= after {
                    continue;
                }
                // Quarantined/corrupt slots ship nothing: their
                // registers are unrecoverable, and it is the *peers'*
                // healthy copies that will heal this store, not the
                // other way round.
                let payload = match &slot.state {
                    TierSlot::Hot(sketch) => sketch.compress(),
                    cold => match self.cold_payload(cold) {
                        Some(payload) => payload,
                        None => continue,
                    },
                };
                entries.push(DeltaEntry {
                    key: key.clone(),
                    version: slot.version,
                    payload,
                });
            }
        }
        entries.sort_unstable_by(|a, b| a.key.cmp(&b.key));
        StoreDelta { up_to, entries }
    }
}

impl<S: Mergeable + Clone + PartialEq> SketchStore<S> {
    /// Applies a shipped state to `key` with union-merge semantics:
    /// creates the key when absent, merges otherwise. Returns `true`
    /// when the local state changed.
    ///
    /// The version stamp moves **only on change** — re-applying a state
    /// the store already covers (a duplicated delta, or an echo of
    /// registers that originated here) leaves the version alone, so
    /// replication meshes quiesce once everyone holds everything
    /// instead of re-shipping unchanged keys forever.
    ///
    /// A key created here is stamped like any other write, so it ships
    /// onward in this store's own deltas — that transitivity is what
    /// lets gossip spread state beyond direct peer pairs.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] when `incoming`'s configuration or
    /// seed does not match the stored (or factory-built) sketch.
    pub fn merge_in(&self, key: &str, incoming: &S) -> Result<bool, StoreError> {
        self.logged(
            |durability| crate::wal::encode_merge_in(key, &(durability.codec.compress)(incoming)),
            |store| store.merge_in_unlogged(key, incoming),
        )
    }

    pub(crate) fn merge_in_unlogged(&self, key: &str, incoming: &S) -> Result<bool, StoreError> {
        let changed = {
            let mut shard = self.shard(key).write();
            match shard.get_mut(key) {
                None => {
                    // Merge into a factory-built empty sketch rather
                    // than installing `incoming` verbatim: union with
                    // the empty set is identity, and the merge is where
                    // configuration mismatches surface.
                    let mut fresh = self.make_sketch();
                    fresh
                        .merge_from(incoming)
                        .map_err(StoreError::incompatible)?;
                    self.tier.account_insert_hot(&fresh);
                    let version = self.next_version();
                    shard.insert(key.to_owned(), Slot::hot(fresh, version));
                    true
                }
                Some(slot) => {
                    if self.ensure_hot_slot(key, slot).is_err() {
                        // The local registers are corrupt and gone; the
                        // incoming replica state *is* the best available
                        // copy, so start the key over from it.
                        let mut fresh = self.make_sketch();
                        fresh
                            .merge_from(incoming)
                            .map_err(StoreError::incompatible)?;
                        self.tier.account_insert_hot(&fresh);
                        slot.state = TierSlot::Hot(fresh);
                        slot.version = self.next_version();
                        slot.touch();
                        true
                    } else {
                        slot.touch();
                        let before_bytes = self.tier.resident_of(slot.hot_ref());
                        let current = slot.hot_mut();
                        let merged = current
                            .merged_with(incoming)
                            .map_err(StoreError::incompatible)?;
                        let changed = merged != *current;
                        if changed {
                            *current = merged;
                            slot.version = self.next_version();
                        }
                        let after_bytes = self.tier.resident_of(slot.hot_ref());
                        self.tier.account_growth(before_bytes, after_bytes);
                        changed
                    }
                }
            }
        };
        self.maybe_maintain();
        Ok(changed)
    }
}

impl<S> SketchStore<S> {
    /// Reads a cold slot's compressed payload without promoting it;
    /// `None` for quarantined slots and unreadable spill records.
    fn cold_payload(&self, state: &TierSlot<S>) -> Option<Vec<u8>> {
        match state {
            TierSlot::Hot(_) => unreachable!("hot slots are compressed directly"),
            TierSlot::Warm(bytes) => Some(bytes.to_vec()),
            TierSlot::Frozen {
                segment,
                offset,
                len,
            } => self.tier.read_frozen(*segment, *offset, *len).ok(),
            TierSlot::Quarantined(_) => None,
        }
    }
}
