//! Batched cross-key similarity queries: LSH-pruned top-k and
//! all-pairs sweeps over the store.
//!
//! Answering "which of my N keys are similar?" with per-pair
//! [`joint`](SketchStore::joint) calls costs `O(N²·m)` register
//! comparisons plus two shard-lock acquisitions per pair. This module
//! replaces that with a three-stage engine:
//!
//! 1. **Candidate pruning** — stored sketches expose locality-sensitive
//!    register signatures ([`sketch_core::Signature`], paper §3.3), kept
//!    in a banding [`LshIndex`] whose band/row layout is auto-tuned from
//!    the family's collision-probability bound at the query threshold
//!    ([`Banding::tune`]). Only keys sharing a bucket become candidate
//!    pairs.
//! 2. **Incremental maintenance** — every store write bumps a per-key
//!    version counter; before a query, exactly the keys whose version
//!    moved since they were last indexed are re-banded (removed under
//!    their stored band hashes, re-inserted under the new ones). Steady
//!    query traffic therefore never pays a full index rebuild.
//! 3. **Exact verification** — every surviving candidate pair is
//!    verified with the family's *exact* joint estimator (the PR-3
//!    `compare_counts` register kernel underneath) over a point-in-time
//!    snapshot, fanned out across worker threads with per-worker result
//!    buffers. The LSH stage only ever prunes; reported quantities are
//!    identical to what an exhaustive sweep computes for the same pair.
//!
//! When the threshold carries no locality signal (e.g. `0.0`, where
//! every pair must be reported), [`Banding::tune`] reports that no
//! banding can reach the recall target and the engine transparently
//! falls back to the exhaustive candidate set — same verification, same
//! results, no pruning.

use crate::error::StoreError;
use crate::store::SketchStore;
use lsh::{Banding, LshIndex};
use sketch_core::{JointEstimator, JointQuantities, Signature};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Similarity threshold [`SketchStore::similar_keys`] tunes its index
/// for when the caller has not chosen one explicitly: candidates with
/// Jaccard at or above this value are found with at least the tuned
/// recall, more dissimilar keys on a best-effort basis.
pub const DEFAULT_SIMILARITY_THRESHOLD: f64 = 0.5;

/// Recall target handed to [`Banding::tune`]: the banding stage is laid
/// out so that a pair *at* the query threshold still becomes a
/// candidate with this probability (more similar pairs exceed it).
const BANDING_TARGET_RECALL: f64 = 0.98;

/// Candidate pairs handed to one worker at a time during verification.
const VERIFY_CHUNK: usize = 256;

/// Cached index states, one per distinct query threshold (most recently
/// used first). Bounding the cache keeps a service that sweeps many
/// thresholds from hoarding band tables; alternating between a few
/// operating points never re-tunes or re-bands.
const MAX_CACHED_INDEXES: usize = 4;

/// One of the store's lazily built, incrementally maintained similarity
/// index states.
pub(crate) struct SimilarityIndex {
    /// Jaccard threshold the banding was tuned for.
    threshold: f64,
    /// The tuned layout; `None` when no banding reaches the recall
    /// target at `threshold` (queries then run exhaustively).
    banding: Option<Banding>,
    /// The banding index itself (`None` exactly when `banding` is).
    lsh: Option<LshIndex<String>>,
    /// Per-key bookkeeping: the store version that was banded and the
    /// band bucket ids it was inserted under (for O(bands) removal).
    entries: HashMap<String, IndexedKey>,
}

struct IndexedKey {
    version: u64,
    band_hashes: Box<[u64]>,
}

/// A pair of store keys whose verified similarity cleared the sweep
/// threshold, with the full exact joint estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarPair {
    /// Lexicographically smaller key (the `U` side of `quantities`).
    pub left: String,
    /// Lexicographically larger key (the `V` side of `quantities`).
    pub right: String,
    /// Exact joint estimate of the pair — identical to
    /// [`SketchStore::joint`] on the same states.
    pub quantities: JointQuantities,
}

/// One result of a top-k query: a neighboring key and the exact joint
/// estimate against the query key (query on the `U` side).
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The neighboring key.
    pub key: String,
    /// Exact joint estimate for (query key, this key).
    pub quantities: JointQuantities,
}

/// Diagnostics of the current similarity index state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityIndexInfo {
    /// Threshold the index is tuned for.
    pub threshold: f64,
    /// Tuned banding, or `None` when queries at this threshold run
    /// exhaustively.
    pub banding: Option<Banding>,
    /// Number of keys currently banded into the index.
    pub indexed_keys: usize,
}

impl<S> SketchStore<S> {
    /// Reports the **most recently used** similarity index state — its
    /// tuned banding and coverage — or `None` if no similarity query
    /// has run yet. (The store caches one state per queried threshold,
    /// up to a small bound.)
    pub fn similarity_index_info(&self) -> Option<SimilarityIndexInfo> {
        self.similarity
            .lock()
            .first()
            .map(|index| SimilarityIndexInfo {
                threshold: index.threshold,
                banding: index.banding,
                indexed_keys: index.entries.len(),
            })
    }
}

impl<S> SketchStore<S>
where
    S: Signature + JointEstimator + Clone + Send + Sync,
{
    /// Tunes (if needed) and incrementally refreshes the similarity
    /// index for `threshold`, without running a query. Queries do this
    /// on demand; calling it eagerly (e.g. after a bulk load) moves the
    /// banding work off the first query's latency.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn build_similarity_index(&self, threshold: f64) {
        check_threshold(threshold);
        let mut guard = self.similarity.lock();
        let index = self.ensure_index(&mut guard, threshold);
        self.refresh_index(index);
    }

    /// The `k` keys most similar to `key`, with exact joint estimates.
    ///
    /// Candidates come from the similarity index (tuned for
    /// [`DEFAULT_SIMILARITY_THRESHOLD`]; use
    /// [`similar_keys_at`](Self::similar_keys_at) to tune for another
    /// operating point) via a banding query — multi-probed for ordinal
    /// register scales — then every candidate is verified with the
    /// exact joint estimator against clones of just the query and
    /// candidate sketches (the whole store is never copied). If the
    /// index yields fewer than `k` candidates the engine falls back to
    /// verifying every key, so a small store always produces a
    /// complete, exact top-k.
    ///
    /// Results are sorted by descending Jaccard, ties broken by
    /// ascending key; neighbors *below* the tuned threshold are
    /// returned on a best-effort basis (the recall guarantee of the
    /// banding only covers pairs at or above it).
    ///
    /// # Errors
    /// [`StoreError::KeyNotFound`] if `key` holds no sketch,
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn similar_keys(&self, key: &str, k: usize) -> Result<Vec<Neighbor>, StoreError> {
        self.similar_keys_at(key, k, DEFAULT_SIMILARITY_THRESHOLD)
    }

    /// [`similar_keys`](Self::similar_keys) with an explicit similarity
    /// threshold to tune the candidate stage for.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn similar_keys_at(
        &self,
        key: &str,
        k: usize,
        threshold: f64,
    ) -> Result<Vec<Neighbor>, StoreError> {
        check_threshold(threshold);
        let candidate_keys = {
            let mut guard = self.similarity.lock();
            let index = self.ensure_index(&mut guard, threshold);
            self.refresh_index(index);
            // The signature is extracted under the shard read lock — no
            // sketch clone inside this critical section. Multi-probing
            // (±1 register perturbations) only names plausible near
            // misses on ordinal register scales; folded-hash signatures
            // use the exact banding query.
            let probed = self.with_sketch(key, |sketch| {
                (sketch.signature(), sketch.ordinal_registers())
            });
            match (&index.lsh, probed) {
                (Some(lsh), Some((signature, true))) => Some(lsh.query_multiprobe(&signature)),
                (Some(lsh), Some((signature, false))) => Some(lsh.query(&signature)),
                (None, Some(_)) => None, // exhaustive fallback
                (_, None) => return Err(StoreError::KeyNotFound(key.to_owned())),
            }
        };

        let mut candidates = match candidate_keys {
            Some(mut keys) => {
                keys.retain(|candidate| candidate != key);
                keys.sort_unstable();
                keys
            }
            None => Vec::new(),
        };
        if candidates.len() < k {
            // Recall floor (or exhaustive mode): too few banding
            // candidates to fill the top-k, so verify every other key —
            // still exact, just unpruned.
            candidates = self.keys();
            candidates.retain(|candidate| candidate != key);
        }

        // The verification snapshot clones only the query sketch and
        // the candidates, never the whole store.
        let Some(query_sketch) = self.get(key) else {
            return Err(StoreError::KeyNotFound(key.to_owned()));
        };
        let mut entries: Vec<(String, S)> = Vec::with_capacity(candidates.len() + 1);
        entries.push((key.to_owned(), query_sketch));
        for candidate in candidates {
            // Keys can vanish between candidate generation and cloning.
            if let Some(sketch) = self.get(&candidate) {
                entries.push((candidate, sketch));
            }
        }

        let pairs: Vec<(u32, u32)> = (1..entries.len() as u32).map(|i| (0, i)).collect();
        // No threshold filter: top-k keeps its best-effort tail below
        // the tuned threshold.
        let mut hits = verify_candidates(&entries, Candidates::List(&pairs), 0.0)?;
        hits.sort_unstable_by(|a, b| {
            b.2.jaccard
                .total_cmp(&a.2.jaccard)
                .then_with(|| entries[a.1 as usize].0.cmp(&entries[b.1 as usize].0))
        });
        hits.truncate(k);
        Ok(hits
            .into_iter()
            .map(|(_, i, quantities)| Neighbor {
                key: entries[i as usize].0.clone(),
                quantities,
            })
            .collect())
    }

    /// Every pair of keys whose verified Jaccard similarity is at least
    /// `threshold`, with exact joint estimates — the LSH-pruned sweep.
    ///
    /// Candidate pairs are keys co-located in at least one band bucket
    /// of the (incrementally refreshed) similarity index; each
    /// candidate is then verified with the exact joint estimator over a
    /// point-in-time snapshot, in parallel. Reported pairs therefore
    /// carry exactly the quantities
    /// [`all_pairs_exhaustive`](Self::all_pairs_exhaustive) computes
    /// for them; the LSH stage can only *miss* pairs, with probability
    /// bounded by the tuned recall (98 % at the threshold, higher
    /// above it). At thresholds where no banding meets the recall
    /// target (e.g. `0.0`) the sweep transparently runs exhaustively.
    ///
    /// Results are sorted by `(left, right)`; each pair appears once
    /// with `left < right`.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn all_pairs(&self, threshold: f64) -> Result<Vec<SimilarPair>, StoreError> {
        check_threshold(threshold);
        let candidate_keys = {
            let mut guard = self.similarity.lock();
            let index = self.ensure_index(&mut guard, threshold);
            self.refresh_index(index);
            index.lsh.as_ref().map(|lsh| lsh.candidate_pairs())
        };

        let entries = self.sorted_entries();
        let hits = match candidate_keys {
            Some(candidates) => {
                let position: HashMap<&str, u32> = entries
                    .iter()
                    .enumerate()
                    .map(|(i, (k, _))| (k.as_str(), i as u32))
                    .collect();
                let pairs: Vec<(u32, u32)> = candidates
                    .iter()
                    .filter_map(|(a, b)| {
                        // Keys can vanish between index refresh and
                        // snapshot; verification only sees live pairs.
                        Some((*position.get(a.as_str())?, *position.get(b.as_str())?))
                    })
                    .collect();
                verify_candidates(&entries, Candidates::List(&pairs), threshold)?
            }
            None => verify_candidates(&entries, Candidates::all(&entries), threshold)?,
        };
        Ok(pairs_from_hits(&entries, hits))
    }

    /// The exhaustive reference sweep: verifies **every** pair of keys
    /// with the exact joint estimator (no LSH stage) and reports those
    /// at or above `threshold`. Same verification, same output format
    /// and order as [`all_pairs`](Self::all_pairs) — this is the
    /// ground-truth baseline the pruned sweep's recall and speedup are
    /// measured against, and the right tool when *completeness* matters
    /// more than latency.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn all_pairs_exhaustive(&self, threshold: f64) -> Result<Vec<SimilarPair>, StoreError> {
        check_threshold(threshold);
        let entries = self.sorted_entries();
        let hits = verify_candidates(&entries, Candidates::all(&entries), threshold)?;
        Ok(pairs_from_hits(&entries, hits))
    }

    /// Point-in-time snapshot of all entries, sorted by key.
    fn sorted_entries(&self) -> Vec<(String, S)> {
        self.snapshot().entries.into_iter().collect()
    }

    /// Returns the cached index state for `threshold`, creating and
    /// tuning it on first use. States are kept most-recently-used
    /// first, one per distinct threshold (at most
    /// [`MAX_CACHED_INDEXES`]), so callers alternating between a few
    /// operating points — e.g. `all_pairs(0.7)` interleaved with
    /// default-threshold `similar_keys` — never tear down and re-band
    /// the whole index on a threshold switch.
    fn ensure_index<'a>(
        &self,
        cache: &'a mut Vec<SimilarityIndex>,
        threshold: f64,
    ) -> &'a mut SimilarityIndex {
        if let Some(at) = cache.iter().position(|index| index.threshold == threshold) {
            let index = cache.remove(at);
            cache.insert(0, index);
        } else {
            // Tune the banding from the family's locality bound at the
            // threshold, probed on an empty factory sketch (the
            // collision probability is a configuration property, not a
            // state one).
            let probe = self.make_sketch();
            let p = probe.register_collision_probability(threshold);
            let banding = Banding::tune(probe.signature_len(), p, BANDING_TARGET_RECALL);
            let lsh = banding.map(|b| {
                LshIndex::new(b.bands, b.rows).expect("tuned banding has bands, rows >= 1")
            });
            cache.insert(
                0,
                SimilarityIndex {
                    threshold,
                    banding,
                    lsh,
                    entries: HashMap::new(),
                },
            );
            cache.truncate(MAX_CACHED_INDEXES);
        }
        &mut cache[0]
    }

    /// Re-bands exactly the keys whose version stamp moved since they
    /// were last indexed, and drops index entries for removed keys.
    fn refresh_index(&self, index: &mut SimilarityIndex) {
        let SimilarityIndex { lsh, entries, .. } = index;
        let Some(lsh) = lsh.as_ref() else {
            return; // exhaustive mode: nothing to maintain
        };
        let mut live_count = 0usize;
        let mut signature: Vec<u32> = Vec::new();
        let mut band_hashes: Vec<u64> = Vec::new();
        for shard in self.shards() {
            let guard = shard.read();
            live_count += guard.len();
            for (key, slot) in guard.iter() {
                if entries.get(key).is_some_and(|e| e.version == slot.version) {
                    continue;
                }
                slot.sketch.signature_into(&mut signature);
                lsh.band_hashes_into(&signature, &mut band_hashes);
                if let Some(old) = entries.get(key) {
                    lsh.remove_hashed(key, &old.band_hashes);
                }
                lsh.insert_hashed(key.clone(), &band_hashes);
                entries.insert(
                    key.clone(),
                    IndexedKey {
                        version: slot.version,
                        band_hashes: band_hashes.clone().into_boxed_slice(),
                    },
                );
            }
        }
        // After the sweep `entries` covers every live key, so the counts
        // only disagree when keys were removed — the warm path (nothing
        // removed) never clones a key string for removal detection.
        if entries.len() != live_count {
            let mut live: HashSet<String> = HashSet::with_capacity(live_count);
            for shard in self.shards() {
                live.extend(shard.read().keys().cloned());
            }
            entries.retain(|key, entry| {
                live.contains(key) || {
                    lsh.remove_hashed(key, &entry.band_hashes);
                    false
                }
            });
        }
    }
}

/// Resolves verified index-pair hits back to keyed [`SimilarPair`]s.
fn pairs_from_hits<S>(
    entries: &[(String, S)],
    hits: Vec<(u32, u32, JointQuantities)>,
) -> Vec<SimilarPair> {
    hits.into_iter()
        .map(|(a, b, quantities)| SimilarPair {
            left: entries[a as usize].0.clone(),
            right: entries[b as usize].0.clone(),
            quantities,
        })
        .collect()
}

/// Validates a similarity threshold.
fn check_threshold(threshold: f64) {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "similarity threshold must be within [0, 1], got {threshold}"
    );
}

/// The candidate set of a verification run: an explicit pair list (the
/// pruned path) or the implicit triangle of all `(i, j)`, `i < j` pairs
/// over `n` entries (the exhaustive path, never materialized — at
/// N = 10k the explicit list would be ~50M tuples).
#[derive(Clone, Copy)]
enum Candidates<'a> {
    List(&'a [(u32, u32)]),
    Triangle(u32),
}

impl Candidates<'_> {
    /// The exhaustive candidate set over `entries`.
    fn all<T>(entries: &[T]) -> Candidates<'static> {
        let n = u32::try_from(entries.len())
            .expect("store sizes beyond u32 keys are unsupported in sweeps");
        Candidates::Triangle(n)
    }

    /// Number of work units handed out to verification workers: chunks
    /// of the list, or one triangle row (`(i, i+1..n)`) each.
    fn units(&self) -> usize {
        match *self {
            Candidates::List(pairs) => pairs.len().div_ceil(VERIFY_CHUNK),
            Candidates::Triangle(n) => (n as usize).saturating_sub(1),
        }
    }

    /// Runs `visit` on every pair of one work unit, stopping early on
    /// error.
    fn for_each_in_unit(
        &self,
        unit: usize,
        visit: &mut impl FnMut(u32, u32) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        match *self {
            Candidates::List(pairs) => {
                let start = unit * VERIFY_CHUNK;
                for &(a, b) in &pairs[start..(start + VERIFY_CHUNK).min(pairs.len())] {
                    visit(a, b)?;
                }
            }
            Candidates::Triangle(n) => {
                let a = unit as u32;
                for b in a + 1..n {
                    visit(a, b)?;
                }
            }
        }
        Ok(())
    }
}

/// Verifies candidate pairs with the exact joint estimator and keeps
/// those at or above `threshold`, fanned out across worker threads.
///
/// Workers claim work units from an atomic cursor and collect hits into
/// per-worker buffers, so there is no shared mutable state on the hot
/// path; results are merged and sorted by index pair afterwards, making
/// the output deterministic regardless of scheduling. The estimator is
/// the family's exact one — the same code path as
/// [`SketchStore::joint`] — so a pair's reported quantities are
/// independent of how it became a candidate.
fn verify_candidates<S: JointEstimator + Sync>(
    entries: &[(String, S)],
    candidates: Candidates<'_>,
    threshold: f64,
) -> Result<Vec<(u32, u32, JointQuantities)>, StoreError> {
    let verify_into =
        |a: u32, b: u32, hits: &mut Vec<(u32, u32, JointQuantities)>| -> Result<(), StoreError> {
            let quantities = entries[a as usize]
                .1
                .joint(&entries[b as usize].1)
                .map_err(StoreError::incompatible)?;
            if quantities.jaccard >= threshold {
                hits.push((a, b, quantities));
            }
            Ok(())
        };

    let units = candidates.units();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(units);

    let mut hits = if workers <= 1 {
        let mut hits = Vec::new();
        for unit in 0..units {
            candidates.for_each_in_unit(unit, &mut |a, b| verify_into(a, b, &mut hits))?;
        }
        hits
    } else {
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Per-worker scratch: hits accumulate locally and
                        // are merged once at the end.
                        let mut local = Vec::new();
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                break;
                            }
                            let unit = cursor.fetch_add(1, Ordering::Relaxed);
                            if unit >= units {
                                break;
                            }
                            let run = candidates
                                .for_each_in_unit(unit, &mut |a, b| verify_into(a, b, &mut local));
                            if let Err(error) = run {
                                failed.store(true, Ordering::Relaxed);
                                return Err(error);
                            }
                        }
                        Ok(local)
                    })
                })
                .collect();
            let mut hits = Vec::new();
            let mut first_error = None;
            for handle in handles {
                match handle.join().expect("verification worker panicked") {
                    Ok(local) => hits.extend(local),
                    Err(error) => first_error = first_error.or(Some(error)),
                }
            }
            match first_error {
                None => Ok(hits),
                Some(error) => Err(error),
            }
        })?
    };
    hits.sort_unstable_by_key(|&(a, b, _)| (a, b));
    Ok(hits)
}
