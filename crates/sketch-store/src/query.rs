//! Batched cross-key similarity queries: LSH-pruned top-k and
//! all-pairs sweeps over the store, with typed per-query options.
//!
//! Answering "which of my N keys are similar?" with per-pair
//! [`joint`](SketchStore::joint) calls costs `O(N²·m)` register
//! comparisons plus two shard-lock acquisitions per pair. This module
//! replaces that with a three-stage engine:
//!
//! 1. **Candidate pruning** — stored sketches expose locality-sensitive
//!    register signatures ([`sketch_core::Signature`], paper §3.3), kept
//!    in a banding [`LshIndex`] whose band/row layout is auto-tuned from
//!    the family's collision-probability bound at the query threshold
//!    ([`Banding::tune`]). Only keys sharing a bucket become candidate
//!    pairs.
//! 2. **Incremental maintenance** — every store write bumps a per-key
//!    version counter; before a query, exactly the keys whose version
//!    moved since they were last indexed are re-banded (removed under
//!    their stored band hashes, re-inserted under the new ones). Steady
//!    query traffic therefore never pays a full index rebuild.
//! 3. **Verification** — every surviving candidate pair is verified
//!    over a point-in-time snapshot, fanned out across worker threads
//!    with per-worker result buffers. [`Verification::Exact`] (the
//!    default) runs the family's exact joint estimator (the
//!    `compare_counts` register kernel feeding a likelihood
//!    maximization), so reported quantities are identical to what an
//!    exhaustive sweep computes for the same pair.
//!    [`Verification::Approximate`] instead reports the paper's §3.3
//!    D₀-based estimate: one register comparison per pair plus a table
//!    lookup that inverts the family's collision-probability curve at
//!    the observed equal-register fraction — the "approximate-quantity"
//!    mode for latency-critical sweeps.
//!
//! Every query method has a `*_with` variant taking [`QueryOptions`],
//! which also surfaces the banding recall target, an explicit
//! [`Banding`] override, multi-probe policy and the verification worker
//! count. The plain methods are the `QueryOptions::default()` shorthand.
//!
//! When the threshold carries no locality signal (e.g. `0.0`, where
//! every pair must be reported), [`Banding::tune`] reports that no
//! banding can reach the recall target and the engine transparently
//! falls back to the exhaustive candidate set — same verification, same
//! results, no pruning.

use crate::ann::index::{ClusteredParams, ClusteredState};
use crate::ann::{router, ClusteredIndexInfo, IndexStrategy};
use crate::error::StoreError;
use crate::store::SketchStore;
use lsh::{Banding, LshIndex};
use sketch_core::{
    invert_collision_probability, CardinalityEstimator, JointCounts, JointEstimator,
    JointQuantities, Signature,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Similarity threshold [`SketchStore::similar_keys`] tunes its index
/// for when the caller has not chosen one explicitly: candidates with
/// Jaccard at or above this value are found with at least the tuned
/// recall, more dissimilar keys on a best-effort basis.
pub const DEFAULT_SIMILARITY_THRESHOLD: f64 = 0.5;

/// Default banding recall target ([`QueryOptions::recall_target`]): the
/// banding stage is laid out so that a pair *at* the query threshold
/// still becomes a candidate with this probability (more similar pairs
/// exceed it).
pub const DEFAULT_RECALL_TARGET: f64 = 0.98;

/// Candidate pairs handed to one worker at a time during verification.
const VERIFY_CHUNK: usize = 256;

/// Default bound on cached index states, one per distinct (threshold,
/// banding-options, strategy) operating point (most recently used
/// first). Bounding the cache keeps a service that sweeps many
/// thresholds from hoarding band tables; alternating between a few
/// operating points never re-tunes or re-bands. Raise it through
/// [`StoreBuilder::index_cache_capacity`](crate::StoreBuilder::index_cache_capacity)
/// when a workload legitimately rotates through more operating points.
pub const DEFAULT_INDEX_CACHE_CAPACITY: usize = 4;

/// How candidate pairs are verified before being reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verification {
    /// The family's exact joint estimator — the same code path as
    /// [`SketchStore::joint`], so a reported pair's quantities are
    /// independent of how it became a candidate. The default.
    #[default]
    Exact,
    /// The paper's §3.3 D₀-based estimate: per-entry signatures and
    /// cardinalities are extracted once, then each pair costs one
    /// vectorized register comparison and a lookup in a precomputed
    /// inversion table of the family's collision-probability curve
    /// ([`JointQuantities::from_collision_counts`] semantics). Orders
    /// of magnitude cheaper per pair than a likelihood maximization;
    /// accuracy is the §3.3 RMSE envelope (paper Figure 4) instead of
    /// the tighter maximum-likelihood error, and the estimate is
    /// conservative (downward-biased) for families whose curve is a
    /// lower collision bound (SetSketch, GHLL, HyperMinHash).
    Approximate,
}

/// Multi-probe policy of the candidate stage of top-k queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Probe {
    /// Multi-probe (±1 register perturbations) exactly when the sketch
    /// family reports ordinal registers
    /// ([`Signature::ordinal_registers`]). The default.
    #[default]
    Auto,
    /// Never multi-probe: one exact banding lookup per query.
    Never,
    /// Always multi-probe, even for folded-hash signatures (where a
    /// perturbed register is just another random hash — usually wasted
    /// work; useful for experiments).
    Always,
}

/// Typed per-query options of the similarity engine, accepted by the
/// `*_with` query variants ([`SketchStore::similar_keys_with`],
/// [`SketchStore::all_pairs_with`],
/// [`SketchStore::all_pairs_exhaustive_with`]).
///
/// The struct is plain data with a [`Default`]; build it with struct
/// update syntax or the fluent helpers:
///
/// ```
/// use sketch_store::{Probe, QueryOptions, Verification};
///
/// let options = QueryOptions::default()
///     .approximate()          // §3.3 D₀-based verification
///     .recall_target(0.9)     // more selective banding
///     .threads(2);            // cap verification workers
/// assert_eq!(options.verification, Verification::Approximate);
/// assert_eq!(options.probe, Probe::Auto);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// How candidate pairs are verified (default
    /// [`Verification::Exact`]).
    pub verification: Verification,
    /// Recall the banding stage must retain for pairs at the query
    /// threshold (default [`DEFAULT_RECALL_TARGET`]). Lower targets
    /// allow more selective bandings — fewer false candidates, more
    /// missed true pairs.
    pub recall_target: f64,
    /// Multi-probe policy of top-k candidate lookups (default
    /// [`Probe::Auto`]).
    pub probe: Probe,
    /// Verification worker threads; `None` (default) uses the machine's
    /// available parallelism.
    pub threads: Option<usize>,
    /// Explicit banding layout, bypassing the auto-tuner — for
    /// operating points established by offline analysis. The layout
    /// must fit the family's signature
    /// (`bands · rows ≤ signature_len`). `None` (default) tunes from
    /// the family's collision bound at the query threshold. A forced
    /// layout also forces the flat strategy (per-cluster tuning and a
    /// fixed global layout are mutually exclusive).
    pub banding: Option<Banding>,
    /// Which candidate-generation index backs the query (default
    /// [`IndexStrategy::Flat`]); see [`IndexStrategy::Clustered`] for
    /// the clustered ANN index.
    pub index: IndexStrategy,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            verification: Verification::Exact,
            recall_target: DEFAULT_RECALL_TARGET,
            probe: Probe::Auto,
            threads: None,
            banding: None,
            index: IndexStrategy::Flat,
        }
    }
}

impl QueryOptions {
    /// Selects [`Verification::Approximate`].
    pub fn approximate(mut self) -> Self {
        self.verification = Verification::Approximate;
        self
    }

    /// Selects [`Verification::Exact`] (the default).
    pub fn exact(mut self) -> Self {
        self.verification = Verification::Exact;
        self
    }

    /// Sets the banding recall target.
    pub fn recall_target(mut self, target: f64) -> Self {
        self.recall_target = target;
        self
    }

    /// Sets the multi-probe policy.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Caps the verification worker count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Forces an explicit banding layout.
    pub fn banding(mut self, banding: Banding) -> Self {
        self.banding = Some(banding);
        self
    }

    /// Selects the candidate-generation index strategy.
    pub fn index(mut self, strategy: IndexStrategy) -> Self {
        self.index = strategy;
        self
    }

    /// Selects the clustered ANN index with every knob at its default
    /// ([`IndexStrategy::clustered`]).
    pub fn clustered(mut self) -> Self {
        self.index = IndexStrategy::clustered();
        self
    }
}

/// One of the store's lazily built, incrementally maintained similarity
/// index states.
pub(crate) struct SimilarityIndex {
    /// Jaccard threshold the banding was tuned for.
    threshold: f64,
    /// Recall target the banding was tuned to.
    recall_target: f64,
    /// Explicit layout override the state was built with, if any.
    forced: Option<Banding>,
    /// Strategy the state was requested under (part of the cache key;
    /// the backend may lag it across the flat↔clustered cutover).
    strategy: IndexStrategy,
    /// The candidate-generation machinery behind this operating point.
    backend: Backend,
}

/// The candidate-generation backend of one cached index state. Under
/// [`IndexStrategy::Clustered`] the backend starts [`Backend::Flat`]
/// and is promoted once the store clears the strategy's cutover (and
/// demoted below half of it) — the strategy is a request, the backend
/// is what currently answers it.
enum Backend {
    Flat(FlatIndex),
    Clustered(Box<ClusteredState>),
}

/// The original single-banding index over the whole store.
struct FlatIndex {
    /// The effective layout; `None` when no banding reaches the recall
    /// target at the threshold (queries then run exhaustively).
    banding: Option<Banding>,
    /// The banding index itself (`None` exactly when `banding` is).
    lsh: Option<LshIndex<String>>,
    /// Per-key bookkeeping: the store version that was banded and the
    /// band bucket ids it was inserted under (for O(bands) removal).
    entries: HashMap<String, IndexedKey>,
}

struct IndexedKey {
    version: u64,
    band_hashes: Box<[u64]>,
}

/// A pair of store keys whose verified similarity cleared the sweep
/// threshold, with the joint estimate the sweep's
/// [`Verification`] mode produced (exact by default).
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarPair {
    /// Lexicographically smaller key (the `U` side of `quantities`).
    pub left: String,
    /// Lexicographically larger key (the `V` side of `quantities`).
    pub right: String,
    /// Joint estimate of the pair. Under [`Verification::Exact`] this
    /// is identical to [`SketchStore::joint`] on the same states; under
    /// [`Verification::Approximate`] it carries the §3.3 D₀-based
    /// estimate.
    pub quantities: JointQuantities,
}

/// One result of a top-k query: a neighboring key and the joint
/// estimate against the query key (query on the `U` side; exact under
/// the default options).
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The neighboring key.
    pub key: String,
    /// Joint estimate for (query key, this key).
    pub quantities: JointQuantities,
}

/// Diagnostics of the current similarity index state.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityIndexInfo {
    /// Threshold the index is tuned for.
    pub threshold: f64,
    /// Recall target the banding was tuned to.
    pub recall_target: f64,
    /// Effective global banding, or `None` when queries at this
    /// threshold run exhaustively — and also `None` for clustered
    /// states, whose per-cluster layouts are summarized by `clustered`
    /// instead.
    pub banding: Option<Banding>,
    /// Number of keys currently banded into the index.
    pub indexed_keys: usize,
    /// Operating points served from the index cache since the store was
    /// built (across all cached states).
    pub cache_hits: u64,
    /// Operating points that had to tune a fresh index state since the
    /// store was built.
    pub cache_misses: u64,
    /// Clustered-backend diagnostics: cluster count, per-cluster key
    /// histogram and probe counters. `None` while the state answers
    /// from a flat backend.
    pub clustered: Option<ClusteredIndexInfo>,
}

impl<S> SketchStore<S> {
    /// Reports the **most recently used** similarity index state — its
    /// tuned banding and coverage — or `None` if no similarity query
    /// has run yet. (The store caches one state per queried operating
    /// point, up to [`StoreBuilder::index_cache_capacity`]; the
    /// `cache_hits` / `cache_misses` counters cover all of them.)
    ///
    /// [`StoreBuilder::index_cache_capacity`]: crate::StoreBuilder::index_cache_capacity
    pub fn similarity_index_info(&self) -> Option<SimilarityIndexInfo> {
        self.similarity.lock().first().map(|index| {
            let (banding, indexed_keys, clustered) = match &index.backend {
                Backend::Flat(flat) => (flat.banding, flat.entries.len(), None),
                Backend::Clustered(state) => (
                    None,
                    state.keys.len(),
                    Some(ClusteredIndexInfo {
                        clusters: state.clusters.len(),
                        key_histogram: state.clusters.iter().map(|c| c.members).collect(),
                        bandings: state.clusters.iter().map(|c| c.banding).collect(),
                        planned_recalls: state.clusters.iter().map(|c| c.planned_recall).collect(),
                        probe_stats: state.probe_stats,
                    }),
                ),
            };
            SimilarityIndexInfo {
                threshold: index.threshold,
                recall_target: index.recall_target,
                banding,
                indexed_keys,
                cache_hits: self.index_cache_hits.load(Ordering::Relaxed),
                cache_misses: self.index_cache_misses.load(Ordering::Relaxed),
                clustered,
            }
        })
    }
}

impl<S> SketchStore<S>
where
    S: Signature + JointEstimator + Clone + Send + Sync,
{
    /// Tunes (if needed) and incrementally refreshes the similarity
    /// index for `threshold` under the default [`QueryOptions`],
    /// without running a query. Queries do this on demand; calling it
    /// eagerly (e.g. after a bulk load) moves the banding work off the
    /// first query's latency.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn build_similarity_index(&self, threshold: f64) {
        self.build_similarity_index_with(threshold, &QueryOptions::default());
    }

    /// [`build_similarity_index`](Self::build_similarity_index) for an
    /// explicit operating point (recall target or forced banding).
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`, if
    /// `options.recall_target` is outside `(0, 1]`, or if a forced
    /// banding does not fit the family's signature.
    pub fn build_similarity_index_with(&self, threshold: f64, options: &QueryOptions) {
        check_threshold(threshold);
        check_recall_target(options.recall_target);
        let mut guard = self.similarity.lock();
        let index = self.ensure_index(&mut guard, threshold, options);
        self.refresh_index(index);
    }

    /// The `k` keys most similar to `key`, with exact joint estimates.
    ///
    /// Candidates come from the similarity index (tuned for
    /// [`DEFAULT_SIMILARITY_THRESHOLD`]; use
    /// [`similar_keys_at`](Self::similar_keys_at) to tune for another
    /// operating point) via a banding query — multi-probed for ordinal
    /// register scales — then every candidate is verified with the
    /// exact joint estimator against clones of just the query and
    /// candidate sketches (the whole store is never copied). If the
    /// index yields fewer than `k` candidates the engine falls back to
    /// verifying every key, so a small store always produces a
    /// complete, exact top-k.
    ///
    /// Results are sorted by descending Jaccard, ties broken by
    /// ascending key; neighbors *below* the tuned threshold are
    /// returned on a best-effort basis (the recall guarantee of the
    /// banding only covers pairs at or above it).
    ///
    /// # Errors
    /// [`StoreError::KeyNotFound`] if `key` holds no sketch,
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn similar_keys(&self, key: &str, k: usize) -> Result<Vec<Neighbor>, StoreError> {
        self.similar_keys_at(key, k, DEFAULT_SIMILARITY_THRESHOLD)
    }

    /// [`similar_keys`](Self::similar_keys) with an explicit similarity
    /// threshold to tune the candidate stage for.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn similar_keys_at(
        &self,
        key: &str,
        k: usize,
        threshold: f64,
    ) -> Result<Vec<Neighbor>, StoreError> {
        let options = QueryOptions::default();
        self.similar_keys_impl(key, k, threshold, &options, |candidates| {
            self.exact_entries_for(key, candidates)
        })
    }

    /// The shared top-k engine: candidate generation off the
    /// similarity index (with exhaustive fallback), verification of
    /// `(query, candidate)` pairs over entries supplied by
    /// `make_entries`, ranking by descending Jaccard.
    fn similar_keys_impl(
        &self,
        key: &str,
        k: usize,
        threshold: f64,
        options: &QueryOptions,
        make_entries: impl FnOnce(Vec<String>) -> Result<VerifyEntries<S>, StoreError>,
    ) -> Result<Vec<Neighbor>, StoreError> {
        check_threshold(threshold);
        check_recall_target(options.recall_target);
        let candidate_keys = {
            let mut guard = self.similarity.lock();
            let index = self.ensure_index(&mut guard, threshold, options);
            self.refresh_index(index);
            // The signature is extracted under the shard read lock — no
            // sketch clone inside this critical section. Multi-probing
            // (±1 register perturbations) only names plausible near
            // misses on ordinal register scales; folded-hash signatures
            // use the exact banding query (policy: `options.probe`).
            let probed = self.with_sketch(key, |sketch| {
                (sketch.signature(), sketch.ordinal_registers())
            });
            let Some((signature, ordinal)) = probed else {
                return Err(StoreError::KeyNotFound(key.to_owned()));
            };
            let multiprobe = match options.probe {
                Probe::Auto => ordinal,
                Probe::Never => false,
                Probe::Always => true,
            };
            match &mut index.backend {
                // `None` means no banding tuned: exhaustive fallback.
                Backend::Flat(flat) => flat.lsh.as_ref().map(|lsh| {
                    if multiprobe {
                        lsh.query_multiprobe(&signature)
                    } else {
                        lsh.query(&signature)
                    }
                }),
                Backend::Clustered(state) => Some(router::query_candidates(
                    state, &signature, threshold, multiprobe,
                )),
            }
        };

        let mut candidates = match candidate_keys {
            Some(mut keys) => {
                keys.retain(|candidate| candidate != key);
                keys.sort_unstable();
                keys
            }
            None => Vec::new(),
        };
        if candidates.len() < k {
            // Recall floor (or exhaustive mode): too few banding
            // candidates to fill the top-k, so verify every other key —
            // still complete, just unpruned.
            candidates = self.keys();
            candidates.retain(|candidate| candidate != key);
        }

        // The verification inputs cover only the query key and the
        // candidates, never the whole store; the first entry is the
        // query key.
        let entries = make_entries(candidates)?;

        let pairs: Vec<(u32, u32)> = (1..entries.len() as u32).map(|i| (0, i)).collect();
        // No threshold filter: top-k keeps its best-effort tail below
        // the tuned threshold.
        let mut hits = verify_candidates(&entries, Candidates::List(&pairs), 0.0, options)?;
        hits.sort_unstable_by(|a, b| {
            b.2.jaccard
                .total_cmp(&a.2.jaccard)
                .then_with(|| entries.key(a.1 as usize).cmp(entries.key(b.1 as usize)))
        });
        hits.truncate(k);
        Ok(hits
            .into_iter()
            .map(|(_, i, quantities)| Neighbor {
                key: entries.key(i as usize).to_owned(),
                quantities,
            })
            .collect())
    }

    /// Every pair of keys whose verified Jaccard similarity is at least
    /// `threshold`, with exact joint estimates — the LSH-pruned sweep.
    ///
    /// Candidate pairs are keys co-located in at least one band bucket
    /// of the (incrementally refreshed) similarity index; each
    /// candidate is then verified with the exact joint estimator over a
    /// point-in-time snapshot, in parallel. Reported pairs therefore
    /// carry exactly the quantities
    /// [`all_pairs_exhaustive`](Self::all_pairs_exhaustive) computes
    /// for them; the LSH stage can only *miss* pairs, with probability
    /// bounded by the tuned recall (98 % at the threshold, higher
    /// above it). At thresholds where no banding meets the recall
    /// target (e.g. `0.0`) the sweep transparently runs exhaustively.
    ///
    /// Results are sorted by `(left, right)`; each pair appears once
    /// with `left < right`.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn all_pairs(&self, threshold: f64) -> Result<Vec<SimilarPair>, StoreError> {
        let options = QueryOptions::default();
        self.all_pairs_impl(threshold, &options, |store| store.exact_entries())
    }

    /// The shared all-pairs engine: candidate pairs off the similarity
    /// index (exhaustive fallback when untunable), verification over
    /// entries supplied by `make_entries` after the index refresh.
    fn all_pairs_impl(
        &self,
        threshold: f64,
        options: &QueryOptions,
        make_entries: impl FnOnce(&Self) -> VerifyEntries<S>,
    ) -> Result<Vec<SimilarPair>, StoreError> {
        check_threshold(threshold);
        check_recall_target(options.recall_target);
        let candidate_keys = {
            let mut guard = self.similarity.lock();
            let index = self.ensure_index(&mut guard, threshold, options);
            self.refresh_index(index);
            match &mut index.backend {
                Backend::Flat(flat) => flat.lsh.as_ref().map(|lsh| lsh.candidate_pairs()),
                Backend::Clustered(state) => Some(self.clustered_candidate_pairs(state, threshold)),
            }
        };

        let entries = make_entries(self);
        let hits = match candidate_keys {
            Some(candidates) => {
                let position: HashMap<&str, u32> = (0..entries.len())
                    .map(|i| (entries.key(i), i as u32))
                    .collect();
                let pairs: Vec<(u32, u32)> = candidates
                    .iter()
                    .filter_map(|(a, b)| {
                        // Keys can vanish between index refresh and
                        // snapshot; verification only sees live pairs.
                        Some((*position.get(a.as_str())?, *position.get(b.as_str())?))
                    })
                    .collect();
                verify_candidates(&entries, Candidates::List(&pairs), threshold, options)?
            }
            None => {
                verify_candidates(&entries, Candidates::all(entries.len()), threshold, options)?
            }
        };
        Ok(pairs_from_hits(&entries, hits))
    }

    /// The exhaustive reference sweep: verifies **every** pair of keys
    /// with the exact joint estimator (no LSH stage) and reports those
    /// at or above `threshold`. Same verification, same output format
    /// and order as [`all_pairs`](Self::all_pairs) — this is the
    /// ground-truth baseline the pruned sweep's recall and speedup are
    /// measured against, and the right tool when *completeness* matters
    /// more than latency.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn all_pairs_exhaustive(&self, threshold: f64) -> Result<Vec<SimilarPair>, StoreError> {
        check_threshold(threshold); // before the snapshot, not after
        let options = QueryOptions::default();
        self.all_pairs_exhaustive_impl(threshold, &options, self.exact_entries())
    }

    /// The shared exhaustive engine: verifies the full pair triangle
    /// over the supplied entries.
    fn all_pairs_exhaustive_impl(
        &self,
        threshold: f64,
        options: &QueryOptions,
        entries: VerifyEntries<S>,
    ) -> Result<Vec<SimilarPair>, StoreError> {
        check_threshold(threshold);
        let hits = verify_candidates(&entries, Candidates::all(entries.len()), threshold, options)?;
        Ok(pairs_from_hits(&entries, hits))
    }

    /// Exact-verification inputs over the whole store: a point-in-time
    /// sweep of sketch clones, sorted by key. Cold (warm/frozen) slots
    /// are decompressed into the clone **without promoting** — a
    /// whole-store sweep must not blow the residency budget.
    fn exact_entries(&self) -> VerifyEntries<S> {
        let mut entries: Vec<(String, S)> = Vec::new();
        for shard in self.shards() {
            let guard = shard.read();
            for (key, slot) in guard.iter() {
                // Corrupt cold slots are skipped: the sweep answers
                // from the keys whose registers survive.
                if let Some(sketch) = self.peek_slot(slot, |sketch| sketch.clone()) {
                    entries.push((key.clone(), sketch));
                }
            }
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        VerifyEntries::Exact(entries)
    }

    /// Exact-verification inputs for a top-k query: clones of the
    /// query key's sketch and every candidate (never the whole store),
    /// query first.
    fn exact_entries_for(
        &self,
        key: &str,
        candidates: Vec<String>,
    ) -> Result<VerifyEntries<S>, StoreError> {
        let Some(query_sketch) = self.get(key) else {
            return Err(StoreError::KeyNotFound(key.to_owned()));
        };
        let mut entries: Vec<(String, S)> = Vec::with_capacity(candidates.len() + 1);
        entries.push((key.to_owned(), query_sketch));
        for candidate in candidates {
            // Keys can vanish between candidate generation and cloning.
            if let Some(sketch) = self.get(&candidate) {
                entries.push((candidate, sketch));
            }
        }
        Ok(VerifyEntries::Exact(entries))
    }

    /// Inverse of the family's register-collision-probability curve at
    /// every possible equal-register count `d0 ∈ 0..=m`, probed on an
    /// empty factory sketch. The curve is a configuration property, so
    /// the table is computed once per store and shared (by `Arc`) with
    /// every approximate-mode query.
    pub(crate) fn collision_inverse_table(&self) -> std::sync::Arc<[f64]> {
        self.collision_inverse
            .get_or_init(|| {
                let probe = self.make_sketch();
                let m = probe.signature_len();
                (0..=m)
                    .map(|d0| {
                        invert_collision_probability(d0 as f64 / m.max(1) as f64, |jaccard| {
                            probe.register_collision_probability(jaccard)
                        })
                    })
                    .collect()
            })
            .clone()
    }

    /// Returns the cached index state for the operating point
    /// `(threshold, recall_target, forced banding, strategy)`, creating
    /// and tuning it on first use. States are kept most-recently-used
    /// first (at most the builder's
    /// [`index_cache_capacity`](crate::StoreBuilder::index_cache_capacity)),
    /// so callers alternating between a few operating points — e.g.
    /// `all_pairs(0.7)` interleaved with default-threshold
    /// `similar_keys` — never tear down and re-band the whole index on
    /// a threshold switch. Recall targets are quantized before
    /// matching, so values differing only past display precision (0.98
    /// vs 0.9800001) share one state instead of thrashing the cache.
    fn ensure_index<'a>(
        &self,
        cache: &'a mut Vec<SimilarityIndex>,
        threshold: f64,
        options: &QueryOptions,
    ) -> &'a mut SimilarityIndex {
        check_strategy(&options.index);
        let matches = |index: &SimilarityIndex| {
            index.threshold == threshold
                && quantize_recall(index.recall_target) == quantize_recall(options.recall_target)
                && index.forced == options.banding
                && strategies_match(index.strategy, options.index)
        };
        if let Some(at) = cache.iter().position(matches) {
            self.index_cache_hits.fetch_add(1, Ordering::Relaxed);
            let index = cache.remove(at);
            cache.insert(0, index);
        } else {
            self.index_cache_misses.fetch_add(1, Ordering::Relaxed);
            // Every state starts on the flat backend; the refresh step
            // promotes clustered-strategy states once the store clears
            // their cutover (so tiny stores never pay for centroids).
            cache.insert(
                0,
                SimilarityIndex {
                    threshold,
                    recall_target: options.recall_target,
                    forced: options.banding,
                    strategy: options.index,
                    backend: Backend::Flat(self.flat_backend(
                        threshold,
                        options.recall_target,
                        options.banding,
                    )),
                },
            );
            cache.truncate(self.index_cache_capacity);
        }
        &mut cache[0]
    }

    /// Tunes a fresh flat backend for an operating point: the banding
    /// from the family's locality bound at the threshold, probed on an
    /// empty factory sketch (the collision probability is a
    /// configuration property, not a state one) — unless the caller
    /// forced a layout.
    fn flat_backend(
        &self,
        threshold: f64,
        recall_target: f64,
        forced: Option<Banding>,
    ) -> FlatIndex {
        let probe = self.make_sketch();
        let banding = match forced {
            Some(banding) => {
                assert!(
                    banding.registers() <= probe.signature_len(),
                    "forced banding needs {} registers, the signature has {}",
                    banding.registers(),
                    probe.signature_len()
                );
                Some(banding)
            }
            None => {
                let p = probe.register_collision_probability(threshold);
                Banding::tune(probe.signature_len(), p, recall_target)
            }
        };
        let lsh = banding
            .map(|b| LshIndex::new(b.bands, b.rows).expect("tuned banding has bands, rows >= 1"));
        FlatIndex {
            banding,
            lsh,
            entries: HashMap::new(),
        }
    }

    /// Brings a cached index state up to date with the store: applies
    /// the clustered strategy's cutover hysteresis (promote at
    /// `flat_cutover` live keys, demote below half of it), then
    /// incrementally re-bands moved keys — rebuilding the clustered
    /// state outright when its refresh reports drift.
    fn refresh_index(&self, index: &mut SimilarityIndex) {
        if let IndexStrategy::Clustered {
            memory_budget_bytes,
            recall_target,
            clusters,
            flat_cutover,
        } = index.strategy
        {
            // A forced banding pins the flat backend: per-cluster
            // tuning and a fixed global layout are mutually exclusive.
            if index.forced.is_none() {
                let params = ClusteredParams {
                    memory_budget_bytes,
                    routing_recall: recall_target,
                    clusters,
                    flat_cutover,
                };
                let live = self.len();
                match &index.backend {
                    // Promotion additionally requires a tunable global
                    // banding: at thresholds where no layout reaches
                    // the recall target (e.g. 0.0) the flat backend's
                    // exhaustive fallback is already the right answer.
                    Backend::Flat(flat) if flat.banding.is_some() && live >= flat_cutover => {
                        index.backend = Backend::Clustered(Box::new(self.build_clustered_state(
                            index.threshold,
                            index.recall_target,
                            params,
                        )));
                        return; // freshly built — nothing to refresh
                    }
                    Backend::Clustered(_) if live.saturating_mul(2) < flat_cutover => {
                        index.backend = Backend::Flat(self.flat_backend(
                            index.threshold,
                            index.recall_target,
                            None,
                        ));
                        // Fall through: the flat refresh below fills it.
                    }
                    _ => {}
                }
            }
        }
        match &mut index.backend {
            Backend::Flat(flat) => self.refresh_flat(flat),
            Backend::Clustered(state) => {
                if self.refresh_clustered(state) {
                    let stats = state.probe_stats;
                    let params = state.params;
                    **state =
                        self.build_clustered_state(index.threshold, index.recall_target, params);
                    state.probe_stats = stats;
                }
            }
        }
    }

    /// Re-bands exactly the keys whose version stamp moved since they
    /// were last indexed, and drops index entries for removed keys.
    fn refresh_flat(&self, flat: &mut FlatIndex) {
        let FlatIndex { lsh, entries, .. } = flat;
        let Some(lsh) = lsh.as_ref() else {
            return; // exhaustive mode: nothing to maintain
        };
        let mut live_count = 0usize;
        let mut signature: Vec<u32> = Vec::new();
        let mut band_hashes: Vec<u64> = Vec::new();
        for shard in self.shards() {
            let guard = shard.read();
            live_count += guard.len();
            for (key, slot) in guard.iter() {
                if entries.get(key).is_some_and(|e| e.version == slot.version) {
                    continue;
                }
                // Peek, don't promote: index refresh sweeps the whole
                // store and must leave cold slots in their tier.
                // Corrupt slots stay unindexed until a write heals them
                // (which bumps their version and re-enters this sweep).
                if self
                    .peek_slot(slot, |sketch| sketch.signature_into(&mut signature))
                    .is_none()
                {
                    continue;
                }
                lsh.band_hashes_into(&signature, &mut band_hashes);
                if let Some(old) = entries.get(key) {
                    lsh.remove_hashed(key, &old.band_hashes);
                }
                lsh.insert_hashed(key.clone(), &band_hashes);
                entries.insert(
                    key.clone(),
                    IndexedKey {
                        version: slot.version,
                        band_hashes: band_hashes.clone().into_boxed_slice(),
                    },
                );
            }
        }
        // After the sweep `entries` covers every live key, so the counts
        // only disagree when keys were removed — the warm path (nothing
        // removed) never clones a key string for removal detection.
        if entries.len() != live_count {
            let mut live: HashSet<String> = HashSet::with_capacity(live_count);
            for shard in self.shards() {
                live.extend(shard.read().keys().cloned());
            }
            entries.retain(|key, entry| {
                live.contains(key) || {
                    lsh.remove_hashed(key, &entry.band_hashes);
                    false
                }
            });
        }
    }
}

// The `*_with` variants additionally accept Verification::Approximate,
// which estimates cardinalities — hence the extra CardinalityEstimator
// bound on this block only. The plain query methods above keep the
// pre-options bound, so sketch types without cardinality estimation
// continue to compile against them.
impl<S> SketchStore<S>
where
    S: Signature + JointEstimator + CardinalityEstimator + Clone + Send + Sync,
{
    /// [`similar_keys_at`](Self::similar_keys_at) with full
    /// [`QueryOptions`] control: approximate verification, banding
    /// recall target or explicit layout, multi-probe policy, worker
    /// count.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`, if
    /// `options.recall_target` is outside `(0, 1]`, or if a forced
    /// banding does not fit the family's signature.
    pub fn similar_keys_with(
        &self,
        key: &str,
        k: usize,
        threshold: f64,
        options: &QueryOptions,
    ) -> Result<Vec<Neighbor>, StoreError> {
        self.similar_keys_impl(key, k, threshold, options, |candidates| {
            match options.verification {
                Verification::Exact => self.exact_entries_for(key, candidates),
                Verification::Approximate => self.approx_entries_for(key, candidates),
            }
        })
    }

    /// [`all_pairs`](Self::all_pairs) with full [`QueryOptions`]
    /// control. The headline option is [`Verification::Approximate`]
    /// (`QueryOptions::default().approximate()`): the sweep then skips
    /// the exact joint estimator and reports the §3.3 D₀-based Jaccard
    /// estimate from one register comparison per pair — for
    /// latency-critical callers that can live with the §3.3 RMSE
    /// envelope.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`, if
    /// `options.recall_target` is outside `(0, 1]`, or if a forced
    /// banding does not fit the family's signature.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn all_pairs_with(
        &self,
        threshold: f64,
        options: &QueryOptions,
    ) -> Result<Vec<SimilarPair>, StoreError> {
        self.all_pairs_impl(threshold, options, |store| {
            store.entries_for_mode(options.verification)
        })
    }

    /// [`all_pairs_exhaustive`](Self::all_pairs_exhaustive) with
    /// [`QueryOptions`] — of which the verification mode and worker
    /// count apply (there is no banding stage to configure here).
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    ///
    /// # Errors
    /// [`StoreError::Incompatible`] if verification meets a sketch
    /// injected with mismatched parameters.
    pub fn all_pairs_exhaustive_with(
        &self,
        threshold: f64,
        options: &QueryOptions,
    ) -> Result<Vec<SimilarPair>, StoreError> {
        check_threshold(threshold); // before the entry extraction
        let entries = self.entries_for_mode(options.verification);
        self.all_pairs_exhaustive_impl(threshold, options, entries)
    }

    /// Cached per-key cardinality, valid only if the caching version
    /// matches the slot's current version stamp (any write moves the
    /// stamp, so stale figures can never be served). The cache mutex is
    /// always the innermost lock — acquired under at most one shard
    /// lock, never the other way around.
    fn cached_cardinality(&self, key: &str, version: u64) -> Option<f64> {
        let cache = self.cardinality_cache.lock();
        cache
            .get(key)
            .filter(|(cached_version, _)| *cached_version == version)
            .map(|(_, cardinality)| *cardinality)
    }

    /// Records a freshly computed cardinality under the version that
    /// produced it.
    fn remember_cardinality(&self, key: &str, version: u64, cardinality: f64) {
        self.cardinality_cache
            .lock()
            .insert(key.to_owned(), (version, cardinality));
    }

    /// Point-in-time verification inputs over the whole store, sorted
    /// by key: sketch clones for exact verification, signature +
    /// cardinality extractions (no clones) for approximate. Cold slots
    /// are peeked, not promoted; cardinalities come from the per-key
    /// cache when the key's version stamp has not moved since they were
    /// computed.
    fn entries_for_mode(&self, verification: Verification) -> VerifyEntries<S> {
        match verification {
            Verification::Exact => self.exact_entries(),
            Verification::Approximate => {
                let mut rows: Vec<(String, Vec<u32>, f64, u64)> = Vec::new();
                for shard in self.shards() {
                    let guard = shard.read();
                    for (key, slot) in guard.iter() {
                        let cached = self.cached_cardinality(key, slot.version);
                        let Some((signature, computed)) = self.peek_slot(slot, |sketch| {
                            let mut signature = Vec::new();
                            sketch.signature_into(&mut signature);
                            (signature, cached.is_none().then(|| sketch.cardinality()))
                        }) else {
                            continue; // corrupt cold slot: skip
                        };
                        let cardinality = match (cached, computed) {
                            (Some(cardinality), _) => cardinality,
                            (None, computed) => {
                                let cardinality = computed.expect("computed when not cached");
                                self.remember_cardinality(key, slot.version, cardinality);
                                cardinality
                            }
                        };
                        rows.push((key.clone(), signature, cardinality, slot.version));
                    }
                }
                // The sweep names every live key: prune cache entries
                // for removed keys (or superseded versions) so the
                // cache stays bounded by the live key count.
                {
                    let mut cache = self.cardinality_cache.lock();
                    if cache.len() > rows.len() {
                        let live: HashMap<&str, u64> = rows
                            .iter()
                            .map(|(key, _, _, version)| (key.as_str(), *version))
                            .collect();
                        cache.retain(|key, (version, _)| live.get(key.as_str()) == Some(version));
                    }
                }
                // Hash-ordered shard maps: sort so entry order matches
                // the exact path's (and `keys()`'s) guarantee.
                rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                let mut keys = Vec::with_capacity(rows.len());
                let mut signatures = Vec::with_capacity(rows.len());
                let mut cardinalities = Vec::with_capacity(rows.len());
                for (key, signature, cardinality, _) in rows {
                    keys.push(key);
                    signatures.push(signature);
                    cardinalities.push(cardinality);
                }
                VerifyEntries::Approximate {
                    keys,
                    signatures,
                    cardinalities,
                    jaccard_by_d0: self.collision_inverse_table(),
                }
            }
        }
    }

    /// Approximate-verification inputs for a top-k query: signature +
    /// cardinality extracted for the query key and every candidate
    /// under the shard read locks, query first, no sketch clones.
    fn approx_entries_for(
        &self,
        key: &str,
        candidates: Vec<String>,
    ) -> Result<VerifyEntries<S>, StoreError> {
        let mut keys: Vec<String> = Vec::with_capacity(candidates.len() + 1);
        let mut signatures: Vec<Vec<u32>> = Vec::with_capacity(candidates.len() + 1);
        let mut cardinalities: Vec<f64> = Vec::with_capacity(candidates.len() + 1);
        let mut extract = |name: String| {
            // Peek under the shard read lock — approximate extraction
            // never promotes cold slots — and reuse the cached
            // cardinality when the key's version stamp hasn't moved.
            let row = {
                let shard = self.shards()[self.shard_index(&name)].read();
                shard.get(&name).and_then(|slot| {
                    let cached = self.cached_cardinality(&name, slot.version);
                    // Corrupt cold slots contribute no row (like a
                    // missing key).
                    self.peek_slot(slot, |sketch| {
                        (
                            sketch.signature(),
                            cached.is_none().then(|| sketch.cardinality()),
                        )
                    })
                    .map(|(signature, computed)| (signature, cached, computed, slot.version))
                })
            };
            if let Some((signature, cached, computed, version)) = row {
                let cardinality = match (cached, computed) {
                    (Some(cardinality), _) => cardinality,
                    (None, computed) => {
                        let cardinality = computed.expect("computed when not cached");
                        self.remember_cardinality(&name, version, cardinality);
                        cardinality
                    }
                };
                keys.push(name);
                signatures.push(signature);
                cardinalities.push(cardinality);
                true
            } else {
                false
            }
        };
        if !extract(key.to_owned()) {
            return Err(StoreError::KeyNotFound(key.to_owned()));
        }
        for candidate in candidates {
            extract(candidate);
        }
        Ok(VerifyEntries::Approximate {
            keys,
            signatures,
            cardinalities,
            jaccard_by_d0: self.collision_inverse_table(),
        })
    }
}

/// Resolves verified index-pair hits back to keyed [`SimilarPair`]s.
fn pairs_from_hits<S>(
    entries: &VerifyEntries<S>,
    hits: Vec<(u32, u32, JointQuantities)>,
) -> Vec<SimilarPair> {
    hits.into_iter()
        .map(|(a, b, quantities)| SimilarPair {
            left: entries.key(a as usize).to_owned(),
            right: entries.key(b as usize).to_owned(),
            quantities,
        })
        .collect()
}

/// Validates a similarity threshold.
fn check_threshold(threshold: f64) {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "similarity threshold must be within [0, 1], got {threshold}"
    );
}

/// Validates a banding recall target (checked wherever an index is
/// tuned; an out-of-range or NaN value would otherwise silently defeat
/// the index cache's operating-point match and re-band the store on
/// every query).
fn check_recall_target(target: f64) {
    assert!(
        target > 0.0 && target <= 1.0,
        "banding recall target must be within (0, 1], got {target}"
    );
}

/// Validates the knobs of a clustered strategy request.
fn check_strategy(strategy: &IndexStrategy) {
    if let IndexStrategy::Clustered {
        recall_target,
        clusters,
        ..
    } = strategy
    {
        assert!(
            *recall_target > 0.0 && *recall_target <= 1.0,
            "clustered routing recall target must be within (0, 1], got {recall_target}"
        );
        assert!(
            clusters.map_or(true, |k| k >= 1),
            "clustered strategy needs at least one cluster"
        );
    }
}

/// Quantizes a recall target for cache-key matching (micro-recall
/// units). Recall is a tuning knob, not a precise quantity: exact f64
/// equality would let two values differing only past display precision
/// (0.98 vs 0.9800001) alternate into distinct cache slots and re-band
/// the store on every query.
fn quantize_recall(target: f64) -> u64 {
    (target * 1e6).round() as u64
}

/// Cache-key equality of two strategy requests, with recall targets
/// compared in quantized form (see [`quantize_recall`]).
fn strategies_match(a: IndexStrategy, b: IndexStrategy) -> bool {
    match (a, b) {
        (IndexStrategy::Flat, IndexStrategy::Flat) => true,
        (
            IndexStrategy::Clustered {
                memory_budget_bytes: budget_a,
                recall_target: recall_a,
                clusters: clusters_a,
                flat_cutover: cutover_a,
            },
            IndexStrategy::Clustered {
                memory_budget_bytes: budget_b,
                recall_target: recall_b,
                clusters: clusters_b,
                flat_cutover: cutover_b,
            },
        ) => {
            budget_a == budget_b
                && quantize_recall(recall_a) == quantize_recall(recall_b)
                && clusters_a == clusters_b
                && cutover_a == cutover_b
        }
        _ => false,
    }
}

/// The candidate set of a verification run: an explicit pair list (the
/// pruned path) or the implicit triangle of all `(i, j)`, `i < j` pairs
/// over `n` entries (the exhaustive path, never materialized — at
/// N = 10k the explicit list would be ~50M tuples).
#[derive(Clone, Copy)]
enum Candidates<'a> {
    List(&'a [(u32, u32)]),
    Triangle(u32),
}

impl Candidates<'_> {
    /// The exhaustive candidate set over `n` entries.
    fn all(n: usize) -> Candidates<'static> {
        let n = u32::try_from(n).expect("store sizes beyond u32 keys are unsupported in sweeps");
        Candidates::Triangle(n)
    }

    /// Number of work units handed out to verification workers: chunks
    /// of the list, or one triangle row (`(i, i+1..n)`) each.
    fn units(&self) -> usize {
        match *self {
            Candidates::List(pairs) => pairs.len().div_ceil(VERIFY_CHUNK),
            Candidates::Triangle(n) => (n as usize).saturating_sub(1),
        }
    }

    /// Runs `visit` on every pair of one work unit, stopping early on
    /// error.
    fn for_each_in_unit(
        &self,
        unit: usize,
        visit: &mut impl FnMut(u32, u32) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        match *self {
            Candidates::List(pairs) => {
                let start = unit * VERIFY_CHUNK;
                for &(a, b) in &pairs[start..(start + VERIFY_CHUNK).min(pairs.len())] {
                    visit(a, b)?;
                }
            }
            Candidates::Triangle(n) => {
                let a = unit as u32;
                for b in a + 1..n {
                    visit(a, b)?;
                }
            }
        }
        Ok(())
    }
}

/// Point-in-time verification inputs of one sweep, shaped by the
/// verification mode.
///
/// Exact verification needs the sketch states themselves (clones, so
/// the sweep never holds shard locks). The §3.3 approximation only
/// needs each entry's register signature and one cardinality estimate
/// — both extracted under the shard read locks without cloning a
/// single sketch, which is where most of its speedup over exact
/// verification comes from at scale: the per-entry work happens once,
/// not once per pair, and the snapshot clone disappears entirely.
enum VerifyEntries<S> {
    Exact(Vec<(String, S)>),
    Approximate {
        keys: Vec<String>,
        signatures: Vec<Vec<u32>>,
        cardinalities: Vec<f64>,
        /// Inverse of the family's collision-probability curve,
        /// tabulated over all `m + 1` possible D₀ values — a pair then
        /// costs one vectorized register comparison and a table
        /// lookup. Shared (`Arc`) with the store's once-computed cache.
        jaccard_by_d0: std::sync::Arc<[f64]>,
    },
}

/// Approximate verification met signatures of different lengths —
/// sketches injected with mismatched configurations.
#[derive(Debug)]
struct SignatureMismatch {
    left: usize,
    right: usize,
    expected: usize,
}

impl std::fmt::Display for SignatureMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "approximate verification needs {}-register signatures, got {} and {}",
            self.expected, self.left, self.right
        )
    }
}

impl std::error::Error for SignatureMismatch {}

impl<S> VerifyEntries<S> {
    fn len(&self) -> usize {
        match self {
            VerifyEntries::Exact(entries) => entries.len(),
            VerifyEntries::Approximate { keys, .. } => keys.len(),
        }
    }

    fn key(&self, index: usize) -> &str {
        match self {
            VerifyEntries::Exact(entries) => &entries[index].0,
            VerifyEntries::Approximate { keys, .. } => &keys[index],
        }
    }
}

impl<S: JointEstimator> VerifyEntries<S> {
    /// The joint estimate of entry pair `(a, b)` under this mode.
    fn verify(&self, a: u32, b: u32) -> Result<JointQuantities, StoreError> {
        match self {
            VerifyEntries::Exact(entries) => entries[a as usize]
                .1
                .joint(&entries[b as usize].1)
                .map_err(StoreError::incompatible),
            VerifyEntries::Approximate {
                signatures,
                cardinalities,
                jaccard_by_d0,
                ..
            } => {
                let (sig_a, sig_b) = (&signatures[a as usize], &signatures[b as usize]);
                let m = jaccard_by_d0.len() - 1;
                if sig_a.len() != m || sig_b.len() != m {
                    return Err(StoreError::incompatible(SignatureMismatch {
                        left: sig_a.len(),
                        right: sig_b.len(),
                        expected: m,
                    }));
                }
                let (n_u, n_v) = (cardinalities[a as usize], cardinalities[b as usize]);
                if m == 0 {
                    return Ok(JointQuantities::from_estimated_jaccard(n_u, n_v, 0.0));
                }
                let counts = JointCounts::from_u32(sig_a, sig_b);
                // from_estimated_jaccard applies the same degenerate
                // and feasible-range handling as the per-pair
                // from_collision_counts path.
                Ok(JointQuantities::from_estimated_jaccard(
                    n_u,
                    n_v,
                    jaccard_by_d0[counts.d0 as usize],
                ))
            }
        }
    }
}

/// Verifies candidate pairs under the entries' [`Verification`] mode
/// and keeps those at or above `threshold`, fanned out across worker
/// threads.
///
/// Workers claim work units from an atomic cursor and collect hits into
/// per-worker buffers, so there is no shared mutable state on the hot
/// path; results are merged and sorted by index pair afterwards, making
/// the output deterministic regardless of scheduling. Under
/// [`Verification::Exact`] the estimator is the family's exact one —
/// the same code path as [`SketchStore::joint`] — so a pair's reported
/// quantities are independent of how it became a candidate.
fn verify_candidates<S: JointEstimator + Sync>(
    entries: &VerifyEntries<S>,
    candidates: Candidates<'_>,
    threshold: f64,
    options: &QueryOptions,
) -> Result<Vec<(u32, u32, JointQuantities)>, StoreError> {
    let verify_into =
        |a: u32, b: u32, hits: &mut Vec<(u32, u32, JointQuantities)>| -> Result<(), StoreError> {
            let quantities = entries.verify(a, b)?;
            if quantities.jaccard >= threshold {
                hits.push((a, b, quantities));
            }
            Ok(())
        };

    let units = candidates.units();
    let workers = options
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(units);

    let mut hits = if workers <= 1 {
        let mut hits = Vec::new();
        for unit in 0..units {
            candidates.for_each_in_unit(unit, &mut |a, b| verify_into(a, b, &mut hits))?;
        }
        hits
    } else {
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Per-worker scratch: hits accumulate locally and
                        // are merged once at the end.
                        let mut local = Vec::new();
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                break;
                            }
                            let unit = cursor.fetch_add(1, Ordering::Relaxed);
                            if unit >= units {
                                break;
                            }
                            let run = candidates
                                .for_each_in_unit(unit, &mut |a, b| verify_into(a, b, &mut local));
                            if let Err(error) = run {
                                failed.store(true, Ordering::Relaxed);
                                return Err(error);
                            }
                        }
                        Ok(local)
                    })
                })
                .collect();
            let mut hits = Vec::new();
            let mut first_error = None;
            for handle in handles {
                match handle.join().expect("verification worker panicked") {
                    Ok(local) => hits.extend(local),
                    Err(error) => first_error = first_error.or(Some(error)),
                }
            }
            match first_error {
                None => Ok(hits),
                Some(error) => Err(error),
            }
        })?
    };
    hits.sort_unstable_by_key(|&(a, b, _)| (a, b));
    Ok(hits)
}
