//! Tiered register storage behind the store: hot, warm (compressed in
//! memory) and frozen (spilled to disk) slots, plus the clock-hand
//! demotion scan that moves cold keys down the ladder.
//!
//! The tiers are invisible to callers — every public store operation
//! behaves as if all sketches were resident. What changes is *where a
//! key's registers live*:
//!
//! * **Hot** — the sketch struct itself, the unchanged fast path;
//! * **Warm** — the registers compressed through the family's
//!   [`CompactSketch`] codec (SetSketch/GHLL pack offsets from a shared
//!   base plus a sparse exception list; the other families fall back to
//!   their serde snapshot), held in memory;
//! * **Frozen** — the same compressed bytes appended to a spill segment
//!   file on disk, with only the `(segment, offset, len)` location kept
//!   in the shard map.
//!
//! Point reads and writes *promote*: touching a warm or frozen key
//! rehydrates it to hot under the shard's write lock. Bulk extractions
//! (similarity sweeps, snapshots, merge-down) *peek*: they decompress
//! into temporaries and leave the slot in its tier, so a full-store
//! query cannot blow the residency budget it was meant to respect.
//!
//! Demotion runs on a second-chance clock: every slot carries a
//! `touched` bit set by reads and writes; the scan clears the bit on
//! first encounter and demotes on second, so the working set survives
//! while cold keys sink. The scan piggybacks on the existing shard
//! write locks (one shard per step, hand advancing round-robin) and is
//! triggered from the write path — there is no background thread.

use crate::error::StoreError;
use crate::store::{SketchStore, Slot};
use parking_lot::Mutex;
use sketch_core::CompactSketch;
use sketch_math::crc32::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};

/// Where a key's registers currently live.
#[derive(Debug)]
pub(crate) enum TierSlot<S> {
    /// Resident sketch — the unchanged fast path.
    Hot(S),
    /// Registers compressed in memory through the family's
    /// [`CompactSketch`] codec.
    Warm(Box<[u8]>),
    /// Compressed bytes spilled to an append-only segment file; only
    /// the location stays in memory.
    Frozen {
        /// Index of the segment file holding the bytes.
        segment: u32,
        /// Byte offset of the compressed record within the segment.
        offset: u64,
        /// Length of the compressed record.
        len: u32,
    },
    /// A slot whose payload failed its checksum or codec round-trip.
    /// The registers are unrecoverable; the reason is kept for
    /// diagnostics. Reads fail with [`StoreError::CorruptSlot`]; the
    /// next write replaces the slot with a fresh factory sketch (in a
    /// replicated deployment anti-entropy then re-fills it from a
    /// healthy peer).
    Quarantined(Box<str>),
}

impl<S> TierSlot<S> {
    /// True for resident slots.
    pub(crate) fn is_hot(&self) -> bool {
        matches!(self, TierSlot::Hot(_))
    }
}

/// Point-in-time census of the store's memory tiers, from
/// [`SketchStore::tier_stats`].
///
/// Byte figures are as the tier manager accounts them: `hot_bytes` is
/// the families' own resident-footprint estimate
/// ([`CompactSketch::resident_bytes`]), `warm_bytes` the compressed
/// in-memory payloads, `spilled_bytes` the live compressed records on
/// disk (superseded records in the append-only segments are not
/// counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Keys whose sketch is resident.
    pub hot_keys: usize,
    /// Keys compressed in memory.
    pub warm_keys: usize,
    /// Keys spilled to segment files.
    pub frozen_keys: usize,
    /// Keys quarantined after a failed checksum or codec round-trip
    /// (their registers are unrecoverable until the next write or
    /// replica merge replaces them).
    pub quarantined_keys: usize,
    /// Estimated resident bytes of the hot sketches.
    pub hot_bytes: usize,
    /// Compressed in-memory bytes of the warm entries.
    pub warm_bytes: usize,
    /// Live compressed bytes in the spill segments.
    pub spilled_bytes: usize,
    /// Cumulative count of failed spill appends (the affected entries
    /// stayed warm); see [`SketchStore::last_spill_error`] for the most
    /// recent cause.
    pub spill_append_failures: usize,
}

impl TierStats {
    /// Total number of keys across all tiers.
    pub fn total_keys(&self) -> usize {
        self.hot_keys + self.warm_keys + self.frozen_keys
    }

    /// Bytes counted against the store's memory budget (hot + warm;
    /// frozen entries cost no memory).
    pub fn resident_bytes(&self) -> usize {
        self.hot_bytes + self.warm_bytes
    }
}

/// Builder-set tiering knobs (see [`crate::StoreBuilder`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct TierPolicy {
    /// Ceiling on hot + warm bytes; exceeding it triggers demotion.
    pub(crate) memory_budget_bytes: Option<usize>,
    /// Run a demotion scan every this-many writes even without budget
    /// pressure.
    pub(crate) demote_after_writes: Option<u64>,
    /// Parent directory for spill segments (default: the OS temp dir).
    pub(crate) spill_dir: Option<PathBuf>,
}

/// The [`CompactSketch`] surface captured as plain function pointers,
/// so the store's generic paths need no `CompactSketch` bound — a
/// store built without tiering knobs never names the trait.
pub(crate) struct TierCodec<S> {
    pub(crate) compress: fn(&S) -> Vec<u8>,
    pub(crate) decompress: fn(&S, &[u8]) -> Result<S, String>,
    pub(crate) resident: fn(&S) -> usize,
}

impl<S> Clone for TierCodec<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for TierCodec<S> {}

impl<S> std::fmt::Debug for TierCodec<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TierCodec")
    }
}

impl<S: CompactSketch> TierCodec<S> {
    /// The codec of sketch type `S` (non-capturing closures coerce to
    /// the function pointers).
    pub(crate) fn of() -> Self {
        TierCodec {
            compress: |sketch| sketch.compress(),
            decompress: |prototype, bytes| {
                S::decompress(prototype, bytes).map_err(|error| error.to_string())
            },
            resident: |sketch| sketch.resident_bytes(),
        }
    }
}

/// Per-store tiering state: codec, policy, byte accounting, the clock
/// hand and the lazily created spill segments.
pub(crate) struct TierRuntime<S> {
    /// `None` when tiering is disabled — every slot stays hot and the
    /// accounting below is skipped.
    pub(crate) codec: Option<TierCodec<S>>,
    /// Empty factory sketch the codec decompresses against (fixes
    /// configuration and seed). Present iff `codec` is.
    pub(crate) prototype: Option<S>,
    pub(crate) policy: TierPolicy,
    /// Write counter driving the periodic (`demote_after_writes`) scan.
    writes: AtomicU64,
    /// Budget accounting (signed: concurrent deltas may transiently
    /// cross zero). Exact figures come from [`SketchStore::tier_stats`].
    hot_bytes: AtomicIsize,
    warm_bytes: AtomicIsize,
    /// Guards the clock scan: at most one maintainer runs (set by
    /// compare-exchange), everyone else skips.
    scanning: AtomicBool,
    /// Clock hand (next shard to scan); only the thread holding
    /// `scanning` moves it.
    hand: AtomicUsize,
    segments: Mutex<Option<SegmentStore>>,
    /// Count of failed spill appends (entries stayed warm).
    spill_failures: AtomicUsize,
    /// The most recent spill-append failure, for diagnostics.
    last_spill_error: Mutex<Option<String>>,
}

impl<S> TierRuntime<S> {
    pub(crate) fn new(
        policy: TierPolicy,
        codec: Option<TierCodec<S>>,
        prototype: Option<S>,
    ) -> Self {
        debug_assert_eq!(codec.is_some(), prototype.is_some());
        TierRuntime {
            codec,
            prototype,
            policy,
            writes: AtomicU64::new(0),
            hot_bytes: AtomicIsize::new(0),
            warm_bytes: AtomicIsize::new(0),
            scanning: AtomicBool::new(false),
            hand: AtomicUsize::new(0),
            segments: Mutex::new(None),
            spill_failures: AtomicUsize::new(0),
            last_spill_error: Mutex::new(None),
        }
    }

    /// Installs a codec (and its prototype) after construction — used
    /// by `from_snapshot`, which needs warm restores without any
    /// demotion policy.
    pub(crate) fn install_codec(&mut self, codec: TierCodec<S>, prototype: S) {
        self.codec = Some(codec);
        self.prototype = Some(prototype);
    }

    pub(crate) fn enabled(&self) -> bool {
        self.codec.is_some()
    }

    /// Resident-byte estimate of one sketch (codec-provided, or the
    /// struct size when tiering is off).
    pub(crate) fn resident_of(&self, sketch: &S) -> usize {
        match self.codec {
            Some(codec) => (codec.resident)(sketch),
            None => std::mem::size_of::<S>(),
        }
    }

    /// Bumps the write counter, returning the new count.
    pub(crate) fn note_write(&self) -> u64 {
        self.writes.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bytes currently counted against the budget (hot + warm).
    pub(crate) fn resident_total(&self) -> usize {
        let total =
            self.hot_bytes.load(Ordering::Relaxed) + self.warm_bytes.load(Ordering::Relaxed);
        total.max(0) as usize
    }

    pub(crate) fn over_budget(&self) -> bool {
        self.policy
            .memory_budget_bytes
            .is_some_and(|budget| self.resident_total() > budget)
    }

    fn add_hot(&self, delta: isize) {
        self.hot_bytes.fetch_add(delta, Ordering::Relaxed);
    }

    fn add_warm(&self, delta: isize) {
        self.warm_bytes.fetch_add(delta, Ordering::Relaxed);
    }

    /// A new hot slot entered the store.
    pub(crate) fn account_insert_hot(&self, sketch: &S) {
        if self.enabled() {
            self.add_hot(self.resident_of(sketch) as isize);
        }
    }

    /// A new warm slot entered the store (snapshot restore).
    pub(crate) fn account_insert_warm(&self, len: usize) {
        if self.enabled() {
            self.add_warm(len as isize);
        }
    }

    /// A slot left the store (remove / replace).
    pub(crate) fn account_remove(&self, state: &TierSlot<S>) {
        if !self.enabled() {
            return;
        }
        match state {
            TierSlot::Hot(sketch) => self.add_hot(-(self.resident_of(sketch) as isize)),
            TierSlot::Warm(bytes) => self.add_warm(-(bytes.len() as isize)),
            TierSlot::Frozen { .. } | TierSlot::Quarantined(_) => {}
        }
    }

    /// A write grew (or shrank) a hot sketch in place.
    pub(crate) fn account_growth(&self, before: usize, after: usize) {
        if self.enabled() {
            self.add_hot(after as isize - before as isize);
        }
    }

    /// Warm or frozen bytes rehydrated to a hot sketch.
    pub(crate) fn account_promote(&self, freed_warm: usize, resident: usize) {
        self.add_warm(-(freed_warm as isize));
        self.add_hot(resident as isize);
    }

    /// A hot sketch compressed down to warm bytes.
    pub(crate) fn account_demote_to_warm(&self, resident: usize, len: usize) {
        self.add_hot(-(resident as isize));
        self.add_warm(len as isize);
    }

    /// Warm bytes spilled to a segment file.
    pub(crate) fn account_demote_to_frozen(&self, len: usize) {
        self.add_warm(-(len as isize));
    }

    /// Drops all accounting and spill segments (store cleared).
    pub(crate) fn reset(&self) {
        self.hot_bytes.store(0, Ordering::Relaxed);
        self.warm_bytes.store(0, Ordering::Relaxed);
        *self.segments.lock() = None;
    }

    /// Rehydrates compressed bytes through the codec. A failure means
    /// the payload was corrupted underneath us (bit rot in memory or on
    /// disk) — the caller quarantines the slot.
    ///
    /// # Panics
    /// Panics when the store holds cold slots without a codec — a
    /// construction bug, not a data fault.
    pub(crate) fn try_decode(&self, bytes: &[u8]) -> Result<S, String> {
        let codec = self
            .codec
            .as_ref()
            .expect("cold slot in a store without a tier codec");
        let prototype = self
            .prototype
            .as_ref()
            .expect("cold slot in a store without a prototype");
        (codec.decompress)(prototype, bytes)
    }

    /// Appends compressed bytes to the spill segments, creating them on
    /// first use. Returns `None` when the spill directory cannot be
    /// created or written — the caller leaves the entry warm, and the
    /// failure is counted in [`TierStats::spill_append_failures`] with
    /// the cause kept for [`SketchStore::last_spill_error`].
    pub(crate) fn append_frozen(&self, bytes: &[u8]) -> Option<(u32, u64, u32)> {
        let result = {
            let mut guard = self.segments.lock();
            match guard.as_mut() {
                Some(segments) => segments.append(bytes),
                None => {
                    SegmentStore::create(self.policy.spill_dir.as_deref(), SEGMENT_ROTATE_BYTES)
                        .and_then(|created| guard.insert(created).append(bytes))
                }
            }
        };
        match result {
            Ok(location) => Some(location),
            Err(error) => {
                self.spill_failures.fetch_add(1, Ordering::Relaxed);
                *self.last_spill_error.lock() = Some(error.to_string());
                None
            }
        }
    }

    /// Number of spill appends that have failed so far.
    pub(crate) fn spill_failure_count(&self) -> usize {
        self.spill_failures.load(Ordering::Relaxed)
    }

    /// The most recent spill-append failure.
    pub(crate) fn last_spill_failure(&self) -> Option<String> {
        self.last_spill_error.lock().clone()
    }

    /// Reads a frozen record back, verifying its checksum. An error
    /// means the registers are lost (missing, truncated or bit-rotted
    /// segment) — the caller quarantines the slot.
    pub(crate) fn read_frozen(
        &self,
        segment: u32,
        offset: u64,
        len: u32,
    ) -> Result<Vec<u8>, String> {
        self.segments
            .lock()
            .as_mut()
            .ok_or_else(|| "frozen slot without spill segments".to_owned())?
            .read(segment, offset, len)
            .map_err(|error| format!("spill segment unreadable: {error}"))
    }

    /// The spill directory, if segments have been created (tests assert
    /// it disappears with the store).
    pub(crate) fn spill_path(&self) -> Option<PathBuf> {
        self.segments.lock().as_ref().map(|s| s.dir.clone())
    }

    /// Claims the single-maintainer scan slot; `false` means another
    /// thread is already scanning and the caller should skip.
    pub(crate) fn begin_scan(&self) -> bool {
        self.scanning
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the scan slot.
    pub(crate) fn end_scan(&self) {
        self.scanning.store(false, Ordering::Release);
    }
}

/// Segment files rotate once they reach this size.
const SEGMENT_ROTATE_BYTES: u64 = 64 << 20;

/// Process-wide counter making concurrent stores' spill dirs distinct.
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Append-only spill segments: `seg-N.bin` files under a per-store
/// temp directory, deleted (with the directory) on drop. Records are
/// never rewritten; superseded records (a frozen key promoted and later
/// re-frozen) become dead bytes until the store drops.
///
/// Each record is framed as `[u32 CRC32 LE][payload]`: the checksum is
/// verified on every read, so bit rot in a spill file surfaces as a
/// typed error instead of garbage registers decoded into a sketch.
struct SegmentStore {
    dir: PathBuf,
    files: Vec<File>,
    current_len: u64,
    rotate_bytes: u64,
}

/// Bytes of the per-record CRC32 prefix in a spill segment.
const SPILL_CRC_BYTES: u64 = 4;

impl SegmentStore {
    fn create(parent: Option<&Path>, rotate_bytes: u64) -> io::Result<Self> {
        let parent = parent
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let dir = parent.join(format!(
            "sketch-store-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        let mut store = SegmentStore {
            dir,
            files: Vec::new(),
            current_len: 0,
            rotate_bytes,
        };
        store.rotate()?;
        Ok(store)
    }

    fn rotate(&mut self) -> io::Result<()> {
        let path = self.dir.join(format!("seg-{}.bin", self.files.len()));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(path)?;
        self.files.push(file);
        self.current_len = 0;
        Ok(())
    }

    /// Appends one CRC-framed record; the returned location's `len` is
    /// the payload length (the checksum prefix is an internal detail).
    fn append(&mut self, bytes: &[u8]) -> io::Result<(u32, u64, u32)> {
        if self.current_len >= self.rotate_bytes {
            self.rotate()?;
        }
        let segment = (self.files.len() - 1) as u32;
        let offset = self.current_len;
        let file = self.files.last_mut().expect("create() opened a segment");
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&crc32(bytes).to_le_bytes())?;
        file.write_all(bytes)?;
        self.current_len += SPILL_CRC_BYTES + bytes.len() as u64;
        Ok((segment, offset, bytes.len() as u32))
    }

    /// Reads one record back and verifies its checksum; a mismatch is
    /// reported as [`io::ErrorKind::InvalidData`].
    fn read(&mut self, segment: u32, offset: u64, len: u32) -> io::Result<Vec<u8>> {
        let file = self.files.get_mut(segment as usize).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "spill segment index out of range")
        })?;
        file.seek(SeekFrom::Start(offset))?;
        let mut stored = [0u8; SPILL_CRC_BYTES as usize];
        file.read_exact(&mut stored)?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)?;
        let expected = u32::from_le_bytes(stored);
        let actual = crc32(&buf);
        if actual != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill record checksum mismatch ({actual:#010x} != {expected:#010x})"),
            ));
        }
        Ok(buf)
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        // Close handles first, then remove everything; best-effort.
        self.files.clear();
        let _ = fs::remove_dir_all(&self.dir);
    }
}

impl<S> SketchStore<S> {
    /// Counts keys and bytes per memory tier (exact: scans every shard
    /// under its read lock).
    ///
    /// ```
    /// use setsketch::{SetSketch2, SetSketchConfig};
    /// use sketch_store::SketchStore;
    ///
    /// let config = SetSketchConfig::new(4096, 2.0, 20.0, 62).unwrap();
    /// let store = SketchStore::builder(move || SetSketch2::new(config, 1))
    ///     .demote_after_writes(8)
    ///     .build();
    /// for key in 0..32 {
    ///     store.ingest(&format!("k{key}"), &[1, 2, 3]);
    /// }
    /// let stats = store.tier_stats();
    /// assert_eq!(stats.total_keys(), 32);
    /// assert!(stats.warm_keys > 0, "periodic scan demoted cold keys");
    /// ```
    pub fn tier_stats(&self) -> TierStats {
        let mut stats = TierStats {
            spill_append_failures: self.tier.spill_failure_count(),
            ..TierStats::default()
        };
        for shard in self.shards() {
            for slot in shard.read().values() {
                match &slot.state {
                    TierSlot::Hot(sketch) => {
                        stats.hot_keys += 1;
                        stats.hot_bytes += self.tier.resident_of(sketch);
                    }
                    TierSlot::Warm(bytes) => {
                        stats.warm_keys += 1;
                        stats.warm_bytes += bytes.len();
                    }
                    TierSlot::Frozen { len, .. } => {
                        stats.frozen_keys += 1;
                        stats.spilled_bytes += *len as usize;
                    }
                    TierSlot::Quarantined(_) => stats.quarantined_keys += 1,
                }
            }
        }
        stats
    }

    /// The most recent spill-append failure, if any — the entries whose
    /// spill failed stayed warm (counted in
    /// [`TierStats::spill_append_failures`]).
    pub fn last_spill_error(&self) -> Option<String> {
        self.tier.last_spill_failure()
    }

    /// The directory holding this store's spill segments — `None`
    /// until the first key freezes. The directory and every segment
    /// file in it are removed when the store drops (or on
    /// [`clear`](Self::clear)).
    pub fn spill_path(&self) -> Option<std::path::PathBuf> {
        self.tier.spill_path()
    }

    /// Rehydrates a slot to hot in place (no-op when already hot).
    /// Caller holds the shard's write lock. Promotion does **not** bump
    /// the slot's version: the registers are unchanged, so similarity
    /// index entries stay valid.
    ///
    /// A payload that fails its checksum or codec round-trip
    /// **quarantines** the slot (its byte accounting is unwound) and
    /// returns [`StoreError::CorruptSlot`]; read paths surface the
    /// error, write paths replace the quarantined slot with a fresh
    /// factory sketch.
    pub(crate) fn ensure_hot_slot(&self, key: &str, slot: &mut Slot<S>) -> Result<(), StoreError> {
        let rehydrated = match &slot.state {
            TierSlot::Hot(_) => return Ok(()),
            TierSlot::Quarantined(reason) => Err(reason.to_string()),
            TierSlot::Warm(bytes) => self
                .tier
                .try_decode(bytes)
                .map(|sketch| (sketch, bytes.len())),
            TierSlot::Frozen {
                segment,
                offset,
                len,
            } => self
                .tier
                .read_frozen(*segment, *offset, *len)
                .and_then(|bytes| self.tier.try_decode(&bytes))
                .map(|sketch| (sketch, 0)),
        };
        match rehydrated {
            Ok((sketch, freed_warm)) => {
                self.tier
                    .account_promote(freed_warm, self.tier.resident_of(&sketch));
                slot.state = TierSlot::Hot(sketch);
                Ok(())
            }
            Err(detail) => {
                self.tier.account_remove(&slot.state);
                slot.state = TierSlot::Quarantined(detail.clone().into_boxed_str());
                Err(StoreError::CorruptSlot {
                    key: key.to_owned(),
                    detail,
                })
            }
        }
    }

    /// Runs `op` against the slot's sketch **without promoting**: hot
    /// slots are borrowed, cold slots are decompressed into a temporary
    /// that is dropped afterwards. This is the bulk-extraction path
    /// (similarity sweeps, snapshots, merge-down) — a full-store query
    /// must not blow the residency budget it runs under. Returns `None`
    /// for quarantined or corrupt slots: bulk sweeps skip them (the
    /// slot is formally quarantined the next time a promoting path
    /// touches it — a peek holds only the shard's read lock).
    pub(crate) fn peek_slot<R>(&self, slot: &Slot<S>, op: impl FnOnce(&S) -> R) -> Option<R> {
        match &slot.state {
            TierSlot::Hot(sketch) => Some(op(sketch)),
            state => self.try_materialize_cold(state).ok().map(|s| op(&s)),
        }
    }

    /// Decompresses a warm or frozen state into an owned sketch; the
    /// error carries the corruption detail.
    ///
    /// # Panics
    /// Panics on hot states (callers dispatch those separately).
    pub(crate) fn try_materialize_cold(&self, state: &TierSlot<S>) -> Result<S, String> {
        match state {
            TierSlot::Hot(_) => unreachable!("materialize_cold on a resident slot"),
            TierSlot::Quarantined(reason) => Err(reason.to_string()),
            TierSlot::Warm(bytes) => self.tier.try_decode(bytes),
            TierSlot::Frozen {
                segment,
                offset,
                len,
            } => self
                .tier
                .read_frozen(*segment, *offset, *len)
                .and_then(|bytes| self.tier.try_decode(&bytes)),
        }
    }

    /// Converts a removed slot into its sketch, unwinding the byte
    /// accounting. `None` when the payload was corrupt — the registers
    /// are unrecoverable, and the slot has already left the map.
    pub(crate) fn take_sketch(&self, slot: Slot<S>) -> Option<S> {
        self.tier.account_remove(&slot.state);
        match slot.state {
            TierSlot::Hot(sketch) => Some(sketch),
            state => self.try_materialize_cold(&state).ok(),
        }
    }

    /// Write-path maintenance hook: counts the write and runs a clock
    /// scan when the periodic knob fires or the budget is exceeded.
    /// Call with no shard lock held.
    pub(crate) fn maybe_maintain(&self) {
        let Some(codec) = self.tier.codec else { return };
        let writes = self.tier.note_write();
        let periodic = self
            .tier
            .policy
            .demote_after_writes
            .is_some_and(|every| writes % every == 0);
        let pressure = self.tier.over_budget();
        if !periodic && !pressure {
            return;
        }
        if !self.tier.begin_scan() {
            return; // another thread is already scanning
        }
        self.clock_scan(codec, pressure);
        self.tier.end_scan();
    }

    /// Read-path maintenance hook: promotions grow residency too, so
    /// point reads check the budget after rehydrating. Call with no
    /// shard lock held.
    pub(crate) fn maintain_if_over_budget(&self) {
        let Some(codec) = self.tier.codec else { return };
        if !self.tier.over_budget() {
            return;
        }
        if !self.tier.begin_scan() {
            return;
        }
        self.clock_scan(codec, true);
        self.tier.end_scan();
    }

    /// The second-chance clock scan. One shard per step, hand advancing
    /// round-robin; slots touched since the last encounter get their
    /// bit cleared and survive, untouched hot slots compress to warm,
    /// and — under budget pressure only — untouched warm slots spill to
    /// frozen. A periodic scan makes one revolution; a budget scan runs
    /// up to two (the first revolution may only clear bits) and stops
    /// as soon as residency is back under budget.
    fn clock_scan(&self, codec: TierCodec<S>, budget_pressure: bool) {
        let shard_count = self.shards().len();
        let revolutions = if budget_pressure { 2 } else { 1 };
        for _ in 0..shard_count * revolutions {
            if budget_pressure && !self.tier.over_budget() {
                return;
            }
            let index = self.tier.hand.load(Ordering::Relaxed) % shard_count;
            self.tier
                .hand
                .store((index + 1) % shard_count, Ordering::Relaxed);
            let mut shard = self.shards()[index].write();
            for slot in shard.values_mut() {
                if budget_pressure && !self.tier.over_budget() {
                    return;
                }
                if slot.touched.swap(false, Ordering::Relaxed) {
                    continue; // second chance
                }
                let next = match &slot.state {
                    TierSlot::Hot(sketch) => {
                        let resident = (codec.resident)(sketch);
                        let bytes = (codec.compress)(sketch).into_boxed_slice();
                        self.tier.account_demote_to_warm(resident, bytes.len());
                        Some(TierSlot::Warm(bytes))
                    }
                    TierSlot::Warm(bytes) if budget_pressure => {
                        self.tier
                            .append_frozen(bytes)
                            .map(|(segment, offset, len)| {
                                self.tier.account_demote_to_frozen(bytes.len());
                                TierSlot::Frozen {
                                    segment,
                                    offset,
                                    len,
                                }
                            })
                    }
                    _ => None,
                };
                if let Some(state) = next {
                    slot.state = state;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_roundtrip_and_rotate() {
        let mut segments = SegmentStore::create(None, 64).unwrap();
        let dir = segments.dir.clone();
        assert!(dir.is_dir());
        let a = segments.append(&[1u8; 40]).unwrap();
        let b = segments.append(&[2u8; 40]).unwrap();
        // 40 + 40 crosses the 64-byte rotation threshold.
        let c = segments.append(&[3u8; 8]).unwrap();
        assert_eq!(a.0, 0);
        assert_eq!(b.0, 0);
        assert_eq!(c.0, 1, "third record lands in a rotated segment");
        assert_eq!(segments.read(a.0, a.1, a.2).unwrap(), vec![1u8; 40]);
        assert_eq!(segments.read(b.0, b.1, b.2).unwrap(), vec![2u8; 40]);
        assert_eq!(segments.read(c.0, c.1, c.2).unwrap(), vec![3u8; 8]);
        drop(segments);
        assert!(!dir.exists(), "drop removes the spill directory");
    }

    #[test]
    fn segment_read_rejects_bad_location() {
        let mut segments = SegmentStore::create(None, 1024).unwrap();
        segments.append(&[9u8; 16]).unwrap();
        assert!(segments.read(7, 0, 4).is_err(), "unknown segment");
        assert!(segments.read(0, 12, 16).is_err(), "truncated read");
    }
}
