//! Clustered ANN index: per-cluster tuned banding with budgeted query
//! routing.
//!
//! The flat similarity index ([`crate::query`]) tunes **one** banding
//! layout from the family's collision-probability curve at the query
//! threshold. That is the right shape when key similarities are
//! homogeneous — and the wrong one when they are not: a skewed
//! workload's dense regions flood the fixed layout's buckets with
//! near-duplicate candidates (over-probing), while its sparse regions
//! see no locality at all. This module family replaces the single
//! layout with a PUFFINN-style two-level structure:
//!
//! 1. **Clustering** ([`cluster`]) — keys are grouped by greedy
//!    farthest-point k-center over their register signatures, in the
//!    estimated Jaccard distance the §3.3 locality property induces
//!    ([`sketch_core::centroid`]). Jaccard distance is a true metric,
//!    so every cluster has a meaningful radius and routing can use
//!    triangle-inequality bounds.
//! 2. **Per-cluster tuned banding** ([`index`]) — each cluster gets a
//!    small [`lsh::LshIndex`] whose layout is tuned to the cluster's
//!    *observed* similarity density (dense clusters afford more rows
//!    per band, i.e. far fewer false candidates), with the fleet of
//!    layouts planned under one total memory budget
//!    ([`lsh::plan_bandings`]).
//! 3. **Budgeted routing** ([`router`]) — queries are compared against
//!    cluster centroids only, then probe the few metrically eligible
//!    clusters best-first until the routed member mass reaches the
//!    recall target. `similar_keys` therefore scales with the clusters
//!    probed, not the candidate keys stored.
//!
//! The user-facing knobs are `memory_budget_bytes` and `recall_target`
//! — bands × rows never appear in the clustered API. The index is
//! maintained incrementally off the store's per-key version stamps
//! (only moved keys re-assign and re-band; radius drift or a 2×
//! population change triggers a re-center), and stores below
//! [`flat_cutover`](IndexStrategy::Clustered::flat_cutover) keys
//! transparently fall back to the flat index, where one layout is
//! cheaper than centroids plus routing.

pub(crate) mod cluster;
pub(crate) mod index;
pub(crate) mod router;

/// Default routing recall target of
/// [`IndexStrategy::clustered`]: the probed clusters cover at least
/// this fraction of the metrically eligible member mass.
pub const DEFAULT_CLUSTERED_RECALL: f64 = 0.95;

/// Default [`IndexStrategy::Clustered::flat_cutover`]: below this many
/// keys the flat single-banding index answers clustered-strategy
/// queries (centroid routing cannot pay for itself on tiny stores).
pub const DEFAULT_FLAT_CUTOVER: usize = 256;

/// Which candidate-generation index backs a similarity query
/// ([`crate::QueryOptions::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexStrategy {
    /// One global banding auto-tuned at the query threshold (the
    /// original engine). The default.
    #[default]
    Flat,
    /// The clustered ANN index: k-center clusters over register
    /// signatures, per-cluster tuned bandings under a shared memory
    /// budget, and best-first centroid routing toward a recall target.
    ///
    /// An explicit [`QueryOptions::banding`](crate::QueryOptions)
    /// override bypasses clustering entirely (a forced global layout
    /// and per-cluster tuning are mutually exclusive by construction).
    Clustered {
        /// Ceiling on the modeled index memory across all clusters
        /// (`None` = unbudgeted). Under pressure the planner walks the
        /// most expensive clusters down to fewer bands, trading their
        /// banding recall for memory ([`lsh::plan_bandings`]).
        memory_budget_bytes: Option<usize>,
        /// Routing recall target in `(0, 1]`: probe clusters
        /// best-first until they cover this fraction of the eligible
        /// member mass ([`DEFAULT_CLUSTERED_RECALL`]).
        recall_target: f64,
        /// Number of clusters (`None` = automatic, ≈ √n at build
        /// time).
        clusters: Option<usize>,
        /// Below this many live keys the strategy serves from the flat
        /// index instead ([`DEFAULT_FLAT_CUTOVER`]); the clustered
        /// structure is (re)built once the store grows past it.
        flat_cutover: usize,
    },
}

impl IndexStrategy {
    /// The clustered strategy with every knob at its default
    /// (unbudgeted, recall [`DEFAULT_CLUSTERED_RECALL`], automatic
    /// cluster count, cutover [`DEFAULT_FLAT_CUTOVER`]).
    pub fn clustered() -> Self {
        IndexStrategy::Clustered {
            memory_budget_bytes: None,
            recall_target: DEFAULT_CLUSTERED_RECALL,
            clusters: None,
            flat_cutover: DEFAULT_FLAT_CUTOVER,
        }
    }
}

/// Cumulative probe counters of one clustered index state — how much
/// of the store routing actually touched, reported through
/// [`crate::SimilarityIndexInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeStats {
    /// Routed top-k queries answered.
    pub topk_queries: u64,
    /// Clusters probed across all top-k queries (`/ topk_queries` =
    /// mean probe width; the flat index always "probes" the whole
    /// store).
    pub clusters_probed: u64,
    /// All-pairs sweeps answered.
    pub sweeps: u64,
    /// Cross-cluster pairs close enough (centroid distance within the
    /// triangle-inequality bound) to be probed for boundary candidates,
    /// across all sweeps.
    pub cluster_pairs_probed: u64,
}

/// Clustered-index diagnostics, reported through
/// [`crate::SimilarityIndexInfo::clustered`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredIndexInfo {
    /// Number of clusters.
    pub clusters: usize,
    /// Keys per cluster (index = cluster id; the skew the per-cluster
    /// tuning adapts to).
    pub key_histogram: Vec<usize>,
    /// Banding layout per cluster (index = cluster id) — denser
    /// clusters carry more rows per band.
    pub bandings: Vec<lsh::Banding>,
    /// Candidate recall each cluster's layout delivers at its effective
    /// collision probability (below the banding recall target only
    /// under memory-budget pressure).
    pub planned_recalls: Vec<f64>,
    /// Cumulative probe counters at this operating point (carried
    /// across drift-triggered rebuilds).
    pub probe_stats: ProbeStats,
}
