//! Budgeted query routing over the clustered state.
//!
//! Routing never touches member signatures — only centroids. A
//! neighbor of query `q` at Jaccard ≥ `t` sits within `1 − t` of `q`,
//! so by the triangle inequality it can only live in a cluster whose
//! centroid is within `(1 − t) + radius` of `q` (plus
//! [`ROUTE_SLACK`] for estimation noise — with m = 256 registers the
//! collision-fraction estimate has σ ≈ 0.03, so 0.1 covers ≈ 3σ).
//! Eligible clusters are probed **best-first by centroid distance**
//! until the probed member mass covers the routing recall target of
//! everything eligible; the remaining tail mass is the recall the
//! caller chose to trade for latency. All-pairs sweeps apply the same
//! bound symmetrically to *cluster pairs*: within-cluster candidates
//! come straight from each cluster's banding buckets, and only cluster
//! pairs whose centroid distance clears `(1 − t) + rᵢ + rⱼ + slack`
//! are probed for boundary pairs (smaller side's signatures queried
//! against the bigger side's banding index).

use super::index::ClusteredState;
use crate::store::SketchStore;
use sketch_core::centroid::signature_distance;
use sketch_core::{JointEstimator, Signature};

/// Estimation-noise slack added to every triangle-inequality
/// eligibility bound: signature distances are D₀-based estimates, not
/// exact metrics, so bounds are widened by ≈ 3σ of the m = 256
/// collision-fraction estimator before a cluster is ruled out.
pub(crate) const ROUTE_SLACK: f64 = 0.1;

/// Clusters a top-k query must probe, best-first by centroid distance:
/// metrically eligible clusters are accumulated until they cover
/// `routing_recall` of the eligible member mass. Empty when no cluster
/// is eligible (the query engine's `< k` fallback then verifies
/// exhaustively, so a query far from every centroid still completes).
pub(crate) fn route_clusters(
    state: &ClusteredState,
    signature: &[u32],
    threshold: f64,
) -> Vec<usize> {
    let reach = (1.0 - threshold) + ROUTE_SLACK;
    let mut eligible: Vec<(f64, usize)> = state
        .clusters
        .iter()
        .enumerate()
        .filter(|(_, cluster)| cluster.members > 0)
        .filter_map(|(at, cluster)| {
            let distance = signature_distance(signature, &cluster.centroid, &state.jaccard_by_d0);
            (distance <= reach + cluster.radius).then_some((distance, at))
        })
        .collect();
    eligible.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let total_mass: usize = eligible
        .iter()
        .map(|&(_, at)| state.clusters[at].members)
        .sum();
    let target_mass = (total_mass as f64 * state.params.routing_recall).ceil() as usize;
    let mut picked = Vec::new();
    let mut mass = 0usize;
    for (_, at) in eligible {
        picked.push(at);
        mass += state.clusters[at].members;
        if mass >= target_mass {
            break;
        }
    }
    picked
}

/// Candidate keys of one routed top-k query: the union of banding
/// lookups in every probed cluster (multi-probed on ordinal register
/// scales, mirroring the flat engine's policy).
pub(crate) fn query_candidates(
    state: &mut ClusteredState,
    signature: &[u32],
    threshold: f64,
    multiprobe: bool,
) -> Vec<String> {
    let routed = route_clusters(state, signature, threshold);
    state.probe_stats.topk_queries += 1;
    state.probe_stats.clusters_probed += routed.len() as u64;
    let mut candidates = Vec::new();
    for at in routed {
        let lsh = &state.clusters[at].lsh;
        if multiprobe {
            candidates.extend(lsh.query_multiprobe(signature));
        } else {
            candidates.extend(lsh.query(signature));
        }
    }
    candidates
}

impl<S> SketchStore<S>
where
    S: Signature + JointEstimator + Clone + Send + Sync,
{
    /// Candidate pairs of a clustered all-pairs sweep, sorted and
    /// deduplicated with `left < right` (the flat engine's
    /// `candidate_pairs` contract).
    ///
    /// Within-cluster pairs come from each cluster's own banding
    /// buckets. Boundary pairs come from probing eligible cluster
    /// pairs: the smaller cluster's members are queried against the
    /// larger cluster's banding index, so a probe costs
    /// `min(|i|, |j|) · bands` lookups instead of `|i| · |j|`
    /// comparisons. Eligibility is resolved first (pure centroid
    /// geometry); each probing member's signature is then peeked from
    /// the store exactly once per sweep (never promoting) and hashed
    /// once per distinct target layout, no matter how many cluster
    /// pairs it participates in.
    pub(crate) fn clustered_candidate_pairs(
        &self,
        state: &mut ClusteredState,
        threshold: f64,
    ) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for cluster in &state.clusters {
            pairs.extend(cluster.lsh.candidate_pairs());
        }

        // Geometry pass: for each cluster, the larger clusters its
        // members must probe for boundary pairs.
        let reach = (1.0 - threshold) + ROUTE_SLACK;
        let mut probed_pairs = 0u64;
        let mut targets: Vec<Vec<usize>> = vec![Vec::new(); state.clusters.len()];
        for i in 0..state.clusters.len() {
            for j in i + 1..state.clusters.len() {
                let (a, b) = (&state.clusters[i], &state.clusters[j]);
                if a.members == 0 || b.members == 0 {
                    continue;
                }
                let distance = signature_distance(&a.centroid, &b.centroid, &state.jaccard_by_d0);
                if distance > reach + a.radius + b.radius {
                    continue; // no cross pair can clear the threshold
                }
                probed_pairs += 1;
                let (from, to) = if a.members <= b.members {
                    (i, j)
                } else {
                    (j, i)
                };
                targets[from].push(to);
            }
        }

        // Probe pass, one store peek per participating member.
        let mut signature: Vec<u32> = Vec::new();
        let mut layouts: Vec<(usize, usize)> = Vec::new();
        let mut layout_hashes: Vec<Vec<u64>> = Vec::new();
        let mut hits: Vec<String> = Vec::new();
        for (key, entry) in &state.keys {
            let probe_list = &targets[entry.cluster];
            if probe_list.is_empty() {
                continue;
            }
            let peeked = {
                let shard = self.shards()[self.shard_index(key)].read();
                shard.get(key).and_then(|slot| {
                    self.peek_slot(slot, |sketch| sketch.signature_into(&mut signature))
                })
            };
            if peeked.is_none() {
                continue; // vanished or corrupt mid-sweep
            }
            layouts.clear();
            layout_hashes.clear();
            for &to in probe_list {
                let target = &state.clusters[to].lsh;
                let layout = (target.bands(), target.rows());
                let at = layouts
                    .iter()
                    .position(|l| *l == layout)
                    .unwrap_or_else(|| {
                        let mut hashes = Vec::new();
                        target.band_hashes_into(&signature, &mut hashes);
                        layouts.push(layout);
                        layout_hashes.push(hashes);
                        layouts.len() - 1
                    });
                hits.clear();
                target.query_hashed_into(&layout_hashes[at], &mut hits);
                for other in hits.drain(..) {
                    let pair = if *key < other {
                        (key.clone(), other)
                    } else {
                        (other, key.clone())
                    };
                    pairs.push(pair);
                }
            }
        }
        state.probe_stats.sweeps += 1;
        state.probe_stats.cluster_pairs_probed += probed_pairs;
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}
