//! The clustered index state: per-cluster tuned bandings plus the
//! incremental maintenance that keeps them aligned with the store.
//!
//! Each cluster owns a centroid signature, a radius, and a small
//! [`LshIndex`] whose layout was tuned to the cluster's *effective*
//! threshold — the query threshold raised to the similarity floor its
//! member density implies (members within distance `d` of the centroid
//! pair up within `2d` by the triangle inequality, so dense clusters
//! afford far more selective layouts than the global tuning would
//! dare). Maintenance mirrors the flat index: a version sweep re-bands
//! exactly the moved keys, assigning each to its nearest centroid and
//! widening that cluster's radius; a rebuild (fresh k-center pass) is
//! triggered only when radii drift past their built values or the
//! population doubles/halves, so steady traffic never re-clusters.

use super::cluster::k_center;
use super::ProbeStats;
use crate::store::SketchStore;
use lsh::{plan_bandings, Banding, ClusterLoad, LshIndex};
use sketch_core::centroid::signature_distance;
use sketch_core::{JointEstimator, Signature};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A cluster's radius may exceed its built value by this factor (plus
/// [`REBUILD_RADIUS_SLACK`]) before the state is re-centered: drifted
/// centroids weaken the routing bound and the density the bandings were
/// tuned to.
const REBUILD_RADIUS_FACTOR: f64 = 1.5;

/// Absolute radius slack of the drift trigger, so clusters built with
/// near-zero radius (duplicates) tolerate a little spread before
/// forcing a rebuild.
const REBUILD_RADIUS_SLACK: f64 = 0.05;

/// Cap on the density-derived effective tuning threshold: even a
/// cluster of near-duplicates keeps a banding that can still see pairs
/// at 0.95 Jaccard, bounding how much recall the density heuristic can
/// spend.
const MAX_EFFECTIVE_THRESHOLD: f64 = 0.95;

/// The clustered strategy's knobs, validated and unpacked from
/// [`super::IndexStrategy::Clustered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ClusteredParams {
    pub(crate) memory_budget_bytes: Option<usize>,
    pub(crate) routing_recall: f64,
    pub(crate) clusters: Option<usize>,
    pub(crate) flat_cutover: usize,
}

/// One cluster of the index: routing geometry plus its tuned banding.
pub(crate) struct Cluster {
    /// Per-register mode of the members at build time (the routing
    /// anchor).
    pub(crate) centroid: Vec<u32>,
    /// The cluster's banding layout (always concrete: the state only
    /// exists at operating points where the global tuner succeeds, and
    /// per-cluster collision probabilities are at least the global
    /// one).
    pub(crate) banding: Banding,
    /// Candidate recall the layout delivers at the cluster's effective
    /// collision probability (below the target only under budget
    /// pressure).
    pub(crate) planned_recall: f64,
    /// The cluster's banding index over member signatures.
    pub(crate) lsh: LshIndex<String>,
    /// Live members currently banded into `lsh`.
    pub(crate) members: usize,
    /// Current max member→centroid distance (grows as moved keys join;
    /// never shrinks until a rebuild).
    pub(crate) radius: f64,
    /// Radius at build time — the drift baseline.
    pub(crate) built_radius: f64,
}

/// Per-key bookkeeping of the clustered index: the store version that
/// was banded, the cluster it went to, and the band bucket ids for
/// O(bands) removal.
pub(crate) struct ClusteredKey {
    pub(crate) version: u64,
    pub(crate) cluster: usize,
    pub(crate) band_hashes: Box<[u64]>,
}

/// One clustered index state — the `Backend::Clustered` payload of a
/// cached similarity index.
pub(crate) struct ClusteredState {
    pub(crate) params: ClusteredParams,
    /// Inverse collision-probability table shared with the store
    /// (distance lookups).
    pub(crate) jaccard_by_d0: Arc<[f64]>,
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) keys: HashMap<String, ClusteredKey>,
    /// Live keys at build time — the population-change baseline.
    pub(crate) built_keys: usize,
    /// Cumulative probe counters (carried across rebuilds by the
    /// caller).
    pub(crate) probe_stats: ProbeStats,
}

/// Nearest cluster (by centroid distance) among those of `clusters`,
/// with the distance; `None` when there are no clusters.
pub(crate) fn nearest_cluster(
    clusters: &[Cluster],
    signature: &[u32],
    jaccard_by_d0: &[f64],
) -> Option<(usize, f64)> {
    clusters
        .iter()
        .enumerate()
        .map(|(at, cluster)| {
            (
                at,
                signature_distance(signature, &cluster.centroid, jaccard_by_d0),
            )
        })
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
}

/// The threshold a cluster's banding is tuned at: the query threshold,
/// raised to the pair-similarity floor the cluster's density implies.
/// With `d_hi` the members' upper-quartile centroid distance, 75 % of
/// members sit within `d_hi`, and any two of those pair up within
/// `2·d_hi` (triangle inequality) — i.e. at Jaccard ≥ `1 − 2·d_hi`.
/// Tuning at that floor (capped at [`MAX_EFFECTIVE_THRESHOLD`], never
/// below the query threshold) gives dense clusters more selective
/// layouts without losing the pairs they actually hold.
fn effective_threshold(threshold: f64, member_distances: &[f64]) -> f64 {
    if member_distances.is_empty() {
        return threshold;
    }
    let mut sorted = member_distances.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let d_hi = sorted[(sorted.len() * 3 / 4).min(sorted.len() - 1)];
    let pair_floor = 1.0 - 2.0 * d_hi;
    threshold.max(pair_floor.min(MAX_EFFECTIVE_THRESHOLD))
}

impl<S> SketchStore<S>
where
    S: Signature + JointEstimator + Clone + Send + Sync,
{
    /// Sweeps every live key's `(key, version, signature)` out of the
    /// store (peeking, never promoting), sorted by key — shard maps are
    /// hash-ordered, and the k-center seeding must see a deterministic
    /// order.
    fn sweep_signatures(&self) -> (Vec<String>, Vec<u64>, Vec<Vec<u32>>) {
        let mut rows: Vec<(String, u64, Vec<u32>)> = Vec::new();
        for shard in self.shards() {
            let guard = shard.read();
            for (key, slot) in guard.iter() {
                // Corrupt cold slots stay unindexed until a write heals
                // them (same policy as the flat refresh).
                let signature = self.peek_slot(slot, |sketch| {
                    let mut signature = Vec::new();
                    sketch.signature_into(&mut signature);
                    signature
                });
                if let Some(signature) = signature {
                    rows.push((key.clone(), slot.version, signature));
                }
            }
        }
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut keys = Vec::with_capacity(rows.len());
        let mut versions = Vec::with_capacity(rows.len());
        let mut signatures = Vec::with_capacity(rows.len());
        for (key, version, signature) in rows {
            keys.push(key);
            versions.push(version);
            signatures.push(signature);
        }
        (keys, versions, signatures)
    }

    /// Builds a clustered state from scratch: sweep, k-center, density
    /// measurement, budgeted banding plan, member insertion.
    ///
    /// Only called at operating points where the **global** tuner
    /// succeeds (`Banding::tune` at the query threshold) — per-cluster
    /// effective thresholds are at least the query threshold, so every
    /// cluster then tunes too; the global layout backstops the
    /// (unreachable in practice) `None` plan.
    pub(crate) fn build_clustered_state(
        &self,
        threshold: f64,
        banding_recall: f64,
        params: ClusteredParams,
    ) -> ClusteredState {
        let jaccard_by_d0 = self.collision_inverse_table();
        let probe = self.make_sketch();
        let m = probe.signature_len();
        let (keys, versions, signatures) = self.sweep_signatures();
        let mut state = ClusteredState {
            params,
            jaccard_by_d0: jaccard_by_d0.clone(),
            clusters: Vec::new(),
            keys: HashMap::with_capacity(keys.len()),
            built_keys: keys.len(),
            probe_stats: ProbeStats::default(),
        };
        if keys.is_empty() {
            return state;
        }

        let k = params
            .clusters
            .unwrap_or_else(|| (keys.len() as f64).sqrt().ceil() as usize)
            .max(1);
        let clustering = k_center(&signatures, k, &jaccard_by_d0);

        // Per-cluster member distances drive the density measurement.
        let cluster_count = clustering.centroids.len();
        let mut member_distances: Vec<Vec<f64>> = vec![Vec::new(); cluster_count];
        for (at, &cluster) in clustering.assignment.iter().enumerate() {
            member_distances[cluster].push(clustering.distance[at]);
        }
        let loads: Vec<ClusterLoad> = member_distances
            .iter()
            .map(|distances| ClusterLoad {
                keys: distances.len(),
                collision_p: probe
                    .register_collision_probability(effective_threshold(threshold, distances)),
            })
            .collect();
        let plans = plan_bandings(m, banding_recall, params.memory_budget_bytes, &loads);

        let global = Banding::tune(
            m,
            probe.register_collision_probability(threshold),
            banding_recall,
        )
        .expect("clustered states are only built at tunable operating points");
        state.clusters = clustering
            .centroids
            .into_iter()
            .zip(&plans)
            .zip(&clustering.radius)
            .map(|((centroid, plan), &radius)| {
                let banding = plan.banding.unwrap_or(global);
                Cluster {
                    centroid,
                    banding,
                    planned_recall: plan.recall,
                    lsh: LshIndex::new(banding.bands, banding.rows)
                        .expect("planned banding has bands, rows >= 1"),
                    members: 0,
                    radius,
                    built_radius: radius,
                }
            })
            .collect();

        let mut band_hashes: Vec<u64> = Vec::new();
        for ((key, version), (signature, &cluster)) in keys
            .into_iter()
            .zip(versions)
            .zip(signatures.iter().zip(&clustering.assignment))
        {
            let target = &mut state.clusters[cluster];
            target.lsh.band_hashes_into(signature, &mut band_hashes);
            target.lsh.insert_hashed(key.clone(), &band_hashes);
            target.members += 1;
            state.keys.insert(
                key,
                ClusteredKey {
                    version,
                    cluster,
                    band_hashes: band_hashes.clone().into_boxed_slice(),
                },
            );
        }
        state
    }

    /// Re-bands exactly the keys whose version stamp moved (assigning
    /// each to its nearest centroid and widening that cluster's
    /// radius), drops entries for removed keys, and reports whether the
    /// state has degraded enough — radius drift past the built
    /// baseline, or a doubled/halved population — that the caller
    /// should rebuild it from scratch.
    pub(crate) fn refresh_clustered(&self, state: &mut ClusteredState) -> bool {
        let ClusteredState {
            clusters,
            keys,
            jaccard_by_d0,
            ..
        } = state;
        let mut live_count = 0usize;
        let mut signature: Vec<u32> = Vec::new();
        let mut band_hashes: Vec<u64> = Vec::new();
        for shard in self.shards() {
            let guard = shard.read();
            live_count += guard.len();
            for (key, slot) in guard.iter() {
                if keys.get(key).is_some_and(|e| e.version == slot.version) {
                    continue;
                }
                if self
                    .peek_slot(slot, |sketch| sketch.signature_into(&mut signature))
                    .is_none()
                {
                    continue;
                }
                // A state built on an empty store has no centroids yet;
                // the rebuild trigger below picks the keys up.
                let Some((cluster, distance)) =
                    nearest_cluster(clusters, &signature, jaccard_by_d0)
                else {
                    continue;
                };
                if let Some(old) = keys.get(key) {
                    clusters[old.cluster]
                        .lsh
                        .remove_hashed(key, &old.band_hashes);
                    clusters[old.cluster].members -= 1;
                }
                let target = &mut clusters[cluster];
                target.lsh.band_hashes_into(&signature, &mut band_hashes);
                target.lsh.insert_hashed(key.clone(), &band_hashes);
                target.members += 1;
                target.radius = target.radius.max(distance);
                keys.insert(
                    key.clone(),
                    ClusteredKey {
                        version: slot.version,
                        cluster,
                        band_hashes: band_hashes.clone().into_boxed_slice(),
                    },
                );
            }
        }
        // Counts only disagree when keys were removed (or never indexed
        // because no centroid existed) — same warm-path economy as the
        // flat refresh.
        if keys.len() != live_count {
            let mut live: HashSet<String> = HashSet::with_capacity(live_count);
            for shard in self.shards() {
                live.extend(shard.read().keys().cloned());
            }
            keys.retain(|key, entry| {
                live.contains(key) || {
                    clusters[entry.cluster]
                        .lsh
                        .remove_hashed(key, &entry.band_hashes);
                    clusters[entry.cluster].members -= 1;
                    false
                }
            });
        }

        if state.built_keys == 0 {
            return live_count > 0;
        }
        if live_count > state.built_keys.saturating_mul(2)
            || live_count.saturating_mul(2) < state.built_keys
        {
            return true;
        }
        state.clusters.iter().any(|cluster| {
            cluster.radius > cluster.built_radius * REBUILD_RADIUS_FACTOR + REBUILD_RADIUS_SLACK
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threshold_raises_for_dense_clusters() {
        // All members within 0.01 of the centroid: pair floor 0.98,
        // capped at 0.95.
        let dense = vec![0.01, 0.005, 0.0, 0.01];
        assert_eq!(effective_threshold(0.5, &dense), MAX_EFFECTIVE_THRESHOLD);
        // Loose cluster: floor below the query threshold, which wins.
        let loose = vec![0.4, 0.45, 0.3, 0.5];
        assert_eq!(effective_threshold(0.5, &loose), 0.5);
        // Moderate density: upper-quartile distance 0.1 => floor 0.8.
        let moderate = vec![0.1, 0.1, 0.1, 0.1];
        assert!((effective_threshold(0.5, &moderate) - 0.8).abs() < 1e-12);
        // No members: the query threshold passes through.
        assert_eq!(effective_threshold(0.7, &[]), 0.7);
    }
}
