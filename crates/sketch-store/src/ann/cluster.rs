//! Greedy farthest-point k-center over register signatures.
//!
//! Jaccard distance is a true metric, so the classic Gonzalez
//! farthest-point heuristic applies to signature space: pick the first
//! key as seed, then repeatedly promote the key farthest from every
//! chosen center. The result is a 2-approximation of the optimal
//! k-center radius — good enough to give routing tight
//! triangle-inequality bounds — and fully deterministic for a fixed
//! input order (the store feeds keys sorted).

use sketch_core::centroid::{signature_distance, CentroidAccumulator};

/// Where each input signature landed after seeding: `assignment[i]` is
/// the cluster of signature `i`, `distance[i]` its distance to that
/// cluster's (refined) centroid, `centroids[c]` the per-register mode
/// of cluster `c`'s members, and `radius[c]` the cluster's max member
/// distance.
pub(crate) struct Clustering {
    pub(crate) centroids: Vec<Vec<u32>>,
    pub(crate) assignment: Vec<usize>,
    pub(crate) distance: Vec<f64>,
    pub(crate) radius: Vec<f64>,
}

/// Clusters `signatures` into at most `k` groups (fewer when duplicates
/// collapse the far-point pool early). Seeds with greedy farthest-point
/// over `signature_distance`, then refines each center to the
/// per-register mode of its members and re-assigns once against the
/// refined centroids — the mode maximizes expected register agreement,
/// which is what per-cluster bandings collide on.
///
/// # Panics
/// Panics if `signatures` is empty or `k` is zero.
pub(crate) fn k_center(signatures: &[Vec<u32>], k: usize, jaccard_by_d0: &[f64]) -> Clustering {
    assert!(!signatures.is_empty(), "cannot cluster zero signatures");
    assert!(k > 0, "cluster count must be at least 1");
    let k = k.min(signatures.len());

    // Gonzalez seeding: start from the first signature, repeatedly
    // promote the farthest unassigned point to a new center.
    let mut centers = vec![0usize];
    let mut assignment = vec![0usize; signatures.len()];
    let mut distance: Vec<f64> = signatures
        .iter()
        .map(|sig| signature_distance(&signatures[0], sig, jaccard_by_d0))
        .collect();
    while centers.len() < k {
        let (far, far_distance) =
            distance
                .iter()
                .enumerate()
                .fold(
                    (0usize, f64::MIN),
                    |best, (at, &d)| {
                        if d > best.1 {
                            (at, d)
                        } else {
                            best
                        }
                    },
                );
        if far_distance <= 0.0 {
            break; // every remaining point coincides with a center
        }
        let cluster = centers.len();
        centers.push(far);
        for (at, sig) in signatures.iter().enumerate() {
            let d = signature_distance(&signatures[far], sig, jaccard_by_d0);
            if d < distance[at] {
                distance[at] = d;
                assignment[at] = cluster;
            }
        }
    }

    // Refine: replace each seed signature by its members' per-register
    // mode, then re-assign once against the refined centroids. A single
    // Lloyd-style pass tightens radii without risking the oscillation
    // of full iteration.
    let mut accumulators: Vec<CentroidAccumulator> = centers
        .iter()
        .map(|_| CentroidAccumulator::new(signatures[0].len()))
        .collect();
    for (sig, &cluster) in signatures.iter().zip(&assignment) {
        accumulators[cluster].push(sig);
    }
    let centroids: Vec<Vec<u32>> = accumulators
        .iter()
        .map(CentroidAccumulator::centroid)
        .collect();
    let mut radius = vec![0.0f64; centroids.len()];
    for (at, sig) in signatures.iter().enumerate() {
        let (best, best_distance) = centroids.iter().enumerate().fold(
            (assignment[at], f64::MAX),
            |best, (cluster, centroid)| {
                let d = signature_distance(centroid, sig, jaccard_by_d0);
                if d < best.1 {
                    (cluster, d)
                } else {
                    best
                }
            },
        );
        assignment[at] = best;
        distance[at] = best_distance;
        radius[best] = radius[best].max(best_distance);
    }
    Clustering {
        centroids,
        assignment,
        distance,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity collision curve: table[d0] = d0/m (MinHash-like).
    fn identity_table(m: usize) -> Vec<f64> {
        (0..=m).map(|d0| d0 as f64 / m as f64).collect()
    }

    fn block_signature(m: usize, value: u32) -> Vec<u32> {
        vec![value; m]
    }

    #[test]
    fn separates_well_spread_groups() {
        let m = 16;
        let table = identity_table(m);
        let mut signatures = Vec::new();
        for group in 0..3u32 {
            for jitter in 0..4usize {
                let mut sig = block_signature(m, group * 100);
                sig[jitter] = 999; // one disagreeing register
                signatures.push(sig);
            }
        }
        let clustering = k_center(&signatures, 3, &table);
        assert_eq!(clustering.centroids.len(), 3);
        // Same-group members share a cluster, different groups do not.
        for group in 0..3 {
            let base = clustering.assignment[group * 4];
            for jitter in 0..4 {
                assert_eq!(clustering.assignment[group * 4 + jitter], base);
            }
        }
        let mut seen: Vec<usize> = (0..3).map(|g| clustering.assignment[g * 4]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
        // Tight groups => small radii (1 disagreeing register of 16).
        for &r in &clustering.radius {
            assert!(r <= 2.0 / m as f64 + 1e-9, "radius {r} too large");
        }
    }

    #[test]
    fn duplicate_signatures_collapse_to_fewer_clusters() {
        let m = 8;
        let table = identity_table(m);
        let signatures = vec![block_signature(m, 7); 5];
        let clustering = k_center(&signatures, 4, &table);
        assert_eq!(clustering.centroids.len(), 1);
        assert!(clustering.assignment.iter().all(|&c| c == 0));
        assert_eq!(clustering.radius[0], 0.0);
    }

    #[test]
    fn deterministic_for_fixed_input_order() {
        let m = 8;
        let table = identity_table(m);
        let signatures: Vec<Vec<u32>> = (0..20u32)
            .map(|i| (0..m as u32).map(|r| (i / 7) * 50 + r % (i + 1)).collect())
            .collect();
        let a = k_center(&signatures, 4, &table);
        let b = k_center(&signatures, 4, &table);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "zero signatures")]
    fn empty_input_panics() {
        k_center(&[], 2, &identity_table(4));
    }
}
