//! # sketch-store
//!
//! A concurrent, sharded registry of named sketches — the serving layer
//! between the sketch crates and a production workload.
//!
//! A [`SketchStore`] holds millions of keyed sketches (one per user
//! segment, page, shard, …) behind an `N`-way shard map of
//! `parking_lot::RwLock`-guarded hash tables. It is generic over any
//! sketch implementing the [`sketch_core`] traits, so the same store
//! serves SetSketch, HyperLogLog/GHLL, the MinHash family, HyperMinHash
//! or Theta sketches:
//!
//! * **batched ingest** — [`SketchStore::ingest`] records a whole batch
//!   under one lock acquisition, hitting the sketch's specialized
//!   [`BatchInsert`] path (SetSketch's sorted-batch `K_low` early
//!   exit);
//! * **cross-key queries** — [`SketchStore::joint`],
//!   [`SketchStore::jaccard`],
//!   [`SketchStore::intersection_cardinality`] and
//!   [`SketchStore::union_cardinality`] answer set-relationship
//!   questions between keys via the family's joint estimators;
//! * **merge-down** — [`SketchStore::merge_keys`] /
//!   [`SketchStore::merge_down`] fold selections (or everything) into
//!   one union sketch;
//! * **snapshots** — [`SketchStore::snapshot`] produces a plain-data
//!   [`StoreSnapshot`] that serializes with serde (feature `serde`,
//!   default-on) and restores with [`SketchStore::from_snapshot`];
//! * **similarity queries at scale** — [`SketchStore::similar_keys`]
//!   (top-k) and [`SketchStore::all_pairs`] (threshold sweep) prune
//!   candidates through an incrementally maintained banding LSH index
//!   over the sketches' own registers (paper §3.3) and verify survivors
//!   with the exact joint estimator in parallel — sub-quadratic where
//!   N·(N−1)/2 [`joint`](SketchStore::joint) calls are not.
//!
//! ## Concurrent ingest
//!
//! All operations take `&self`; scoped threads (or an [`Arc`]) share the
//! store directly. Inserts are idempotent and commutative, so ingest
//! order — and any interleaving across threads — cannot change the final
//! state:
//!
//! ```
//! use setsketch::{SetSketch2, SetSketchConfig};
//! use sketch_store::SketchStore;
//!
//! let config = SetSketchConfig::example_16bit();
//! let store = SketchStore::new(move || SetSketch2::new(config, 7));
//!
//! std::thread::scope(|scope| {
//!     for worker in 0..4u64 {
//!         let store = &store;
//!         scope.spawn(move || {
//!             let batch: Vec<u64> = (worker * 500..(worker + 1) * 500 + 250).collect();
//!             store.ingest("events", &batch); // overlapping ranges: fine
//!         });
//!     }
//! });
//!
//! let count = store.cardinality("events").unwrap();
//! assert!((count - 2250.0).abs() / 2250.0 < 0.1);
//! ```
//!
//! [`Arc`]: std::sync::Arc

#![warn(missing_docs)]

mod error;
mod query;
mod snapshot;
mod store;

pub use error::StoreError;
pub use query::{Neighbor, SimilarPair, SimilarityIndexInfo, DEFAULT_SIMILARITY_THRESHOLD};
pub use snapshot::StoreSnapshot;
pub use store::{SketchStore, DEFAULT_SHARDS};

// Downstream convenience: the traits a store-bound sketch implements,
// the joint-estimation result type, and the banding layout the
// similarity index reports.
pub use lsh::Banding;
pub use sketch_core::{
    BatchInsert, CardinalityEstimator, JointEstimator, JointQuantities, Mergeable, Signature,
    Sketch,
};
