//! # sketch-store
//!
//! A concurrent, sharded registry of named sketches — the serving layer
//! between the sketch crates and a production workload.
//!
//! A [`SketchStore`] holds millions of keyed sketches (one per user
//! segment, page, shard, …) behind an `N`-way shard map of
//! `parking_lot::RwLock`-guarded hash tables. It is generic over any
//! sketch implementing the [`sketch_core`] traits, so the same store
//! serves SetSketch, HyperLogLog/GHLL, the MinHash family, HyperMinHash
//! or Theta sketches:
//!
//! * **builder construction** — [`SketchStore::builder`] is the single
//!   front door: shard count, pipeline queue depth and writer threads
//!   (and future knobs) are configured fluently, with the legacy
//!   constructors kept as deprecated wrappers;
//! * **batched ingest** — [`SketchStore::ingest`] /
//!   [`SketchStore::ingest_bytes`] record a whole batch under one lock
//!   acquisition, hitting the sketch's specialized [`BatchInsert`] path
//!   (SetSketch's sorted-batch `K_low` early exit);
//! * **pipelined ingest** — [`SketchStore::pipeline`] returns an
//!   [`IngestPipeline`] routing operations into bounded per-writer
//!   queues drained by dedicated threads, with blocking backpressure,
//!   non-blocking `try_*` variants and executor-agnostic futures
//!   ([`SendOp`], [`Flush`]) so the store can sit behind any async
//!   server without blocking executor threads;
//! * **cross-key queries** — [`SketchStore::joint`],
//!   [`SketchStore::jaccard`],
//!   [`SketchStore::intersection_cardinality`] and
//!   [`SketchStore::union_cardinality`] answer set-relationship
//!   questions between keys via the family's joint estimators;
//! * **merge-down** — [`SketchStore::merge_keys`] /
//!   [`SketchStore::merge_down`] fold selections (or everything) into
//!   one union sketch;
//! * **snapshots** — [`SketchStore::snapshot`] produces a plain-data
//!   [`StoreSnapshot`] that serializes with serde (feature `serde`,
//!   default-on) and restores with [`SketchStore::from_snapshot`];
//!   tiered entries travel compressed ([`SnapshotEntry::Compact`])
//!   without being rehydrated;
//! * **delta sync** — [`SketchStore::delta_since`] sweeps out the keys
//!   whose version stamp moved past a floor as compact payloads
//!   ([`StoreDelta`]), and [`SketchStore::merge_in`] applies shipped
//!   states with idempotent union-merge semantics, bumping the version
//!   only when the registers actually changed — the replication
//!   substrate the `sketch-cluster` crate builds on;
//! * **memory tiers** — with the builder knobs
//!   [`StoreBuilder::memory_budget_bytes`] and
//!   [`StoreBuilder::demote_after_writes`], a second-chance clock scan
//!   demotes cold keys from **hot** (resident sketch) to **warm**
//!   (registers compressed in memory through the family's
//!   [`CompactSketch`](sketch_core::CompactSketch) codec) to **frozen**
//!   (compressed bytes spilled to temp segment files, removed when the
//!   store drops). Point reads and writes transparently rehydrate; bulk
//!   sweeps (similarity queries, snapshots, merge-down) peek without
//!   promoting. [`SketchStore::tier_stats`] reports the census;
//! * **crash-safe durability** — with [`StoreBuilder::durable_dir`],
//!   every mutation appends a CRC-framed record to a segment-rotated
//!   write-ahead log *before* applying ([`FsyncPolicy`] picks the
//!   latency/durability trade-off), periodic checkpoints bound replay
//!   time, and rebuilding from the same directory replays the store
//!   back bit-for-bit — truncating torn tails and quarantining
//!   bit-rotted records into a typed [`RecoveryReport`] instead of
//!   panicking;
//! * **checkpoint shipping** — [`SketchStore::export_checkpoint`]
//!   images the whole store in the checkpoint file format (served from
//!   the newest on-disk checkpoint when it is fresh enough — see
//!   [`SketchStore::latest_checkpoint_meta`] — swept live otherwise)
//!   and [`SketchStore::install_checkpoint`] validates a shipped image
//!   in full before installing it all-or-nothing: the store-side
//!   substrate of `sketch-cluster`'s node bootstrap;
//! * **similarity queries at scale** — [`SketchStore::similar_keys`]
//!   (top-k) and [`SketchStore::all_pairs`] (threshold sweep) prune
//!   candidates through an incrementally maintained banding LSH index
//!   over the sketches' own registers (paper §3.3) and verify survivors
//!   with the exact joint estimator in parallel — sub-quadratic where
//!   N·(N−1)/2 [`joint`](SketchStore::joint) calls are not. The
//!   `*_with` variants take typed [`QueryOptions`]: banding recall
//!   target or explicit layout, multi-probe policy, worker count, and
//!   [`Verification::Approximate`] — the §3.3 D₀-based
//!   approximate-quantity mode that replaces per-pair likelihood
//!   maximization with one register comparison and a table lookup.
//!
//! ## Concurrent ingest
//!
//! All operations take `&self`; scoped threads (or an [`Arc`]) share the
//! store directly. Inserts are idempotent and commutative, so ingest
//! order — and any interleaving across threads or pipeline handles —
//! cannot change the final state:
//!
//! ```
//! use setsketch::{SetSketch2, SetSketchConfig};
//! use sketch_store::SketchStore;
//!
//! let config = SetSketchConfig::example_16bit();
//! let store = SketchStore::builder(move || SetSketch2::new(config, 7)).build();
//!
//! std::thread::scope(|scope| {
//!     for worker in 0..4u64 {
//!         let store = &store;
//!         scope.spawn(move || {
//!             let batch: Vec<u64> = (worker * 500..(worker + 1) * 500 + 250).collect();
//!             store.ingest("events", &batch); // overlapping ranges: fine
//!         });
//!     }
//! });
//!
//! let count = store.cardinality("events").unwrap();
//! assert!((count - 2250.0).abs() / 2250.0 < 0.1);
//! ```
//!
//! The same workload through the pipelined front — callers only enqueue;
//! dedicated writer threads apply the updates (see [`IngestPipeline`]
//! for the async variants):
//!
//! ```
//! use setsketch::{SetSketch2, SetSketchConfig};
//! use sketch_store::SketchStore;
//!
//! let config = SetSketchConfig::example_16bit();
//! let store = SketchStore::builder(move || SetSketch2::new(config, 7)).build_shared();
//!
//! let pipeline = store.clone().pipeline();
//! for worker in 0..4u64 {
//!     let batch: Vec<u64> = (worker * 500..(worker + 1) * 500 + 250).collect();
//!     pipeline.ingest("events", &batch);
//! }
//! pipeline.flush();
//!
//! let count = store.cardinality("events").unwrap();
//! assert!((count - 2250.0).abs() / 2250.0 < 0.1);
//! ```
//!
//! [`Arc`]: std::sync::Arc

#![warn(missing_docs)]

mod ann;
mod builder;
mod delta;
mod error;
mod pipeline;
mod query;
mod snapshot;
mod store;
mod tier;
mod wal;

pub use ann::{
    ClusteredIndexInfo, IndexStrategy, ProbeStats, DEFAULT_CLUSTERED_RECALL, DEFAULT_FLAT_CUTOVER,
};
pub use builder::StoreBuilder;
pub use delta::{DeltaEntry, StoreDelta};
pub use error::StoreError;
pub use pipeline::{
    block_on, Flush, IngestPipeline, PipelineFull, SendOp, DEFAULT_QUEUE_DEPTH,
    DEFAULT_WRITER_THREADS,
};
pub use query::{
    Neighbor, Probe, QueryOptions, SimilarPair, SimilarityIndexInfo, Verification,
    DEFAULT_INDEX_CACHE_CAPACITY, DEFAULT_RECALL_TARGET, DEFAULT_SIMILARITY_THRESHOLD,
};
pub use snapshot::{SnapshotEntry, StoreSnapshot};
pub use store::{SketchStore, DEFAULT_SHARDS};
pub use tier::TierStats;
pub use wal::{CheckpointInstall, CheckpointMeta, ExportedCheckpoint, FsyncPolicy, RecoveryReport};

// Downstream convenience: the traits a store-bound sketch implements,
// the joint-estimation result type, and the banding layout the
// similarity index reports.
pub use lsh::Banding;
pub use sketch_core::{
    BatchInsert, CardinalityEstimator, JointEstimator, JointQuantities, Mergeable, Signature,
    Sketch,
};
