//! Crash-safe durability: a segment-rotated write-ahead log with
//! checkpoints, and the recovery machinery that rebuilds a store from
//! them after `kill -9`.
//!
//! With [`StoreBuilder::durable_dir`](crate::StoreBuilder::durable_dir)
//! set, every mutating operation (ingest, insert, put, merge-in,
//! remove, clear) appends one record to the current WAL segment
//! *before* applying itself to the in-memory shards — write-ahead
//! order, so under [`FsyncPolicy::Always`] an acknowledged write is on
//! disk before the caller sees it. Each record is framed as
//! `[u32 length][u32 CRC32][payload]`; the checksum
//! ([`sketch_math::crc32`]) is what lets recovery tell a torn write
//! from a bit-rotted one.
//!
//! Replay time is bounded by **checkpoints**: once the log grows past
//! the configured threshold, the store sweeps every slot's compact
//! payload (the same [`CompactSketch`] codecs the tiers and the wire
//! use) into `checkpoint-N.ckpt` — written to a temp file, fsynced and
//! atomically renamed — after which all WAL segments below `N` are
//! deleted. Recovery loads the newest checkpoint and replays only the
//! remaining tail.
//!
//! Recovery never panics on bad bytes. A record whose frame runs past
//! the end of its segment is a **torn tail** (the crash interrupted the
//! write): the tail is truncated and everything before it survives. A
//! fully framed record whose checksum mismatches is **mid-log
//! corruption** (bit rot): the record is quarantined — counted and
//! skipped — and scanning continues at the next frame. Both outcomes
//! are reported in the typed [`RecoveryReport`] available from
//! [`SketchStore::recovery_report`].

use crate::error::StoreError;
use crate::store::{SketchStore, Slot};
use crate::tier::{TierCodec, TierSlot};
use parking_lot::{Mutex, RwLock};
use sketch_core::{BatchInsert, CompactSketch, Mergeable};
use sketch_math::crc32::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// When WAL appends reach the operating system's disk.
///
/// The policy trades ingest latency against the window of acknowledged
/// writes a power loss can lose; a plain process crash (`kill -9`)
/// loses nothing under any policy, because the records are already in
/// the OS page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged write survives even
    /// power loss. The slowest option by orders of magnitude.
    Always,
    /// `fsync` after every `n` records: bounds the power-loss window to
    /// `n` acknowledged writes while amortizing the sync cost.
    EveryN(u64),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    /// Survives process crashes, not power loss. The default.
    Os,
}

/// What recovery found while rebuilding a durable store — returned by
/// [`SketchStore::recovery_report`] after
/// [`StoreBuilder::build`](crate::StoreBuilder::build) replayed the
/// directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// True when a checkpoint was loaded (replay started from it
    /// instead of an empty store).
    pub checkpoint_loaded: bool,
    /// Keys restored from the checkpoint.
    pub checkpoint_entries: usize,
    /// WAL segments scanned after the checkpoint.
    pub segments_scanned: usize,
    /// Tail records replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// Fully framed records skipped because their checksum mismatched
    /// or their payload failed to decode (mid-log corruption).
    pub records_quarantined: usize,
    /// Human-readable causes for the quarantined records, in scan
    /// order.
    pub quarantine_details: Vec<String>,
    /// True when the last segment ended in a partial frame (the crash
    /// tore the final write) and the tail was truncated.
    pub torn_tail: bool,
    /// Bytes dropped as torn or unparseable trailing data.
    pub dropped_bytes: u64,
}

impl RecoveryReport {
    /// True when recovery found nothing wrong: no torn tail, no
    /// quarantined records.
    pub fn is_clean(&self) -> bool {
        !self.torn_tail && self.records_quarantined == 0 && self.dropped_bytes == 0
    }
}

impl std::fmt::Display for RecoveryReport {
    /// One operator-readable line: what replay started from, how much
    /// it replayed, and whether anything was lost on the way.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.checkpoint_loaded {
            write!(f, "checkpoint loaded ({} entries)", self.checkpoint_entries)?;
        } else {
            write!(f, "no checkpoint")?;
        }
        write!(
            f,
            ", {} segments scanned, {} records replayed",
            self.segments_scanned, self.records_replayed
        )?;
        if self.is_clean() {
            write!(f, ", clean")
        } else {
            write!(
                f,
                ", {} quarantined, torn tail: {}, {} bytes dropped",
                self.records_quarantined, self.torn_tail, self.dropped_bytes
            )
        }
    }
}

/// Identity and freshness of the newest on-disk checkpoint — returned
/// by [`SketchStore::latest_checkpoint_meta`] so a replication donor
/// can refuse to serve a checkpoint that lags the live store by more
/// than a configured amount, and a bootstrapping node can pick the
/// freshest donor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Path of the checkpoint file.
    pub path: PathBuf,
    /// Size of the checkpoint file in bytes.
    pub bytes: u64,
    /// Number of key entries the checkpoint carries.
    pub entries: usize,
    /// The store's write counter observed when the checkpoint was cut
    /// (or recorded inside it, for a checkpoint found during recovery).
    /// `store.write_epoch() - write_epoch` is the checkpoint's lag.
    pub write_epoch: u64,
}

/// What a checkpoint export produced — the byte image a replication
/// donor streams to a bootstrapping peer (see
/// [`SketchStore::export_checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedCheckpoint {
    /// The write counter the image covers: every key stamped at or
    /// below this value is included. The installer may adopt it as its
    /// high-water mark for the donor.
    pub write_epoch: u64,
    /// Number of key entries in the image.
    pub entries: usize,
    /// True when the image was read from the newest on-disk checkpoint
    /// file; false when it was swept fresh from the in-memory shards.
    pub from_disk: bool,
    /// The image itself, in the checkpoint file format.
    pub bytes: Vec<u8>,
}

/// What installing a shipped checkpoint did to the local store —
/// returned by [`SketchStore::install_checkpoint`], mirroring
/// [`RecoveryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInstall {
    /// Key entries applied to the store.
    pub entries: usize,
    /// Size of the installed image in bytes.
    pub bytes: u64,
    /// The donor's write counter recorded in the image (the donor's
    /// domain, **not** this store's — use it as a high-water mark for
    /// the donor, never as a local epoch).
    pub source_epoch: u64,
    /// False when the store was empty and the image was bulk-installed;
    /// true when it was folded in entry by entry with CRDT merges
    /// (local keys absent from the image survive).
    pub merged: bool,
    /// True when the installed state was immediately persisted with a
    /// local checkpoint (durable stores only).
    pub persisted: bool,
}

impl std::fmt::Display for CheckpointInstall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries ({} bytes) {} at donor epoch {}{}",
            self.entries,
            self.bytes,
            if self.merged {
                "merged in"
            } else {
                "bulk-installed"
            },
            self.source_epoch,
            if self.persisted { ", persisted" } else { "" }
        )
    }
}

/// WAL segments rotate once they reach this many bytes; smaller
/// segments mean finer-grained deletion after a checkpoint.
const WAL_SEGMENT_ROTATE_BYTES: u64 = 16 << 20;

/// Upper bound on one record's payload — a length field beyond this is
/// treated as unparseable (torn or corrupted framing), not as a request
/// to allocate gigabytes.
const MAX_WAL_RECORD_BYTES: u32 = 64 << 20;

/// Default checkpoint threshold: log bytes appended since the last
/// checkpoint before the next one is cut.
pub(crate) const DEFAULT_CHECKPOINT_AFTER_BYTES: u64 = 8 << 20;

/// Magic prefix of a checkpoint file (`SKCK`).
const CHECKPOINT_MAGIC: u32 = 0x534B_434B;
/// Checkpoint format version.
const CHECKPOINT_FORMAT: u8 = 1;

/// Record tags.
const TAG_INGEST: u8 = 1;
const TAG_INGEST_BYTES: u8 = 2;
const TAG_PUT: u8 = 3;
const TAG_MERGE_IN: u8 = 4;
const TAG_REMOVE: u8 = 5;
const TAG_CLEAR: u8 = 6;

// --- Record encoding -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, value: &[u8]) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value);
}

/// Encodes an ingest record (covers single inserts too).
pub(crate) fn encode_ingest(key: &str, elements: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + key.len() + 8 * elements.len());
    out.push(TAG_INGEST);
    put_str(&mut out, key);
    put_u32(&mut out, elements.len() as u32);
    for &element in elements {
        put_u64(&mut out, element);
    }
    out
}

/// Encodes a byte-element ingest record.
pub(crate) fn encode_ingest_bytes(key: &str, elements: &[&[u8]]) -> Vec<u8> {
    let total: usize = elements.iter().map(|e| e.len() + 4).sum();
    let mut out = Vec::with_capacity(1 + 8 + key.len() + total);
    out.push(TAG_INGEST_BYTES);
    put_str(&mut out, key);
    put_u32(&mut out, elements.len() as u32);
    for element in elements {
        put_bytes(&mut out, element);
    }
    out
}

/// Encodes a put record carrying the sketch's compact payload.
pub(crate) fn encode_put(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + key.len() + payload.len());
    out.push(TAG_PUT);
    put_str(&mut out, key);
    put_bytes(&mut out, payload);
    out
}

/// Encodes a merge-in record carrying the incoming compact payload.
pub(crate) fn encode_merge_in(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + key.len() + payload.len());
    out.push(TAG_MERGE_IN);
    put_str(&mut out, key);
    put_bytes(&mut out, payload);
    out
}

/// Encodes a remove record.
pub(crate) fn encode_remove(key: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + key.len());
    out.push(TAG_REMOVE);
    put_str(&mut out, key);
    out
}

/// Encodes a clear record.
pub(crate) fn encode_clear() -> Vec<u8> {
    vec![TAG_CLEAR]
}

// --- Record decoding -------------------------------------------------

/// A decoded WAL record, owning its fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// `u64` elements recorded under a key.
    Ingest {
        /// The target key.
        key: String,
        /// The recorded elements.
        elements: Vec<u64>,
    },
    /// Byte-string elements recorded under a key.
    IngestBytes {
        /// The target key.
        key: String,
        /// The recorded byte strings.
        elements: Vec<Vec<u8>>,
    },
    /// A whole sketch stored under a key (compact payload).
    Put {
        /// The target key.
        key: String,
        /// The sketch's compact payload.
        payload: Vec<u8>,
    },
    /// A replica state merged into a key (compact payload).
    MergeIn {
        /// The target key.
        key: String,
        /// The incoming compact payload.
        payload: Vec<u8>,
    },
    /// A key removed.
    Remove {
        /// The removed key.
        key: String,
    },
    /// The whole store cleared.
    Clear,
}

/// Bounded little-endian reader over a record payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| "record truncated".to_owned())?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "key is not UTF-8".to_owned())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn done(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing bytes after record".to_owned())
        }
    }
}

/// Decodes one record payload (the CRC has already been verified).
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut reader = Reader::new(payload);
    let record = match reader.u8()? {
        TAG_INGEST => {
            let key = reader.str()?;
            let count = reader.u32()? as usize;
            // Bounded: each element needs 8 bytes of payload.
            if count > payload.len() / 8 + 1 {
                return Err("element count exceeds record size".to_owned());
            }
            let mut elements = Vec::with_capacity(count);
            for _ in 0..count {
                elements.push(reader.u64()?);
            }
            WalRecord::Ingest { key, elements }
        }
        TAG_INGEST_BYTES => {
            let key = reader.str()?;
            let count = reader.u32()? as usize;
            if count > payload.len() / 4 + 1 {
                return Err("element count exceeds record size".to_owned());
            }
            let mut elements = Vec::with_capacity(count);
            for _ in 0..count {
                elements.push(reader.bytes()?);
            }
            WalRecord::IngestBytes { key, elements }
        }
        TAG_PUT => WalRecord::Put {
            key: reader.str()?,
            payload: reader.bytes()?,
        },
        TAG_MERGE_IN => WalRecord::MergeIn {
            key: reader.str()?,
            payload: reader.bytes()?,
        },
        TAG_REMOVE => WalRecord::Remove { key: reader.str()? },
        TAG_CLEAR => WalRecord::Clear,
        tag => return Err(format!("unknown record tag {tag}")),
    };
    reader.done()?;
    Ok(record)
}

// --- The log itself --------------------------------------------------

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:010}.ckpt"))
}

/// Best-effort directory fsync, so renames and new files survive power
/// loss on filesystems that need it.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// The open write-ahead log: the current segment file plus rotation and
/// fsync bookkeeping. Lives behind a mutex in [`Durability`]; appends
/// are serialized (the write-ahead ordering guarantee needs them to
/// be).
pub(crate) struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    seq: u64,
    file: File,
    segment_bytes: u64,
    appends_since_sync: u64,
    bytes_since_checkpoint: u64,
}

impl Wal {
    /// Opens a fresh segment `seq` under `dir` for appending.
    fn create(dir: &Path, seq: u64, fsync: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(dir, seq))?;
        sync_dir(dir);
        Ok(Wal {
            dir: dir.to_path_buf(),
            fsync,
            seq,
            file,
            segment_bytes: 0,
            appends_since_sync: 0,
            bytes_since_checkpoint: 0,
        })
    }

    /// Appends one CRC-framed record and applies the fsync policy.
    pub(crate) fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() as u64 <= MAX_WAL_RECORD_BYTES as u64);
        if self.segment_bytes >= WAL_SEGMENT_ROTATE_BYTES {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(payload));
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.segment_bytes += frame.len() as u64;
        self.bytes_since_checkpoint += frame.len() as u64;
        self.appends_since_sync += 1;
        let sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Os => false,
        };
        if sync {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Closes the current segment and opens the next one.
    fn rotate(&mut self) -> io::Result<()> {
        let _ = self.file.sync_data();
        let next = Wal::create(&self.dir, self.seq + 1, self.fsync)?;
        let bytes_since_checkpoint = self.bytes_since_checkpoint;
        *self = next;
        self.bytes_since_checkpoint = bytes_since_checkpoint;
        Ok(())
    }

    /// Rotates for a checkpoint and returns the new segment's sequence
    /// number: the checkpoint will cover every segment *below* it.
    fn rotate_for_checkpoint(&mut self) -> io::Result<u64> {
        self.rotate()?;
        Ok(self.seq)
    }

    /// Log bytes appended since the last checkpoint (or open).
    pub(crate) fn bytes_since_checkpoint(&self) -> u64 {
        self.bytes_since_checkpoint
    }

    fn note_checkpointed(&mut self) {
        self.bytes_since_checkpoint = 0;
    }
}

// --- Store-side runtime ----------------------------------------------

/// A replay entry point taking a compact payload: install or merge the
/// decoded sketch under the key, or explain why the bytes don't decode.
type ApplyPayloadFn<S> = fn(&SketchStore<S>, &str, &[u8]) -> Result<(), String>;

/// Replay entry points captured as plain function pointers, so the
/// generic recovery scan needs no trait bounds — the bounds live on
/// [`StoreBuilder::durable_dir`](crate::StoreBuilder::durable_dir),
/// where the non-capturing closures coerce (the same pattern as
/// [`TierCodec`]).
pub(crate) struct WalApplier<S> {
    pub(crate) ingest: fn(&SketchStore<S>, &str, &[u64]),
    pub(crate) ingest_bytes: fn(&SketchStore<S>, &str, &[Vec<u8>]),
    pub(crate) put: ApplyPayloadFn<S>,
    pub(crate) merge_in: ApplyPayloadFn<S>,
}

impl<S> Clone for WalApplier<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for WalApplier<S> {}

impl<S: BatchInsert + Mergeable + Clone + PartialEq> WalApplier<S> {
    /// The replay surface of sketch type `S`.
    pub(crate) fn of() -> Self {
        WalApplier {
            ingest: |store, key, elements| {
                store.with_entry(key, |sketch| sketch.insert_batch(elements));
            },
            ingest_bytes: |store, key, elements| {
                store.with_entry(key, |sketch| {
                    for element in elements {
                        sketch.insert_bytes(element);
                    }
                });
            },
            put: |store, key, payload| {
                let sketch = store.tier.try_decode(payload)?;
                store.put_unlogged(key, sketch);
                Ok(())
            },
            merge_in: |store, key, payload| {
                let incoming = store.tier.try_decode(payload)?;
                store
                    .merge_in_unlogged(key, &incoming)
                    .map(|_| ())
                    .map_err(|error| error.to_string())
            },
        }
    }
}

/// Per-store durability state, present when the builder set a durable
/// directory.
pub(crate) struct Durability<S> {
    /// Logged operations hold this as readers across *log then apply*;
    /// the checkpoint sweep holds it as a writer, so every record in
    /// the segments it covers has also been applied to the shards it
    /// sweeps — without this barrier a record could be logged below the
    /// checkpoint but applied after the sweep, and replay would lose
    /// it.
    pub(crate) gate: RwLock<()>,
    pub(crate) wal: Mutex<Wal>,
    /// Compact codec for checkpoint sweeps and put/merge-in records.
    pub(crate) codec: TierCodec<S>,
    /// What recovery found when this store was built.
    pub(crate) report: RecoveryReport,
    /// Cut a checkpoint once this many log bytes accumulate.
    pub(crate) checkpoint_after_bytes: u64,
    /// Newest on-disk checkpoint (from recovery or the last sweep);
    /// `None` until the first checkpoint exists.
    pub(crate) latest_checkpoint: Mutex<Option<CheckpointMeta>>,
    /// Single-flight latch for checkpointing.
    checkpointing: AtomicBool,
    /// Appends that failed (the write went ahead un-logged; see
    /// [`SketchStore::wal_failures`]).
    wal_failures: AtomicUsize,
    last_wal_error: Mutex<Option<String>>,
}

impl<S> Durability<S> {
    fn note_wal_failure(&self, error: io::Error) {
        self.wal_failures.fetch_add(1, Ordering::Relaxed);
        *self.last_wal_error.lock() = Some(error.to_string());
    }
}

impl<S> SketchStore<S> {
    /// What recovery found when this store was built from a durable
    /// directory; `None` for non-durable stores.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durability.as_ref().map(|d| &d.report)
    }

    /// Number of WAL appends that have failed since the store was
    /// built (the writes themselves still applied — a full disk
    /// degrades durability, not availability). See
    /// [`last_wal_error`](Self::last_wal_error) for the latest cause.
    pub fn wal_failures(&self) -> usize {
        self.durability
            .as_ref()
            .map_or(0, |d| d.wal_failures.load(Ordering::Relaxed))
    }

    /// The most recent WAL append failure, if any.
    pub fn last_wal_error(&self) -> Option<String> {
        self.durability
            .as_ref()
            .and_then(|d| d.last_wal_error.lock().clone())
    }

    /// Log bytes appended since the last checkpoint; `None` for
    /// non-durable stores.
    pub fn wal_bytes_since_checkpoint(&self) -> Option<u64> {
        self.durability
            .as_ref()
            .map(|d| d.wal.lock().bytes_since_checkpoint())
    }

    /// Runs `apply` under the durability protocol: when the store is
    /// durable, `record`'s bytes are appended to the WAL first
    /// (write-ahead), both steps under the checkpoint gate; afterwards
    /// a checkpoint is cut if the log has grown past the threshold.
    /// Non-durable stores skip straight to `apply`.
    pub(crate) fn logged<R>(
        &self,
        record: impl FnOnce(&Durability<S>) -> Vec<u8>,
        apply: impl FnOnce(&Self) -> R,
    ) -> R {
        let Some(durability) = self.durability.as_ref() else {
            return apply(self);
        };
        let result = {
            let _gate = durability.gate.read();
            if let Err(error) = durability.wal.lock().append(&record(durability)) {
                durability.note_wal_failure(error);
            }
            apply(self)
        };
        if durability.wal.lock().bytes_since_checkpoint() >= durability.checkpoint_after_bytes {
            // Best-effort: a failed checkpoint only delays log
            // truncation; the next write retries.
            let _ = self.checkpoint();
        }
        result
    }

    /// Cuts a checkpoint now: sweeps every slot's compact payload into
    /// a new checkpoint file and deletes the WAL segments it covers.
    /// No-op on non-durable stores and when another thread is already
    /// checkpointing.
    ///
    /// Durable stores checkpoint automatically once the log outgrows
    /// the builder's
    /// [`checkpoint_after_bytes`](crate::StoreBuilder::checkpoint_after_bytes);
    /// call this to bound replay time manually (e.g. before a planned
    /// restart).
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let Some(durability) = self.durability.as_ref() else {
            return Ok(());
        };
        if durability.checkpointing.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let result = self.checkpoint_inner(durability);
        durability.checkpointing.store(false, Ordering::Release);
        result.map_err(|error| StoreError::Durability(error.to_string()))
    }

    fn checkpoint_inner(&self, durability: &Durability<S>) -> io::Result<()> {
        // Writer side of the gate: every logged record below the
        // rotation point has finished applying once this is held.
        let _gate = durability.gate.write();
        let mut wal = durability.wal.lock();
        let seq = wal.rotate_for_checkpoint()?;
        let dir = wal.dir.clone();
        let epoch = self.write_epoch_load();

        let tmp_path = dir.join(format!("checkpoint-{seq:010}.tmp"));
        let mut out = Vec::new();
        put_u32(&mut out, CHECKPOINT_MAGIC);
        out.push(CHECKPOINT_FORMAT);
        put_u64(&mut out, epoch);
        let mut entries = 0usize;
        for shard in self.shards() {
            for (key, slot) in shard.read().iter() {
                let payload = match &slot.state {
                    TierSlot::Hot(sketch) => (durability.codec.compress)(sketch),
                    TierSlot::Warm(bytes) => bytes.to_vec(),
                    TierSlot::Frozen {
                        segment,
                        offset,
                        len,
                    } => match self.tier.read_frozen(*segment, *offset, *len) {
                        Ok(bytes) => bytes,
                        Err(_) => continue, // unreadable spill: skip
                    },
                    TierSlot::Quarantined(_) => continue,
                };
                push_checkpoint_entry(&mut out, key, slot.version, &payload);
                entries += 1;
            }
        }
        let mut file = File::create(&tmp_path)?;
        file.write_all(&out)?;
        file.sync_all()?;
        drop(file);
        let final_path = checkpoint_path(&dir, seq);
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&dir);
        *durability.latest_checkpoint.lock() = Some(CheckpointMeta {
            path: final_path,
            bytes: out.len() as u64,
            entries,
            write_epoch: epoch,
        });
        wal.note_checkpointed();
        drop(wal);

        // The checkpoint covers every segment below `seq`; delete them
        // and any superseded checkpoints (best-effort — stale files are
        // also cleaned during the next recovery).
        for (kind, old) in list_dir(&dir) {
            let stale = match kind {
                DirEntryKind::Segment => old < seq,
                DirEntryKind::Checkpoint => old < seq,
            };
            if stale {
                let path = match kind {
                    DirEntryKind::Segment => segment_path(&dir, old),
                    DirEntryKind::Checkpoint => checkpoint_path(&dir, old),
                };
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }
}

/// Appends one CRC-framed checkpoint entry (`key`, `version`,
/// `payload`) to a checkpoint image.
fn push_checkpoint_entry(out: &mut Vec<u8>, key: &str, version: u64, payload: &[u8]) {
    let mut entry = Vec::with_capacity(key.len() + payload.len() + 16);
    put_str(&mut entry, key);
    put_u64(&mut entry, version);
    put_bytes(&mut entry, payload);
    put_u32(out, entry.len() as u32);
    put_u32(out, crc32(&entry));
    out.extend_from_slice(&entry);
}

// --- Checkpoint shipping (node bootstrap) ----------------------------

impl<S> SketchStore<S> {
    /// Identity and freshness of the newest on-disk checkpoint — from
    /// recovery or the last sweep. `None` for non-durable stores and
    /// before the first checkpoint exists.
    pub fn latest_checkpoint_meta(&self) -> Option<CheckpointMeta> {
        self.durability
            .as_ref()
            .and_then(|d| d.latest_checkpoint.lock().clone())
    }
}

impl<S: CompactSketch> SketchStore<S> {
    /// Exports the store's state as one checkpoint image — the donor
    /// side of node bootstrap.
    ///
    /// When a durable store's newest on-disk checkpoint lags the live
    /// write counter by at most `max_lag`, that file is served verbatim
    /// (no sweep, no shard locks). Otherwise — including always for
    /// non-durable stores — the image is swept fresh from the shards,
    /// one read lock at a time, so exporting never blocks ingest. A
    /// swept image uses the exact on-disk checkpoint format, so
    /// [`install_checkpoint`](Self::install_checkpoint) and recovery's
    /// loader accept either source interchangeably.
    ///
    /// Quarantined slots and unreadable spill records are skipped, as
    /// in a checkpoint sweep: the image carries the surviving keys.
    pub fn export_checkpoint(&self, max_lag: u64) -> ExportedCheckpoint {
        if let Some(meta) = self.latest_checkpoint_meta() {
            let lag = self.write_epoch_load().saturating_sub(meta.write_epoch);
            if lag <= max_lag {
                // An unreadable file falls through to a fresh sweep.
                if let Ok(bytes) = fs::read(&meta.path) {
                    return ExportedCheckpoint {
                        write_epoch: meta.write_epoch,
                        entries: meta.entries,
                        from_disk: true,
                        bytes,
                    };
                }
            }
        }
        // Read the counter *before* sweeping (as `delta_since` does): a
        // key stamped after this load may be missed by its shard's read
        // pass, so the image must not claim to cover it.
        let epoch = self.write_epoch_load();
        let mut out = Vec::new();
        put_u32(&mut out, CHECKPOINT_MAGIC);
        out.push(CHECKPOINT_FORMAT);
        put_u64(&mut out, epoch);
        let mut entries = 0usize;
        for shard in self.shards() {
            for (key, slot) in shard.read().iter() {
                let payload = match &slot.state {
                    TierSlot::Hot(sketch) => sketch.compress(),
                    TierSlot::Warm(bytes) => bytes.to_vec(),
                    TierSlot::Frozen {
                        segment,
                        offset,
                        len,
                    } => match self.tier.read_frozen(*segment, *offset, *len) {
                        Ok(bytes) => bytes,
                        Err(_) => continue,
                    },
                    TierSlot::Quarantined(_) => continue,
                };
                push_checkpoint_entry(&mut out, key, slot.version, &payload);
                entries += 1;
            }
        }
        ExportedCheckpoint {
            write_epoch: epoch,
            entries,
            from_disk: false,
            bytes: out,
        }
    }
}

impl<S: CompactSketch + Mergeable + Clone + PartialEq> SketchStore<S> {
    /// Installs a checkpoint image shipped from a compatible peer — the
    /// receiving side of node bootstrap.
    ///
    /// The image is validated **in full before the store is touched**:
    /// the header must parse, every entry frame must be fully present
    /// with a matching checksum, and every payload must decompress
    /// against this store's configuration. Any failure returns
    /// [`StoreError::Durability`] and leaves the store exactly as it
    /// was — a half-shipped or corrupted snapshot is never partially
    /// visible to queries.
    ///
    /// An **empty** store takes the bulk path: every shard is locked
    /// (ascending order) and the entries are installed directly —
    /// compressed (warm) on tiered stores, resident otherwise; on a durable
    /// store a local checkpoint is cut immediately afterwards so the
    /// installed state is on disk (a crash before that completes simply
    /// recovers the pre-install state and bootstrap reruns). A
    /// non-empty store folds the image in entry by entry with the same
    /// idempotent CRDT merges delta sync uses — local keys absent from
    /// the image survive, and each merge is individually atomic and
    /// WAL-logged, so a failure part-way is no worse than a partially
    /// applied delta and heals the same way.
    ///
    /// Versions are stamped fresh from the local write counter. The
    /// donor's epoch is returned in
    /// [`CheckpointInstall::source_epoch`] for use as a high-water
    /// mark toward the donor — it is **never** adopted as this store's
    /// own epoch (the counters are independent domains).
    pub fn install_checkpoint(&self, bytes: &[u8]) -> Result<CheckpointInstall, StoreError> {
        let invalid = |detail: &str| StoreError::Durability(format!("checkpoint image: {detail}"));
        let mut header = Reader::new(bytes);
        if header.u32().map_err(|_| invalid("missing magic"))? != CHECKPOINT_MAGIC {
            return Err(invalid("bad checkpoint magic"));
        }
        let format = header.u8().map_err(|_| invalid("missing format"))?;
        if format != CHECKPOINT_FORMAT {
            return Err(invalid(&format!("unsupported checkpoint format {format}")));
        }
        let source_epoch = header.u64().map_err(|_| invalid("missing epoch"))?;

        // Phase 1: parse every frame. Torn or corrupt frames fail the
        // whole image here, before any mutation.
        let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
        let mut at = 4 + 1 + 8;
        loop {
            match next_frame(bytes, at) {
                Frame::End => break,
                Frame::Torn => return Err(invalid(&format!("torn entry frame at offset {at}"))),
                Frame::Corrupt(_) => {
                    return Err(invalid(&format!("checksum mismatch at offset {at}")))
                }
                Frame::Good(frame, end) => {
                    let mut entry = Reader::new(frame);
                    let parsed = (|| -> Result<(String, Vec<u8>), String> {
                        let key = entry.str()?;
                        let _version = entry.u64()?;
                        let payload = entry.bytes()?;
                        entry.done()?;
                        Ok((key, payload))
                    })()
                    .map_err(|detail| invalid(&format!("entry at offset {at}: {detail}")))?;
                    entries.push(parsed);
                    at = end;
                }
            }
        }

        // Phase 2: decode-validate every payload against this store's
        // configuration — a donor with mismatched parameters is refused
        // wholesale, not discovered half-way through an install.
        let prototype = self.make_sketch();
        let mut decoded: Vec<S> = entries
            .iter()
            .map(|(key, payload)| {
                S::decompress(&prototype, payload)
                    .map_err(|error| invalid(&format!("key {key:?}: {error}")))
            })
            .collect::<Result<_, _>>()?;

        let image_bytes = bytes.len() as u64;
        let count = entries.len();

        // Phase 3: apply. Bulk path when the store is empty — checked
        // under *all* shard write locks, taken in ascending order (the
        // same nesting discipline `with_pair` uses), so no write can
        // slip in between the check and the install.
        // Without a tier codec nothing can rehydrate a warm slot, so
        // entries land hot (already decoded in phase 2); with one they
        // install compressed, exactly as recovery installs a checkpoint.
        let install_warm = self.tier.enabled();
        let bulk_installed = {
            let mut guards: Vec<_> = self.shards().iter().map(|shard| shard.write()).collect();
            if guards.iter().all(|guard| guard.is_empty()) {
                for ((key, payload), sketch) in entries.drain(..).zip(decoded.drain(..)) {
                    let version = self.next_version();
                    let index = self.shard_index(&key);
                    let slot = if install_warm {
                        self.tier.account_insert_warm(payload.len());
                        Slot {
                            state: TierSlot::Warm(payload.into_boxed_slice()),
                            version,
                            touched: AtomicBool::new(false),
                        }
                    } else {
                        self.tier.account_insert_hot(&sketch);
                        Slot::hot(sketch, version)
                    };
                    guards[index].insert(key, slot);
                }
                true
            } else {
                false
            }
        };
        if bulk_installed {
            drop(decoded);
            let persisted = self.durability.is_some() && self.checkpoint().is_ok();
            return Ok(CheckpointInstall {
                entries: count,
                bytes: image_bytes,
                source_epoch,
                merged: false,
                persisted,
            });
        }

        // Non-empty store: CRDT-merge each entry through the logged
        // path (WAL-covered on durable stores).
        for ((key, _payload), sketch) in entries.iter().zip(decoded.iter()) {
            self.merge_in(key, sketch)?;
        }
        Ok(CheckpointInstall {
            entries: count,
            bytes: image_bytes,
            source_epoch,
            merged: true,
            persisted: self.durability.is_some(),
        })
    }
}

// --- Recovery --------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirEntryKind {
    Segment,
    Checkpoint,
}

/// Parses the durable directory into (kind, sequence) pairs.
fn list_dir(dir: &Path) -> Vec<(DirEntryKind, u64)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse().ok())
        {
            found.push((DirEntryKind::Segment, seq));
        } else if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse().ok())
        {
            found.push((DirEntryKind::Checkpoint, seq));
        }
    }
    found
}

/// One scan step's outcome over a CRC-framed byte stream.
enum Frame<'a> {
    /// A verified payload and the offset just past its frame.
    Good(&'a [u8], usize),
    /// A fully present frame whose checksum mismatched; skip to the
    /// offset.
    Corrupt(usize),
    /// The remaining bytes cannot be a frame (torn write or corrupted
    /// length field); scanning stops here.
    Torn,
    /// Clean end of data.
    End,
}

/// Reads the frame starting at `at`.
fn next_frame(bytes: &[u8], at: usize) -> Frame<'_> {
    if at == bytes.len() {
        return Frame::End;
    }
    if bytes.len() - at < 8 {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    if len > MAX_WAL_RECORD_BYTES {
        return Frame::Torn;
    }
    let len = len as usize;
    let Some(end) = at.checked_add(8 + len).filter(|&end| end <= bytes.len()) else {
        return Frame::Torn;
    };
    let expected = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
    let payload = &bytes[at + 8..end];
    if crc32(payload) != expected {
        return Frame::Corrupt(end);
    }
    Frame::Good(payload, end)
}

/// Rebuilds `store` from the durable directory and opens a fresh WAL
/// segment for new appends. Called by the builder before the store is
/// shared, so direct shard access needs no coordination.
pub(crate) fn recover<S>(
    store: &SketchStore<S>,
    dir: &Path,
    fsync: FsyncPolicy,
    applier: &WalApplier<S>,
) -> Result<(Wal, RecoveryReport, Option<CheckpointMeta>), StoreError> {
    let durability_error = |error: io::Error| StoreError::Durability(error.to_string());
    fs::create_dir_all(dir).map_err(durability_error)?;
    let mut report = RecoveryReport::default();

    let listing = list_dir(dir);
    let mut checkpoints: Vec<u64> = listing
        .iter()
        .filter(|(kind, _)| *kind == DirEntryKind::Checkpoint)
        .map(|&(_, seq)| seq)
        .collect();
    checkpoints.sort_unstable();

    // Load the newest checkpoint whose header parses; fall back to
    // older ones rather than losing everything to one bad file.
    let mut floor = 0u64;
    let mut loaded_meta = None;
    for &seq in checkpoints.iter().rev() {
        match load_checkpoint(store, &checkpoint_path(dir, seq), &mut report) {
            Ok(meta) => {
                report.checkpoint_loaded = true;
                floor = seq;
                loaded_meta = Some(meta);
                break;
            }
            Err(detail) => {
                report
                    .quarantine_details
                    .push(format!("checkpoint {seq}: {detail}"));
            }
        }
    }

    // Replay the tail segments in order.
    let mut segments: Vec<u64> = listing
        .iter()
        .filter(|(kind, _)| *kind == DirEntryKind::Segment)
        .map(|&(_, seq)| seq)
        .collect();
    segments.sort_unstable();
    let mut next_seq = floor.max(segments.last().map_or(0, |&s| s + 1));
    for &seq in &segments {
        if seq < floor {
            // Fully covered by the checkpoint; delete (also handles a
            // crash between checkpoint rename and segment deletion).
            let _ = fs::remove_file(segment_path(dir, seq));
            continue;
        }
        next_seq = next_seq.max(seq + 1);
        report.segments_scanned += 1;
        let path = segment_path(dir, seq);
        let bytes = fs::read(&path).map_err(durability_error)?;
        let last_segment = Some(seq) == segments.last().copied();
        let mut at = 0usize;
        loop {
            match next_frame(&bytes, at) {
                Frame::End => break,
                Frame::Torn => {
                    report.torn_tail = true;
                    report.dropped_bytes += (bytes.len() - at) as u64;
                    if last_segment {
                        // Truncate so the tail never resurfaces.
                        let _ = OpenOptions::new()
                            .write(true)
                            .open(&path)
                            .and_then(|file| file.set_len(at as u64));
                    }
                    break;
                }
                Frame::Corrupt(end) => {
                    report.records_quarantined += 1;
                    report
                        .quarantine_details
                        .push(format!("segment {seq} offset {at}: checksum mismatch"));
                    at = end;
                }
                Frame::Good(payload, end) => {
                    match decode_record(payload).map(|record| apply(store, applier, record)) {
                        Ok(Ok(())) => report.records_replayed += 1,
                        Ok(Err(detail)) | Err(detail) => {
                            report.records_quarantined += 1;
                            report
                                .quarantine_details
                                .push(format!("segment {seq} offset {at}: {detail}"));
                        }
                    }
                    at = end;
                }
            }
        }
    }

    let wal = Wal::create(dir, next_seq, fsync).map_err(durability_error)?;
    Ok((wal, report, loaded_meta))
}

/// Applies one replayed record through the unlogged entry points.
fn apply<S>(
    store: &SketchStore<S>,
    applier: &WalApplier<S>,
    record: WalRecord,
) -> Result<(), String> {
    match record {
        WalRecord::Ingest { key, elements } => {
            (applier.ingest)(store, &key, &elements);
            Ok(())
        }
        WalRecord::IngestBytes { key, elements } => {
            (applier.ingest_bytes)(store, &key, &elements);
            Ok(())
        }
        WalRecord::Put { key, payload } => (applier.put)(store, &key, &payload),
        WalRecord::MergeIn { key, payload } => (applier.merge_in)(store, &key, &payload),
        WalRecord::Remove { key } => {
            store.remove_unlogged(&key);
            Ok(())
        }
        WalRecord::Clear => {
            store.clear_unlogged();
            Ok(())
        }
    }
}

/// Loads one checkpoint file into the store (entries restore warm, as
/// in a snapshot restore). Entry-level corruption is quarantined; a bad
/// header fails the whole file so the caller can fall back.
fn load_checkpoint<S>(
    store: &SketchStore<S>,
    path: &Path,
    report: &mut RecoveryReport,
) -> Result<CheckpointMeta, String> {
    let bytes = fs::read(path).map_err(|error| error.to_string())?;
    let mut header = Reader::new(&bytes);
    if header.u32().map_err(|_| "missing magic".to_owned())? != CHECKPOINT_MAGIC {
        return Err("bad checkpoint magic".to_owned());
    }
    let format = header.u8().map_err(|_| "missing format".to_owned())?;
    if format != CHECKPOINT_FORMAT {
        return Err(format!("unsupported checkpoint format {format}"));
    }
    let epoch = header.u64().map_err(|_| "missing epoch".to_owned())?;
    let mut at = 4 + 1 + 8;
    let mut max_version = 0u64;
    loop {
        match next_frame(&bytes, at) {
            Frame::End => break,
            Frame::Torn => {
                report.dropped_bytes += (bytes.len() - at) as u64;
                report
                    .quarantine_details
                    .push(format!("checkpoint offset {at}: torn entry"));
                break;
            }
            Frame::Corrupt(end) => {
                report.records_quarantined += 1;
                report
                    .quarantine_details
                    .push(format!("checkpoint offset {at}: checksum mismatch"));
                at = end;
            }
            Frame::Good(payload, end) => {
                let mut entry = Reader::new(payload);
                match (|| -> Result<(String, u64, Vec<u8>), String> {
                    let key = entry.str()?;
                    let version = entry.u64()?;
                    let payload = entry.bytes()?;
                    entry.done()?;
                    Ok((key, version, payload))
                })() {
                    Ok((key, version, payload)) => {
                        max_version = max_version.max(version);
                        store.install_recovered_entry(key, version, payload);
                        report.checkpoint_entries += 1;
                    }
                    Err(detail) => {
                        report.records_quarantined += 1;
                        report
                            .quarantine_details
                            .push(format!("checkpoint offset {at}: {detail}"));
                    }
                }
                at = end;
            }
        }
    }
    // Restore the write counter so replicas' high-water marks stay
    // meaningful across the restart; versions in the file never exceed
    // the swept epoch, but guard anyway.
    store.set_write_epoch(epoch.max(max_version));
    Ok(CheckpointMeta {
        path: path.to_path_buf(),
        bytes: bytes.len() as u64,
        entries: report.checkpoint_entries,
        write_epoch: epoch,
    })
}

impl<S> SketchStore<S> {
    /// Installs one checkpoint entry as a warm slot with its original
    /// version stamp (recovery only — the store is not shared yet).
    pub(crate) fn install_recovered_entry(&self, key: String, version: u64, payload: Vec<u8>) {
        self.tier.account_insert_warm(payload.len());
        self.shard(&key).write().insert(
            key,
            Slot {
                state: TierSlot::Warm(payload.into_boxed_slice()),
                version,
                touched: AtomicBool::new(false),
            },
        );
    }
}

/// Assembles the durability runtime after recovery.
pub(crate) fn durability_runtime<S>(
    wal: Wal,
    report: RecoveryReport,
    latest_checkpoint: Option<CheckpointMeta>,
    codec: TierCodec<S>,
    checkpoint_after_bytes: u64,
) -> Durability<S> {
    Durability {
        gate: RwLock::new(()),
        wal: Mutex::new(wal),
        codec,
        report,
        checkpoint_after_bytes,
        latest_checkpoint: Mutex::new(latest_checkpoint),
        checkpointing: AtomicBool::new(false),
        wal_failures: AtomicUsize::new(0),
        last_wal_error: Mutex::new(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let records = [
            encode_ingest("k", &[1, 2, 3]),
            encode_ingest_bytes("k", &[b"ab".as_slice(), b"".as_slice()]),
            encode_put("p", &[9, 9, 9]),
            encode_merge_in("m", &[1]),
            encode_remove("r"),
            encode_clear(),
        ];
        let decoded: Vec<WalRecord> = records
            .iter()
            .map(|payload| decode_record(payload).expect("roundtrip"))
            .collect();
        assert_eq!(
            decoded[0],
            WalRecord::Ingest {
                key: "k".into(),
                elements: vec![1, 2, 3]
            }
        );
        assert_eq!(
            decoded[1],
            WalRecord::IngestBytes {
                key: "k".into(),
                elements: vec![b"ab".to_vec(), Vec::new()]
            }
        );
        assert_eq!(decoded[4], WalRecord::Remove { key: "r".into() });
        assert_eq!(decoded[5], WalRecord::Clear);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99]).is_err(), "unknown tag");
        let mut truncated = encode_ingest("key", &[1, 2, 3]);
        truncated.pop();
        assert!(decode_record(&truncated).is_err());
        let mut trailing = encode_remove("key");
        trailing.push(0);
        assert!(decode_record(&trailing).is_err());
    }

    #[test]
    fn frame_scan_classifies() {
        let payload = encode_remove("key");
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        match next_frame(&bytes, 0) {
            Frame::Good(found, end) => {
                assert_eq!(found, &payload[..]);
                assert_eq!(end, bytes.len());
            }
            _ => panic!("expected a good frame"),
        }
        // Flip a payload bit: corrupt, frame boundary preserved.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(next_frame(&flipped, 0), Frame::Corrupt(end) if end == bytes.len()));
        // Drop trailing bytes: torn.
        assert!(matches!(
            next_frame(&bytes[..bytes.len() - 1], 0),
            Frame::Torn
        ));
        assert!(matches!(next_frame(&bytes[..4], 0), Frame::Torn));
        // Implausible length field: torn, not an allocation attempt.
        let mut huge = bytes.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(next_frame(&huge, 0), Frame::Torn));
        assert!(matches!(next_frame(&bytes, bytes.len()), Frame::End));
    }
}
