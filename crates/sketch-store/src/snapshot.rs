//! Point-in-time store snapshots and their serialization.
//!
//! A [`StoreSnapshot`] is the *in-process* snapshot shape: typed
//! entries, serde round-trips, rebuilt with
//! [`SketchStore::from_snapshot`](crate::SketchStore::from_snapshot).
//! For shipping a whole store **between processes** — node bootstrap —
//! use the byte-level checkpoint image instead
//! ([`SketchStore::export_checkpoint`](crate::SketchStore::export_checkpoint)
//! /
//! [`SketchStore::install_checkpoint`](crate::SketchStore::install_checkpoint)):
//! it shares the durable checkpoint file format, CRC-frames every
//! entry, and installs all-or-nothing into an existing store.

use std::collections::BTreeMap;

/// One key's state inside a [`StoreSnapshot`].
///
/// A tiered store snapshots warm and frozen keys **without
/// rehydrating** them: their compressed bytes travel as-is
/// ([`Compact`](Self::Compact)), while hot keys clone their sketch
/// ([`Resident`](Self::Resident)). On restore
/// ([`SketchStore::from_snapshot`](crate::SketchStore::from_snapshot)),
/// compact entries come back as warm slots and stay compressed until
/// first touched.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotEntry<S> {
    /// A resident sketch clone (the key was hot).
    Resident(S),
    /// The key's compressed register payload, in the family's
    /// [`CompactSketch`](sketch_core::CompactSketch) wire format (the
    /// key was warm or frozen).
    Compact(Vec<u8>),
}

impl<S> SnapshotEntry<S> {
    /// The resident sketch, if this entry carries one.
    pub fn as_resident(&self) -> Option<&S> {
        match self {
            SnapshotEntry::Resident(sketch) => Some(sketch),
            SnapshotEntry::Compact(_) => None,
        }
    }

    /// The compressed payload, if this entry carries one.
    pub fn as_compact(&self) -> Option<&[u8]> {
        match self {
            SnapshotEntry::Resident(_) => None,
            SnapshotEntry::Compact(bytes) => Some(bytes),
        }
    }
}

/// A point-in-time copy of a [`SketchStore`](crate::SketchStore)'s
/// contents: every key with its state (resident clone or compressed
/// payload — see [`SnapshotEntry`]), plus the shard count so the store
/// can be rebuilt with the same layout.
///
/// Snapshots are the store's unit of persistence and shipping: they are
/// plain data (no locks, no factory), order their entries
/// deterministically, and — with the `serde` feature — round-trip
/// through any serde format. Restore one with
/// [`SketchStore::from_snapshot`](crate::SketchStore::from_snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot<S> {
    /// Number of shards of the originating store.
    pub shard_count: usize,
    /// Key → snapshotted state, ordered by key.
    pub entries: BTreeMap<String, SnapshotEntry<S>>,
}

impl<S> StoreSnapshot<S> {
    /// Number of stored sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the snapshot holds no sketches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The state snapshotted under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&SnapshotEntry<S>> {
        self.entries.get(key)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Hand-written serde wiring.
    //!
    //! The vendored serde_derive shim only handles non-generic structs,
    //! so the generic snapshot pivots through the shim's [`Content`]
    //! tree directly. The wire shapes match what the real derive would
    //! produce: `{ shard_count, entries }` for the snapshot and an
    //! externally tagged map (`{"Resident": …}` / `{"Compact": […]}`)
    //! for each entry.

    use super::{SnapshotEntry, StoreSnapshot};
    use serde::{Content, Deserialize, Deserializer, Serialize, Serializer};

    impl<S: Serialize> Serialize for SnapshotEntry<S> {
        fn serialize<Z: Serializer>(&self, serializer: Z) -> Result<Z::Ok, Z::Error> {
            let (tag, content) = match self {
                SnapshotEntry::Resident(sketch) => {
                    ("Resident", serde::__private::to_content(sketch))
                }
                SnapshotEntry::Compact(bytes) => ("Compact", serde::__private::to_content(bytes)),
            };
            serializer.serialize_content(Content::Map(vec![(tag.to_owned(), content)]))
        }
    }

    impl<'de, S: Deserialize<'de>> Deserialize<'de> for SnapshotEntry<S> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let content = deserializer.deserialize_content()?;
            let mut fields = match content {
                Content::Map(map) => map,
                other => return Err(serde::__private::expected_map::<D::Error>(&other)),
            };
            if fields.len() != 1 {
                return Err(<D::Error as serde::de::Error>::custom(
                    "snapshot entry must be a single-variant map",
                ));
            }
            let (tag, value) = fields.pop().expect("length checked above");
            match tag.as_str() {
                "Resident" => Ok(SnapshotEntry::Resident(serde::__private::from_content::<
                    S,
                    D::Error,
                >(value)?)),
                "Compact" => Ok(SnapshotEntry::Compact(serde::__private::from_content::<
                    Vec<u8>,
                    D::Error,
                >(value)?)),
                other => Err(<D::Error as serde::de::Error>::custom(format!(
                    "unknown snapshot entry variant `{other}`"
                ))),
            }
        }
    }

    impl<S: Serialize> Serialize for StoreSnapshot<S> {
        fn serialize<Z: Serializer>(&self, serializer: Z) -> Result<Z::Ok, Z::Error> {
            let fields = vec![
                (
                    "shard_count".to_owned(),
                    serde::__private::to_content(&self.shard_count),
                ),
                (
                    "entries".to_owned(),
                    serde::__private::to_content(&self.entries),
                ),
            ];
            serializer.serialize_content(Content::Map(fields))
        }
    }

    impl<'de, S: Deserialize<'de>> Deserialize<'de> for StoreSnapshot<S> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let content = deserializer.deserialize_content()?;
            let mut fields = match content {
                Content::Map(map) => map,
                other => return Err(serde::__private::expected_map::<D::Error>(&other)),
            };
            let shard_count = serde::__private::from_content::<usize, D::Error>(
                serde::__private::take_field(&mut fields, "shard_count")
                    .ok_or_else(|| serde::__private::missing_field::<D::Error>("shard_count"))?,
            )?;
            if shard_count == 0 {
                return Err(<D::Error as serde::de::Error>::custom(
                    "snapshot shard_count must be at least 1",
                ));
            }
            let entries = serde::__private::from_content::<_, D::Error>(
                serde::__private::take_field(&mut fields, "entries")
                    .ok_or_else(|| serde::__private::missing_field::<D::Error>("entries"))?,
            )?;
            Ok(StoreSnapshot {
                shard_count,
                entries,
            })
        }
    }
}
