//! Point-in-time store snapshots and their serialization.

use std::collections::BTreeMap;

/// A point-in-time copy of a [`SketchStore`](crate::SketchStore)'s
/// contents: every key with a clone of its sketch, plus the shard count
/// so the store can be rebuilt with the same layout.
///
/// Snapshots are the store's unit of persistence and shipping: they are
/// plain data (no locks, no factory), order their entries
/// deterministically, and — with the `serde` feature — round-trip
/// through any serde format. Restore one with
/// [`SketchStore::from_snapshot`](crate::SketchStore::from_snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot<S> {
    /// Number of shards of the originating store.
    pub shard_count: usize,
    /// Key → sketch state, ordered by key.
    pub entries: BTreeMap<String, S>,
}

impl<S> StoreSnapshot<S> {
    /// Number of stored sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the snapshot holds no sketches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sketch snapshotted under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&S> {
        self.entries.get(key)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Hand-written serde wiring.
    //!
    //! The vendored serde_derive shim only handles non-generic structs,
    //! so the generic snapshot pivots through the shim's [`Content`]
    //! tree directly. The wire shape matches what the real derive would
    //! produce for `{ shard_count, entries }`.

    use super::StoreSnapshot;
    use serde::{Content, Deserialize, Deserializer, Serialize, Serializer};

    impl<S: Serialize> Serialize for StoreSnapshot<S> {
        fn serialize<Z: Serializer>(&self, serializer: Z) -> Result<Z::Ok, Z::Error> {
            let fields = vec![
                (
                    "shard_count".to_owned(),
                    serde::__private::to_content(&self.shard_count),
                ),
                (
                    "entries".to_owned(),
                    serde::__private::to_content(&self.entries),
                ),
            ];
            serializer.serialize_content(Content::Map(fields))
        }
    }

    impl<'de, S: Deserialize<'de>> Deserialize<'de> for StoreSnapshot<S> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let content = deserializer.deserialize_content()?;
            let mut fields = match content {
                Content::Map(map) => map,
                other => return Err(serde::__private::expected_map::<D::Error>(&other)),
            };
            let shard_count = serde::__private::from_content::<usize, D::Error>(
                serde::__private::take_field(&mut fields, "shard_count")
                    .ok_or_else(|| serde::__private::missing_field::<D::Error>("shard_count"))?,
            )?;
            if shard_count == 0 {
                return Err(<D::Error as serde::de::Error>::custom(
                    "snapshot shard_count must be at least 1",
                ));
            }
            let entries = serde::__private::from_content::<_, D::Error>(
                serde::__private::take_field(&mut fields, "entries")
                    .ok_or_else(|| serde::__private::missing_field::<D::Error>("entries"))?,
            )?;
            Ok(StoreSnapshot {
                shard_count,
                entries,
            })
        }
    }
}
