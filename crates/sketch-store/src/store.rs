//! The sharded concurrent sketch registry.

use crate::builder::StoreBuilder;
use crate::error::StoreError;
use crate::pipeline::PipelineDefaults;
use crate::query::SimilarityIndex;
use crate::snapshot::{SnapshotEntry, StoreSnapshot};
use crate::tier::{TierCodec, TierPolicy, TierRuntime, TierSlot};
use crate::wal::Durability;
use parking_lot::{Mutex, RwLock};
use sketch_core::{
    BatchInsert, CardinalityEstimator, CompactSketch, JointEstimator, JointQuantities, Mergeable,
    Sketch,
};
use sketch_rand::hash_bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A stored sketch together with its write version and tier state.
///
/// Every mutating access to the key (ingest, insert, put, restore)
/// stamps the slot with a fresh value of the store's monotonic write
/// counter, which is all the bookkeeping ingest pays for
/// similarity-index maintenance: the query engine re-bands exactly the
/// keys whose version moved since they were last indexed. The counter
/// is store-global, so a key removed and later re-created never repeats
/// an old version (the index relies on inequality to detect staleness).
///
/// Tier moves (hot ↔ warm ↔ frozen) do **not** bump the version — the
/// registers are unchanged, so index entries stay valid. The `touched`
/// bit is the clock scan's second chance: set by every read and write,
/// cleared on the scan's first encounter, demoted on its second.
#[derive(Debug)]
pub(crate) struct Slot<S> {
    pub(crate) state: TierSlot<S>,
    pub(crate) version: u64,
    pub(crate) touched: AtomicBool,
}

impl<S> Slot<S> {
    /// A freshly resident slot (touched, so the next clock pass spares
    /// it).
    pub(crate) fn hot(sketch: S, version: u64) -> Self {
        Slot {
            state: TierSlot::Hot(sketch),
            version,
            touched: AtomicBool::new(true),
        }
    }

    /// Marks the slot recently used (second-chance bit).
    pub(crate) fn touch(&self) {
        self.touched.store(true, Ordering::Relaxed);
    }

    /// The resident sketch; callers must have promoted first.
    pub(crate) fn hot_ref(&self) -> &S {
        match &self.state {
            TierSlot::Hot(sketch) => sketch,
            _ => unreachable!("slot not resident after promotion"),
        }
    }

    /// Mutable resident sketch; callers must have promoted first.
    pub(crate) fn hot_mut(&mut self) -> &mut S {
        match &mut self.state {
            TierSlot::Hot(sketch) => sketch,
            _ => unreachable!("slot not resident after promotion"),
        }
    }
}

/// One shard: a lock-guarded map from key to its versioned slot.
pub(crate) type Shard<S> = RwLock<HashMap<String, Slot<S>>>;

/// Seed of the key-routing hash (independent of any sketch's seed).
const ROUTING_SEED: u64 = 0x5354_4f52_4b45_5953; // "STORKEYS"

/// Default shard count of [`StoreBuilder`]-constructed stores.
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent registry mapping string keys to sketches of one type.
///
/// The key space is split across `N` shards, each guarded by its own
/// `parking_lot::RwLock` over a hash map, so writers to different keys
/// rarely contend and readers never block each other. All operations
/// take `&self`; share the store across threads with
/// [`Arc`](std::sync::Arc) or scoped threads.
///
/// Sketches are created on first ingest by the store's *factory*
/// closure, which fixes the configuration and hash seed — everything the
/// store creates is therefore mutually compatible, and cross-key queries
/// ([`joint`](Self::joint), [`merge_keys`](Self::merge_keys)) work by
/// construction. Externally built sketches can still be injected with
/// [`put`](Self::put) (e.g. states shipped from another process); if
/// their parameters differ, combining queries surface the sketch
/// family's detailed incompatibility error through
/// [`StoreError::Incompatible`].
///
/// With the builder's tiering knobs
/// ([`memory_budget_bytes`](StoreBuilder::memory_budget_bytes),
/// [`demote_after_writes`](StoreBuilder::demote_after_writes)) the
/// store additionally manages *where* each key's registers live: cold
/// keys are compressed in place (warm) and, under memory pressure,
/// spilled to disk (frozen), while reads and writes transparently
/// rehydrate them — see [`tier_stats`](Self::tier_stats) and the
/// memory-tiers section of the crate overview.
///
/// ```
/// use setsketch::{SetSketch2, SetSketchConfig};
/// use sketch_store::SketchStore;
///
/// let config = SetSketchConfig::example_16bit();
/// let store = SketchStore::builder(move || SetSketch2::new(config, 42)).build();
///
/// store.ingest("paris", &(0..10_000).collect::<Vec<u64>>());
/// store.ingest("london", &(5_000..15_000).collect::<Vec<u64>>());
///
/// let paris = store.cardinality("paris").unwrap();
/// assert!((paris - 10_000.0).abs() / 10_000.0 < 0.1);
///
/// // True Jaccard: 5000 / 15000 = 1/3.
/// let joint = store.joint("paris", "london").unwrap();
/// assert!((joint.jaccard - 1.0 / 3.0).abs() < 0.05);
///
/// let global = store.union_cardinality(&["paris", "london"]).unwrap();
/// assert!((global - 15_000.0).abs() / 15_000.0 < 0.1);
/// ```
pub struct SketchStore<S> {
    shards: Box<[Shard<S>]>,
    factory: Box<dyn Fn() -> S + Send + Sync>,
    /// Monotonic write counter feeding the slots' version stamps.
    write_epoch: AtomicU64,
    /// Tiering state: codec, policy, byte accounting, clock hand and
    /// spill segments (see [`crate::tier`]).
    pub(crate) tier: TierRuntime<S>,
    /// Pipeline knobs fixed at construction ([`StoreBuilder`]); applied
    /// by every [`pipeline`](Self::pipeline) handle the store hands out.
    pub(crate) pipeline_defaults: PipelineDefaults,
    /// Lazily built banding LSH indexes (most recently used first, one
    /// per queried threshold) over the stored sketches' signatures,
    /// maintained incrementally by the similarity query engine (see
    /// [`crate::query`]).
    pub(crate) similarity: Mutex<Vec<SimilarityIndex>>,
    /// Bound on cached similarity index states ([`StoreBuilder::index_cache_capacity`]).
    pub(crate) index_cache_capacity: usize,
    /// Operating points served from the index cache (diagnostics,
    /// reported by [`similarity_index_info`](Self::similarity_index_info)).
    pub(crate) index_cache_hits: AtomicU64,
    /// Operating points that tuned a fresh index state.
    pub(crate) index_cache_misses: AtomicU64,
    /// Per-key cardinality cache for approximate-mode queries, keyed by
    /// the slot version that produced each figure — a stale version
    /// invalidates the entry, so the cache never needs explicit
    /// flushing on writes (see [`crate::query`]).
    pub(crate) cardinality_cache: Mutex<HashMap<String, (u64, f64)>>,
    /// Lazily computed inverse of the factory configuration's
    /// register-collision-probability curve, tabulated over all
    /// `m + 1` possible D₀ values — shared by every approximate-mode
    /// query (the curve is a configuration property, so the table
    /// never changes for the store's lifetime).
    pub(crate) collision_inverse: std::sync::OnceLock<std::sync::Arc<[f64]>>,
    /// Write-ahead log and checkpoint runtime, present when the builder
    /// set a [`durable_dir`](StoreBuilder::durable_dir) (see
    /// [`crate::wal`]). Installed by the builder before the store is
    /// shared.
    pub(crate) durability: Option<Durability<S>>,
}

impl<S> SketchStore<S> {
    /// Starts building a store around `factory`, the closure that builds
    /// the empty sketch for every new key (fixing configuration and hash
    /// seed). This is the one construction entry point; shard count,
    /// ingest-pipeline depth and writer threads, memory-tier knobs and
    /// future options hang off the returned [`StoreBuilder`].
    ///
    /// ```
    /// use setsketch::{SetSketch2, SetSketchConfig};
    /// use sketch_store::SketchStore;
    ///
    /// let config = SetSketchConfig::example_16bit();
    /// let store = SketchStore::builder(move || SetSketch2::new(config, 42))
    ///     .shards(32)
    ///     .queue_depth(512)
    ///     .writer_threads(4)
    ///     .build();
    /// assert_eq!(store.shard_count(), 32);
    /// ```
    pub fn builder(factory: impl Fn() -> S + Send + Sync + 'static) -> StoreBuilder<S> {
        StoreBuilder::new(factory)
    }

    /// Creates a store with [`DEFAULT_SHARDS`] shards; `factory` builds
    /// the empty sketch for every new key (fixing configuration and
    /// seed).
    #[deprecated(note = "use `SketchStore::builder(factory).build()` instead")]
    pub fn new(factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Self::builder(factory).build()
    }

    /// Creates a store with an explicit shard count (≥ 1). More shards
    /// reduce write contention; the key→shard mapping is stable for a
    /// given count.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[deprecated(note = "use `SketchStore::builder(factory).shards(n).build()` instead")]
    pub fn with_shards(shards: usize, factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Self::builder(factory).shards(shards).build()
    }

    /// Assembles the store from validated [`StoreBuilder`] parts.
    pub(crate) fn from_parts(
        shards: usize,
        factory: Box<dyn Fn() -> S + Send + Sync>,
        pipeline_defaults: PipelineDefaults,
        tier_policy: TierPolicy,
        tier_codec: Option<TierCodec<S>>,
        index_cache_capacity: usize,
    ) -> Self {
        debug_assert!(shards > 0, "builder validates the shard count");
        debug_assert!(
            index_cache_capacity > 0,
            "builder validates the index cache capacity"
        );
        let shards = (0..shards)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        // The codec decompresses against an empty factory sketch; build
        // it once so promotions never call the factory.
        let prototype = if tier_codec.is_some() {
            Some(factory())
        } else {
            None
        };
        Self {
            shards,
            factory,
            write_epoch: AtomicU64::new(0),
            tier: TierRuntime::new(tier_policy, tier_codec, prototype),
            pipeline_defaults,
            similarity: Mutex::new(Vec::new()),
            index_cache_capacity,
            index_cache_hits: AtomicU64::new(0),
            index_cache_misses: AtomicU64::new(0),
            cardinality_cache: Mutex::new(HashMap::new()),
            collision_inverse: std::sync::OnceLock::new(),
            durability: None,
        }
    }

    /// A fresh, never-repeated version stamp for a mutated slot.
    #[inline]
    pub(crate) fn next_version(&self) -> u64 {
        self.write_epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current write-counter value, for the delta module's sweeps.
    #[inline]
    pub(crate) fn write_epoch_load(&self) -> u64 {
        self.write_epoch.load(Ordering::Relaxed)
    }

    /// Restores the write counter from a recovered checkpoint, so
    /// version stamps issued after a restart stay above everything
    /// replicas have already seen (recovery only — the store is not
    /// shared yet).
    pub(crate) fn set_write_epoch(&self, value: u64) {
        self.write_epoch.store(value, Ordering::Relaxed);
    }

    /// Builds an empty sketch through the store's factory (the
    /// configuration every stored sketch shares).
    pub(crate) fn make_sketch(&self) -> S {
        (self.factory)()
    }

    /// The shard array, for the query engine's version sweep and the
    /// tier manager's clock scan.
    pub(crate) fn shards(&self) -> &[Shard<S>] {
        &self.shards
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index a key routes to (multiply-shift over the routing
    /// hash; uniform for any shard count). Also the pipeline's routing
    /// function, so one writer thread owns each shard's traffic.
    #[inline]
    pub(crate) fn shard_index(&self, key: &str) -> usize {
        let hash = hash_bytes(key.as_bytes(), ROUTING_SEED);
        (((hash as u128) * (self.shards.len() as u128)) >> 64) as usize
    }

    #[inline]
    pub(crate) fn shard(&self, key: &str) -> &Shard<S> {
        &self.shards[self.shard_index(key)]
    }

    /// Number of stored sketches (locks each shard briefly; the count is
    /// approximate while writers are active).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no key holds a sketch.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// True if `key` holds a sketch (in any tier).
    pub fn contains_key(&self, key: &str) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// All keys in **ascending lexicographic order** (point-in-time per
    /// shard).
    ///
    /// Internally keys live in hash-ordered shard maps, so the raw
    /// iteration order would vary with the shard count and hasher; this
    /// method sorts before returning, and the order is guaranteed —
    /// callers may rely on it for deterministic sweeps and diffs. The
    /// same guarantee holds for [`snapshot`](Self::snapshot), whose
    /// entries are an ordered map keyed the same way.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Runs a closure against the sketch under `key` without cloning it.
    ///
    /// A point read **promotes**: if the key's registers are compressed
    /// (warm) or spilled (frozen), they are rehydrated to a resident
    /// sketch under the shard's write lock first; hot keys take the
    /// original read-lock fast path. A corrupt payload behaves like a
    /// missing key here — use [`try_with_sketch`](Self::try_with_sketch)
    /// to tell the two apart.
    pub fn with_sketch<R>(&self, key: &str, op: impl FnOnce(&S) -> R) -> Option<R> {
        self.try_with_sketch(key, op).ok().flatten()
    }

    /// Like [`with_sketch`](Self::with_sketch), but a warm/frozen
    /// payload that fails its checksum or codec round-trip surfaces as
    /// [`StoreError::CorruptSlot`] (and the slot is quarantined)
    /// instead of folding into `None`.
    pub fn try_with_sketch<R>(
        &self,
        key: &str,
        op: impl FnOnce(&S) -> R,
    ) -> Result<Option<R>, StoreError> {
        {
            let shard = self.shard(key).read();
            match shard.get(key) {
                None => return Ok(None),
                Some(slot) => {
                    if let TierSlot::Hot(sketch) = &slot.state {
                        slot.touch();
                        return Ok(Some(op(sketch)));
                    }
                }
            }
        }
        // Cold key: promote under the write lock (the key can vanish in
        // the unlocked window, hence the re-check).
        let result = {
            let mut shard = self.shard(key).write();
            let Some(slot) = shard.get_mut(key) else {
                return Ok(None);
            };
            self.ensure_hot_slot(key, slot)?;
            slot.touch();
            Some(op(slot.hot_ref()))
        };
        self.maintain_if_over_budget();
        Ok(result)
    }

    /// Stores `sketch` under `key`, replacing and returning any previous
    /// sketch. This bypasses the factory — use it to inject states built
    /// elsewhere (e.g. states shipped from worker processes). The new
    /// entry starts hot; a replaced warm/frozen entry is rehydrated on
    /// the way out.
    pub fn put(&self, key: &str, sketch: S) -> Option<S> {
        // Compress before entering the logged section so the record
        // closure does not contend with the apply closure for `sketch`.
        let compact = self
            .durability
            .as_ref()
            .map(|durability| (durability.codec.compress)(&sketch));
        self.logged(
            move |_| crate::wal::encode_put(key, &compact.expect("compressed when durable")),
            move |store| store.put_unlogged(key, sketch),
        )
    }

    pub(crate) fn put_unlogged(&self, key: &str, sketch: S) -> Option<S> {
        let version = self.next_version();
        self.tier.account_insert_hot(&sketch);
        let previous = self
            .shard(key)
            .write()
            .insert(key.to_owned(), Slot::hot(sketch, version));
        let previous = previous.and_then(|slot| self.take_sketch(slot));
        self.maybe_maintain();
        previous
    }

    /// Removes and returns the sketch under `key` (rehydrating it if it
    /// was warm or frozen; `None` is also returned for a quarantined
    /// slot, whose registers are unrecoverable — the entry is removed
    /// either way).
    pub fn remove(&self, key: &str) -> Option<S> {
        self.logged(
            |_| crate::wal::encode_remove(key),
            |store| store.remove_unlogged(key),
        )
    }

    pub(crate) fn remove_unlogged(&self, key: &str) -> Option<S> {
        let slot = self.shard(key).write().remove(key)?;
        self.take_sketch(slot)
    }

    /// Removes every sketch (and drops any spill segments).
    pub fn clear(&self) {
        self.logged(
            |_| crate::wal::encode_clear(),
            |store| store.clear_unlogged(),
        );
    }

    pub(crate) fn clear_unlogged(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
        self.tier.reset();
    }

    /// Acquires the shard(s) of two keys deadlock-free (ascending shard
    /// order) and runs `op` on the two sketches. Both keys are promoted
    /// to hot if needed; when both are already resident only read locks
    /// are taken.
    fn with_pair<R>(
        &self,
        key_a: &str,
        key_b: &str,
        op: impl FnOnce(&S, &S) -> R,
    ) -> Result<R, StoreError> {
        let not_found = |key: &str| StoreError::KeyNotFound(key.to_owned());
        let (ia, ib) = (self.shard_index(key_a), self.shard_index(key_b));
        // Fast path: both resident — read locks only.
        if ia == ib {
            let shard = self.shards[ia].read();
            let a = shard.get(key_a).ok_or_else(|| not_found(key_a))?;
            let b = shard.get(key_b).ok_or_else(|| not_found(key_b))?;
            if let (TierSlot::Hot(sa), TierSlot::Hot(sb)) = (&a.state, &b.state) {
                a.touch();
                b.touch();
                return Ok(op(sa, sb));
            }
        } else {
            // Lock in ascending shard order; shard locks are only ever
            // nested in this order, so the nesting cannot deadlock.
            let (lo, hi) = (ia.min(ib), ia.max(ib));
            let shard_lo = self.shards[lo].read();
            let shard_hi = self.shards[hi].read();
            let (shard_a, shard_b) = if ia < ib {
                (&shard_lo, &shard_hi)
            } else {
                (&shard_hi, &shard_lo)
            };
            let a = shard_a.get(key_a).ok_or_else(|| not_found(key_a))?;
            let b = shard_b.get(key_b).ok_or_else(|| not_found(key_b))?;
            if let (TierSlot::Hot(sa), TierSlot::Hot(sb)) = (&a.state, &b.state) {
                a.touch();
                b.touch();
                return Ok(op(sa, sb));
            }
        }
        // Slow path: at least one side is cold — retake the locks as
        // write locks (same ascending order) and promote both.
        let result = if ia == ib {
            let mut shard = self.shards[ia].write();
            if !shard.contains_key(key_a) {
                return Err(not_found(key_a));
            }
            if !shard.contains_key(key_b) {
                return Err(not_found(key_b));
            }
            for key in [key_a, key_b] {
                let slot = shard.get_mut(key).expect("checked above");
                self.ensure_hot_slot(key, slot)?;
                slot.touch();
            }
            let a = shard.get(key_a).expect("checked above");
            let b = shard.get(key_b).expect("checked above");
            op(a.hot_ref(), b.hot_ref())
        } else {
            let (lo, hi) = (ia.min(ib), ia.max(ib));
            let mut shard_lo = self.shards[lo].write();
            let mut shard_hi = self.shards[hi].write();
            let (shard_a, shard_b) = if ia < ib {
                (&mut shard_lo, &mut shard_hi)
            } else {
                (&mut shard_hi, &mut shard_lo)
            };
            let slot_a = shard_a.get_mut(key_a).ok_or_else(|| not_found(key_a))?;
            self.ensure_hot_slot(key_a, slot_a)?;
            slot_a.touch();
            let slot_b = shard_b.get_mut(key_b).ok_or_else(|| not_found(key_b))?;
            self.ensure_hot_slot(key_b, slot_b)?;
            slot_b.touch();
            op(
                shard_a.get(key_a).expect("just promoted").hot_ref(),
                shard_b.get(key_b).expect("just promoted").hot_ref(),
            )
        };
        self.maintain_if_over_budget();
        Ok(result)
    }
}

impl<S> SketchStore<S> {
    /// Write-locks the key's shard and runs `op` on its sketch, creating
    /// it through the factory on first use and promoting it to hot if it
    /// was compressed or spilled. The existing-key fast path avoids
    /// allocating an owned key string. Every call restamps the slot's
    /// version so the similarity index can re-band exactly the keys that
    /// changed, and feeds the tier manager's write counter and byte
    /// accounting.
    ///
    /// This is the **unlogged** write path — the public mutators wrap it
    /// in [`logged`](Self::logged), and WAL replay calls it directly.
    pub(crate) fn with_entry(&self, key: &str, op: impl FnOnce(&mut S)) {
        {
            let mut shard = self.shard(key).write();
            if !shard.contains_key(key) {
                let sketch = (self.factory)();
                self.tier.account_insert_hot(&sketch);
                shard.insert(key.to_owned(), Slot::hot(sketch, 0));
            }
            let slot = shard.get_mut(key).expect("present or just inserted");
            if self.ensure_hot_slot(key, slot).is_err() {
                // A corrupt slot's registers are gone; a write starts
                // the key over from a fresh factory sketch (in a
                // replicated deployment anti-entropy re-fills the rest).
                let sketch = (self.factory)();
                self.tier.account_insert_hot(&sketch);
                slot.state = TierSlot::Hot(sketch);
            }
            slot.version = self.next_version();
            slot.touch();
            if self.tier.enabled() {
                let before = self.tier.resident_of(slot.hot_ref());
                op(slot.hot_mut());
                let after = self.tier.resident_of(slot.hot_ref());
                self.tier.account_growth(before, after);
            } else {
                op(slot.hot_mut());
            }
        }
        self.maybe_maintain();
    }
}

impl<S: Sketch> SketchStore<S> {
    /// Records one element under `key`, creating the sketch on first
    /// use.
    pub fn insert(&self, key: &str, element: u64) {
        self.logged(
            |_| crate::wal::encode_ingest(key, std::slice::from_ref(&element)),
            |store| store.with_entry(key, |sketch| sketch.insert_u64(element)),
        );
    }

    /// Records a byte-string element under `key`.
    pub fn insert_bytes(&self, key: &str, element: &[u8]) {
        self.logged(
            |_| crate::wal::encode_ingest_bytes(key, &[element]),
            |store| store.with_entry(key, |sketch| sketch.insert_bytes(element)),
        );
    }

    /// Records a batch of byte-string elements under `key`, creating the
    /// sketch on first use — the byte-side mirror of
    /// [`ingest`](Self::ingest): one lock acquisition (and one version
    /// stamp) for the whole batch instead of one per element.
    pub fn ingest_bytes(&self, key: &str, elements: &[&[u8]]) {
        self.logged(
            |_| crate::wal::encode_ingest_bytes(key, elements),
            |store| {
                store.with_entry(key, |sketch| {
                    for &element in elements {
                        sketch.insert_bytes(element);
                    }
                });
            },
        );
    }
}

impl<S: BatchInsert> SketchStore<S> {
    /// Records a batch of elements under `key`, creating the sketch on
    /// first use. One lock acquisition per batch; sketches with a
    /// specialized [`BatchInsert`] (SetSketch's sorted-batch `K_low`
    /// early exit) get their fast path.
    pub fn ingest(&self, key: &str, elements: &[u64]) {
        self.logged(
            |_| crate::wal::encode_ingest(key, elements),
            |store| store.with_entry(key, |sketch| sketch.insert_batch(elements)),
        );
    }
}

impl<S: Clone> SketchStore<S> {
    /// Clones the sketch under `key` out of the store (promoting it to
    /// hot if it was compressed or spilled — a point read).
    pub fn get(&self, key: &str) -> Option<S> {
        self.with_sketch(key, |sketch| sketch.clone())
    }

    /// Takes a point-in-time snapshot of the whole store: each shard is
    /// copied under its read lock, so every *key* is internally
    /// consistent (writers may interleave between shards). Snapshot
    /// entries are an ordered map, so iteration yields keys in the same
    /// ascending order [`keys`](Self::keys) guarantees.
    ///
    /// Tiered entries are snapshotted **without rehydration**: hot keys
    /// clone their sketch ([`SnapshotEntry::Resident`]), warm and
    /// frozen keys carry their compressed bytes
    /// ([`SnapshotEntry::Compact`]) — so snapshotting a mostly-cold
    /// store neither blows the memory budget nor perturbs the tiers.
    /// Quarantined slots (and frozen slots whose spill record fails its
    /// checksum) are skipped: their registers are unrecoverable, and a
    /// snapshot of the surviving keys beats no snapshot at all.
    pub fn snapshot(&self) -> StoreSnapshot<S> {
        let mut entries = std::collections::BTreeMap::new();
        for shard in self.shards.iter() {
            for (key, slot) in shard.read().iter() {
                let entry = match &slot.state {
                    TierSlot::Hot(sketch) => SnapshotEntry::Resident(sketch.clone()),
                    TierSlot::Warm(bytes) => SnapshotEntry::Compact(bytes.to_vec()),
                    TierSlot::Frozen {
                        segment,
                        offset,
                        len,
                    } => match self.tier.read_frozen(*segment, *offset, *len) {
                        Ok(bytes) => SnapshotEntry::Compact(bytes),
                        Err(_) => continue,
                    },
                    TierSlot::Quarantined(_) => continue,
                };
                entries.insert(key.clone(), entry);
            }
        }
        StoreSnapshot {
            shard_count: self.shards.len(),
            entries,
        }
    }
}

impl<S: CompactSketch> SketchStore<S> {
    /// Rebuilds a store from a snapshot. The factory serves keys created
    /// *after* the restore; snapshotted sketches are installed verbatim.
    ///
    /// [`SnapshotEntry::Resident`] entries restore hot;
    /// [`SnapshotEntry::Compact`] entries restore **warm** — they stay
    /// compressed until first touched, so restoring a snapshot of a
    /// mostly-cold store does not inflate it. The restored store has the
    /// family's codec installed but no demotion policy; rebuild with
    /// [`StoreBuilder`] knobs and [`put`](Self::put) to re-tier.
    pub fn from_snapshot(
        snapshot: StoreSnapshot<S>,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        let mut store = Self::builder(factory).shards(snapshot.shard_count).build();
        let prototype = store.make_sketch();
        store.tier.install_codec(TierCodec::of(), prototype);
        for (key, entry) in snapshot.entries {
            let version = store.next_version();
            let slot = match entry {
                SnapshotEntry::Resident(sketch) => {
                    store.tier.account_insert_hot(&sketch);
                    Slot::hot(sketch, version)
                }
                SnapshotEntry::Compact(bytes) => {
                    store.tier.account_insert_warm(bytes.len());
                    Slot {
                        state: TierSlot::Warm(bytes.into_boxed_slice()),
                        version,
                        touched: AtomicBool::new(false),
                    }
                }
            };
            store.shard(&key).write().insert(key, slot);
        }
        store
    }
}

impl<S: CardinalityEstimator> SketchStore<S> {
    /// Estimated distinct count recorded under `key`.
    ///
    /// # Errors
    /// [`StoreError::KeyNotFound`] when the key holds no sketch;
    /// [`StoreError::CorruptSlot`] when its warm/frozen payload failed
    /// a checksum or codec round-trip (the slot is quarantined).
    pub fn cardinality(&self, key: &str) -> Result<f64, StoreError> {
        self.try_with_sketch(key, |sketch| sketch.cardinality())?
            .ok_or_else(|| StoreError::KeyNotFound(key.to_owned()))
    }
}

impl<S: Mergeable + Clone> SketchStore<S> {
    /// Union sketch of the listed keys (each shard locked one at a time;
    /// per-key point-in-time). Cold keys are promoted — merging a
    /// selection is a point read of each member.
    ///
    /// Fails with [`StoreError::EmptySelection`] for an empty list,
    /// [`StoreError::KeyNotFound`] for a missing key, and
    /// [`StoreError::Incompatible`] — carrying the sketch family's
    /// detailed error — when states injected via [`put`](Self::put) do
    /// not match.
    pub fn merge_keys(&self, keys: &[&str]) -> Result<S, StoreError> {
        let (&first, rest) = keys.split_first().ok_or(StoreError::EmptySelection)?;
        let mut merged = self
            .get(first)
            .ok_or_else(|| StoreError::KeyNotFound(first.to_owned()))?;
        for &key in rest {
            self.with_sketch(key, |sketch| merged.merge_from(sketch))
                .ok_or_else(|| StoreError::KeyNotFound(key.to_owned()))?
                .map_err(StoreError::incompatible)?;
        }
        Ok(merged)
    }

    /// Merges every sketch in the store down to a single union sketch
    /// (`None` when the store is empty).
    ///
    /// Each shard is absorbed through one
    /// [`merge_many`](Mergeable::merge_many) call under its read lock,
    /// so sketches with batched register kernels (SetSketch) amortize
    /// their per-merge bookkeeping across the whole shard. Cold entries
    /// are decompressed into temporaries and **not** promoted — a
    /// whole-store fold must not blow the residency budget.
    pub fn merge_down(&self) -> Result<Option<S>, StoreError> {
        let mut merged: Option<S> = None;
        for shard in self.shards.iter() {
            let guard = shard.read();
            // Corrupt cold entries are skipped: a whole-store fold over
            // the surviving keys beats refusing to answer at all.
            let temps: Vec<S> = guard
                .values()
                .filter(|slot| !slot.state.is_hot())
                .filter_map(|slot| self.try_materialize_cold(&slot.state).ok())
                .collect();
            let hot = guard.values().filter_map(|slot| match &slot.state {
                TierSlot::Hot(sketch) => Some(sketch),
                _ => None,
            });
            let mut sketches = hot.chain(temps.iter());
            let acc = match &mut merged {
                Some(acc) => acc,
                None => match sketches.next() {
                    Some(first) => {
                        merged = Some(first.clone());
                        merged.as_mut().expect("just inserted")
                    }
                    None => continue,
                },
            };
            acc.merge_many(sketches).map_err(StoreError::incompatible)?;
        }
        Ok(merged)
    }
}

impl<S: Mergeable + CardinalityEstimator + Clone> SketchStore<S> {
    /// Estimated cardinality of the union of the listed keys.
    pub fn union_cardinality(&self, keys: &[&str]) -> Result<f64, StoreError> {
        Ok(self.merge_keys(keys)?.cardinality())
    }
}

impl<S: JointEstimator> SketchStore<S> {
    /// Joint estimation (Jaccard, intersection, union, differences, …)
    /// between the sketches under two keys, without cloning either.
    pub fn joint(&self, key_a: &str, key_b: &str) -> Result<JointQuantities, StoreError> {
        self.with_pair(key_a, key_b, |a, b| a.joint(b))?
            .map_err(StoreError::incompatible)
    }

    /// Estimated Jaccard similarity between two keys.
    pub fn jaccard(&self, key_a: &str, key_b: &str) -> Result<f64, StoreError> {
        Ok(self.joint(key_a, key_b)?.jaccard)
    }

    /// Estimated intersection cardinality between two keys.
    pub fn intersection_cardinality(&self, key_a: &str, key_b: &str) -> Result<f64, StoreError> {
        Ok(self.joint(key_a, key_b)?.intersection)
    }
}

impl<S> std::fmt::Debug for SketchStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchStore")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}
