//! The sharded concurrent sketch registry.

use crate::builder::StoreBuilder;
use crate::error::StoreError;
use crate::pipeline::PipelineDefaults;
use crate::query::SimilarityIndex;
use crate::snapshot::StoreSnapshot;
use parking_lot::{Mutex, RwLock};
use sketch_core::{
    BatchInsert, CardinalityEstimator, JointEstimator, JointQuantities, Mergeable, Sketch,
};
use sketch_rand::hash_bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored sketch together with its write version.
///
/// Every mutating access to the key (ingest, insert, put, restore)
/// stamps the slot with a fresh value of the store's monotonic write
/// counter, which is all the bookkeeping ingest pays for
/// similarity-index maintenance: the query engine re-bands exactly the
/// keys whose version moved since they were last indexed. The counter
/// is store-global, so a key removed and later re-created never repeats
/// an old version (the index relies on inequality to detect staleness).
#[derive(Debug)]
pub(crate) struct Slot<S> {
    pub(crate) sketch: S,
    pub(crate) version: u64,
}

/// One shard: a lock-guarded map from key to its versioned slot.
pub(crate) type Shard<S> = RwLock<HashMap<String, Slot<S>>>;

/// Seed of the key-routing hash (independent of any sketch's seed).
const ROUTING_SEED: u64 = 0x5354_4f52_4b45_5953; // "STORKEYS"

/// Default shard count of [`StoreBuilder`]-constructed stores.
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent registry mapping string keys to sketches of one type.
///
/// The key space is split across `N` shards, each guarded by its own
/// `parking_lot::RwLock` over a hash map, so writers to different keys
/// rarely contend and readers never block each other. All operations
/// take `&self`; share the store across threads with
/// [`Arc`](std::sync::Arc) or scoped threads.
///
/// Sketches are created on first ingest by the store's *factory*
/// closure, which fixes the configuration and hash seed — everything the
/// store creates is therefore mutually compatible, and cross-key queries
/// ([`joint`](Self::joint), [`merge_keys`](Self::merge_keys)) work by
/// construction. Externally built sketches can still be injected with
/// [`put`](Self::put) (e.g. states shipped from another process); if
/// their parameters differ, combining queries surface the sketch
/// family's detailed incompatibility error through
/// [`StoreError::Incompatible`].
///
/// ```
/// use setsketch::{SetSketch2, SetSketchConfig};
/// use sketch_store::SketchStore;
///
/// let config = SetSketchConfig::example_16bit();
/// let store = SketchStore::builder(move || SetSketch2::new(config, 42)).build();
///
/// store.ingest("paris", &(0..10_000).collect::<Vec<u64>>());
/// store.ingest("london", &(5_000..15_000).collect::<Vec<u64>>());
///
/// let paris = store.cardinality("paris").unwrap();
/// assert!((paris - 10_000.0).abs() / 10_000.0 < 0.1);
///
/// // True Jaccard: 5000 / 15000 = 1/3.
/// let joint = store.joint("paris", "london").unwrap();
/// assert!((joint.jaccard - 1.0 / 3.0).abs() < 0.05);
///
/// let global = store.union_cardinality(&["paris", "london"]).unwrap();
/// assert!((global - 15_000.0).abs() / 15_000.0 < 0.1);
/// ```
pub struct SketchStore<S> {
    shards: Box<[Shard<S>]>,
    factory: Box<dyn Fn() -> S + Send + Sync>,
    /// Monotonic write counter feeding the slots' version stamps.
    write_epoch: AtomicU64,
    /// Pipeline knobs fixed at construction ([`StoreBuilder`]); applied
    /// by every [`pipeline`](Self::pipeline) handle the store hands out.
    pub(crate) pipeline_defaults: PipelineDefaults,
    /// Lazily built banding LSH indexes (most recently used first, one
    /// per queried threshold) over the stored sketches' signatures,
    /// maintained incrementally by the similarity query engine (see
    /// [`crate::query`]).
    pub(crate) similarity: Mutex<Vec<SimilarityIndex>>,
    /// Lazily computed inverse of the factory configuration's
    /// register-collision-probability curve, tabulated over all
    /// `m + 1` possible D₀ values — shared by every approximate-mode
    /// query (the curve is a configuration property, so the table
    /// never changes for the store's lifetime).
    pub(crate) collision_inverse: std::sync::OnceLock<std::sync::Arc<[f64]>>,
}

impl<S> SketchStore<S> {
    /// Starts building a store around `factory`, the closure that builds
    /// the empty sketch for every new key (fixing configuration and hash
    /// seed). This is the one construction entry point; shard count,
    /// ingest-pipeline depth and writer threads, and future knobs hang
    /// off the returned [`StoreBuilder`].
    ///
    /// ```
    /// use setsketch::{SetSketch2, SetSketchConfig};
    /// use sketch_store::SketchStore;
    ///
    /// let config = SetSketchConfig::example_16bit();
    /// let store = SketchStore::builder(move || SetSketch2::new(config, 42))
    ///     .shards(32)
    ///     .queue_depth(512)
    ///     .writer_threads(4)
    ///     .build();
    /// assert_eq!(store.shard_count(), 32);
    /// ```
    pub fn builder(factory: impl Fn() -> S + Send + Sync + 'static) -> StoreBuilder<S> {
        StoreBuilder::new(factory)
    }

    /// Creates a store with [`DEFAULT_SHARDS`] shards; `factory` builds
    /// the empty sketch for every new key (fixing configuration and
    /// seed).
    #[deprecated(note = "use `SketchStore::builder(factory).build()` instead")]
    pub fn new(factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Self::builder(factory).build()
    }

    /// Creates a store with an explicit shard count (≥ 1). More shards
    /// reduce write contention; the key→shard mapping is stable for a
    /// given count.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[deprecated(note = "use `SketchStore::builder(factory).shards(n).build()` instead")]
    pub fn with_shards(shards: usize, factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Self::builder(factory).shards(shards).build()
    }

    /// Assembles the store from validated [`StoreBuilder`] parts.
    pub(crate) fn from_parts(
        shards: usize,
        factory: Box<dyn Fn() -> S + Send + Sync>,
        pipeline_defaults: PipelineDefaults,
    ) -> Self {
        debug_assert!(shards > 0, "builder validates the shard count");
        let shards = (0..shards)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            factory,
            write_epoch: AtomicU64::new(0),
            pipeline_defaults,
            similarity: Mutex::new(Vec::new()),
            collision_inverse: std::sync::OnceLock::new(),
        }
    }

    /// A fresh, never-repeated version stamp for a mutated slot.
    #[inline]
    fn next_version(&self) -> u64 {
        self.write_epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Builds an empty sketch through the store's factory (the
    /// configuration every stored sketch shares).
    pub(crate) fn make_sketch(&self) -> S {
        (self.factory)()
    }

    /// The shard array, for the query engine's version sweep.
    pub(crate) fn shards(&self) -> &[Shard<S>] {
        &self.shards
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index a key routes to (multiply-shift over the routing
    /// hash; uniform for any shard count). Also the pipeline's routing
    /// function, so one writer thread owns each shard's traffic.
    #[inline]
    pub(crate) fn shard_index(&self, key: &str) -> usize {
        let hash = hash_bytes(key.as_bytes(), ROUTING_SEED);
        (((hash as u128) * (self.shards.len() as u128)) >> 64) as usize
    }

    #[inline]
    fn shard(&self, key: &str) -> &Shard<S> {
        &self.shards[self.shard_index(key)]
    }

    /// Number of stored sketches (locks each shard briefly; the count is
    /// approximate while writers are active).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no key holds a sketch.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// True if `key` holds a sketch.
    pub fn contains_key(&self, key: &str) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// All keys in **ascending lexicographic order** (point-in-time per
    /// shard).
    ///
    /// Internally keys live in hash-ordered shard maps, so the raw
    /// iteration order would vary with the shard count and hasher; this
    /// method sorts before returning, and the order is guaranteed —
    /// callers may rely on it for deterministic sweeps and diffs. The
    /// same guarantee holds for [`snapshot`](Self::snapshot), whose
    /// entries are an ordered map keyed the same way.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Runs a closure against the sketch under `key` without cloning it
    /// (the shard stays read-locked for the duration).
    pub fn with_sketch<R>(&self, key: &str, op: impl FnOnce(&S) -> R) -> Option<R> {
        self.shard(key).read().get(key).map(|slot| op(&slot.sketch))
    }

    /// Stores `sketch` under `key`, replacing and returning any previous
    /// sketch. This bypasses the factory — use it to inject states built
    /// elsewhere (e.g. shipped from worker processes).
    pub fn put(&self, key: &str, sketch: S) -> Option<S> {
        let version = self.next_version();
        self.shard(key)
            .write()
            .insert(key.to_owned(), Slot { sketch, version })
            .map(|slot| slot.sketch)
    }

    /// Removes and returns the sketch under `key`.
    pub fn remove(&self, key: &str) -> Option<S> {
        self.shard(key).write().remove(key).map(|slot| slot.sketch)
    }

    /// Removes every sketch.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
    }

    /// Acquires the shard(s) of two keys deadlock-free (ascending shard
    /// order) and runs `op` on the two sketches.
    fn with_pair<R>(
        &self,
        key_a: &str,
        key_b: &str,
        op: impl FnOnce(&S, &S) -> R,
    ) -> Result<R, StoreError> {
        let not_found = |key: &str| StoreError::KeyNotFound(key.to_owned());
        let (ia, ib) = (self.shard_index(key_a), self.shard_index(key_b));
        if ia == ib {
            let shard = self.shards[ia].read();
            let a = shard.get(key_a).ok_or_else(|| not_found(key_a))?;
            let b = shard.get(key_b).ok_or_else(|| not_found(key_b))?;
            Ok(op(&a.sketch, &b.sketch))
        } else {
            // Lock in ascending shard order; this is the only place two
            // shard locks are held at once, so the order is globally
            // consistent and cannot deadlock.
            let (lo, hi) = (ia.min(ib), ia.max(ib));
            let shard_lo = self.shards[lo].read();
            let shard_hi = self.shards[hi].read();
            let (shard_a, shard_b) = if ia < ib {
                (&shard_lo, &shard_hi)
            } else {
                (&shard_hi, &shard_lo)
            };
            let a = shard_a.get(key_a).ok_or_else(|| not_found(key_a))?;
            let b = shard_b.get(key_b).ok_or_else(|| not_found(key_b))?;
            Ok(op(&a.sketch, &b.sketch))
        }
    }
}

impl<S> SketchStore<S> {
    /// Write-locks the key's shard and runs `op` on its sketch, creating
    /// it through the factory on first use. The existing-key fast path
    /// avoids allocating an owned key string. Every call restamps the
    /// slot's version so the similarity index can re-band exactly the
    /// keys that changed.
    fn with_entry(&self, key: &str, op: impl FnOnce(&mut S)) {
        let mut shard = self.shard(key).write();
        if !shard.contains_key(key) {
            shard.insert(
                key.to_owned(),
                Slot {
                    sketch: (self.factory)(),
                    version: 0,
                },
            );
        }
        let slot = shard.get_mut(key).expect("present or just inserted");
        slot.version = self.next_version();
        op(&mut slot.sketch);
    }
}

impl<S: Sketch> SketchStore<S> {
    /// Records one element under `key`, creating the sketch on first
    /// use.
    pub fn insert(&self, key: &str, element: u64) {
        self.with_entry(key, |sketch| sketch.insert_u64(element));
    }

    /// Records a byte-string element under `key`.
    pub fn insert_bytes(&self, key: &str, element: &[u8]) {
        self.with_entry(key, |sketch| sketch.insert_bytes(element));
    }

    /// Records a batch of byte-string elements under `key`, creating the
    /// sketch on first use — the byte-side mirror of
    /// [`ingest`](Self::ingest): one lock acquisition (and one version
    /// stamp) for the whole batch instead of one per element.
    pub fn ingest_bytes(&self, key: &str, elements: &[&[u8]]) {
        self.with_entry(key, |sketch| {
            for &element in elements {
                sketch.insert_bytes(element);
            }
        });
    }
}

impl<S: BatchInsert> SketchStore<S> {
    /// Records a batch of elements under `key`, creating the sketch on
    /// first use. One lock acquisition per batch; sketches with a
    /// specialized [`BatchInsert`] (SetSketch's sorted-batch `K_low`
    /// early exit) get their fast path.
    pub fn ingest(&self, key: &str, elements: &[u64]) {
        self.with_entry(key, |sketch| sketch.insert_batch(elements));
    }
}

impl<S: Clone> SketchStore<S> {
    /// Clones the sketch under `key` out of the store.
    pub fn get(&self, key: &str) -> Option<S> {
        self.shard(key)
            .read()
            .get(key)
            .map(|slot| slot.sketch.clone())
    }

    /// Takes a point-in-time snapshot of the whole store: each shard is
    /// copied under its read lock, so every *key* is internally
    /// consistent (writers may interleave between shards). Snapshot
    /// entries are an ordered map, so iteration yields keys in the same
    /// ascending order [`keys`](Self::keys) guarantees.
    pub fn snapshot(&self) -> StoreSnapshot<S> {
        let mut entries = std::collections::BTreeMap::new();
        for shard in self.shards.iter() {
            for (key, slot) in shard.read().iter() {
                entries.insert(key.clone(), slot.sketch.clone());
            }
        }
        StoreSnapshot {
            shard_count: self.shards.len(),
            entries,
        }
    }

    /// Rebuilds a store from a snapshot. The factory serves keys created
    /// *after* the restore; snapshotted sketches are installed verbatim.
    pub fn from_snapshot(
        snapshot: StoreSnapshot<S>,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        let store = Self::builder(factory).shards(snapshot.shard_count).build();
        for (key, sketch) in snapshot.entries {
            let version = store.next_version();
            store
                .shard(&key)
                .write()
                .insert(key, Slot { sketch, version });
        }
        store
    }
}

impl<S: CardinalityEstimator> SketchStore<S> {
    /// Estimated distinct count recorded under `key`.
    pub fn cardinality(&self, key: &str) -> Result<f64, StoreError> {
        self.with_sketch(key, |sketch| sketch.cardinality())
            .ok_or_else(|| StoreError::KeyNotFound(key.to_owned()))
    }
}

impl<S: Mergeable + Clone> SketchStore<S> {
    /// Union sketch of the listed keys (each shard locked one at a time;
    /// per-key point-in-time).
    ///
    /// Fails with [`StoreError::EmptySelection`] for an empty list,
    /// [`StoreError::KeyNotFound`] for a missing key, and
    /// [`StoreError::Incompatible`] — carrying the sketch family's
    /// detailed error — when states injected via [`put`](Self::put) do
    /// not match.
    pub fn merge_keys(&self, keys: &[&str]) -> Result<S, StoreError> {
        let (&first, rest) = keys.split_first().ok_or(StoreError::EmptySelection)?;
        let mut merged = self
            .get(first)
            .ok_or_else(|| StoreError::KeyNotFound(first.to_owned()))?;
        for &key in rest {
            let shard = self.shard(key).read();
            let slot = shard
                .get(key)
                .ok_or_else(|| StoreError::KeyNotFound(key.to_owned()))?;
            merged
                .merge_from(&slot.sketch)
                .map_err(StoreError::incompatible)?;
        }
        Ok(merged)
    }

    /// Merges every sketch in the store down to a single union sketch
    /// (`None` when the store is empty).
    ///
    /// Each shard is absorbed through one
    /// [`merge_many`](Mergeable::merge_many) call under its read lock,
    /// so sketches with batched register kernels (SetSketch) amortize
    /// their per-merge bookkeeping across the whole shard.
    pub fn merge_down(&self) -> Result<Option<S>, StoreError> {
        let mut merged: Option<S> = None;
        for shard in self.shards.iter() {
            let guard = shard.read();
            let mut sketches = guard.values().map(|slot| &slot.sketch);
            let acc = match &mut merged {
                Some(acc) => acc,
                None => match sketches.next() {
                    Some(first) => {
                        merged = Some(first.clone());
                        merged.as_mut().expect("just inserted")
                    }
                    None => continue,
                },
            };
            acc.merge_many(sketches).map_err(StoreError::incompatible)?;
        }
        Ok(merged)
    }
}

impl<S: Mergeable + CardinalityEstimator + Clone> SketchStore<S> {
    /// Estimated cardinality of the union of the listed keys.
    pub fn union_cardinality(&self, keys: &[&str]) -> Result<f64, StoreError> {
        Ok(self.merge_keys(keys)?.cardinality())
    }
}

impl<S: JointEstimator> SketchStore<S> {
    /// Joint estimation (Jaccard, intersection, union, differences, …)
    /// between the sketches under two keys, without cloning either.
    pub fn joint(&self, key_a: &str, key_b: &str) -> Result<JointQuantities, StoreError> {
        self.with_pair(key_a, key_b, |a, b| a.joint(b))?
            .map_err(StoreError::incompatible)
    }

    /// Estimated Jaccard similarity between two keys.
    pub fn jaccard(&self, key_a: &str, key_b: &str) -> Result<f64, StoreError> {
        Ok(self.joint(key_a, key_b)?.jaccard)
    }

    /// Estimated intersection cardinality between two keys.
    pub fn intersection_cardinality(&self, key_a: &str, key_b: &str) -> Result<f64, StoreError> {
        Ok(self.joint(key_a, key_b)?.intersection)
    }
}

impl<S> std::fmt::Debug for SketchStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchStore")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}
