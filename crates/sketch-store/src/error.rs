//! Error type for store operations.

/// Errors raised by [`SketchStore`](crate::SketchStore) queries.
#[derive(Debug)]
pub enum StoreError {
    /// The named key holds no sketch.
    KeyNotFound(String),
    /// A multi-key operation was invoked with an empty key selection.
    EmptySelection,
    /// Two sketches in the store could not be combined. The boxed source
    /// carries the sketch family's detailed error — e.g. SetSketch's
    /// `IncompatibleSketches`, which reports *which* of configuration
    /// and hash seed mismatched.
    Incompatible(Box<dyn std::error::Error + Send + Sync>),
    /// A key's warm/frozen payload failed its checksum or codec
    /// round-trip. The slot is quarantined: reads keep failing with
    /// this error, the next write (or replica merge) replaces it with a
    /// fresh sketch.
    CorruptSlot {
        /// The key whose payload was corrupt.
        key: String,
        /// What failed (checksum mismatch, codec error, missing
        /// segment).
        detail: String,
    },
    /// The durability layer failed: the write-ahead log or a checkpoint
    /// could not be created, written or replayed.
    Durability(String),
}

impl StoreError {
    /// Wraps a sketch-level incompatibility error.
    pub fn incompatible<E: std::error::Error + Send + Sync + 'static>(error: E) -> Self {
        StoreError::Incompatible(Box::new(error))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::KeyNotFound(key) => write!(f, "no sketch stored under key {key:?}"),
            StoreError::EmptySelection => write!(f, "operation needs at least one key"),
            StoreError::Incompatible(source) => {
                write!(f, "stored sketches cannot be combined: {source}")
            }
            StoreError::CorruptSlot { key, detail } => {
                write!(f, "stored payload under key {key:?} is corrupt: {detail}")
            }
            StoreError::Durability(detail) => {
                write!(f, "durability layer failed: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Incompatible(source) => Some(source.as_ref()),
            _ => None,
        }
    }
}
