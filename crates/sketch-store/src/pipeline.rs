//! Pipelined ingest: bounded per-writer queues, dedicated writer
//! threads, blocking backpressure, and executor-agnostic futures.
//!
//! The store's synchronous [`ingest`](SketchStore::ingest) blocks the
//! caller on a shard lock for the duration of the sketch update. That
//! is the right shape for batch jobs, but a server's request threads
//! (or async executor workers) should not pay sketch-update latency per
//! request. [`SketchStore::pipeline`] returns an [`IngestPipeline`]
//! that decouples the two sides:
//!
//! * **Routing and coalescing** — every operation is routed by the
//!   store's key→shard function to one of `writer_threads` bounded
//!   queues, each drained by a dedicated writer thread. A shard's
//!   traffic always lands on the same writer, so writers never contend
//!   on a shard lock. Writers drain their queue in bursts and coalesce
//!   each burst **per key**: thousands of single-element inserts
//!   submitted between two wake-ups become one batched sketch update
//!   (one lock acquisition, one version stamp, one sorted-batch pass
//!   that also deduplicates across producers). Inserts are idempotent
//!   and commutative, so coalescing cannot change the final state.
//! * **Backpressure** — queues are bounded at `queue_depth` operations
//!   ([`StoreBuilder::queue_depth`](crate::StoreBuilder::queue_depth)).
//!   The blocking API waits for space; the `try_*` variants return
//!   [`PipelineFull`] instead; the `*_async` variants return
//!   [`SendOp`] futures that register a waker and yield. Memory stays
//!   bounded no matter how far producers outrun the writers: at most
//!   `queue_depth` queued operations plus one in-flight burst of up to
//!   `queue_depth` more per writer. Writers drain the whole queue per
//!   wake-up and apply the burst unlocked, so producers refill in
//!   parallel and the wait/notify ping-pong is paid once per burst,
//!   not per operation.
//! * **Flush** — [`flush`](IngestPipeline::flush) (or the
//!   [`Flush`] future from [`flush_async`](IngestPipeline::flush_async))
//!   waits until every operation submitted *before the call* has been
//!   applied to the store. Dropping the pipeline drains all queues and
//!   joins the writers, so no accepted operation is ever lost.
//! * **Tiering** — writers apply updates through the store's ordinary
//!   entry path, so a pipelined write to a warm or frozen key promotes
//!   it back to hot exactly like a direct
//!   [`ingest`](SketchStore::ingest), and pipelined traffic drives the
//!   tier manager's demotion scans (see the crate-level *memory tiers*
//!   overview).
//!
//! The futures are hand-rolled `std::future` implementations — no
//! executor dependency — so the pipeline can sit behind tokio,
//! async-std, or the bundled single-future [`block_on`]:
//!
//! ```
//! use setsketch::{SetSketch2, SetSketchConfig};
//! use sketch_store::{block_on, SketchStore};
//!
//! let config = SetSketchConfig::example_16bit();
//! let store = SketchStore::builder(move || SetSketch2::new(config, 42))
//!     .queue_depth(128)
//!     .writer_threads(2)
//!     .build_shared();
//!
//! let pipeline = store.clone().pipeline();
//! block_on(async {
//!     pipeline.ingest_async("paris", &(0..1000).collect::<Vec<u64>>()).await;
//!     pipeline.insert_async("paris", 1000).await;
//!     pipeline.flush_async().await;
//! });
//! assert!((store.cardinality("paris").unwrap() - 1001.0).abs() / 1001.0 < 0.15);
//! ```

use crate::store::SketchStore;
use sketch_core::BatchInsert;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;

/// Default bound on queued operations per pipeline writer
/// ([`StoreBuilder::queue_depth`](crate::StoreBuilder::queue_depth)).
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Default number of dedicated pipeline writer threads
/// ([`StoreBuilder::writer_threads`](crate::StoreBuilder::writer_threads)).
pub const DEFAULT_WRITER_THREADS: usize = 2;

/// Pipeline knobs fixed by the [`StoreBuilder`](crate::StoreBuilder) and
/// stored on the [`SketchStore`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PipelineDefaults {
    pub(crate) queue_depth: usize,
    pub(crate) writer_threads: usize,
}

/// The error of the non-blocking `try_*` submission methods: the
/// operation's queue is at `queue_depth` and accepting it would either
/// block or grow memory without bound. Nothing was recorded; retry
/// later, fall back to the blocking variants, or await the `*_async`
/// future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineFull;

impl std::fmt::Display for PipelineFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest pipeline queue is full")
    }
}

impl std::error::Error for PipelineFull {}

/// One queued ingest operation (owned: the pipeline outlives the
/// caller's borrows).
enum Op {
    Insert { key: String, element: u64 },
    InsertBytes { key: String, element: Vec<u8> },
    Ingest { key: String, elements: Vec<u64> },
    IngestBytes { key: String, elements: Vec<Vec<u8>> },
}

/// Mutable state of one writer's queue.
struct QueueState {
    ops: VecDeque<Op>,
    /// Operations accepted into this queue, ever.
    submitted: u64,
    /// Operations applied to the store, ever. `completed == submitted`
    /// means the queue is drained.
    completed: u64,
    /// Set once by the pipeline's `Drop`; the writer exits when the
    /// queue is empty and closed.
    closed: bool,
    /// First panic payload caught from a sketch update, if any — the
    /// writer catches it so flushes and blocked producers still wake
    /// (the burst is accounted as completed), and the pipeline's
    /// `Drop` resurfaces it.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Parked [`SendOp`] futures waiting for space.
    send_wakers: Vec<Waker>,
    /// Parked [`Flush`] futures, each with the completion count it
    /// waits for.
    flush_wakers: Vec<(u64, Waker)>,
}

/// One bounded work queue and its wait/notify machinery.
struct Queue {
    state: Mutex<QueueState>,
    /// Producers (blocking submissions) waiting for space.
    not_full: Condvar,
    /// The writer thread waiting for work.
    not_empty: Condvar,
    /// Blocking flushes waiting for completions.
    progress: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                ops: VecDeque::new(),
                submitted: 0,
                completed: 0,
                closed: false,
                panic: None,
                send_wakers: Vec::new(),
                flush_wakers: Vec::new(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            progress: Condvar::new(),
        }
    }

    /// Locks the queue state, recovering from poisoning (a panicking
    /// sketch update must not wedge unrelated producers or the drain in
    /// `Drop`).
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What the writer threads share with the pipeline handle.
struct Shared<S> {
    store: Arc<SketchStore<S>>,
    queues: Box<[Queue]>,
    depth: usize,
}

impl<S> Shared<S> {
    /// Queue an operation on `key` routes to: the key's shard, folded
    /// onto the writer set — one writer per shard, so writers never
    /// contend on a shard lock.
    fn queue_index(&self, key: &str) -> usize {
        self.store.shard_index(key) % self.queues.len()
    }

    /// Enqueues `op`, blocking while the target queue is full.
    fn push(&self, index: usize, op: Op) {
        let queue = &self.queues[index];
        let mut state = queue.lock();
        while state.ops.len() >= self.depth {
            state = queue
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let was_empty = state.ops.is_empty();
        state.ops.push_back(op);
        state.submitted += 1;
        drop(state);
        // Only the empty→non-empty transition can find the writer
        // asleep (it drains the whole queue per wake-up); skipping the
        // other notifies keeps steady-state pushes syscall-free.
        if was_empty {
            queue.not_empty.notify_one();
        }
    }

    /// Enqueues `op` only if the target queue has space.
    fn try_push(&self, index: usize, op: Op) -> Result<(), PipelineFull> {
        let queue = &self.queues[index];
        let mut state = queue.lock();
        if state.ops.len() >= self.depth {
            return Err(PipelineFull);
        }
        let was_empty = state.ops.is_empty();
        state.ops.push_back(op);
        state.submitted += 1;
        drop(state);
        if was_empty {
            queue.not_empty.notify_one();
        }
        Ok(())
    }
}

/// The writer thread of queue `index`: drain a burst, coalesce it per
/// key, apply it unlocked, account for it, repeat — until the queue is
/// both closed and empty.
///
/// Draining the *whole* queue per wake-up is what makes the pipeline
/// pipeline: producers refill the (now empty) queue while the writer
/// applies the burst, and the wait/notify ping-pong happens once per
/// burst instead of once per operation. In steady state under
/// backpressure each side pays one context switch per `queue_depth`
/// operations, not per op.
///
/// Within a burst, operations are **coalesced per key**: all `u64`
/// elements for one key become a single batched
/// [`ingest`](SketchStore::ingest) (one shard-lock acquisition, one
/// version stamp, one pass of the sketch's sorted-batch fast path —
/// which also deduplicates elements repeated across producers), and
/// likewise all byte elements become one
/// [`ingest_bytes`](SketchStore::ingest_bytes). Inserts are idempotent
/// and commutative, so the coalesced application is state-identical to
/// applying each operation individually.
fn writer_loop<S: BatchInsert>(shared: &Shared<S>, index: usize) {
    let queue = &shared.queues[index];
    let mut burst: Vec<Op> = Vec::new();
    // Reused coalescing scratch: per-key element groups of the burst.
    let mut u64_groups: HashMap<String, Vec<u64>> = HashMap::new();
    let mut byte_groups: HashMap<String, Vec<Vec<u8>>> = HashMap::new();
    loop {
        let done = {
            let mut state = queue.lock();
            loop {
                if !state.ops.is_empty() {
                    burst.extend(state.ops.drain(..));
                    // The queue is empty again: unblock every waiting
                    // producer and parked SendOp.
                    queue.not_full.notify_all();
                    for waker in state.send_wakers.drain(..) {
                        waker.wake();
                    }
                    break false;
                }
                if state.closed {
                    break true;
                }
                state = queue
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if done {
            return;
        }

        let applied = burst.len() as u64;
        for op in burst.drain(..) {
            match op {
                Op::Insert { key, element } => {
                    u64_groups.entry(key).or_default().push(element);
                }
                Op::Ingest { key, mut elements } => {
                    let group = u64_groups.entry(key).or_default();
                    if group.is_empty() {
                        std::mem::swap(group, &mut elements);
                    } else {
                        group.append(&mut elements);
                    }
                }
                Op::InsertBytes { key, element } => {
                    byte_groups.entry(key).or_default().push(element);
                }
                Op::IngestBytes { key, mut elements } => {
                    byte_groups.entry(key).or_default().append(&mut elements);
                }
            }
        }
        // The sketch update is user code (S is any BatchInsert impl);
        // a panic must not leave the burst unaccounted — that would
        // permanently wedge flushes and backpressured producers. The
        // payload is kept and resurfaced by the pipeline's Drop.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (key, elements) in u64_groups.drain() {
                shared.store.ingest(&key, &elements);
            }
            for (key, elements) in byte_groups.drain() {
                let slices: Vec<&[u8]> = elements.iter().map(Vec::as_slice).collect();
                shared.store.ingest_bytes(&key, &slices);
            }
        }));
        if outcome.is_err() {
            // The burst is accounted as completed below even though the
            // panic cut it short; scrap its unapplied remainder so it
            // cannot leak into (and misattribute) a later burst.
            u64_groups.clear();
            byte_groups.clear();
        }

        let mut state = queue.lock();
        if let Err(payload) = outcome {
            state.panic.get_or_insert(payload);
        }
        state.completed += applied;
        let completed = state.completed;
        let mut i = 0;
        while i < state.flush_wakers.len() {
            if state.flush_wakers[i].0 <= completed {
                state.flush_wakers.swap_remove(i).1.wake();
            } else {
                i += 1;
            }
        }
        drop(state);
        queue.progress.notify_all();
    }
}

/// A pipelined, backpressured front door for store ingest: bounded
/// per-writer queues routed by the store's key→shard function, drained
/// by dedicated writer threads that coalesce each burst per key, with
/// blocking, non-blocking (`try_*`) and future-based (`*_async`)
/// submission variants.
///
/// Obtained from [`SketchStore::pipeline`]. All submission methods take
/// `&self`; share one pipeline across request threads, or create
/// several handles over the same store — writes land in the same shard
/// maps either way, and inserts are idempotent and commutative, so any
/// interleaving of handles produces the state sequential ingest would.
///
/// Dropping the pipeline closes its queues, drains every accepted
/// operation, and joins the writer threads.
pub struct IngestPipeline<S: BatchInsert + Send + Sync + 'static> {
    shared: Arc<Shared<S>>,
    writers: Vec<JoinHandle<()>>,
}

impl<S: BatchInsert + Send + Sync + 'static> SketchStore<S> {
    /// Opens a pipelined ingest front over this store, spawning the
    /// writer threads configured at build time
    /// ([`StoreBuilder::writer_threads`](crate::StoreBuilder::writer_threads),
    /// [`StoreBuilder::queue_depth`](crate::StoreBuilder::queue_depth)).
    ///
    /// The receiver is an owned [`Arc`] because the writer threads keep
    /// the store alive independently of the caller; clone the `Arc` to
    /// keep using the store directly:
    ///
    /// ```
    /// use setsketch::{SetSketch2, SetSketchConfig};
    /// use sketch_store::SketchStore;
    ///
    /// let config = SetSketchConfig::example_16bit();
    /// let store = SketchStore::builder(move || SetSketch2::new(config, 42)).build_shared();
    ///
    /// let pipeline = store.clone().pipeline();
    /// pipeline.ingest("events", &[1, 2, 3]);
    /// pipeline.flush();
    /// assert!(store.contains_key("events"));
    /// ```
    pub fn pipeline(self: Arc<Self>) -> IngestPipeline<S> {
        IngestPipeline::new(self)
    }
}

impl<S: BatchInsert + Send + Sync + 'static> IngestPipeline<S> {
    /// Opens a pipeline over `store` with the store's configured
    /// pipeline defaults ([`SketchStore::pipeline`] is the ergonomic
    /// form of this constructor).
    pub fn new(store: Arc<SketchStore<S>>) -> Self {
        let defaults = store.pipeline_defaults;
        let queues = (0..defaults.writer_threads)
            .map(|_| Queue::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let shared = Arc::new(Shared {
            store,
            queues,
            depth: defaults.queue_depth,
        });
        let writers = (0..defaults.writer_threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || writer_loop(&shared, index))
            })
            .collect();
        IngestPipeline { shared, writers }
    }

    /// The store this pipeline writes into.
    pub fn store(&self) -> &Arc<SketchStore<S>> {
        &self.shared.store
    }

    /// Number of dedicated writer threads.
    pub fn writer_threads(&self) -> usize {
        self.writers.len()
    }

    /// Per-writer bound on queued operations.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth
    }

    /// Operations accepted but not yet applied to the store — queued
    /// ops plus each writer's in-flight burst — summed over all queues
    /// (a point-in-time diagnostic; writers drain concurrently, so the
    /// value can be stale by the time it is read). `0` after a
    /// [`flush`](Self::flush) means every prior submission is visible
    /// in the store.
    pub fn pending(&self) -> usize {
        self.shared
            .queues
            .iter()
            .map(|queue| {
                let state = queue.lock();
                (state.submitted - state.completed) as usize
            })
            .sum()
    }

    /// Queues one element for `key`, blocking while the key's queue is
    /// full (backpressure).
    pub fn insert(&self, key: &str, element: u64) {
        let op = Op::Insert {
            key: key.to_owned(),
            element,
        };
        self.shared.push(self.shared.queue_index(key), op);
    }

    /// Queues one byte-string element for `key`, blocking while the
    /// key's queue is full.
    pub fn insert_bytes(&self, key: &str, element: &[u8]) {
        let op = Op::InsertBytes {
            key: key.to_owned(),
            element: element.to_vec(),
        };
        self.shared.push(self.shared.queue_index(key), op);
    }

    /// Queues a batch for `key` (applied through the store's batched
    /// [`ingest`](SketchStore::ingest), hitting the sketch's
    /// [`BatchInsert`] fast path), blocking while the key's queue is
    /// full.
    pub fn ingest(&self, key: &str, elements: &[u64]) {
        let op = Op::Ingest {
            key: key.to_owned(),
            elements: elements.to_vec(),
        };
        self.shared.push(self.shared.queue_index(key), op);
    }

    /// Queues a batch of byte-string elements for `key` (applied
    /// through [`ingest_bytes`](SketchStore::ingest_bytes)), blocking
    /// while the key's queue is full.
    pub fn ingest_bytes(&self, key: &str, elements: &[&[u8]]) {
        let op = Op::IngestBytes {
            key: key.to_owned(),
            elements: elements.iter().map(|bytes| bytes.to_vec()).collect(),
        };
        self.shared.push(self.shared.queue_index(key), op);
    }

    /// Non-blocking [`insert`](Self::insert): fails with
    /// [`PipelineFull`] instead of waiting (nothing is recorded on
    /// failure).
    pub fn try_insert(&self, key: &str, element: u64) -> Result<(), PipelineFull> {
        let op = Op::Insert {
            key: key.to_owned(),
            element,
        };
        self.shared.try_push(self.shared.queue_index(key), op)
    }

    /// Non-blocking [`insert_bytes`](Self::insert_bytes).
    pub fn try_insert_bytes(&self, key: &str, element: &[u8]) -> Result<(), PipelineFull> {
        let op = Op::InsertBytes {
            key: key.to_owned(),
            element: element.to_vec(),
        };
        self.shared.try_push(self.shared.queue_index(key), op)
    }

    /// Non-blocking [`ingest`](Self::ingest).
    pub fn try_ingest(&self, key: &str, elements: &[u64]) -> Result<(), PipelineFull> {
        let op = Op::Ingest {
            key: key.to_owned(),
            elements: elements.to_vec(),
        };
        self.shared.try_push(self.shared.queue_index(key), op)
    }

    /// Non-blocking [`ingest_bytes`](Self::ingest_bytes).
    pub fn try_ingest_bytes(&self, key: &str, elements: &[&[u8]]) -> Result<(), PipelineFull> {
        let op = Op::IngestBytes {
            key: key.to_owned(),
            elements: elements.iter().map(|bytes| bytes.to_vec()).collect(),
        };
        self.shared.try_push(self.shared.queue_index(key), op)
    }

    /// Async [`insert`](Self::insert): the returned [`SendOp`] resolves
    /// once the operation is accepted, yielding (never blocking the
    /// executor thread) while the queue is full.
    pub fn insert_async(&self, key: &str, element: u64) -> SendOp<'_, S> {
        self.send_op(
            key,
            Op::Insert {
                key: key.to_owned(),
                element,
            },
        )
    }

    /// Async [`insert_bytes`](Self::insert_bytes).
    pub fn insert_bytes_async(&self, key: &str, element: &[u8]) -> SendOp<'_, S> {
        self.send_op(
            key,
            Op::InsertBytes {
                key: key.to_owned(),
                element: element.to_vec(),
            },
        )
    }

    /// Async [`ingest`](Self::ingest).
    pub fn ingest_async(&self, key: &str, elements: &[u64]) -> SendOp<'_, S> {
        self.send_op(
            key,
            Op::Ingest {
                key: key.to_owned(),
                elements: elements.to_vec(),
            },
        )
    }

    /// Async [`ingest_bytes`](Self::ingest_bytes).
    pub fn ingest_bytes_async(&self, key: &str, elements: &[&[u8]]) -> SendOp<'_, S> {
        self.send_op(
            key,
            Op::IngestBytes {
                key: key.to_owned(),
                elements: elements.iter().map(|bytes| bytes.to_vec()).collect(),
            },
        )
    }

    fn send_op(&self, key: &str, op: Op) -> SendOp<'_, S> {
        SendOp {
            shared: &self.shared,
            queue: self.shared.queue_index(key),
            op: Some(op),
        }
    }

    /// Blocks until every operation submitted before this call has been
    /// applied to the store. Operations submitted concurrently with the
    /// flush (by other threads) may or may not be covered.
    pub fn flush(&self) {
        for queue in self.shared.queues.iter() {
            let mut state = queue.lock();
            let target = state.submitted;
            while state.completed < target {
                state = queue
                    .progress
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Async [`flush`](Self::flush): the returned [`Flush`] future
    /// resolves once every operation submitted before this *call* (not
    /// before the first poll) has been applied.
    pub fn flush_async(&self) -> Flush<'_, S> {
        let targets = self
            .shared
            .queues
            .iter()
            .map(|queue| queue.lock().submitted)
            .collect();
        Flush {
            shared: &self.shared,
            targets,
        }
    }
}

impl<S: BatchInsert + Send + Sync + 'static> Drop for IngestPipeline<S> {
    /// Closes the queues, drains every accepted operation into the
    /// store, joins the writer threads, and resurfaces the first panic
    /// a sketch update raised on a writer (panics never wedge the
    /// pipeline — the writer catches them, accounts the burst so
    /// flushes and backpressured producers still wake, and parks the
    /// payload here).
    fn drop(&mut self) {
        for queue in self.shared.queues.iter() {
            queue.lock().closed = true;
            queue.not_empty.notify_all();
        }
        for writer in self.writers.drain(..) {
            if writer.join().is_err() && !std::thread::panicking() {
                panic!("pipeline writer thread panicked");
            }
        }
        if !std::thread::panicking() {
            for queue in self.shared.queues.iter() {
                if let Some(payload) = queue.lock().panic.take() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl<S: BatchInsert + Send + Sync + 'static> std::fmt::Debug for IngestPipeline<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestPipeline")
            .field("writer_threads", &self.writers.len())
            .field("queue_depth", &self.shared.depth)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

/// Future of an async submission (`insert_async`, `ingest_async`, …):
/// resolves with `()` once the operation has been accepted into its
/// queue, registering the task's waker and yielding while the queue is
/// full. Executor-agnostic — it only uses `std::task` wakers.
///
/// The operation is owned by the future; dropping it before completion
/// abandons the submission (nothing was recorded).
#[must_use = "futures do nothing unless polled; the operation is not submitted yet"]
pub struct SendOp<'a, S> {
    shared: &'a Shared<S>,
    queue: usize,
    op: Option<Op>,
}

impl<S> Future for SendOp<'_, S> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.op.is_none() {
            return Poll::Ready(()); // already accepted on an earlier poll
        }
        let queue = &this.shared.queues[this.queue];
        let mut state = queue.lock();
        if state.ops.len() < this.shared.depth {
            let was_empty = state.ops.is_empty();
            state.ops.push_back(this.op.take().expect("checked above"));
            state.submitted += 1;
            drop(state);
            if was_empty {
                queue.not_empty.notify_one();
            }
            Poll::Ready(())
        } else {
            let waker = cx.waker();
            if !state.send_wakers.iter().any(|w| w.will_wake(waker)) {
                state.send_wakers.push(waker.clone());
            }
            Poll::Pending
        }
    }
}

/// Future of [`IngestPipeline::flush_async`]: resolves with `()` once
/// every operation submitted before the `flush_async` call has been
/// applied to the store. Executor-agnostic.
#[must_use = "futures do nothing unless polled"]
pub struct Flush<'a, S> {
    shared: &'a Shared<S>,
    /// Per-queue submission counts captured at creation; the flush is
    /// done when every queue's completion count reaches its target.
    targets: Box<[u64]>,
}

impl<S> Future for Flush<'_, S> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        for (queue, &target) in this.shared.queues.iter().zip(this.targets.iter()) {
            let mut state = queue.lock();
            if state.completed < target {
                let waker = cx.waker();
                if !state
                    .flush_wakers
                    .iter()
                    .any(|(t, w)| *t == target && w.will_wake(waker))
                {
                    state.flush_wakers.push((target, waker.clone()));
                }
                return Poll::Pending;
            }
        }
        Poll::Ready(())
    }
}

/// Drives one future to completion on the current thread, parking
/// between polls — a minimal, dependency-free executor for tests,
/// examples and synchronous call sites that want to reuse the pipeline's
/// async API. Any real executor (tokio, async-std, …) works just as
/// well; the pipeline's futures only rely on `std::task` wakers.
pub fn block_on<F: Future>(future: F) -> F::Output {
    /// Unparks the blocked thread on wake; the flag swallows spurious
    /// unparks and coalesces repeated wakes.
    struct ThreadWaker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }

    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            if !self.notified.swap(true, Ordering::Release) {
                self.thread.unpark();
            }
        }
    }

    let state = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&state));
    let mut context = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        if let Poll::Ready(output) = future.as_mut().poll(&mut context) {
            return output;
        }
        while !state.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }
}
