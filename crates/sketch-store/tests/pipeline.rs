//! Integration tests of the pipelined ingest front: equivalence with
//! synchronous ingest under arbitrary interleavings, bounded-memory
//! backpressure, flush/drop semantics, and the executor-agnostic
//! futures.

use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch2, SetSketchConfig};
use sketch_store::{block_on, PipelineFull, SketchStore};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn config() -> SetSketchConfig {
    SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap()
}

fn shared_store(shards: usize, depth: usize, writers: usize) -> Arc<SketchStore<SetSketch2>> {
    let cfg = config();
    SketchStore::builder(move || SetSketch2::new(cfg, 11))
        .shards(shards)
        .queue_depth(depth)
        .writer_threads(writers)
        .build_shared()
}

/// One generated pipeline operation, fanned across four keys.
#[derive(Debug, Clone)]
enum PlannedOp {
    Insert(u8, u64),
    InsertBytes(u8, u64),
    Ingest(u8, Vec<u64>),
    IngestBytes(u8, Vec<u64>),
}

impl PlannedOp {
    fn key(index: u8) -> String {
        format!("key-{}", index % 4)
    }

    /// Applies the op synchronously through the store's blocking API
    /// (the reference semantics the pipeline must reproduce).
    fn apply_sync(&self, store: &SketchStore<SetSketch2>) {
        match self {
            PlannedOp::Insert(k, e) => store.insert(&Self::key(*k), *e),
            PlannedOp::InsertBytes(k, e) => store.insert_bytes(&Self::key(*k), &e.to_le_bytes()),
            PlannedOp::Ingest(k, batch) => store.ingest(&Self::key(*k), batch),
            PlannedOp::IngestBytes(k, batch) => {
                let owned: Vec<Vec<u8>> = batch.iter().map(|e| e.to_le_bytes().to_vec()).collect();
                let slices: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
                store.ingest_bytes(&Self::key(*k), &slices);
            }
        }
    }

    /// Submits the op through a pipeline handle, alternating blocking
    /// and non-blocking entry points (a failed `try_*` falls back to
    /// the blocking form, exercising both).
    fn apply_pipelined(&self, pipeline: &sketch_store::IngestPipeline<SetSketch2>) {
        match self {
            PlannedOp::Insert(k, e) => {
                if pipeline.try_insert(&Self::key(*k), *e) == Err(PipelineFull) {
                    pipeline.insert(&Self::key(*k), *e);
                }
            }
            PlannedOp::InsertBytes(k, e) => pipeline.insert_bytes(&Self::key(*k), &e.to_le_bytes()),
            PlannedOp::Ingest(k, batch) => {
                if pipeline.try_ingest(&Self::key(*k), batch) == Err(PipelineFull) {
                    pipeline.ingest(&Self::key(*k), batch);
                }
            }
            PlannedOp::IngestBytes(k, batch) => {
                let owned: Vec<Vec<u8>> = batch.iter().map(|e| e.to_le_bytes().to_vec()).collect();
                let slices: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
                if pipeline.try_ingest_bytes(&Self::key(*k), &slices) == Err(PipelineFull) {
                    pipeline.ingest_bytes(&Self::key(*k), &slices);
                }
            }
        }
    }
}

fn op_strategy() -> impl Strategy<Value = PlannedOp> {
    (0u8..4, 0u8..4, 0u64..1_000, vec(0u64..1_000, 0..12)).prop_map(
        |(kind, key, element, batch)| match kind {
            0 => PlannedOp::Insert(key, element),
            1 => PlannedOp::InsertBytes(key, element),
            2 => PlannedOp::Ingest(key, batch),
            _ => PlannedOp::IngestBytes(key, batch),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Four pipeline handles over one store, driven concurrently from
    /// four threads with arbitrary operation interleavings (tiny queues
    /// force backpressure), must produce a final store state identical
    /// to sequential synchronous ingest of the same operations —
    /// exactly, not within tolerance: inserts are idempotent and
    /// commutative.
    #[test]
    fn interleaved_pipelines_match_sequential(
        plans in vec(vec(op_strategy(), 0..24), 4),
    ) {
        let store = shared_store(4, 2, 2);
        {
            let pipelines: Vec<_> = (0..4).map(|_| store.clone().pipeline()).collect();
            std::thread::scope(|scope| {
                for (plan, pipeline) in plans.iter().zip(&pipelines) {
                    scope.spawn(move || {
                        for op in plan {
                            op.apply_pipelined(pipeline);
                        }
                    });
                }
            });
            for pipeline in &pipelines {
                pipeline.flush();
            }
            prop_assert_eq!(pipelines.iter().map(|p| p.pending()).sum::<usize>(), 0);
        } // handles dropped: queues drained, writers joined

        let reference = SketchStore::builder(move || SetSketch2::new(config(), 11))
            .shards(4)
            .build();
        for plan in &plans {
            for op in plan {
                op.apply_sync(&reference);
            }
        }

        prop_assert_eq!(store.keys(), reference.keys());
        for key in reference.keys() {
            prop_assert_eq!(store.get(&key), reference.get(&key), "key {} diverged", key);
        }
    }
}

/// A full queue must make producers block (bounded memory), not grow:
/// with the single writer wedged behind a held shard lock, `try_*`
/// fails once the queue holds `queue_depth` operations, a blocking
/// insert parks, and everything applies after the lock is released.
#[test]
fn full_queue_blocks_instead_of_growing() {
    let depth = 4;
    let store = shared_store(1, depth, 1);
    store.insert("k", 0); // the key exists before the lock is taken
    let pipeline = store.clone().pipeline();

    // Wedge the writer: hold the only shard's read lock hostage so the
    // writer's ingest (which needs the write lock) cannot finish.
    let (locked_tx, locked_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let holder = {
        let store = store.clone();
        std::thread::spawn(move || {
            store.with_sketch("k", |_| {
                locked_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        })
    };
    locked_rx.recv().unwrap();

    // Submit one op; once the idle writer drains it (single-op burst)
    // it wedges mid-apply on the held shard lock, so nothing else can
    // drain and the fill below is deterministic. The writer's wake-up
    // latency is microseconds; the sleep makes the ordering safe.
    pipeline.insert("k", 1);
    std::thread::sleep(Duration::from_millis(200));

    // Exactly `depth` more operations are accepted before the queue
    // refuses; the in-flight op keeps `pending` one higher.
    for e in 0..depth as u64 {
        assert!(pipeline.try_insert("k", e + 2).is_ok(), "op {e} refused");
    }
    assert_eq!(pipeline.try_insert("k", 999_999), Err(PipelineFull));
    assert_eq!(pipeline.pending(), depth + 1);

    // A blocking insert must park rather than return...
    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pipeline.insert("k", depth as u64 + 2);
            parked_tx.send(()).unwrap();
        });
        assert_eq!(
            parked_rx.recv_timeout(Duration::from_millis(200)),
            Err(mpsc::RecvTimeoutError::Timeout),
            "blocking insert returned while the queue was full"
        );
        // ...until the writer unwedges and drains the queue.
        release_tx.send(()).unwrap();
        parked_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("parked insert completed after release");
    });
    holder.join().unwrap();
    pipeline.flush();

    // Every accepted element (0..=depth+2) reached the store.
    let reference = {
        let mut sketch = SetSketch2::new(config(), 11);
        for e in 0..=depth as u64 + 2 {
            sketch_core::Sketch::insert_u64(&mut sketch, e);
        }
        sketch
    };
    assert_eq!(store.get("k").unwrap(), reference);
}

/// Dropping the pipeline drains accepted operations without an explicit
/// flush.
#[test]
fn drop_drains_accepted_operations() {
    let store = shared_store(4, 64, 2);
    {
        let pipeline = store.clone().pipeline();
        for e in 0..500u64 {
            pipeline.insert("events", e);
        }
        pipeline.ingest("events", &(500..600).collect::<Vec<_>>());
    } // no flush: Drop must drain
    let mut reference = SetSketch2::new(config(), 11);
    sketch_core::BatchInsert::insert_batch(&mut reference, &(0..600).collect::<Vec<_>>());
    assert_eq!(store.get("events").unwrap(), reference);
}

/// The async entry points (SendOp + Flush futures under the bundled
/// block_on) reach the same state as the blocking API, including when
/// sends outnumber the queue depth.
#[test]
fn async_sends_and_flush_reach_the_same_state() {
    let store = shared_store(2, 2, 2);
    let pipeline = store.clone().pipeline();
    block_on(async {
        for e in 0..200u64 {
            pipeline.insert_async("a", e).await;
        }
        pipeline
            .ingest_async("b", &(0..100).collect::<Vec<_>>())
            .await;
        pipeline
            .ingest_bytes_async("b", &[b"x".as_slice(), b"y".as_slice()])
            .await;
        pipeline.insert_bytes_async("a", b"z").await;
        pipeline.flush_async().await;
    });
    // flush_async covered everything submitted before it.
    assert_eq!(pipeline.pending(), 0);

    let reference = SketchStore::builder(move || SetSketch2::new(config(), 11)).build();
    for e in 0..200u64 {
        reference.insert("a", e);
    }
    reference.ingest("b", &(0..100).collect::<Vec<_>>());
    reference.ingest_bytes("b", &[b"x".as_slice(), b"y".as_slice()]);
    reference.insert_bytes("a", b"z");
    assert_eq!(store.get("a"), reference.get("a"));
    assert_eq!(store.get("b"), reference.get("b"));
}

/// An immediately-awaited flush on an idle pipeline resolves at once,
/// and a flush captured before later submissions does not wait for
/// them.
#[test]
fn flush_covers_only_prior_submissions() {
    let store = shared_store(2, 8, 1);
    let pipeline = store.clone().pipeline();
    block_on(pipeline.flush_async()); // idle: resolves immediately
    pipeline.insert("k", 1);
    pipeline.flush();
    assert!(store.contains_key("k"));
}

/// A sketch update that panics on a writer thread must not wedge the
/// pipeline: flushes and producers still complete (the burst is
/// accounted), and the panic resurfaces when the pipeline is dropped.
#[test]
fn writer_panic_wakes_flush_and_resurfaces_on_drop() {
    #[derive(Clone, Default)]
    struct Panicky;
    impl sketch_core::Sketch for Panicky {
        fn insert_u64(&mut self, element: u64) {
            assert_ne!(element, 42, "poison pill");
        }
        fn insert_bytes(&mut self, _bytes: &[u8]) {}
    }
    impl sketch_core::BatchInsert for Panicky {}

    let store = SketchStore::builder(Panicky::default)
        .shards(1)
        .queue_depth(4)
        .writer_threads(1)
        .build_shared();
    let pipeline = store.clone().pipeline();
    pipeline.insert("k", 42);
    pipeline.flush(); // must not hang on the dead burst
    assert_eq!(pipeline.pending(), 0);
    pipeline.insert("k", 1); // the writer survives and keeps applying
    pipeline.flush();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(pipeline)));
    assert!(outcome.is_err(), "drop must resurface the sketch panic");
}

/// Accessors and error formatting.
#[test]
fn pipeline_reports_configuration() {
    let store = shared_store(4, 32, 3);
    let pipeline = store.clone().pipeline();
    assert_eq!(pipeline.writer_threads(), 3);
    assert_eq!(pipeline.queue_depth(), 32);
    assert_eq!(pipeline.pending(), 0);
    assert!(Arc::ptr_eq(pipeline.store(), &store));
    assert_eq!(PipelineFull.to_string(), "ingest pipeline queue is full");
}
