//! Integration tests for the hot / warm / frozen memory tiers.
//!
//! * A tiered store under maximal demotion pressure must be
//!   indistinguishable from a plain store across interleaved inserts,
//!   merges, point queries and snapshot/restore cycles — for every
//!   sketch family (demote → promote is bit-for-bit).
//! * A budget-capped store must ingest 10× more keys than its budget
//!   holds without errors or data loss.
//! * A warm SetSketch (m = 4096) must occupy ≤ 40% of its resident
//!   footprint and rehydrate with a bit-identical estimate.
//! * Frozen segment files must never leak: they vanish when the store
//!   drops (or is cleared).
//! * Snapshots carrying compact (cold) entries must round-trip through
//!   serde and restore without rehydration.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::{MinHash, OnePermutationHashing, SuperMinHash};
use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_core::{BatchInsert, CardinalityEstimator, CompactSketch, Mergeable};
use sketch_store::{SketchStore, StoreSnapshot};
use thetasketch::ThetaSketch;

/// One step of an interleaved tier workload over a small key space.
#[derive(Debug, Clone)]
enum Op {
    /// Ingest `len` consecutive elements starting at `start` into key
    /// number `key`.
    Ingest { key: usize, start: u64, len: u64 },
    /// Merge key `src` into key `dst` (skipped unless both exist).
    Merge { dst: usize, src: usize },
    /// Compare the tiered store's view of `key` against the reference.
    Query { key: usize },
    /// Snapshot the tiered store and replace it with the restore.
    SnapshotRestore,
}

fn key_name(key: usize) -> String {
    format!("k{key}")
}

fn decode_op((kind, pair, start, len): (u8, usize, u64, u64)) -> Op {
    // `pair` packs two key indices over a 5-key space: dst = pair / 5,
    // src = pair % 5 (the vendored proptest shim caps tuples at four
    // elements, so the two indices travel in one value).
    let (a, b) = (pair / 5, pair % 5);
    match kind {
        0..=2 => Op::Ingest { key: a, start, len },
        3 | 4 => Op::Merge { dst: a, src: b },
        5 | 6 => Op::Query { key: a },
        _ => Op::SnapshotRestore,
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec((0u8..8, 0usize..25, 0u64..1_000, 1u64..40), 1..30)
        .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

/// Runs `ops` against a maximally tiered store (1-byte budget, demotion
/// scan on every write) and a plain store side by side, asserting they
/// agree at every query and at the end.
fn drive<S>(
    factory: impl Fn() -> S + Clone + Send + Sync + 'static,
    ops: &[Op],
) -> Result<(), TestCaseError>
where
    S: BatchInsert + Mergeable + CompactSketch + Clone + PartialEq + std::fmt::Debug,
{
    let mut tiered = SketchStore::builder(factory.clone())
        .shards(4)
        .memory_budget_bytes(1)
        .demote_after_writes(1)
        .build();
    let plain = SketchStore::builder(factory.clone()).shards(4).build();

    for op in ops {
        match op {
            Op::Ingest { key, start, len } => {
                let batch: Vec<u64> = (*start..start + len).collect();
                let name = key_name(*key);
                tiered.ingest(&name, &batch);
                plain.ingest(&name, &batch);
            }
            Op::Merge { dst, src } => {
                let (dst, src) = (key_name(*dst), key_name(*src));
                if dst != src && plain.contains_key(&dst) && plain.contains_key(&src) {
                    let merged = plain.merge_keys(&[&dst, &src]).expect("keys exist");
                    plain.put(&dst, merged);
                    let merged = tiered.merge_keys(&[&dst, &src]).expect("keys exist");
                    tiered.put(&dst, merged);
                }
            }
            Op::Query { key } => {
                let name = key_name(*key);
                prop_assert_eq!(
                    tiered.get(&name),
                    plain.get(&name),
                    "query {} diverged",
                    &name
                );
            }
            Op::SnapshotRestore => {
                let snapshot = tiered.snapshot();
                tiered = SketchStore::from_snapshot(snapshot, factory.clone());
            }
        }
    }

    let mut expected_keys = plain.keys();
    expected_keys.sort_unstable();
    let mut tiered_keys = tiered.keys();
    tiered_keys.sort_unstable();
    prop_assert_eq!(&tiered_keys, &expected_keys, "key sets diverged");
    for key in &expected_keys {
        prop_assert_eq!(
            tiered.get(key),
            plain.get(key),
            "final state of {} diverged",
            key
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tiered_matches_plain_setsketch2(ops in ops_strategy()) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        drive(move || SetSketch2::new(cfg, 2), &ops)?;
    }

    #[test]
    fn tiered_matches_plain_ghll(ops in ops_strategy()) {
        let cfg = GhllConfig::hyperloglog(64).unwrap();
        drive(move || GhllSketch::new(cfg, 3), &ops)?;
    }

    #[test]
    fn tiered_matches_plain_minhash(ops in ops_strategy()) {
        drive(|| MinHash::new(64, 4), &ops)?;
    }
}

/// A fixed op script exercising every transition at least once: insert,
/// re-insert after demotion, merge of cold keys, queries, and two
/// snapshot/restore cycles.
fn fixed_script() -> Vec<Op> {
    use Op::*;
    vec![
        Ingest {
            key: 0,
            start: 0,
            len: 30,
        },
        Ingest {
            key: 1,
            start: 10,
            len: 30,
        },
        Query { key: 0 },
        Ingest {
            key: 2,
            start: 50,
            len: 5,
        },
        Merge { dst: 0, src: 1 },
        SnapshotRestore,
        Query { key: 1 },
        Ingest {
            key: 0,
            start: 100,
            len: 20,
        },
        Query { key: 0 },
        Ingest {
            key: 3,
            start: 0,
            len: 64,
        },
        Merge { dst: 2, src: 3 },
        SnapshotRestore,
        Query { key: 2 },
        Ingest {
            key: 4,
            start: 7,
            len: 9,
        },
        Query { key: 4 },
        Query { key: 3 },
    ]
}

/// Demote → promote must be bit-for-bit for all eight sketch families:
/// the three native compact codecs (SetSketch1/2, GHLL) and the five
/// serde-snapshot fallbacks.
#[test]
fn all_families_roundtrip_through_tiers() {
    let ops = fixed_script();
    let ss_cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    drive(move || SetSketch1::new(ss_cfg, 1), &ops).unwrap();
    drive(move || SetSketch2::new(ss_cfg, 2), &ops).unwrap();
    let ghll_cfg = GhllConfig::hyperloglog(64).unwrap();
    drive(move || GhllSketch::new(ghll_cfg, 3), &ops).unwrap();
    drive(|| MinHash::new(64, 4), &ops).unwrap();
    drive(|| SuperMinHash::new(64, 5), &ops).unwrap();
    drive(|| OnePermutationHashing::new(64, 6), &ops).unwrap();
    let hmh_cfg = HyperMinHashConfig::new(64, 10).unwrap();
    drive(move || HyperMinHash::new(hmh_cfg, 7), &ops).unwrap();
    drive(|| ThetaSketch::new(128, 8), &ops).unwrap();
}

/// A store capped at 10 sketches' worth of memory must absorb 100 keys
/// without errors, keep every key queryable, and stay near its budget.
#[test]
fn budget_capped_store_ingests_ten_times_budget() {
    let config = SetSketchConfig::new(4096, 2.0, 20.0, 62).unwrap();
    let factory = move || SetSketch2::new(config, 9);
    let one_sketch = factory().resident_bytes();
    let budget = 10 * one_sketch;
    let store = SketchStore::builder(factory)
        .shards(8)
        .memory_budget_bytes(budget)
        .build();

    let keys = 100usize;
    for i in 0..keys {
        let base = i as u64 * 1_000;
        let batch: Vec<u64> = (base..base + 200).collect();
        store.ingest(&format!("key-{i}"), &batch);
    }

    let stats = store.tier_stats();
    assert_eq!(stats.total_keys(), keys, "no key may be dropped: {stats:?}");
    assert!(
        stats.warm_keys + stats.frozen_keys > 0,
        "10× overcommit must force demotions: {stats:?}"
    );
    assert!(
        stats.resident_bytes() <= budget + one_sketch,
        "resident {} exceeds budget {} by more than one in-flight sketch: {stats:?}",
        stats.resident_bytes(),
        budget
    );

    // No data loss: sampled keys rehydrate to exactly the reference
    // sketch built from the same elements.
    for i in (0..keys).step_by(7) {
        let base = i as u64 * 1_000;
        let batch: Vec<u64> = (base..base + 200).collect();
        let mut reference = factory();
        reference.insert_batch(&batch);
        assert_eq!(
            store.get(&format!("key-{i}")).expect("key survived"),
            reference,
            "key-{i} lost data through the tiers"
        );
    }
}

/// The warm encoding of a dense m = 4096 SetSketch must be at most 40%
/// of the resident footprint (≥ 2.5× compression), and rehydrate to a
/// bit-identical sketch and cardinality estimate.
#[test]
fn warm_slot_is_under_forty_percent_of_resident() {
    let config = SetSketchConfig::new(4096, 2.0, 20.0, 62).unwrap();
    let factory = move || SetSketch2::new(config, 11);
    let store = SketchStore::builder(factory)
        .shards(1)
        .demote_after_writes(1)
        .build();

    let batch: Vec<u64> = (0..20_000).collect();
    store.ingest("dense", &batch);
    let mut reference = factory();
    reference.insert_batch(&batch);

    // Each write runs one clock revolution; the first clears "dense"'s
    // second-chance bit, the second demotes it to warm.
    store.ingest("other-a", &[1, 2, 3]);
    store.ingest("other-b", &[4, 5, 6]);

    // A snapshot exposes the exact warm payload without promoting.
    let snapshot = store.snapshot();
    let compact = snapshot
        .get("dense")
        .expect("key present")
        .as_compact()
        .expect("dense must have been demoted to warm")
        .len();
    let resident = reference.resident_bytes();
    assert!(
        compact * 5 <= resident * 2,
        "warm payload {compact} B exceeds 40% of resident {resident} B"
    );

    // Promotion restores the registers bit for bit.
    assert_eq!(store.get("dense").expect("key present"), reference);
    let expected = reference.cardinality();
    let actual = store.cardinality("dense").expect("key present");
    assert!(
        actual == expected,
        "estimate drifted through the warm tier: {actual} != {expected}"
    );
}

/// Frozen segment files live under a private spill directory that is
/// removed when the store drops — and when it is cleared.
#[test]
fn frozen_segments_never_leak() {
    let parent = std::env::temp_dir().join(format!("tier-leak-test-{}", std::process::id()));
    std::fs::create_dir_all(&parent).unwrap();
    let config = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    let build = |seed: u64| {
        SketchStore::builder(move || SetSketch2::new(config, seed))
            .shards(2)
            .memory_budget_bytes(1)
            .spill_dir(&parent)
            .build()
    };

    // Store dropped → spill directory removed.
    let store = build(3);
    for i in 0..20u64 {
        store.ingest(&format!("k{i}"), &[i, i + 1, i + 2]);
    }
    let stats = store.tier_stats();
    assert!(
        stats.frozen_keys > 0,
        "1-byte budget must freeze entries: {stats:?}"
    );
    let spill = store.spill_path().expect("segments were created");
    assert!(spill.starts_with(&parent), "spill dir must honour the knob");
    assert!(spill.exists());
    assert!(store.get("k0").is_some(), "frozen keys must rehydrate");
    drop(store);
    assert!(!spill.exists(), "spill dir must be removed on drop");

    // Store cleared → spill directory removed while the store lives on.
    let store = build(4);
    for i in 0..20u64 {
        store.ingest(&format!("k{i}"), &[i, i + 1, i + 2]);
    }
    let spill = store.spill_path().expect("segments were created");
    assert!(spill.exists());
    store.clear();
    assert!(!spill.exists(), "spill dir must be removed on clear");
    assert!(store.is_empty());

    assert_eq!(
        std::fs::read_dir(&parent).unwrap().count(),
        0,
        "no segment files may leak into the parent directory"
    );
    std::fs::remove_dir_all(&parent).unwrap();
}

/// Snapshots of a tiered store carry cold entries compressed; they
/// survive JSON serde bit for bit and restore as warm slots that are
/// not rehydrated until touched.
#[test]
fn snapshot_with_compact_entries_roundtrips_through_json() {
    let config = SetSketchConfig::new(128, 2.0, 20.0, 62).unwrap();
    let factory = move || SetSketch2::new(config, 5);
    let store = SketchStore::builder(factory)
        .shards(2)
        .memory_budget_bytes(1)
        .build();
    for i in 0..8u64 {
        store.ingest(&format!("k{i}"), &[i * 10, i * 10 + 1, i * 10 + 2]);
    }

    let snapshot = store.snapshot();
    assert!(
        snapshot.entries.values().any(|e| e.as_compact().is_some()),
        "a 1-byte budget must leave cold entries in the snapshot"
    );

    let json = serde_json::to_string(&snapshot).unwrap();
    let back: StoreSnapshot<SetSketch2> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snapshot);

    // Restoring keeps compact entries compressed: re-snapshotting the
    // untouched restore reproduces the original snapshot exactly.
    let restored = SketchStore::from_snapshot(back, factory);
    assert_eq!(restored.snapshot(), snapshot);
    for i in 0..8u64 {
        let key = format!("k{i}");
        assert_eq!(
            restored.get(&key),
            store.get(&key),
            "{key} diverged after restore"
        );
    }
}

/// Bit rot in a spill segment must surface as a typed
/// [`StoreError::CorruptSlot`] — the slot is quarantined, bulk sweeps
/// skip it, and the next write heals the key with a fresh sketch.
#[test]
fn corrupt_spill_record_quarantines_and_heals() {
    use sketch_store::StoreError;

    let config = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    let store = SketchStore::builder(move || SetSketch2::new(config, 11))
        .shards(2)
        .memory_budget_bytes(1)
        .build();
    for i in 0..20u64 {
        store.ingest(&format!("k{i}"), &[i, i + 100, i + 200]);
    }
    let stats = store.tier_stats();
    assert!(
        stats.frozen_keys > 0,
        "1-byte budget must freeze: {stats:?}"
    );
    assert_eq!(stats.spill_append_failures, 0);
    assert_eq!(stats.quarantined_keys, 0);

    // Rot every byte of every spill segment.
    let spill = store.spill_path().expect("segments exist");
    for entry in std::fs::read_dir(&spill).unwrap().flatten() {
        let path = entry.path();
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        std::fs::write(&path, vec![0xFF; len]).unwrap();
    }

    // Every key frozen at corruption time now fails typed; nothing
    // panics, nothing decodes garbage.
    let mut corrupt = Vec::new();
    for i in 0..20u64 {
        let key = format!("k{i}");
        match store.cardinality(&key) {
            Err(StoreError::CorruptSlot { key: k, .. }) => {
                assert_eq!(k, key);
                corrupt.push(key);
            }
            Ok(_) => {}
            Err(other) => panic!("unexpected error for {key}: {other}"),
        }
    }
    assert!(!corrupt.is_empty(), "some frozen key must have rotted");
    let stats = store.tier_stats();
    assert!(
        stats.quarantined_keys >= corrupt.len(),
        "every corrupt read quarantines: {stats:?}"
    );

    // `with_sketch` folds corruption into None; `get` likewise.
    assert!(store.get(&corrupt[0]).is_none());
    // Quarantined slots are skipped by snapshots instead of aborting
    // them.
    assert!(!store.snapshot().entries.contains_key(&corrupt[0]));

    // A write heals the key: fresh sketch, usable again.
    store.ingest(&corrupt[0], &[1, 2, 3]);
    let healed = store.cardinality(&corrupt[0]).expect("healed by write");
    assert!(healed > 0.0);
    assert!(store.tier_stats().quarantined_keys < stats.quarantined_keys);
}

/// A spill directory that cannot be created must not lose writes
/// silently: entries stay warm, the failure is counted in
/// [`TierStats::spill_append_failures`] and the cause is surfaced.
#[test]
fn failed_spill_appends_are_counted_and_surfaced() {
    // A regular file where the spill parent should be: creating the
    // per-store subdirectory fails on every append attempt.
    let bogus = std::env::temp_dir().join(format!("tier-spill-blocked-{}", std::process::id()));
    std::fs::write(&bogus, b"file, not a directory").unwrap();

    let config = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
    let store = SketchStore::builder(move || SetSketch2::new(config, 12))
        .shards(2)
        .memory_budget_bytes(1)
        .spill_dir(&bogus)
        .build();
    for i in 0..20u64 {
        store.ingest(&format!("k{i}"), &[i, i + 1, i + 2]);
    }

    let stats = store.tier_stats();
    assert!(
        stats.spill_append_failures > 0,
        "blocked spills must be counted: {stats:?}"
    );
    assert_eq!(stats.frozen_keys, 0, "nothing can freeze: {stats:?}");
    assert_eq!(
        stats.total_keys(),
        20,
        "failed spills must not lose keys: {stats:?}"
    );
    let error = store.last_spill_error().expect("cause surfaced");
    assert!(!error.is_empty());

    // Data intact: entries stayed warm/hot and remain readable.
    for i in 0..20u64 {
        assert!(store.cardinality(&format!("k{i}")).unwrap() > 0.0);
    }
    std::fs::remove_file(&bogus).unwrap();
}
