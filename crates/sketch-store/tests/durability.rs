//! Integration tests for the crash-safe durability layer.
//!
//! * A durable store rebuilt from its directory must be
//!   indistinguishable from a reference store that saw the same ops —
//!   for every sketch family, across random op scripts, and with
//!   checkpoints cutting the log at aggressive thresholds (so recovery
//!   exercises checkpoint + tail replay, not just pure replay).
//! * Truncating the log at an arbitrary byte (a torn write) must
//!   recover exactly the operations whose records survived whole, and
//!   report the torn tail instead of panicking.
//! * Flipping one bit anywhere in the log (bit rot) must quarantine at
//!   most the damaged region: every key the recovered store *does*
//!   hold is bit-for-bit correct, and everything before the damage
//!   survives.
//! * Remove and clear must replay — a deleted key stays deleted across
//!   the restart.

use hyperloglog::{GhllConfig, GhllSketch};
use hyperminhash::{HyperMinHash, HyperMinHashConfig};
use minhash::{MinHash, OnePermutationHashing, SuperMinHash};
use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_core::{BatchInsert, CompactSketch, Mergeable};
use sketch_store::{FsyncPolicy, SketchStore};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use thetasketch::ThetaSketch;

/// A unique scratch directory under the OS temp dir; removed by
/// [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sketch-durability-{tag}-{}-{unique}",
            std::process::id()
        ));
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The WAL segment files under a durable dir, ascending.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("durable dir exists")
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("wal-") && name.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments
}

// --- Scripted equivalence across all families ------------------------

/// One step of a durable workload over a small key space.
#[derive(Debug, Clone)]
enum Op {
    Ingest { key: usize, start: u64, len: u64 },
    MergeIn { dst: usize, start: u64, len: u64 },
    Put { key: usize, start: u64, len: u64 },
    Remove { key: usize },
    Clear,
}

fn key_name(key: usize) -> String {
    format!("k{key}")
}

fn decode_op((kind, key, start, len): (u8, usize, u64, u64)) -> Op {
    let key = key % 5;
    match kind {
        0..=3 => Op::Ingest { key, start, len },
        4 | 5 => Op::MergeIn {
            dst: key,
            start,
            len,
        },
        6 => Op::Put { key, start, len },
        7 => Op::Remove { key },
        _ => Op::Clear,
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    // Clear is rare (kind 8 of 0..9) but present, so scripts exercise
    // whole-store deletion replay too.
    vec((0u8..9, 0usize..5, 0u64..1_000, 1u64..40), 1..40)
        .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

/// Applies one op to a store (any store — durable and reference get the
/// identical call sequence).
fn apply<S>(store: &SketchStore<S>, sketch_of: &impl Fn(u64, u64) -> S, op: &Op)
where
    S: BatchInsert + Mergeable + Clone + PartialEq,
{
    match op {
        Op::Ingest { key, start, len } => {
            let batch: Vec<u64> = (*start..start + len).collect();
            store.ingest(&key_name(*key), &batch);
        }
        Op::MergeIn { dst, start, len } => {
            let incoming = sketch_of(*start, *len);
            store
                .merge_in(&key_name(*dst), &incoming)
                .expect("same-factory sketches merge");
        }
        Op::Put { key, start, len } => {
            store.put(&key_name(*key), sketch_of(*start, *len));
        }
        Op::Remove { key } => {
            store.remove(&key_name(*key));
        }
        Op::Clear => store.clear(),
    }
}

/// Drives `ops` into a durable store and a plain reference store,
/// drops the durable one, rebuilds it from its directory and asserts
/// the recovered store matches the reference key for key,
/// bit for bit. `checkpoint_after` tunes how aggressively the log is
/// checkpointed mid-script (tiny values force checkpoint + tail
/// recovery).
fn drive_durable<S>(
    factory: impl Fn() -> S + Clone + Send + Sync + 'static,
    ops: &[Op],
    checkpoint_after: u64,
) -> Result<(), TestCaseError>
where
    S: BatchInsert + Mergeable + CompactSketch + Clone + PartialEq + std::fmt::Debug,
{
    let scratch = Scratch::new("script");
    let sketch_of = {
        let factory = factory.clone();
        move |start: u64, len: u64| {
            let mut sketch = factory();
            sketch.insert_batch(&(start..start + len).collect::<Vec<u64>>());
            sketch
        }
    };

    let reference = SketchStore::builder(factory.clone()).shards(4).build();
    let epoch_before;
    {
        let durable = SketchStore::builder(factory.clone())
            .shards(4)
            .durable_dir(scratch.path())
            .checkpoint_after_bytes(checkpoint_after)
            .build();
        for op in ops {
            apply(&durable, &sketch_of, op);
            apply(&reference, &sketch_of, op);
        }
        epoch_before = durable.write_epoch();
    }

    let recovered = SketchStore::builder(factory)
        .shards(4)
        .durable_dir(scratch.path())
        .build();
    let report = recovered.recovery_report().expect("durable store");
    prop_assert!(
        report.is_clean(),
        "no crash, so recovery must be clean: {report:?}"
    );
    prop_assert_eq!(
        recovered.keys(),
        reference.keys(),
        "recovered key census diverged"
    );
    for key in reference.keys() {
        prop_assert_eq!(
            recovered.get(&key),
            reference.get(&key),
            "key {} diverged after recovery",
            key
        );
    }
    prop_assert!(
        recovered.write_epoch() >= epoch_before,
        "write epoch went backwards: {} < {epoch_before}",
        recovered.write_epoch()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recovered_matches_reference_setsketch2(ops in ops_strategy()) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        drive_durable(move || SetSketch2::new(cfg, 2), &ops, u64::MAX)?;
    }

    /// Tiny checkpoint threshold: nearly every op cuts a checkpoint, so
    /// recovery is dominated by checkpoint loading, not replay — and
    /// must still match pure replay's result.
    #[test]
    fn checkpointed_matches_reference_setsketch2(ops in ops_strategy()) {
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        drive_durable(move || SetSketch2::new(cfg, 2), &ops, 256)?;
    }

    #[test]
    fn recovered_matches_reference_ghll(ops in ops_strategy()) {
        let cfg = GhllConfig::hyperloglog(64).unwrap();
        drive_durable(move || GhllSketch::new(cfg, 3), &ops, 512)?;
    }
}

/// A fixed script touching every record type (ingest, merge-in, put,
/// remove, clear) for the family matrix.
fn fixed_script() -> Vec<Op> {
    use Op::*;
    vec![
        Ingest {
            key: 0,
            start: 0,
            len: 30,
        },
        Ingest {
            key: 1,
            start: 10,
            len: 30,
        },
        MergeIn {
            dst: 0,
            start: 50,
            len: 20,
        },
        Put {
            key: 2,
            start: 100,
            len: 40,
        },
        Remove { key: 1 },
        Ingest {
            key: 1,
            start: 500,
            len: 10,
        },
        Clear,
        Ingest {
            key: 3,
            start: 7,
            len: 25,
        },
        MergeIn {
            dst: 4,
            start: 0,
            len: 15,
        },
        Put {
            key: 3,
            start: 300,
            len: 5,
        },
        Remove { key: 4 },
        Ingest {
            key: 4,
            start: 40,
            len: 8,
        },
    ]
}

/// WAL replay must reproduce the reference bit-for-bit for all eight
/// sketch families — both with pure replay and through a mid-script
/// checkpoint.
#[test]
fn all_families_recover_bit_for_bit() {
    let ops = fixed_script();
    for checkpoint_after in [u64::MAX, 128] {
        let ss_cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        drive_durable(move || SetSketch1::new(ss_cfg, 1), &ops, checkpoint_after).unwrap();
        drive_durable(move || SetSketch2::new(ss_cfg, 2), &ops, checkpoint_after).unwrap();
        let ghll_cfg = GhllConfig::hyperloglog(64).unwrap();
        drive_durable(move || GhllSketch::new(ghll_cfg, 3), &ops, checkpoint_after).unwrap();
        drive_durable(|| MinHash::new(64, 4), &ops, checkpoint_after).unwrap();
        drive_durable(|| SuperMinHash::new(64, 5), &ops, checkpoint_after).unwrap();
        drive_durable(|| OnePermutationHashing::new(64, 6), &ops, checkpoint_after).unwrap();
        let hmh_cfg = HyperMinHashConfig::new(64, 10).unwrap();
        drive_durable(
            move || HyperMinHash::new(hmh_cfg, 7),
            &ops,
            checkpoint_after,
        )
        .unwrap();
        drive_durable(|| ThetaSketch::new(128, 8), &ops, checkpoint_after).unwrap();
    }
}

// --- Crash-shaped damage ---------------------------------------------

/// Fixed-width keys make every WAL record the same size, so tests can
/// reason about frame boundaries: payload = tag(1) + key(4 + 7) +
/// count(4) + element(8) = 24 bytes, framed to 32.
const FRAME: usize = 32;

fn fixed_key(i: usize) -> String {
    format!("key-{i:03}")
}

fn one_op_per_key_store(dir: &Path, ops: usize) -> SketchStore<SetSketch2> {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
        .shards(4)
        .durable_dir(dir)
        .build();
    for i in 0..ops {
        store.ingest(&fixed_key(i), &[i as u64]);
    }
    store
}

fn reference_sketch(i: usize) -> SetSketch2 {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let mut sketch = SetSketch2::new(cfg, 2);
    sketch.insert_batch(&[i as u64]);
    sketch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the log at an arbitrary byte — what a crash mid-write
    /// leaves behind — must recover exactly the fully-written records
    /// and report (not panic on) the torn tail.
    #[test]
    fn torn_tail_recovers_every_whole_record(ops in 1usize..40, cut_back in 0usize..200) {
        let scratch = Scratch::new("torn");
        drop(one_op_per_key_store(scratch.path(), ops));

        let segments = segment_files(scratch.path());
        prop_assert_eq!(segments.len(), 1, "small log stays in one segment");
        let total = std::fs::metadata(&segments[0]).unwrap().len() as usize;
        prop_assert_eq!(total, ops * FRAME, "frame-size arithmetic drifted");
        let cut = total.saturating_sub(cut_back % (total + 1));
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segments[0])
            .unwrap()
            .set_len(cut as u64)
            .unwrap();

        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let recovered = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .shards(4)
            .durable_dir(scratch.path())
            .build();
        let report = recovered.recovery_report().unwrap().clone();

        let whole = cut / FRAME;
        prop_assert_eq!(report.records_replayed, whole);
        prop_assert_eq!(report.torn_tail, cut % FRAME != 0, "torn iff the cut split a frame");
        prop_assert_eq!(recovered.len(), whole);
        for i in 0..ops {
            prop_assert_eq!(
                recovered.get(&fixed_key(i)),
                (i < whole).then(|| reference_sketch(i)),
                "key {} after cut at {}",
                i,
                cut
            );
        }
        drop(recovered);

        // The torn tail was truncated away: a second recovery is clean.
        let second = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .shards(4)
            .durable_dir(scratch.path())
            .build();
        prop_assert!(second.recovery_report().unwrap().is_clean());
        prop_assert_eq!(second.len(), whole);
    }

    /// Flipping one bit anywhere in the log — disk bit rot — must
    /// quarantine at most the damaged region: everything before it
    /// survives, and every recovered key is bit-for-bit correct.
    #[test]
    fn bit_flip_quarantines_at_most_the_damage(ops in 1usize..40, flip in 0usize..1280) {
        let scratch = Scratch::new("flip");
        drop(one_op_per_key_store(scratch.path(), ops));

        let segments = segment_files(scratch.path());
        let path = &segments[0];
        let mut bytes = std::fs::read(path).unwrap();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(path, &bytes).unwrap();
        let damaged_frame = bit / 8 / FRAME;

        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let recovered = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .shards(4)
            .durable_dir(scratch.path())
            .build();
        let report = recovered.recovery_report().unwrap().clone();

        prop_assert!(
            !report.is_clean(),
            "a flipped bit cannot go unnoticed: {report:?}"
        );
        prop_assert!(
            report.records_replayed < ops,
            "the damaged record cannot replay"
        );
        for i in 0..damaged_frame {
            prop_assert_eq!(
                recovered.get(&fixed_key(i)),
                Some(reference_sketch(i)),
                "key {} precedes the damage and must survive",
                i
            );
        }
        // Nothing the store holds may be wrong — damaged records are
        // dropped, never misapplied.
        for i in 0..ops {
            if let Some(found) = recovered.get(&fixed_key(i)) {
                prop_assert_eq!(found, reference_sketch(i), "key {} corrupted silently", i);
            }
        }
    }
}

// --- Directed edges --------------------------------------------------

/// Checkpoints must delete the segments they cover, and a recovery
/// straddling checkpoint + tail must see both sides.
#[test]
fn checkpoint_truncates_log_and_recovers_with_tail() {
    let scratch = Scratch::new("checkpoint");
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    {
        let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .shards(4)
            .durable_dir(scratch.path())
            .build();
        for i in 0..20 {
            store.ingest(&fixed_key(i), &[i as u64]);
        }
        store.remove(&fixed_key(7));
        store.checkpoint().unwrap();
        let after = store.wal_bytes_since_checkpoint().unwrap();
        assert_eq!(after, 0, "checkpoint resets the log-growth counter");
        // Tail ops after the checkpoint.
        store.ingest(&fixed_key(7), &[700]);
        store.ingest(&fixed_key(20), &[20]);
    }

    let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
        .shards(4)
        .durable_dir(scratch.path())
        .build();
    let report = store.recovery_report().unwrap();
    assert!(report.checkpoint_loaded, "checkpoint exists: {report:?}");
    assert_eq!(report.checkpoint_entries, 19, "20 keys minus one removed");
    assert_eq!(report.records_replayed, 2, "only the tail replays");
    assert_eq!(store.len(), 21);
    let mut rebuilt = SetSketch2::new(cfg, 2);
    rebuilt.insert_batch(&[700]);
    assert_eq!(store.get(&fixed_key(7)), Some(rebuilt), "tail op applied");
    assert_eq!(store.get(&fixed_key(20)), Some(reference_sketch(20)));
    assert_eq!(store.get(&fixed_key(3)), Some(reference_sketch(3)));
}

/// A removed key must stay removed across recovery (replay is ordered),
/// and a cleared store must come back empty.
#[test]
fn remove_and_clear_replay_in_order() {
    let scratch = Scratch::new("remove");
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    {
        let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .durable_dir(scratch.path())
            .build();
        store.ingest("a", &[1, 2, 3]);
        store.ingest("b", &[4]);
        store.remove("a");
    }
    let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
        .durable_dir(scratch.path())
        .build();
    assert!(!store.contains_key("a"), "removed key resurrected");
    assert!(store.contains_key("b"));
    drop(store);

    let scratch = Scratch::new("clear");
    {
        let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .durable_dir(scratch.path())
            .build();
        store.ingest("a", &[1]);
        store.ingest("b", &[2]);
        store.clear();
        store.ingest("c", &[3]);
    }
    let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
        .durable_dir(scratch.path())
        .build();
    assert_eq!(store.keys(), vec!["c".to_owned()], "clear must replay");
}

/// Every fsync policy must produce an equally recoverable log (they
/// differ only in when bytes reach the platter, which a plain process
/// exit cannot observe).
#[test]
fn all_fsync_policies_roundtrip() {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    for policy in [FsyncPolicy::Os, FsyncPolicy::EveryN(3), FsyncPolicy::Always] {
        let scratch = Scratch::new("fsync");
        {
            let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
                .durable_dir(scratch.path())
                .fsync_policy(policy)
                .build();
            for i in 0..10 {
                store.ingest(&fixed_key(i), &[i as u64]);
            }
        }
        let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .durable_dir(scratch.path())
            .build();
        assert_eq!(store.len(), 10, "policy {policy:?} lost records");
        for i in 0..10 {
            assert_eq!(store.get(&fixed_key(i)), Some(reference_sketch(i)));
        }
    }
}

/// `try_build` surfaces an unusable durable directory as a typed error
/// (`build` would panic), and a non-durable store reports no recovery.
#[test]
fn unusable_dir_is_a_typed_error() {
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    let scratch = Scratch::new("file-not-dir");
    std::fs::create_dir_all(scratch.path().parent().unwrap()).unwrap();
    std::fs::write(scratch.path(), b"not a directory").unwrap();
    let result = SketchStore::builder(move || SetSketch2::new(cfg, 2))
        .durable_dir(scratch.path())
        .try_build();
    assert!(
        matches!(result, Err(sketch_store::StoreError::Durability(_))),
        "a file where the durable dir should be must fail typed"
    );

    let plain = SketchStore::builder(move || SetSketch2::new(cfg, 2)).build();
    assert!(plain.recovery_report().is_none());
    assert_eq!(plain.wal_failures(), 0);
    assert!(plain.last_wal_error().is_none());
    plain.checkpoint().unwrap(); // no-op, not an error
}

/// Durability composes with the memory tiers: a budget-starved durable
/// store (every key demoted aggressively) must still recover
/// bit-for-bit.
#[test]
fn durable_tiered_store_recovers() {
    let scratch = Scratch::new("tiered");
    let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
    {
        let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
            .shards(4)
            .memory_budget_bytes(1)
            .demote_after_writes(1)
            .durable_dir(scratch.path())
            .checkpoint_after_bytes(256)
            .build();
        for i in 0..15 {
            store.ingest(&fixed_key(i), &[i as u64]);
        }
    }
    let store = SketchStore::builder(move || SetSketch2::new(cfg, 2))
        .shards(4)
        .durable_dir(scratch.path())
        .build();
    assert_eq!(store.len(), 15);
    for i in 0..15 {
        assert_eq!(store.get(&fixed_key(i)), Some(reference_sketch(i)));
    }
}
