//! Integration tests of the sharded sketch store against real sketches.

use hyperloglog::{GhllConfig, GhllSketch};
use minhash::MinHash;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_store::{SketchStore, StoreError};

fn config() -> SetSketchConfig {
    SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap()
}

fn setsketch_store(shards: usize) -> SketchStore<SetSketch2> {
    let cfg = config();
    SketchStore::builder(move || SetSketch2::new(cfg, 11))
        .shards(shards)
        .build()
}

#[test]
fn ingest_creates_and_fills_keys() {
    let store = setsketch_store(4);
    assert!(store.is_empty());
    store.ingest("a", &(0..1_000).collect::<Vec<_>>());
    store.insert("b", 1);
    store.insert_bytes("c", b"hello");
    assert_eq!(store.len(), 3);
    assert!(store.contains_key("a") && !store.contains_key("d"));
    assert_eq!(store.keys(), vec!["a", "b", "c"]);
    let card = store.cardinality("a").unwrap();
    assert!((card - 1_000.0).abs() / 1_000.0 < 0.2, "estimate {card}");
    assert!(matches!(
        store.cardinality("missing"),
        Err(StoreError::KeyNotFound(_))
    ));
}

#[test]
fn ingest_equals_per_element_insertion() {
    let store = setsketch_store(8);
    let elements: Vec<u64> = (0..5_000).map(|i| i % 4_000).collect();
    store.ingest("batched", &elements);
    let mut reference = SetSketch2::new(config(), 11);
    for &e in &elements {
        reference.insert_u64(e);
    }
    assert_eq!(store.get("batched").unwrap(), reference);
}

#[test]
fn joint_queries_across_shards() {
    // Many keys over few shards: pairs land in the same and in different
    // shards; all must answer.
    let store = setsketch_store(2);
    for k in 0..6 {
        let base = k * 5_000;
        store.ingest(
            &format!("set{k}"),
            &(base..base + 10_000).collect::<Vec<_>>(),
        );
    }
    for k in 0..5usize {
        let a = format!("set{k}");
        let b = format!("set{}", k + 1);
        // True Jaccard between consecutive sets: 5000/15000 = 1/3.
        let joint = store.joint(&a, &b).unwrap();
        assert!(
            (joint.jaccard - 1.0 / 3.0).abs() < 0.12,
            "{a}/{b}: {}",
            joint.jaccard
        );
        let inter = store.intersection_cardinality(&a, &b).unwrap();
        assert!((inter - 5_000.0).abs() / 5_000.0 < 0.35, "{a}/{b}: {inter}");
    }
    // Self-join is exact similarity 1.
    assert!((store.jaccard("set0", "set0").unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn union_and_merge_down() {
    let store = setsketch_store(4);
    store.ingest("a", &(0..4_000).collect::<Vec<_>>());
    store.ingest("b", &(2_000..6_000).collect::<Vec<_>>());
    store.ingest("c", &(5_000..8_000).collect::<Vec<_>>());
    let union_ab = store.union_cardinality(&["a", "b"]).unwrap();
    assert!((union_ab - 6_000.0).abs() / 6_000.0 < 0.2, "{union_ab}");
    let all = store.merge_down().unwrap().unwrap();
    let mut reference = SetSketch2::new(config(), 11);
    reference.extend(0..8_000);
    assert_eq!(all, reference);
    assert!(matches!(
        store.merge_keys(&[]),
        Err(StoreError::EmptySelection)
    ));
    let empty: SketchStore<SetSketch2> = setsketch_store(4);
    assert!(empty.merge_down().unwrap().is_none());
}

#[test]
fn incompatible_put_surfaces_detailed_error() {
    let store = setsketch_store(4);
    store.ingest("ours", &(0..100).collect::<Vec<_>>());
    // A sketch from elsewhere with a different hash seed.
    let mut foreign = SetSketch2::new(config(), 999);
    foreign.extend(0..100);
    store.put("theirs", foreign);
    let err = store.merge_keys(&["ours", "theirs"]).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("seeds differ (left: 11, right: 999)"),
        "store error must surface the seed mismatch detail, got: {message}"
    );
    // The typed source is preserved for programmatic inspection.
    let source = std::error::Error::source(&err).expect("boxed source");
    let detail = source
        .downcast_ref::<setsketch::IncompatibleSketches>()
        .expect("SetSketch incompatibility");
    assert_eq!(detail.seeds, Some((11, 999)));
    assert!(detail.configs.is_none());
}

#[test]
fn snapshot_roundtrip_restores_state() {
    let store = setsketch_store(4);
    store.ingest("x", &(0..3_000).collect::<Vec<_>>());
    store.ingest("y", &(1_000..4_000).collect::<Vec<_>>());
    let snapshot = store.snapshot();
    assert_eq!(snapshot.len(), 2);
    assert_eq!(snapshot.shard_count, 4);
    let cfg = config();
    let restored = SketchStore::from_snapshot(snapshot.clone(), move || SetSketch2::new(cfg, 11));
    assert_eq!(restored.get("x").unwrap(), store.get("x").unwrap());
    assert_eq!(restored.snapshot(), snapshot);
    // The restored store keeps working: new keys come from the factory
    // and are compatible with restored ones.
    restored.ingest("z", &(0..500).collect::<Vec<_>>());
    assert!(restored.jaccard("x", "z").is_ok());
}

#[cfg(feature = "serde")]
#[test]
fn snapshot_serde_roundtrip() {
    let store = setsketch_store(3);
    store.ingest("alpha", &(0..2_000).collect::<Vec<_>>());
    store.ingest("beta", &(500..2_500).collect::<Vec<_>>());
    let snapshot = store.snapshot();
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: sketch_store::StoreSnapshot<SetSketch2> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snapshot);
}

#[test]
fn remove_and_clear() {
    let store = setsketch_store(4);
    store.ingest("a", &[1, 2, 3]);
    store.ingest("b", &[4, 5, 6]);
    assert!(store.remove("a").is_some());
    assert!(store.remove("a").is_none());
    assert_eq!(store.len(), 1);
    store.clear();
    assert!(store.is_empty());
}

#[test]
fn works_with_other_sketch_families() {
    // GHLL (HyperLogLog).
    let ghll_cfg = GhllConfig::hyperloglog(256).unwrap();
    let store = SketchStore::builder(move || GhllSketch::new(ghll_cfg, 5)).build();
    store.ingest("big", &(0..50_000).collect::<Vec<_>>());
    store.ingest("other", &(25_000..75_000).collect::<Vec<_>>());
    let card = store.cardinality("big").unwrap();
    assert!((card - 50_000.0).abs() / 50_000.0 < 0.33, "{card}");
    assert!(store.jaccard("big", "other").is_ok());

    // MinHash.
    let store = SketchStore::builder(|| MinHash::new(512, 9)).build();
    store.ingest("u", &(0..2_000).collect::<Vec<_>>());
    store.ingest("v", &(1_000..3_000).collect::<Vec<_>>());
    let j = store.jaccard("u", "v").unwrap();
    assert!((j - 1.0 / 3.0).abs() < 0.1, "{j}");

    // SetSketch1 too (the other register-value construction).
    let cfg = config();
    let store = SketchStore::builder(move || SetSketch1::new(cfg, 13)).build();
    store.ingest("s", &(0..1_000).collect::<Vec<_>>());
    assert!(store.cardinality("s").is_ok());
}

#[test]
fn concurrent_ingest_from_many_threads() {
    // 8 threads, overlapping keys and overlapping element ranges; the
    // result must equal single-threaded insertion exactly.
    let store = setsketch_store(4);
    let keys = ["k0", "k1", "k2"];
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let store = &store;
            scope.spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    let base = (t % 4) * 1_000 + i as u64 * 10_000;
                    let batch: Vec<u64> = (base..base + 1_500).collect();
                    store.ingest(key, &batch);
                }
            });
        }
    });
    for (i, key) in keys.iter().enumerate() {
        let mut reference = SetSketch2::new(config(), 11);
        for t in 0..4u64 {
            let base = t * 1_000 + i as u64 * 10_000;
            reference.extend(base..base + 1_500);
        }
        assert_eq!(store.get(key).unwrap(), reference, "key {key}");
    }
}

#[test]
fn ingest_bytes_mirrors_insert_bytes() {
    let store = setsketch_store(4);
    let elements: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_be_bytes().to_vec()).collect();
    let slices: Vec<&[u8]> = elements.iter().map(Vec::as_slice).collect();
    store.ingest_bytes("batched", &slices);

    let looped = setsketch_store(4);
    for slice in &slices {
        looped.insert_bytes("looped", slice);
    }
    assert_eq!(store.get("batched"), looped.get("looped"));

    // Empty batches still create the key (like `ingest`).
    store.ingest_bytes("empty", &[]);
    assert!(store.contains_key("empty"));
}

/// The pre-builder constructors must keep working as thin deprecated
/// wrappers: same defaults, same behavior.
#[test]
#[allow(deprecated)]
fn deprecated_constructors_still_work() {
    let cfg = config();
    let store = SketchStore::new(move || SetSketch2::new(cfg, 11));
    assert_eq!(store.shard_count(), sketch_store::DEFAULT_SHARDS);
    store.ingest("a", &(0..500).collect::<Vec<_>>());

    let sharded = SketchStore::with_shards(3, move || SetSketch2::new(cfg, 11));
    assert_eq!(sharded.shard_count(), 3);
    sharded.ingest("a", &(0..500).collect::<Vec<_>>());
    assert_eq!(store.get("a"), sharded.get("a"));

    let built = setsketch_store(3);
    built.ingest("a", &(0..500).collect::<Vec<_>>());
    assert_eq!(built.get("a"), sharded.get("a"));
}
