//! Integration tests of the clustered ANN index: equivalence against
//! the flat engine and the exhaustive reference, cutover hysteresis,
//! incremental maintenance, budget accounting, diagnostics, and the
//! index-cache knobs.
//!
//! The central contracts:
//!
//! * at threshold `0.0` a clustered sweep is **bit-for-bit** equal to
//!   [`all_pairs_exhaustive`](SketchStore::all_pairs_exhaustive) (no
//!   banding tunes there, so both strategies fall to the identical
//!   exhaustive path);
//! * at any threshold, every pair a clustered sweep reports also
//!   appears in the exhaustive sweep **with identical quantities** —
//!   pruning may only remove pairs, never change a survivor's verified
//!   numbers;
//! * both hold across arbitrary interleavings of ingest, remove and
//!   sweep (the proptest op-script driver).

use proptest::collection::vec;
use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketchConfig};
use sketch_store::{IndexStrategy, QueryOptions, SimilarPair, SketchStore};

/// Fine register scale (b = 1.001): register collision probability ≈ J,
/// so banding tunes sharply (paper §3.3, Figure 3 right panel).
fn config() -> SetSketchConfig {
    SetSketchConfig::new(256, 1.001, 20.0, (1 << 16) - 2).unwrap()
}

fn build_store(shards: usize) -> SketchStore<SetSketch1> {
    let cfg = config();
    SketchStore::builder(move || SetSketch1::new(cfg, 42))
        .shards(shards)
        .build()
}

fn elements(start: u64, count: u64) -> Vec<u64> {
    (start..start + count).collect()
}

/// Clustered strategy with the flat cutover disabled, so even tiny test
/// stores exercise the clustered machinery.
fn clustered_now() -> IndexStrategy {
    IndexStrategy::Clustered {
        memory_budget_bytes: None,
        recall_target: 0.95,
        clusters: None,
        flat_cutover: 0,
    }
}

/// Three similarity groups plus background noise — enough structure for
/// k-center to separate and per-cluster tuning to differ.
fn grouped_store() -> SketchStore<SetSketch1> {
    let store = build_store(8);
    store.ingest("alpha-1", &elements(0, 3000));
    store.ingest("alpha-2", &elements(500, 3000));
    store.ingest("alpha-3", &elements(100, 3000));
    store.ingest("beta-1", &elements(1_000_000, 3000));
    store.ingest("beta-2", &elements(1_000_100, 3000));
    store.ingest("noise-1", &elements(5_000_000, 3000));
    store.ingest("noise-2", &elements(9_000_000, 3000));
    store
}

/// Every clustered-sweep pair must appear in the exhaustive sweep with
/// identical quantities (the pruned path may only *miss* pairs).
fn assert_subset_with_identical_quantities(pruned: &[SimilarPair], exhaustive: &[SimilarPair]) {
    for pair in pruned {
        let reference = exhaustive
            .iter()
            .find(|p| p.left == pair.left && p.right == pair.right)
            .unwrap_or_else(|| {
                panic!(
                    "({}, {}) not in the exhaustive sweep",
                    pair.left, pair.right
                )
            });
        assert_eq!(
            pair.quantities, reference.quantities,
            "({}, {}) verified differently under the clustered path",
            pair.left, pair.right
        );
    }
}

#[test]
fn clustered_sweep_at_zero_is_bitwise_equal_to_exhaustive() {
    let store = grouped_store();
    let options = QueryOptions::default().index(clustered_now());
    let clustered = store.all_pairs_with(0.0, &options).unwrap();
    let exhaustive = store.all_pairs_exhaustive(0.0).unwrap();
    assert_eq!(clustered, exhaustive);
    assert_eq!(clustered.len(), 7 * 6 / 2);
}

#[test]
fn clustered_sweep_finds_the_similar_pairs() {
    let store = grouped_store();
    let options = QueryOptions::default().index(clustered_now());
    let clustered = store.all_pairs_with(0.4, &options).unwrap();
    let exhaustive = store.all_pairs_exhaustive(0.4).unwrap();

    let pair_keys: Vec<(&str, &str)> = clustered
        .iter()
        .map(|p| (p.left.as_str(), p.right.as_str()))
        .collect();
    assert!(pair_keys.contains(&("alpha-1", "alpha-2")), "{pair_keys:?}");
    assert!(pair_keys.contains(&("beta-1", "beta-2")), "{pair_keys:?}");
    assert!(!pair_keys
        .iter()
        .any(|(a, b)| a.starts_with("noise") && b.starts_with("noise")));
    assert_subset_with_identical_quantities(&clustered, &exhaustive);

    // Canonical output: left < right, sorted, deduplicated.
    assert!(clustered.iter().all(|p| p.left < p.right));
    let mut sorted = pair_keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(pair_keys, sorted);
}

#[test]
fn clustered_topk_matches_the_flat_engine() {
    let store = grouped_store();
    let clustered = store
        .similar_keys_with(
            "alpha-1",
            3,
            0.4,
            &QueryOptions::default().index(clustered_now()),
        )
        .unwrap();
    let flat = store
        .similar_keys_with("alpha-1", 3, 0.4, &QueryOptions::default())
        .unwrap();
    // The near-duplicates dominate both rankings with exact-identical
    // quantities (verification is shared; only candidate routing
    // differs).
    assert_eq!(clustered[0].key, flat[0].key);
    assert_eq!(clustered[0].quantities, flat[0].quantities);
    let clustered_keys: Vec<&str> = clustered.iter().map(|n| n.key.as_str()).collect();
    assert!(clustered_keys.contains(&"alpha-2"));
    assert!(clustered_keys.contains(&"alpha-3"));
}

#[test]
fn clustered_info_reports_histogram_layouts_and_probes() {
    let store = grouped_store();
    let options = QueryOptions::default().index(clustered_now());
    let _ = store.all_pairs_with(0.5, &options).unwrap();
    let info = store.similarity_index_info().expect("state exists");
    assert_eq!(info.threshold, 0.5);
    // Clustered states report per-cluster layouts, not a global one.
    assert_eq!(info.banding, None);
    assert_eq!(info.indexed_keys, 7);
    let clustered = info.clustered.expect("clustered backend");
    assert!(clustered.clusters >= 2, "{clustered:?}");
    assert_eq!(clustered.key_histogram.len(), clustered.clusters);
    assert_eq!(clustered.key_histogram.iter().sum::<usize>(), 7);
    assert_eq!(clustered.bandings.len(), clustered.clusters);
    assert_eq!(clustered.planned_recalls.len(), clustered.clusters);
    assert!(clustered
        .bandings
        .iter()
        .all(|b| b.bands >= 1 && b.rows >= 1 && b.registers() <= 256));
    assert_eq!(clustered.probe_stats.sweeps, 1);

    let _ = store.similar_keys_with("beta-1", 2, 0.5, &options).unwrap();
    let probe_stats = store
        .similarity_index_info()
        .unwrap()
        .clustered
        .unwrap()
        .probe_stats;
    assert_eq!(probe_stats.topk_queries, 1);
    assert!(probe_stats.clusters_probed >= 1);
    // Routing probed a strict subset of the store for the top-k query.
    assert!(probe_stats.clusters_probed < 7);
}

#[test]
fn flat_cutover_promotes_and_demotes_with_hysteresis() {
    let store = build_store(4);
    let options = QueryOptions::default().index(IndexStrategy::Clustered {
        memory_budget_bytes: None,
        recall_target: 0.95,
        clusters: None,
        flat_cutover: 8,
    });
    for key in 0..6u64 {
        store.ingest(&format!("k{key}"), &elements(key * 10_000, 500));
    }
    // Below the cutover: the strategy answers from the flat backend.
    let _ = store.all_pairs_with(0.5, &options).unwrap();
    let info = store.similarity_index_info().unwrap();
    assert!(info.clustered.is_none());
    assert!(info.banding.is_some(), "flat backend stays tuned");

    // Past the cutover: promoted to the clustered backend.
    for key in 6..12u64 {
        store.ingest(&format!("k{key}"), &elements(key * 10_000, 500));
    }
    let _ = store.all_pairs_with(0.5, &options).unwrap();
    assert!(store.similarity_index_info().unwrap().clustered.is_some());

    // Shrinking to half the cutover does NOT demote yet — hysteresis,
    // so a store hovering at the cutover never alternates backends.
    for key in 4..12u64 {
        store.remove(&format!("k{key}"));
    }
    let _ = store.all_pairs_with(0.5, &options).unwrap();
    assert!(store.similarity_index_info().unwrap().clustered.is_some());

    // Strictly below half: demoted back to the flat backend.
    store.remove("k3");
    let _ = store.all_pairs_with(0.5, &options).unwrap();
    assert!(store.similarity_index_info().unwrap().clustered.is_none());
}

#[test]
fn clustered_index_follows_ingest_and_removals() {
    let store = grouped_store();
    let options = QueryOptions::default().index(clustered_now());
    let _ = store.all_pairs_with(0.5, &options).unwrap();

    // A new near-duplicate appears after the state is built: only the
    // moved key re-bands, and the next sweep reports it.
    store.ingest("alpha-4", &elements(200, 3000));
    let pairs = store.all_pairs_with(0.5, &options).unwrap();
    assert!(pairs
        .iter()
        .any(|p| p.left == "alpha-1" && p.right == "alpha-4"));
    assert_eq!(store.similarity_index_info().unwrap().indexed_keys, 8);

    // Removal: the key leaves the index and its pairs disappear.
    store.remove("alpha-4");
    let pairs = store.all_pairs_with(0.5, &options).unwrap();
    assert!(!pairs.iter().any(|p| p.right == "alpha-4"));
    assert_eq!(store.similarity_index_info().unwrap().indexed_keys, 7);

    // The sweeps above stayed equivalent throughout.
    let exhaustive = store.all_pairs_exhaustive(0.5).unwrap();
    assert_subset_with_identical_quantities(&pairs, &exhaustive);
}

#[test]
fn memory_budget_shrinks_layouts_and_keeps_zero_threshold_equivalence() {
    let store = grouped_store();
    let unbudgeted = QueryOptions::default().index(clustered_now());
    let _ = store.all_pairs_with(0.5, &unbudgeted).unwrap();
    let free = store.similarity_index_info().unwrap().clustered.unwrap();
    let free_bands: usize = free
        .bandings
        .iter()
        .zip(&free.key_histogram)
        .map(|(b, keys)| b.bands * keys)
        .sum();

    let budget = free_bands * lsh::BAND_ENTRY_BYTES / 3;
    let budgeted = QueryOptions::default().index(IndexStrategy::Clustered {
        memory_budget_bytes: Some(budget),
        recall_target: 0.95,
        clusters: None,
        flat_cutover: 0,
    });
    let _ = store.all_pairs_with(0.5, &budgeted).unwrap();
    let tight = store.similarity_index_info().unwrap().clustered.unwrap();
    let tight_cost: usize = tight
        .bandings
        .iter()
        .zip(&tight.key_histogram)
        .map(|(b, keys)| b.bands * keys * lsh::BAND_ENTRY_BYTES)
        .sum();
    assert!(
        tight_cost <= budget,
        "modeled cost {tight_cost} exceeds budget {budget}"
    );
    // Degraded recall is reported, not hidden.
    assert!(tight
        .planned_recalls
        .iter()
        .zip(&free.planned_recalls)
        .all(|(t, f)| t <= f));

    // Budget pressure never touches the threshold-0 contract.
    let clustered = store.all_pairs_with(0.0, &budgeted).unwrap();
    assert_eq!(clustered, store.all_pairs_exhaustive(0.0).unwrap());
}

#[test]
fn near_identical_recall_targets_share_one_cached_state() {
    let store = grouped_store();
    // Alternating recall targets that differ only past display
    // precision must hit one cached state, not re-tune per query
    // (regression: the cache used exact f64 equality).
    for _ in 0..3 {
        let _ = store
            .all_pairs_with(0.5, &QueryOptions::default().recall_target(0.98))
            .unwrap();
        let _ = store
            .all_pairs_with(0.5, &QueryOptions::default().recall_target(0.980_000_1))
            .unwrap();
    }
    let info = store.similarity_index_info().unwrap();
    assert_eq!(info.cache_misses, 1, "{info:?}");
    assert_eq!(info.cache_hits, 5, "{info:?}");
}

#[test]
fn index_cache_capacity_knob_bounds_cached_states() {
    let cfg = config();
    // Capacity 1: alternating thresholds evicts and re-tunes each time.
    let store = SketchStore::builder(move || SetSketch1::new(cfg, 42))
        .index_cache_capacity(1)
        .build();
    store.ingest("a", &elements(0, 1000));
    store.ingest("b", &elements(100, 1000));
    for _ in 0..2 {
        let _ = store.all_pairs(0.5).unwrap();
        let _ = store.all_pairs(0.7).unwrap();
    }
    let info = store.similarity_index_info().unwrap();
    assert_eq!(info.cache_misses, 4, "{info:?}");

    // Default capacity (4): the two operating points coexist.
    let store = build_store(4);
    store.ingest("a", &elements(0, 1000));
    store.ingest("b", &elements(100, 1000));
    for _ in 0..2 {
        let _ = store.all_pairs(0.5).unwrap();
        let _ = store.all_pairs(0.7).unwrap();
    }
    let info = store.similarity_index_info().unwrap();
    assert_eq!(info.cache_misses, 2, "{info:?}");
    assert_eq!(info.cache_hits, 2, "{info:?}");
}

#[test]
#[should_panic(expected = "at least one state")]
fn zero_index_cache_capacity_is_rejected() {
    let cfg = config();
    let _ = SketchStore::builder(move || SetSketch1::new(cfg, 42))
        .index_cache_capacity(0)
        .build();
}

#[test]
#[should_panic(expected = "routing recall target")]
fn bad_clustered_recall_target_is_rejected() {
    let store = build_store(2);
    store.ingest("a", &elements(0, 100));
    let options = QueryOptions::default().index(IndexStrategy::Clustered {
        memory_budget_bytes: None,
        recall_target: 0.0,
        clusters: None,
        flat_cutover: 0,
    });
    let _ = store.all_pairs_with(0.5, &options);
}

// ---------------------------------------------------------------------
// Proptest op-script driver: arbitrary interleavings of ingest, remove
// and sweep must keep the clustered path equivalent to the references.
// ---------------------------------------------------------------------

/// One step of an interleaved index workload over an 8-key space.
#[derive(Debug, Clone)]
enum Op {
    /// Ingest `len` consecutive elements starting at `start` into key
    /// number `key` (keys re-use overlapping ranges, so similarity
    /// structure emerges and shifts as the script runs).
    Ingest { key: usize, start: u64, len: u64 },
    /// Remove key number `key` (no-op when absent).
    Remove { key: usize },
    /// Sweep at threshold 0.0 and assert bitwise equality with the
    /// exhaustive reference.
    SweepZero,
    /// Sweep at threshold 0.5 and assert every reported pair verifies
    /// identically to the exhaustive reference (and to the flat path).
    SweepHalf,
}

fn decode_op((kind, key, start, len): (u8, usize, u64, u64)) -> Op {
    match kind {
        0..=3 => Op::Ingest {
            key,
            // Three overlapping neighborhoods, so some keys cluster.
            start: (start % 3) * 2_000 + start,
            len,
        },
        4 => Op::Remove { key },
        5 => Op::SweepZero,
        _ => Op::SweepHalf,
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec((0u8..7, 0usize..8, 0u64..5_000, 100u64..1_500), 1..20)
        .prop_map(|raw| raw.into_iter().map(decode_op).collect())
}

fn drive(ops: &[Op], flat_cutover: usize) -> Result<(), TestCaseError> {
    let store = build_store(4);
    let clustered_options = QueryOptions::default().index(IndexStrategy::Clustered {
        memory_budget_bytes: None,
        recall_target: 0.95,
        clusters: None,
        flat_cutover,
    });
    for op in ops {
        match op {
            Op::Ingest { key, start, len } => {
                store.ingest(&format!("k{key}"), &elements(*start, *len));
            }
            Op::Remove { key } => {
                store.remove(&format!("k{key}"));
            }
            Op::SweepZero => {
                let clustered = store
                    .all_pairs_with(0.0, &clustered_options)
                    .expect("sweep");
                let exhaustive = store.all_pairs_exhaustive(0.0).expect("sweep");
                prop_assert_eq!(clustered, exhaustive);
            }
            Op::SweepHalf => {
                let clustered = store
                    .all_pairs_with(0.5, &clustered_options)
                    .expect("sweep");
                let exhaustive = store.all_pairs_exhaustive(0.5).expect("sweep");
                for pair in &clustered {
                    let reference = exhaustive
                        .iter()
                        .find(|p| p.left == pair.left && p.right == pair.right);
                    prop_assert!(
                        reference.is_some_and(|p| p.quantities == pair.quantities),
                        "({}, {}) missing or diverged in the exhaustive sweep",
                        pair.left,
                        pair.right
                    );
                }
            }
        }
    }
    // Final states agree regardless of what the script did.
    let clustered = store
        .all_pairs_with(0.0, &clustered_options)
        .expect("sweep");
    let exhaustive = store.all_pairs_exhaustive(0.0).expect("sweep");
    prop_assert_eq!(clustered, exhaustive);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn clustered_matches_references_under_op_scripts(ops in ops_strategy()) {
        drive(&ops, 0)?;
    }

    #[test]
    fn cutover_hopping_matches_references_under_op_scripts(ops in ops_strategy()) {
        // A cutover inside the script's population range, so scripts
        // cross it in both directions mid-run.
        drive(&ops, 5)?;
    }
}
