//! Integration tests of the LSH-pruned similarity query engine.

use setsketch::{SetSketch1, SetSketchConfig};
use sketch_store::{SketchStore, StoreError};

/// Fine register scale (b = 1.001): register collision probability ≈ J,
/// so banding tunes sharply (paper §3.3, Figure 3 right panel).
fn config() -> SetSketchConfig {
    SetSketchConfig::new(256, 1.001, 20.0, (1 << 16) - 2).unwrap()
}

fn store_with_shards(shards: usize) -> SketchStore<SetSketch1> {
    let cfg = config();
    SketchStore::builder(move || SetSketch1::new(cfg, 42))
        .shards(shards)
        .build()
}

/// `count` elements of a deterministic stream starting at `start`.
fn elements(start: u64, count: u64) -> Vec<u64> {
    (start..start + count).collect()
}

/// A store with two similar clusters and background keys.
fn clustered_store() -> SketchStore<SetSketch1> {
    let store = store_with_shards(8);
    // Cluster 1: ~2/3 Jaccard overlap.
    store.ingest("alpha-1", &elements(0, 3000));
    store.ingest("alpha-2", &elements(500, 3000));
    // Cluster 2: near-duplicates.
    store.ingest("beta-1", &elements(1_000_000, 3000));
    store.ingest("beta-2", &elements(1_000_100, 3000));
    // Unrelated background.
    store.ingest("noise-1", &elements(5_000_000, 3000));
    store.ingest("noise-2", &elements(9_000_000, 3000));
    store
}

#[test]
fn pruned_sweep_finds_similar_pairs_with_exact_quantities() {
    let store = clustered_store();
    let pruned = store.all_pairs(0.4).unwrap();
    let exhaustive = store.all_pairs_exhaustive(0.4).unwrap();

    let pair_keys: Vec<(&str, &str)> = pruned
        .iter()
        .map(|p| (p.left.as_str(), p.right.as_str()))
        .collect();
    assert!(pair_keys.contains(&("alpha-1", "alpha-2")), "{pair_keys:?}");
    assert!(pair_keys.contains(&("beta-1", "beta-2")), "{pair_keys:?}");
    assert!(!pair_keys
        .iter()
        .any(|(a, b)| a.starts_with("noise") && b.starts_with("noise")));

    // Every reported pair carries exactly the quantities the exhaustive
    // sweep computes (verification always runs the exact kernel).
    for pair in &pruned {
        let reference = exhaustive
            .iter()
            .find(|p| p.left == pair.left && p.right == pair.right)
            .expect("pruned pair must exist in the exhaustive sweep");
        assert_eq!(pair.quantities, reference.quantities);
        // ... and matches the store's one-pair query on the same states.
        let joint = store.joint(&pair.left, &pair.right).unwrap();
        assert_eq!(pair.quantities, joint);
    }

    // Output is canonical: left < right, sorted, no duplicates.
    assert!(pruned.iter().all(|p| p.left < p.right));
    let mut sorted = pair_keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(pair_keys, sorted);
}

#[test]
fn threshold_zero_falls_back_to_exhaustive_and_matches_exactly() {
    let store = clustered_store();
    let pruned = store.all_pairs(0.0).unwrap();
    let exhaustive = store.all_pairs_exhaustive(0.0).unwrap();
    assert_eq!(pruned, exhaustive);
    assert_eq!(pruned.len(), 6 * 5 / 2, "threshold 0 reports every pair");
    // No banding reaches the recall target at threshold 0.
    let info = store.similarity_index_info().expect("index state exists");
    assert_eq!(info.banding, None);
}

#[test]
fn index_is_tuned_and_reused_across_queries() {
    let store = clustered_store();
    store.build_similarity_index(0.5);
    let info = store.similarity_index_info().expect("index built");
    assert_eq!(info.threshold, 0.5);
    let banding = info.banding.expect("threshold 0.5 is tunable at b=1.001");
    assert!(banding.rows >= 2, "{banding:?}");
    assert!(banding.registers() <= 256);
    assert_eq!(info.indexed_keys, 6);

    // A same-threshold query keeps the tuned index (no rebuild).
    let _ = store.all_pairs(0.5).unwrap();
    assert_eq!(
        store.similarity_index_info().unwrap().banding,
        Some(banding)
    );
}

#[test]
fn index_follows_ingest_updates_and_removals() {
    let store = clustered_store();
    store.build_similarity_index(0.5);

    // A new near-duplicate of alpha-1 appears after the index is built:
    // only the changed key gets re-banded, and the sweep sees it.
    store.ingest("alpha-3", &elements(100, 3000));
    let pairs = store.all_pairs(0.5).unwrap();
    assert!(pairs
        .iter()
        .any(|p| p.left == "alpha-1" && p.right == "alpha-3"));
    assert_eq!(store.similarity_index_info().unwrap().indexed_keys, 7);

    // Removing a key drops it from the index and from results.
    store.remove("alpha-3");
    let pairs = store.all_pairs(0.5).unwrap();
    assert!(!pairs
        .iter()
        .any(|p| p.left == "alpha-3" || p.right == "alpha-3"));
    assert_eq!(store.similarity_index_info().unwrap().indexed_keys, 6);
}

#[test]
fn reingested_key_after_remove_is_reindexed() {
    // Regression test: version stamps are store-global, so a key that
    // is removed and later re-created under new content must not be
    // mistaken for its already-indexed former self.
    let store = store_with_shards(4);
    store.ingest("x", &elements(0, 3000));
    store.ingest("k", &elements(5_000_000, 3000)); // unrelated to x
    assert_eq!(store.all_pairs(0.5).unwrap(), vec![]);

    store.remove("k");
    store.ingest("k", &elements(100, 3000)); // now a near-duplicate of x
    let pairs = store.all_pairs(0.5).unwrap();
    assert!(
        pairs.iter().any(|p| p.left == "k" && p.right == "x"),
        "re-ingested key must be re-banded, got {pairs:?}"
    );

    // Same through put(): replacing the state re-bands it.
    let fresh = store_with_shards(4).get("nope").is_none();
    assert!(fresh);
    let unrelated = {
        let cfg = config();
        let mut s = setsketch::SetSketch1::new(cfg, 42);
        s.extend(9_000_000..9_003_000);
        s
    };
    store.put("k", unrelated);
    assert_eq!(store.all_pairs(0.5).unwrap(), vec![]);
}

#[test]
fn alternating_thresholds_reuse_cached_indexes() {
    let store = clustered_store();
    let first = store.all_pairs(0.5).unwrap();
    let other = store.all_pairs(0.7).unwrap();
    // Back to the first threshold: the cached state answers (and stays
    // correct after more ingest).
    assert_eq!(store.all_pairs(0.5).unwrap(), first);
    assert_eq!(store.similarity_index_info().unwrap().threshold, 0.5);
    store.ingest("alpha-3", &elements(100, 3000));
    assert!(store
        .all_pairs(0.5)
        .unwrap()
        .iter()
        .any(|p| p.right == "alpha-3"));
    assert_eq!(store.all_pairs(0.7).unwrap().len(), {
        let reference = store.all_pairs_exhaustive(0.7).unwrap();
        assert!(reference.len() >= other.len());
        reference.len()
    });
}

#[test]
fn similar_keys_ranks_by_jaccard() {
    let store = clustered_store();
    let neighbors = store.similar_keys("alpha-1", 2).unwrap();
    assert_eq!(neighbors.len(), 2);
    assert_eq!(neighbors[0].key, "alpha-2");
    assert!(neighbors[0].quantities.jaccard > neighbors[1].quantities.jaccard);
    // The quantities match the store's pairwise query, query side first.
    assert_eq!(
        neighbors[0].quantities,
        store.joint("alpha-1", "alpha-2").unwrap()
    );
}

#[test]
fn similar_keys_breaks_ties_by_key() {
    let store = store_with_shards(4);
    store.ingest("query", &elements(0, 2000));
    // Two identical sketches: equal Jaccard against the query.
    store.ingest("twin-b", &elements(500, 2000));
    store.ingest("twin-a", &elements(500, 2000));
    let neighbors = store.similar_keys("query", 2).unwrap();
    assert_eq!(neighbors.len(), 2);
    assert_eq!(neighbors[0].key, "twin-a", "ties break by ascending key");
    assert_eq!(neighbors[1].key, "twin-b");
    assert_eq!(neighbors[0].quantities, neighbors[1].quantities);
}

#[test]
fn similar_keys_edge_cases() {
    let store = store_with_shards(4);
    // Empty store: the query key does not exist.
    assert!(matches!(
        store.similar_keys("missing", 3),
        Err(StoreError::KeyNotFound(_))
    ));
    // Single-key store: no neighbors.
    store.ingest("only", &elements(0, 1000));
    assert_eq!(store.similar_keys("only", 5).unwrap(), vec![]);
    // k = 0: empty result.
    store.ingest("other", &elements(100, 1000));
    assert_eq!(store.similar_keys("only", 0).unwrap(), vec![]);
    // k larger than the store: every other key, ranked.
    let neighbors = store.similar_keys("only", 10).unwrap();
    assert_eq!(neighbors.len(), 1);
    assert_eq!(neighbors[0].key, "other");
}

#[test]
fn empty_store_sweeps_are_empty() {
    let store = store_with_shards(4);
    assert_eq!(store.all_pairs(0.5).unwrap(), vec![]);
    assert_eq!(store.all_pairs_exhaustive(0.5).unwrap(), vec![]);
    store.ingest("solo", &elements(0, 100));
    assert_eq!(store.all_pairs(0.5).unwrap(), vec![]);
}

#[test]
fn keys_and_snapshot_order_is_sorted_for_any_shard_count() {
    for shards in [1, 3, 16] {
        let store = store_with_shards(shards);
        for key in ["zeta", "alpha", "mid", "beta", "omega"] {
            store.ingest(key, &elements(0, 50));
        }
        let keys = store.keys();
        assert_eq!(keys, vec!["alpha", "beta", "mid", "omega", "zeta"]);
        let snapshot = store.snapshot();
        let snapshot_keys: Vec<&String> = snapshot.entries.keys().collect();
        assert_eq!(snapshot_keys, keys.iter().collect::<Vec<_>>());
    }
}

#[test]
#[should_panic(expected = "similarity threshold")]
fn rejects_out_of_range_threshold() {
    let store = clustered_store();
    let _ = store.all_pairs(1.5);
}

/// A sketch family without cardinality estimation can still use the
/// exact-mode query surface: the `CardinalityEstimator` bound gates
/// only the `*_with` variants (which may select approximate
/// verification), not the original query signatures.
#[test]
fn exact_queries_compile_without_cardinality_estimator() {
    #[derive(Clone, PartialEq, Debug, Default)]
    struct NoCard(std::collections::BTreeSet<u64>);
    impl sketch_core::Sketch for NoCard {
        fn insert_u64(&mut self, element: u64) {
            self.0.insert(element);
        }
        fn insert_bytes(&mut self, bytes: &[u8]) {
            let mut h = 0u64;
            for &b in bytes {
                h = h.wrapping_mul(31).wrapping_add(b as u64);
            }
            self.0.insert(h | 1 << 63);
        }
    }
    impl sketch_core::Mergeable for NoCard {
        type MergeError = std::convert::Infallible;
        fn is_compatible(&self, _other: &Self) -> bool {
            true
        }
        fn merge_from(&mut self, other: &Self) -> Result<(), Self::MergeError> {
            self.0.extend(&other.0);
            Ok(())
        }
    }
    impl sketch_core::JointEstimator for NoCard {
        type JointError = std::convert::Infallible;
        fn joint(&self, other: &Self) -> Result<sketch_core::JointQuantities, Self::JointError> {
            let inter = self.0.intersection(&other.0).count() as f64;
            let union = self.0.union(&other.0).count() as f64;
            let jaccard = if union > 0.0 { inter / union } else { 0.0 };
            Ok(sketch_core::JointQuantities::new(
                self.0.len() as f64,
                other.0.len() as f64,
                jaccard,
            ))
        }
    }
    impl sketch_core::Signature for NoCard {
        fn signature_len(&self) -> usize {
            8
        }
        fn signature_into(&self, out: &mut Vec<u32>) {
            out.clear();
            out.resize(8, 0);
            for &e in &self.0 {
                out[(e % 8) as usize] ^= e as u32;
            }
        }
    }

    let store = SketchStore::builder(NoCard::default).build();
    store.insert("a", 1);
    store.insert("a", 2);
    store.insert("b", 2);
    store.build_similarity_index(0.5);
    let pairs = store.all_pairs(0.0).unwrap();
    assert_eq!(pairs.len(), 1);
    assert!((pairs[0].quantities.jaccard - 0.5).abs() < 1e-12);
    assert_eq!(store.all_pairs_exhaustive(0.0).unwrap(), pairs);
    let neighbors = store.similar_keys_at("a", 1, 0.5).unwrap();
    assert_eq!(neighbors[0].key, "b");
}
