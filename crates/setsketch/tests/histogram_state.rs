//! Property tests for the incremental estimator state.
//!
//! `SetSketch` maintains a `q + 2`-bucket register histogram on every
//! register write so cardinality estimation is O(q) instead of O(m).
//! These tests drive sketches through arbitrary interleavings of the
//! operations that touch registers — single inserts, batched inserts,
//! merges, and serialization round trips — and verify after every step
//! that the maintained histogram equals a fresh
//! [`kernels::histogram_counts`] scan of the registers, that the tracked
//! `K_low` stays a valid lower bound, and that the O(q) estimator agrees
//! with the full register-scan formula.

use proptest::prelude::*;
use setsketch::{SetSketch1, SetSketch2, SetSketchConfig};
use sketch_math::{kernels, sigma_b, tau_b};

/// The corrected estimator (18) computed the pre-kernel way: a full
/// register scan, no maintained state.
fn full_scan_estimate(
    registers: &[u32],
    config: &SetSketchConfig,
    pow_neg: impl Fn(u32) -> f64,
) -> f64 {
    let m = config.m() as f64;
    let b = config.b();
    let limit = config.q() + 1;
    let mut c0 = 0usize;
    let mut c_limit = 0usize;
    let mut sum = 0.0f64;
    for &k in registers {
        if k == 0 {
            c0 += 1;
        } else if k == limit {
            c_limit += 1;
        } else {
            sum += pow_neg(k);
        }
    }
    let low_term = m * sigma_b(b, c0 as f64 / m);
    if low_term.is_infinite() {
        return 0.0;
    }
    let high_term = m * pow_neg(config.q()) * tau_b(b, 1.0 - c_limit as f64 / m);
    m * (1.0 - 1.0 / b) / (config.a() * b.ln() * (low_term + sum + high_term))
}

/// Asserts every invariant between registers and incremental state.
fn check_state<S: setsketch::ValueSequence>(
    sketch: &setsketch::SetSketch<S>,
) -> Result<(), TestCaseError> {
    // A histogram is maintained exactly for dense scales, and when
    // maintained it equals a fresh kernel scan of the registers.
    let dense = sketch.config().q() as usize + 2 <= 4 * sketch.config().m();
    prop_assert_eq!(sketch.register_histogram().is_some(), dense);
    if let Some(histogram) = sketch.register_histogram() {
        let mut fresh = vec![0u32; sketch.config().q() as usize + 2];
        kernels::histogram_counts(sketch.registers(), &mut fresh);
        prop_assert_eq!(histogram, fresh.as_slice());
    }
    // K_low is a lower bound.
    let min = kernels::min_scan(sketch.registers());
    prop_assert!(
        sketch.k_low() <= min,
        "k_low {} > min {}",
        sketch.k_low(),
        min
    );
    // O(q) estimator == full-scan estimator (same inputs, reordered
    // floating-point sums).
    let table = sketch.power_table().clone();
    let reference = full_scan_estimate(sketch.registers(), sketch.config(), |k| table.pow_neg(k));
    let estimate = sketch.estimate_cardinality();
    if reference.is_finite() && reference > 0.0 {
        prop_assert!(
            ((estimate - reference) / reference).abs() < 1e-9,
            "estimate {estimate} vs full-scan {reference}"
        );
    } else {
        prop_assert_eq!(estimate, reference);
    }
    Ok(())
}

/// One step of the interleaving: `(selector, payload)` decodes into an
/// insert, batch insert, merge, or round trip.
type Op = (u8, Vec<u64>);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..5, proptest::collection::vec(0u64..5_000, 0..60)),
        1..8,
    )
}

fn apply_ops<S: setsketch::ValueSequence>(
    sketch: &mut setsketch::SetSketch<S>,
    ops: &[Op],
    config: SetSketchConfig,
    seed: u64,
) -> Result<(), TestCaseError> {
    for (selector, payload) in ops {
        match selector % 5 {
            0 => {
                for &e in payload {
                    sketch.insert_u64(e);
                }
            }
            1 => sketch.insert_batch(payload),
            2 => {
                // Merge with an independently built sketch of the same
                // configuration and seed.
                let mut other = setsketch::SetSketch::<S>::new(config, seed);
                other.insert_batch(payload);
                sketch.merge(&other).expect("compatible by construction");
            }
            3 => {
                // Portable-state round trip rebuilds the histogram.
                *sketch =
                    setsketch::SetSketch::<S>::from_state(sketch.to_state()).expect("own state");
            }
            _ => {
                // Binary round trip (bit-packed registers).
                *sketch =
                    setsketch::SetSketch::<S>::from_bytes(&sketch.to_bytes()).expect("own bytes");
            }
        }
        check_state(sketch)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SetSketch1, wide register range (no clipping in practice).
    #[test]
    fn incremental_state_stays_consistent_sketch1(ops in ops()) {
        let config = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let mut sketch = SetSketch1::new(config, 7);
        apply_ops(&mut sketch, &ops, config, 7)?;
    }

    /// SetSketch2 with a tiny q, so registers clip at 0 and q+1 and the
    /// σ/τ range corrections engage.
    #[test]
    fn incremental_state_stays_consistent_clipped(ops in ops()) {
        let config = SetSketchConfig::new(32, 2.0, 20.0, 3).unwrap();
        let mut sketch = SetSketch2::new(config, 11);
        apply_ops(&mut sketch, &ops, config, 11)?;
    }

    /// A small-base configuration (b = 1.02, q ≫ m): the sparse regime
    /// where no histogram is maintained and estimation falls back to
    /// scanning the registers.
    #[test]
    fn incremental_state_stays_consistent_small_base(ops in ops()) {
        let config = SetSketchConfig::new(16, 1.02, 20.0, 2000).unwrap();
        let mut sketch = SetSketch1::new(config, 3);
        apply_ops(&mut sketch, &ops, config, 3)?;
    }
}
