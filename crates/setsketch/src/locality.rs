//! Locality sensitivity of SetSketch registers (paper §3.3).
//!
//! The probability that a register is equal in two SetSketches is bounded
//! by monotonic functions of the Jaccard similarity:
//!
//! log_b(1 + J(b−1)) ≲ P(K_Ui = K_Vi) ≲ log_b(1 + J(b−1) + (1−J)²(b−1)²/4b)
//!
//! which makes SetSketch usable for locality-sensitive hashing. Inverting
//! the bounds at the observed fraction of equal registers D₀/m yields the
//! estimators Ĵ_low and Ĵ_up of eq. (15). The exact RMSE of Ĵ_up in the
//! worst case (equal cardinalities maximize the collision probability) is
//! computed by [`jaccard_upper_rmse`], reproducing Figure 4.

use sketch_math::{p_b, BinomialPmf};

/// Exact collision probability approximation of §3.3 for relative
/// cardinalities `u + v = 1`:
/// `P(K_Ui = K_Vi) ≈ log_b(1 + J(b−1) + (b−1)²/b · (u−vJ)(v−uJ))`.
pub fn collision_probability(b: f64, j: f64, u: f64, v: f64) -> f64 {
    debug_assert!((u + v - 1.0).abs() < 1e-9);
    let x = 1.0 + j * (b - 1.0) + (b - 1.0) * (b - 1.0) / b * (u - v * j) * (v - u * j);
    x.ln() / b.ln()
}

/// Lower and upper bounds of the collision probability over all cardinality
/// ratios (paper §3.3, Figure 3).
pub fn collision_probability_bounds(b: f64, j: f64) -> (f64, f64) {
    let lower = (1.0 + j * (b - 1.0)).ln() / b.ln();
    let upper = (1.0 + j * (b - 1.0) + (1.0 - j) * (1.0 - j) * (b - 1.0) * (b - 1.0) / (4.0 * b))
        .ln()
        / b.ln();
    (lower, upper)
}

/// Lower-bound estimator Ĵ_low of eq. (15) from the number of equal
/// registers `d0` out of `m`.
pub fn jaccard_lower_estimate(b: f64, d0: usize, m: usize) -> f64 {
    let p = d0 as f64 / m as f64;
    let value = 2.0 * (b.powf((p + 1.0) / 2.0) - 1.0) / (b - 1.0) - 1.0;
    value.max(0.0)
}

/// Upper-bound estimator Ĵ_up of eq. (15).
pub fn jaccard_upper_estimate(b: f64, d0: usize, m: usize) -> f64 {
    let p = d0 as f64 / m as f64;
    (b.powf(p) - 1.0) / (b - 1.0)
}

/// Exact RMSE of Ĵ_up for the worst case n_U = n_V (paper Figure 4).
///
/// D₀ is binomial with the §3.3 collision probability at u = v = 1/2; the
/// RMSE is evaluated by exact summation over the binomial distribution.
pub fn jaccard_upper_rmse(b: f64, m: usize, j: f64) -> f64 {
    // P(K_U = K_V) = 1 - 2 p_b((1-J)/2) for equal cardinalities (eq. 14).
    let p0 = 1.0 - 2.0 * p_b(b, (1.0 - j) / 2.0);
    let pmf = BinomialPmf::new(m);
    let mse = pmf.expectation(m, p0, |d0| {
        let est = jaccard_upper_estimate(b, d0, m);
        (est - j) * (est - j)
    });
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SetSketchConfig;
    use crate::sketch::SetSketch1;
    use sketch_math::JointCounts;

    #[test]
    fn bounds_bracket_exact_probability() {
        for &b in &[1.001, 1.2, 2.0] {
            for &j in &[0.0, 0.3, 0.7, 1.0] {
                let (lo, hi) = collision_probability_bounds(b, j);
                assert!(lo <= hi + 1e-12);
                for &(u, v) in &[(0.5, 0.5), (0.2, 0.8), (0.05, 0.95)] {
                    if j > (u / v * 1.0f64).min(v / u) {
                        continue;
                    }
                    let p = collision_probability(b, j, u, v);
                    assert!(
                        p >= lo - 1e-9 && p <= hi + 1e-9,
                        "b={b} j={j} u={u}: p={p} not in [{lo}, {hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_converge_to_jaccard_as_b_to_one() {
        // Figure 3 right panel: both bounds approach J for b = 1.001.
        for &j in &[0.1, 0.5, 0.9] {
            let (lo, hi) = collision_probability_bounds(1.001, j);
            assert!((lo - j).abs() < 1e-3, "lo {lo} vs {j}");
            assert!((hi - j).abs() < 1e-3, "hi {hi} vs {j}");
        }
    }

    #[test]
    fn bounds_endpoints_are_exact() {
        for &b in &[1.2, 2.0] {
            let (lo0, _hi0) = collision_probability_bounds(b, 0.0);
            let (lo1, hi1) = collision_probability_bounds(b, 1.0);
            assert!(lo0.abs() < 1e-12);
            assert!((lo1 - 1.0).abs() < 1e-12);
            assert!((hi1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn estimators_invert_their_bounds() {
        let (b, m) = (2.0, 4096);
        for &j in &[0.2, 0.5, 0.9] {
            // Feed the estimator the exact bound value as collision rate.
            let (lo, hi) = collision_probability_bounds(b, j);
            let d0_lo = (lo * m as f64).round() as usize;
            let d0_hi = (hi * m as f64).round() as usize;
            // Ĵ_up inverts the lower bound; Ĵ_low inverts the upper bound.
            assert!((jaccard_upper_estimate(b, d0_lo, m) - j).abs() < 0.01);
            assert!((jaccard_lower_estimate(b, d0_hi, m) - j).abs() < 0.01);
        }
    }

    #[test]
    fn lower_estimate_is_clamped_at_zero() {
        assert_eq!(jaccard_lower_estimate(2.0, 0, 4096), 0.0);
    }

    #[test]
    fn upper_rmse_matches_minhash_for_small_b() {
        // Figure 4: for b = 1.001 the RMSE of Ĵ_up almost matches MinHash.
        let m = 4096;
        for &j in &[0.3, 0.6, 0.9] {
            let rmse = jaccard_upper_rmse(1.001, m, j);
            let minhash = (j * (1.0 - j) / m as f64).sqrt();
            assert!(
                (rmse / minhash - 1.0).abs() < 0.05,
                "j={j}: ratio {}",
                rmse / minhash
            );
        }
    }

    #[test]
    fn upper_rmse_ratio_small_for_high_similarity_b2() {
        // Figure 4: for b = 2, m = 4096 the RMSE is less than 20 % above
        // MinHash for J > 0.9.
        let m = 4096;
        let j = 0.95;
        let rmse = jaccard_upper_rmse(2.0, m, j);
        let minhash = (j * (1.0 - j) / m as f64).sqrt();
        assert!(rmse / minhash < 1.2, "ratio {}", rmse / minhash);
        // ... but grows for low similarities.
        let j_low = 0.1;
        let ratio_low =
            jaccard_upper_rmse(2.0, m, j_low) / (j_low * (1.0 - j_low) / m as f64).sqrt();
        assert!(ratio_low > rmse / minhash);
    }

    #[test]
    fn equal_register_fraction_tracks_similarity() {
        let cfg = SetSketchConfig::new(4096, 1.001, 20.0, (1 << 16) - 2).unwrap();
        let mut u = SetSketch1::new(cfg, 1);
        let mut v = SetSketch1::new(cfg, 1);
        // J = 0.5: U = 0..20k, V = 10k..30k.
        u.extend(0..20_000);
        v.extend(10_000..30_000);
        let counts = JointCounts::from_registers(u.registers(), v.registers());
        let d0 = counts.d0 as usize;
        let j_up = jaccard_upper_estimate(cfg.b(), d0, cfg.m());
        let j_true = 10_000.0 / 30_000.0;
        assert!((j_up - j_true).abs() < 0.04, "estimate {j_up}");
    }
}
