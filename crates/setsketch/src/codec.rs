//! Bit-packed register codec.
//!
//! The paper's memory footprint claims (§2.3) refer to registers stored in
//! `⌈log₂(q+2)⌉` bits each: the example configuration with q = 2¹⁶ − 2 uses
//! two bytes per register, and HLL-like configurations (q = 62) use 6 bits.
//! In RAM the sketches keep registers as `u32` for branch-free updates;
//! this codec provides the packed wire/disk representation. The actual bit
//! shuffling lives in [`sketch_math::bitpack`], shared with the GHLL codec.

use bytes::Bytes;
use sketch_math::bitpack;

/// Errors raised when decoding packed registers.
///
/// The one bit-packing error type of the workspace: the codec is a thin
/// wrapper over [`sketch_math::bitpack`], so its error *is*
/// [`BitPackError`](sketch_math::bitpack::BitPackError) rather than a
/// mirrored enum needing lossy conversion.
pub type CodecError = bitpack::BitPackError;

/// Packs register values into `bits` bits each (little-endian bit order).
///
/// # Panics
/// Panics if `bits` is not in `1..=32` or any value needs more bits.
pub fn pack_registers(values: &[u32], bits: u32) -> Bytes {
    Bytes::from(bitpack::pack_bits(values, bits))
}

/// Unpacks `m` register values of `bits` bits each, validating them against
/// `max_value`.
pub fn unpack_registers(
    bytes: &[u8],
    m: usize,
    bits: u32,
    max_value: u32,
) -> Result<Vec<u32>, CodecError> {
    bitpack::unpack_bits(bytes, m, bits, max_value)
}

/// Compresses registers as offsets from their minimum — the sketch's
/// `K_low` lower bound (paper §4) — plus a sparse exception list for
/// outliers, after HyperLogLogLog. This is the warm-tier representation
/// of stored SetSketches: for base-2 configurations registers
/// concentrate within a few values of `K_low`, so offsets pack into 2–4
/// bits each against 32 bits resident.
///
/// Round-trips bit-for-bit through [`decompress_registers`]. The byte
/// layout is [`sketch_math::bitpack::pack_offsets`]'s.
pub fn compress_registers(values: &[u32]) -> Bytes {
    Bytes::from(bitpack::pack_offsets(values))
}

/// Decompresses a [`compress_registers`] buffer back into `m` register
/// values, validating each against `max_value` (`q + 1` for a SetSketch
/// configuration).
pub fn decompress_registers(
    bytes: &[u8],
    m: usize,
    max_value: u32,
) -> Result<Vec<u32>, CodecError> {
    bitpack::unpack_offsets(bytes, m, max_value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for bits in [1u32, 3, 6, 8, 13, 16, 24, 32] {
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            let values: Vec<u32> = (0..257u32)
                .map(|i| i.wrapping_mul(2_654_435_761).wrapping_add(i) & mask)
                .collect();
            let packed = pack_registers(&values, bits);
            let unpacked = unpack_registers(&packed, values.len(), bits, mask).unwrap();
            assert_eq!(values, unpacked, "bits = {bits}");
        }
    }

    #[test]
    fn packed_size_matches_formula() {
        let values = vec![0u32; 4096];
        assert_eq!(pack_registers(&values, 6).len(), 3072); // 4096 * 6 / 8
        assert_eq!(pack_registers(&values, 16).len(), 8192);
        let values = vec![0u32; 7];
        assert_eq!(pack_registers(&values, 6).len(), 6); // ceil(42/8)
    }

    #[test]
    fn detects_truncation() {
        let values = vec![1u32; 100];
        let packed = pack_registers(&values, 6);
        let err = unpack_registers(&packed[..packed.len() - 1], 100, 6, 63);
        assert_eq!(err, Err(CodecError::Truncated));
    }

    #[test]
    fn detects_out_of_range_values() {
        let values = vec![63u32; 8];
        let packed = pack_registers(&values, 6);
        let err = unpack_registers(&packed, 8, 6, 62);
        assert_eq!(err, Err(CodecError::ValueOutOfRange));
    }

    #[test]
    fn rejects_invalid_bit_width() {
        assert_eq!(
            unpack_registers(&[0], 1, 0, 0),
            Err(CodecError::InvalidBitWidth)
        );
        assert_eq!(
            unpack_registers(&[0], 1, 33, 0),
            Err(CodecError::InvalidBitWidth)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pack_rejects_oversized_values() {
        pack_registers(&[64], 6);
    }

    #[test]
    fn empty_input() {
        let packed = pack_registers(&[], 6);
        assert!(packed.is_empty());
        assert_eq!(unpack_registers(&packed, 0, 6, 63), Ok(vec![]));
    }

    #[test]
    fn codec_error_is_the_bitpack_error() {
        // One packing substrate, one error type: the codec's error is
        // sketch_math's, not a mirrored enum.
        fn take(e: sketch_math::bitpack::BitPackError) -> CodecError {
            e
        }
        assert_eq!(
            take(sketch_math::bitpack::BitPackError::Truncated),
            CodecError::Truncated
        );
    }

    #[test]
    fn offset_compression_roundtrips() {
        let values: Vec<u32> = (0..4096u32)
            .map(|i| 37 + (i % 5) + if i % 211 == 0 { 40 } else { 0 })
            .collect();
        let packed = compress_registers(&values);
        assert_eq!(
            decompress_registers(&packed, values.len(), 100).unwrap(),
            values
        );
        // ≥ 2.5× smaller than the resident u32 registers — the warm-tier
        // acceptance bar (in practice ~8× for concentrated registers).
        assert!(packed.len() * 5 < values.len() * 4 * 2);
        assert_eq!(
            decompress_registers(&packed, values.len(), 50),
            Err(CodecError::ValueOutOfRange)
        );
    }
}
