//! Bit-packed register codec.
//!
//! The paper's memory footprint claims (§2.3) refer to registers stored in
//! `⌈log₂(q+2)⌉` bits each: the example configuration with q = 2¹⁶ − 2 uses
//! two bytes per register, and HLL-like configurations (q = 62) use 6 bits.
//! In RAM the sketches keep registers as `u32` for branch-free updates;
//! this codec provides the packed wire/disk representation. The actual bit
//! shuffling lives in [`sketch_math::bitpack`], shared with the GHLL codec.

use bytes::Bytes;
use sketch_math::bitpack::{self, BitPackError};

/// Errors raised when decoding packed registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte buffer is shorter than `ceil(m * bits / 8)`.
    Truncated,
    /// A decoded register value exceeds the configured maximum.
    ValueOutOfRange,
    /// Unsupported bit width (must be 1..=32).
    InvalidBitWidth,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "packed register buffer is truncated"),
            CodecError::ValueOutOfRange => write!(f, "register value exceeds maximum"),
            CodecError::InvalidBitWidth => write!(f, "bit width must be between 1 and 32"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<BitPackError> for CodecError {
    fn from(e: BitPackError) -> Self {
        match e {
            BitPackError::Truncated => CodecError::Truncated,
            BitPackError::ValueOutOfRange => CodecError::ValueOutOfRange,
            BitPackError::InvalidBitWidth => CodecError::InvalidBitWidth,
        }
    }
}

/// Packs register values into `bits` bits each (little-endian bit order).
///
/// # Panics
/// Panics if `bits` is not in `1..=32` or any value needs more bits.
pub fn pack_registers(values: &[u32], bits: u32) -> Bytes {
    Bytes::from(bitpack::pack_bits(values, bits))
}

/// Unpacks `m` register values of `bits` bits each, validating them against
/// `max_value`.
pub fn unpack_registers(
    bytes: &[u8],
    m: usize,
    bits: u32,
    max_value: u32,
) -> Result<Vec<u32>, CodecError> {
    bitpack::unpack_bits(bytes, m, bits, max_value).map_err(CodecError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for bits in [1u32, 3, 6, 8, 13, 16, 24, 32] {
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            let values: Vec<u32> = (0..257u32)
                .map(|i| i.wrapping_mul(2_654_435_761).wrapping_add(i) & mask)
                .collect();
            let packed = pack_registers(&values, bits);
            let unpacked = unpack_registers(&packed, values.len(), bits, mask).unwrap();
            assert_eq!(values, unpacked, "bits = {bits}");
        }
    }

    #[test]
    fn packed_size_matches_formula() {
        let values = vec![0u32; 4096];
        assert_eq!(pack_registers(&values, 6).len(), 3072); // 4096 * 6 / 8
        assert_eq!(pack_registers(&values, 16).len(), 8192);
        let values = vec![0u32; 7];
        assert_eq!(pack_registers(&values, 6).len(), 6); // ceil(42/8)
    }

    #[test]
    fn detects_truncation() {
        let values = vec![1u32; 100];
        let packed = pack_registers(&values, 6);
        let err = unpack_registers(&packed[..packed.len() - 1], 100, 6, 63);
        assert_eq!(err, Err(CodecError::Truncated));
    }

    #[test]
    fn detects_out_of_range_values() {
        let values = vec![63u32; 8];
        let packed = pack_registers(&values, 6);
        let err = unpack_registers(&packed, 8, 6, 62);
        assert_eq!(err, Err(CodecError::ValueOutOfRange));
    }

    #[test]
    fn rejects_invalid_bit_width() {
        assert_eq!(
            unpack_registers(&[0], 1, 0, 0),
            Err(CodecError::InvalidBitWidth)
        );
        assert_eq!(
            unpack_registers(&[0], 1, 33, 0),
            Err(CodecError::InvalidBitWidth)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pack_rejects_oversized_values() {
        pack_registers(&[64], 6);
    }

    #[test]
    fn empty_input() {
        let packed = pack_registers(&[], 6);
        assert!(packed.is_empty());
        assert_eq!(unpack_registers(&packed, 0, 6, 63), Ok(vec![]));
    }

    #[test]
    fn error_conversion_covers_all_variants() {
        use sketch_math::bitpack::BitPackError;
        assert_eq!(
            CodecError::from(BitPackError::Truncated),
            CodecError::Truncated
        );
        assert_eq!(
            CodecError::from(BitPackError::ValueOutOfRange),
            CodecError::ValueOutOfRange
        );
        assert_eq!(
            CodecError::from(BitPackError::InvalidBitWidth),
            CodecError::InvalidBitWidth
        );
    }
}
