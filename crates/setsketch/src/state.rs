//! Serializable sketch state.
//!
//! Distributed aggregation (the paper's headline use case) requires moving
//! sketch states between processes. [`SketchState`] is the portable
//! representation: it carries the configuration, the hash seed, a variant
//! tag, and the raw register values; [`SetSketch::to_state`] and
//! [`SetSketch::from_state`] convert losslessly, and serde implementations
//! on the sketch types delegate to it. [`SetSketch::to_bytes`] additionally
//! provides the compact bit-packed binary representation.

use crate::codec::{pack_registers, unpack_registers, CodecError};
use crate::config::{ConfigError, SetSketchConfig};
use crate::sequence::ValueSequence;
use crate::sketch::SetSketch;
use bytes::{Buf, BufMut, Bytes, BytesMut};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Portable SetSketch state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SketchState {
    /// Variant tag: `"setsketch1"` or `"setsketch2"`.
    pub variant: String,
    /// Configuration parameters.
    pub config: SetSketchConfig,
    /// Hash seed.
    pub seed: u64,
    /// Raw register values (length `config.m()`, values `0..=q+1`).
    pub registers: Vec<u32>,
}

/// Errors raised when restoring a sketch from external state.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// The state's variant tag does not match the requested sketch type.
    VariantMismatch {
        /// Tag found in the state.
        found: String,
        /// Tag expected by the target type.
        expected: &'static str,
    },
    /// The register array length differs from the configured m.
    WrongRegisterCount,
    /// A register value exceeds q + 1.
    RegisterOutOfRange,
    /// The embedded configuration is invalid.
    Config(ConfigError),
    /// Binary decoding failed.
    Codec(CodecError),
    /// The binary header is malformed.
    MalformedHeader,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::VariantMismatch { found, expected } => {
                write!(f, "state is for variant {found:?}, expected {expected:?}")
            }
            StateError::WrongRegisterCount => write!(f, "register count does not match m"),
            StateError::RegisterOutOfRange => write!(f, "register value exceeds q + 1"),
            StateError::Config(e) => write!(f, "invalid configuration: {e}"),
            StateError::Codec(e) => write!(f, "binary decoding failed: {e}"),
            StateError::MalformedHeader => write!(f, "malformed binary header"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<ConfigError> for StateError {
    fn from(e: ConfigError) -> Self {
        StateError::Config(e)
    }
}

impl From<CodecError> for StateError {
    fn from(e: CodecError) -> Self {
        StateError::Codec(e)
    }
}

/// Magic bytes of the binary representation ("SSK1").
const MAGIC: u32 = 0x5353_4b31;

impl<S: ValueSequence> SetSketch<S> {
    /// Extracts the portable state of this sketch.
    pub fn to_state(&self) -> SketchState {
        SketchState {
            variant: S::NAME.to_owned(),
            config: *self.config(),
            seed: self.seed(),
            registers: self.registers().to_vec(),
        }
    }

    /// Restores a sketch from portable state, validating variant,
    /// configuration and register range.
    pub fn from_state(state: SketchState) -> Result<Self, StateError> {
        if state.variant != S::NAME {
            return Err(StateError::VariantMismatch {
                found: state.variant,
                expected: S::NAME,
            });
        }
        let config = SetSketchConfig::new(
            state.config.m(),
            state.config.b(),
            state.config.a(),
            state.config.q(),
        )?;
        if state.registers.len() != config.m() {
            return Err(StateError::WrongRegisterCount);
        }
        let limit = config.q() + 1;
        if state.registers.iter().any(|&k| k > limit) {
            return Err(StateError::RegisterOutOfRange);
        }
        let mut sketch = Self::new(config, state.seed);
        sketch.load_registers(&state.registers);
        Ok(sketch)
    }

    /// Compact binary representation: fixed header plus bit-packed
    /// registers (`config.register_bits()` bits each).
    pub fn to_bytes(&self) -> Bytes {
        let cfg = self.config();
        let mut out = BytesMut::with_capacity(48 + cfg.packed_bytes());
        out.put_u32(MAGIC);
        out.put_u8(if S::NAME == "setsketch1" { 1 } else { 2 });
        out.put_u64(cfg.m() as u64);
        out.put_f64(cfg.b());
        out.put_f64(cfg.a());
        out.put_u32(cfg.q());
        out.put_u64(self.seed());
        out.extend_from_slice(&pack_registers(self.registers(), cfg.register_bits()));
        out.freeze()
    }

    /// Restores a sketch from the binary representation.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, StateError> {
        if bytes.len() < 41 {
            return Err(StateError::MalformedHeader);
        }
        if bytes.get_u32() != MAGIC {
            return Err(StateError::MalformedHeader);
        }
        let variant = bytes.get_u8();
        let expected = if S::NAME == "setsketch1" { 1 } else { 2 };
        if variant != expected {
            return Err(StateError::VariantMismatch {
                found: format!("setsketch{variant}"),
                expected: S::NAME,
            });
        }
        let m = bytes.get_u64() as usize;
        let b = bytes.get_f64();
        let a = bytes.get_f64();
        let q = bytes.get_u32();
        let seed = bytes.get_u64();
        let config = SetSketchConfig::new(m, b, a, q)?;
        let registers = unpack_registers(bytes, m, config.register_bits(), q + 1)?;
        let mut sketch = Self::new(config, seed);
        sketch.load_registers(&registers);
        Ok(sketch)
    }
}

#[cfg(feature = "serde")]
impl<S: ValueSequence> Serialize for SetSketch<S> {
    fn serialize<Ser: serde::Serializer>(&self, serializer: Ser) -> Result<Ser::Ok, Ser::Error> {
        self.to_state().serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de, S: ValueSequence> Deserialize<'de> for SetSketch<S> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let state = SketchState::deserialize(deserializer)?;
        SetSketch::from_state(state).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{SetSketch1, SetSketch2};

    fn populated_sketch() -> SetSketch1 {
        let cfg = SetSketchConfig::new(128, 2.0, 20.0, 62).unwrap();
        let mut s = SetSketch1::new(cfg, 42);
        s.extend(0..5000);
        s
    }

    #[test]
    fn state_roundtrip_preserves_equality_and_behavior() {
        let original = populated_sketch();
        let restored = SetSketch1::from_state(original.to_state()).unwrap();
        assert_eq!(original, restored);
        // The restored sketch continues to work identically.
        let mut a = original.clone();
        let mut b = restored;
        a.insert_u64(999_999);
        b.insert_u64(999_999);
        assert_eq!(a, b);
        assert!((a.estimate_cardinality() - b.estimate_cardinality()).abs() < 1e-12);
    }

    #[test]
    fn state_variant_is_checked() {
        let original = populated_sketch();
        let state = original.to_state();
        let err = SetSketch2::from_state(state).unwrap_err();
        assert!(matches!(err, StateError::VariantMismatch { .. }));
    }

    #[test]
    fn state_register_validation() {
        let original = populated_sketch();
        let mut state = original.to_state();
        state.registers[0] = 64; // q + 1 = 63 is the maximum
        assert_eq!(
            SetSketch1::from_state(state),
            Err(StateError::RegisterOutOfRange)
        );
        let mut state = original.to_state();
        state.registers.pop();
        assert_eq!(
            SetSketch1::from_state(state),
            Err(StateError::WrongRegisterCount)
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_roundtrip() {
        let original = populated_sketch();
        let json = serde_json::to_string(&original).unwrap();
        let restored: SetSketch1 = serde_json::from_str(&json).unwrap();
        assert_eq!(original, restored);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_rejects_wrong_variant() {
        let original = populated_sketch();
        let json = serde_json::to_string(&original).unwrap();
        let result: Result<SetSketch2, _> = serde_json::from_str(&json);
        assert!(result.is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let original = populated_sketch();
        let bytes = original.to_bytes();
        let restored = SetSketch1::from_bytes(&bytes).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn binary_size_matches_packed_footprint() {
        let original = populated_sketch();
        let bytes = original.to_bytes();
        // 41-byte header + 128 registers * 6 bits = 96 bytes.
        assert_eq!(bytes.len(), 41 + 96);
    }

    #[test]
    fn binary_rejects_corruption() {
        let original = populated_sketch();
        let bytes = original.to_bytes();
        assert!(SetSketch1::from_bytes(&bytes[..10]).is_err());
        let mut corrupted = bytes.to_vec();
        corrupted[0] ^= 0xff;
        assert!(SetSketch1::from_bytes(&corrupted).is_err());
        assert!(SetSketch2::from_bytes(&bytes).is_err());
    }

    #[test]
    fn restored_sketch_tracks_lower_bound() {
        // from_state must recompute K_low so inserts stay efficient and
        // correct.
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap();
        let mut s = SetSketch1::new(cfg, 7);
        s.extend(0..100_000);
        let restored = SetSketch1::from_state(s.to_state()).unwrap();
        assert!(restored.k_low() > 0);
        assert_eq!(
            restored.k_low(),
            restored.registers().iter().copied().min().unwrap()
        );
    }
}
