//! SetSketch parameter configuration (paper §2.3).
//!
//! A SetSketch has four parameters: the number of registers `m` (accuracy),
//! the base `b > 1` (trade-off between space efficiency and joint-estimation
//! accuracy), the rate `a > 0` (lower end of the usable cardinality range)
//! and the register limit `q` (upper end: registers hold values
//! `0 ..= q+1`). Lemmas 4 and 5 of the paper bound the probability that the
//! clipping at 0 or q+1 is ever observed; [`SetSketchConfig::recommended`]
//! picks `a` and `q` from those bounds.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Errors raised by invalid sketch configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The number of registers must be at least 1.
    ZeroRegisters,
    /// The base must satisfy `b > 1`.
    InvalidBase,
    /// The rate parameter must satisfy `a > 0`.
    InvalidRate,
    /// `q + 1` must fit the register representation.
    InvalidLimit,
    /// Register counts beyond u32::MAX - 1 are not supported.
    TooManyRegisters,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRegisters => write!(f, "m must be at least 1"),
            ConfigError::InvalidBase => write!(f, "base b must be finite and > 1"),
            ConfigError::InvalidRate => write!(f, "rate a must be finite and > 0"),
            ConfigError::InvalidLimit => write!(f, "q + 1 must fit into u32"),
            ConfigError::TooManyRegisters => write!(f, "m exceeds the supported maximum"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated SetSketch parameters (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SetSketchConfig {
    m: usize,
    b: f64,
    a: f64,
    q: u32,
}

impl SetSketchConfig {
    /// Validates and creates a configuration.
    pub fn new(m: usize, b: f64, a: f64, q: u32) -> Result<Self, ConfigError> {
        if m == 0 {
            return Err(ConfigError::ZeroRegisters);
        }
        if m > (u32::MAX - 1) as usize {
            return Err(ConfigError::TooManyRegisters);
        }
        if !(b.is_finite() && b > 1.0) {
            return Err(ConfigError::InvalidBase);
        }
        if !(a.is_finite() && a > 0.0) {
            return Err(ConfigError::InvalidRate);
        }
        if q == u32::MAX {
            return Err(ConfigError::InvalidLimit);
        }
        Ok(Self { m, b, a, q })
    }

    /// Derives `a` and `q` from the desired cardinality range following
    /// Lemmas 4 and 5: clipping probabilities stay below `epsilon` for all
    /// cardinalities in `[1, n_max]`.
    ///
    /// The paper recommends `a = 20` as a default ("a good choice in most
    /// cases"); this constructor uses `max(20, log(m/ε)/b)` so that the
    /// Lemma 4 guarantee holds even for extreme `m` and `ε`.
    pub fn recommended(m: usize, b: f64, n_max: f64, epsilon: f64) -> Result<Self, ConfigError> {
        if !(b.is_finite() && b > 1.0) {
            return Err(ConfigError::InvalidBase);
        }
        if m == 0 {
            return Err(ConfigError::ZeroRegisters);
        }
        let a = ((m as f64 / epsilon).ln() / b).max(20.0);
        // Lemma 5: q >= floor(log_b(m * n_max * a / epsilon)).
        let q = (m as f64 * n_max * a / epsilon).ln() / b.ln();
        let q = q.floor().max(0.0);
        if q >= u32::MAX as f64 {
            return Err(ConfigError::InvalidLimit);
        }
        Self::new(m, b, a, q as u32)
    }

    /// The paper's §2.3 example configuration: m = 4096, b = 1.001, a = 20,
    /// q = 2¹⁶ − 2, suitable for cardinalities up to 10¹⁸ with two-byte
    /// registers (8 kB sketch) and ~1.56 % cardinality error.
    pub fn example_16bit() -> Self {
        Self::new(4096, 1.001, 20.0, (1 << 16) - 2).expect("example config is valid")
    }

    /// Number of registers.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The base b of the register scale.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The rate parameter a.
    #[inline]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Register limit parameter: registers hold values `0 ..= q+1`.
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Bits needed per register without special encoding:
    /// `ceil(log2(q + 2))` (paper §2.3).
    pub fn register_bits(&self) -> u32 {
        let states = self.q as u64 + 2;
        64 - (states - 1).leading_zeros()
    }

    /// Memory footprint of the packed representation in bytes.
    pub fn packed_bytes(&self) -> usize {
        (self.m * self.register_bits() as usize).div_ceil(8)
    }

    /// Lemma 4 bound: `P(min K_i < 0) <= m e^{-a b}` for any non-empty set.
    pub fn negative_value_bound(&self) -> f64 {
        (self.m as f64) * (-self.a * self.b).exp()
    }

    /// Exact probability that a single-element SetSketch1 would need a
    /// register value below 0: `1 − (1 − e^{-a b})^m` (proof of Lemma 4).
    pub fn negative_value_probability(&self) -> f64 {
        // 1 - (1-p)^m = -expm1(m * ln_1p(-p)) with p = e^{-ab}.
        let p = (-self.a * self.b).exp();
        -((self.m as f64) * (-p).ln_1p()).exp_m1()
    }

    /// Lemma 5 bound: `P(max K_i > q+1) <= n_max · m · a · b^{-q-1}`.
    pub fn overflow_bound(&self, n_max: f64) -> f64 {
        n_max * self.m as f64 * self.a * (-(self.q as f64 + 1.0) * self.b.ln()).exp()
    }

    /// Exact probability that a SetSketch1 of cardinality `n` has any
    /// register update value above `q + 1`: `1 − e^{-n m a b^{-q-1}}`.
    pub fn overflow_probability(&self, n: f64) -> f64 {
        let rate = n * self.m as f64 * self.a * (-(self.q as f64 + 1.0) * self.b.ln()).exp();
        -(-rate).exp_m1()
    }

    /// Theoretical relative standard deviation of the cardinality
    /// estimator (12): `sqrt(((b+1)/(b-1)·ln b − 1) / m)` (paper §3.1).
    pub fn cardinality_rsd(&self) -> f64 {
        (((self.b + 1.0) / (self.b - 1.0) * self.b.ln() - 1.0) / self.m as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_probabilities() {
        // §2.3: "The probability that there is at least one register with
        // negative value is 8.28e-6 for a set with just a single element.
        // Furthermore, the probability that any register value is greater
        // than q+1 is 2.93e-6 for n = 1e18."
        let cfg = SetSketchConfig::example_16bit();
        let p_neg = cfg.negative_value_probability();
        assert!(
            (p_neg - 8.28e-6).abs() < 0.02e-6,
            "negative-value probability {p_neg}"
        );
        let p_over = cfg.overflow_probability(1e18);
        assert!(
            (p_over - 2.93e-6).abs() < 0.03e-6,
            "overflow probability {p_over}"
        );
    }

    #[test]
    fn paper_example_memory_and_error() {
        let cfg = SetSketchConfig::example_16bit();
        // Two bytes per register, 8 kB total.
        assert_eq!(cfg.register_bits(), 16);
        assert_eq!(cfg.packed_bytes(), 8192);
        // Expected cardinality error ~ 1/sqrt(m) = 1.56 %.
        assert!((cfg.cardinality_rsd() - 0.015_6).abs() < 2e-4);
    }

    #[test]
    fn rsd_for_base_two() {
        // §3.1: RSD = sqrt(3 ln 2 - 1)/sqrt(m) ≈ 1.04/sqrt(m) for b = 2.
        let cfg = SetSketchConfig::new(4096, 2.0, 20.0, 62).unwrap();
        let expected = (3.0 * 2.0f64.ln() - 1.0).sqrt() / 64.0;
        assert!((cfg.cardinality_rsd() - expected).abs() < 1e-12);
        assert!((cfg.cardinality_rsd() * 64.0 - 1.04).abs() < 0.01);
    }

    #[test]
    fn register_bits_for_hll_like_config() {
        // b = 2, q = 62: values 0..=63 fit 6 bits (like HLL).
        let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
        assert_eq!(cfg.register_bits(), 6);
        assert_eq!(cfg.packed_bytes(), 192);
    }

    #[test]
    fn recommended_respects_lemmas() {
        let cfg = SetSketchConfig::recommended(4096, 1.001, 1e18, 1e-5).unwrap();
        assert!(cfg.negative_value_bound() <= 1e-5 * 1.01);
        assert!(cfg.overflow_bound(1e18) <= 1e-5 * (cfg.b()));
        // Defaults keep a at the paper's recommendation.
        assert_eq!(cfg.a(), 20.0);
    }

    #[test]
    fn recommended_uses_larger_a_when_needed() {
        // Extreme m with tiny epsilon forces a > 20 per Lemma 4.
        let cfg = SetSketchConfig::recommended(1 << 20, 1.001, 1e6, 1e-12).unwrap();
        assert!(cfg.a() > 20.0);
        assert!(cfg.negative_value_bound() <= 1e-12 * 1.01);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            SetSketchConfig::new(0, 2.0, 20.0, 62),
            Err(ConfigError::ZeroRegisters)
        );
        assert_eq!(
            SetSketchConfig::new(16, 1.0, 20.0, 62),
            Err(ConfigError::InvalidBase)
        );
        assert_eq!(
            SetSketchConfig::new(16, f64::NAN, 20.0, 62),
            Err(ConfigError::InvalidBase)
        );
        assert_eq!(
            SetSketchConfig::new(16, 2.0, 0.0, 62),
            Err(ConfigError::InvalidRate)
        );
        assert_eq!(
            SetSketchConfig::new(16, 2.0, 20.0, u32::MAX),
            Err(ConfigError::InvalidLimit)
        );
    }

    #[test]
    fn errors_display() {
        let e = SetSketchConfig::new(0, 2.0, 20.0, 62).unwrap_err();
        assert!(e.to_string().contains("m must be"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn config_serde_roundtrip() {
        let cfg = SetSketchConfig::example_16bit();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SetSketchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
