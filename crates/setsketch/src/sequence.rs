//! Ascending register-value point sequences (paper §2.1).
//!
//! Algorithm 1 replaces the m independent exponential hash values of
//! definition (6) by an *ascending* random sequence 0 < x₁ < x₂ < ... < x_m
//! whose values are assigned to registers by random shuffling. Two
//! constructions yield the correct marginal distribution:
//!
//! * **SetSketch1** (eq. (7)): exponential spacings
//!   `x_j = x_{j-1} + Exp(a)/(m+1-j)`, which makes the final hash values
//!   statistically *independent*;
//! * **SetSketch2** (eq. (8)): one point per interval `[γ_{j-1}, γ_j)` of
//!   the equal-probability partition `γ_j = ln(1 + j/(m-j))/a`, which makes
//!   them *dependent* (negatively correlated) — an advantage for small sets.

use sketch_rand::{truncated_exp, ExpZiggurat, Rng64};
use std::sync::Arc;

/// Strategy producing the j-th smallest of m exponential(a) values.
///
/// [`start`](Self::start) resets per element; [`next`](Self::next) must be
/// called at most `m` times per element and returns a strictly increasing
/// sequence.
pub trait ValueSequence: Clone {
    /// Short tag identifying the variant in serialized states.
    const NAME: &'static str;

    /// Creates the strategy for `m` registers and rate `a`.
    fn create(m: usize, a: f64) -> Self;

    /// Resets the sequence for a new element.
    fn start(&mut self);

    /// Returns the next (j-th smallest) value.
    fn next<R: Rng64>(&mut self, rng: &mut R) -> f64;
}

/// SetSketch1 strategy: exponential spacings (paper eq. (7)).
#[derive(Debug, Clone)]
pub struct ExponentialSpacings {
    a: f64,
    m: usize,
    x: f64,
    j: usize,
    ziggurat: ExpZiggurat,
}

impl ValueSequence for ExponentialSpacings {
    const NAME: &'static str = "setsketch1";

    fn create(m: usize, a: f64) -> Self {
        Self {
            a,
            m,
            x: 0.0,
            j: 0,
            ziggurat: ExpZiggurat::new(),
        }
    }

    #[inline]
    fn start(&mut self) {
        self.x = 0.0;
        self.j = 0;
    }

    #[inline]
    fn next<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        debug_assert!(self.j < self.m, "sequence exhausted");
        self.j += 1;
        // x_j = x_{j-1} + Exp(a) / (m + 1 - j)
        let denom = (self.m + 1 - self.j) as f64;
        self.x += self.ziggurat.sample(rng) / (self.a * denom);
        self.x
    }
}

/// SetSketch2 strategy: one truncated-exponential point per interval of the
/// equal-probability partition (paper eq. (8), Lemma 3).
#[derive(Debug, Clone)]
pub struct IntervalSampling {
    a: f64,
    /// Interval boundaries γ_0 = 0 .. γ_m = ∞, shared between clones.
    gammas: Arc<[f64]>,
    j: usize,
}

impl ValueSequence for IntervalSampling {
    const NAME: &'static str = "setsketch2";

    fn create(m: usize, a: f64) -> Self {
        let mut gammas = Vec::with_capacity(m + 1);
        gammas.push(0.0);
        for j in 1..m {
            // γ_j = ln(1 + j/(m-j)) / a; written via ln_1p for accuracy.
            gammas.push((j as f64 / (m - j) as f64).ln_1p() / a);
        }
        gammas.push(f64::INFINITY);
        Self {
            a,
            gammas: gammas.into(),
            j: 0,
        }
    }

    #[inline]
    fn start(&mut self) {
        self.j = 0;
    }

    #[inline]
    fn next<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        debug_assert!(self.j + 1 < self.gammas.len(), "sequence exhausted");
        self.j += 1;
        truncated_exp(rng, self.a, self.gammas[self.j - 1], self.gammas[self.j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_rand::WyRand;

    fn collect_sequence<S: ValueSequence>(m: usize, a: f64, seed: u64) -> Vec<f64> {
        let mut seq = S::create(m, a);
        let mut rng = WyRand::new(seed);
        seq.start();
        (0..m).map(|_| seq.next(&mut rng)).collect()
    }

    #[test]
    fn spacings_are_strictly_increasing() {
        for seed in 0..20 {
            let xs = collect_sequence::<ExponentialSpacings>(64, 20.0, seed);
            for w in xs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn intervals_are_strictly_increasing() {
        for seed in 0..20 {
            let xs = collect_sequence::<IntervalSampling>(64, 20.0, seed);
            for w in xs.windows(2) {
                assert!(w[0] < w[1], "{xs:?}");
            }
        }
    }

    /// The j-th interval boundary splits Exp(a) into equal-probability
    /// cells (Lemma 3).
    #[test]
    fn gamma_partition_has_equal_probability() {
        let a = 3.0;
        let m = 10;
        let seq = IntervalSampling::create(m, a);
        for j in 1..m {
            let lo = seq.gammas[j - 1];
            let hi = seq.gammas[j];
            let p = (-a * lo).exp() - (-a * hi).exp();
            assert!((p - 1.0 / m as f64).abs() < 1e-12, "j={j} p={p}");
        }
        // Last interval [γ_{m-1}, ∞).
        let p_last = (-a * seq.gammas[m - 1]).exp();
        assert!((p_last - 1.0 / m as f64).abs() < 1e-12);
    }

    /// SetSketch1: the minimum of the m values is the first spacing and
    /// must be distributed like the minimum of m iid Exp(a), i.e. Exp(m·a).
    #[test]
    fn spacings_minimum_is_exp_of_rate_ma() {
        let (m, a) = (16usize, 2.0);
        let trials = 100_000;
        let mut seq = ExponentialSpacings::create(m, a);
        let mut rng = WyRand::new(1234);
        let mut sum = 0.0;
        for _ in 0..trials {
            seq.start();
            sum += seq.next(&mut rng);
        }
        let mean = sum / trials as f64;
        let expected = 1.0 / (m as f64 * a);
        assert!(
            ((mean - expected) / expected).abs() < 0.02,
            "mean {mean} vs {expected}"
        );
    }

    /// SetSketch2: the minimum is Exp(a) *conditioned* on the first
    /// equal-probability cell [0, γ₁) — this is exactly the correlation
    /// that distinguishes it from SetSketch1. Its conditional mean is
    /// m · (1 − (1 + aγ₁)e^{-aγ₁}) / a.
    #[test]
    fn intervals_minimum_matches_truncated_mean() {
        let (m, a) = (16usize, 2.0);
        let trials = 100_000;
        let mut seq = IntervalSampling::create(m, a);
        let gamma1 = seq.gammas[1];
        let mut rng = WyRand::new(1234);
        let mut sum = 0.0;
        for _ in 0..trials {
            seq.start();
            sum += seq.next(&mut rng);
        }
        let mean = sum / trials as f64;
        let ag = a * gamma1;
        let expected = m as f64 * (1.0 - (1.0 + ag) * (-ag).exp()) / a;
        assert!(
            ((mean - expected) / expected).abs() < 0.02,
            "mean {mean} vs {expected}"
        );
    }

    /// Marginally, each of the m hash values must be Exp(a): the average of
    /// all m values per element equals the exponential mean 1/a.
    #[test]
    fn values_have_exponential_mean() {
        fn check<S: ValueSequence>(label: &str) {
            let (m, a) = (8usize, 5.0);
            let trials = 40_000;
            let mut seq = S::create(m, a);
            let mut rng = WyRand::new(99);
            let mut sum = 0.0;
            for _ in 0..trials {
                seq.start();
                for _ in 0..m {
                    sum += seq.next(&mut rng);
                }
            }
            let mean = sum / (trials * m) as f64;
            assert!(
                ((mean - 1.0 / a) / (1.0 / a)).abs() < 0.02,
                "{label}: mean {mean}"
            );
        }
        check::<ExponentialSpacings>("setsketch1");
        check::<IntervalSampling>("setsketch2");
    }

    /// The maximum x_m of SetSketch1 must look like the maximum of m iid
    /// Exp(a): E[max] = H_m / a.
    #[test]
    fn spacings_maximum_matches_order_statistic() {
        let (m, a) = (16usize, 2.0);
        let trials = 60_000;
        let mut seq = ExponentialSpacings::create(m, a);
        let mut rng = WyRand::new(7);
        let mut sum = 0.0;
        for _ in 0..trials {
            seq.start();
            let mut last = 0.0;
            for _ in 0..m {
                last = seq.next(&mut rng);
            }
            sum += last;
        }
        let mean = sum / trials as f64;
        let h_m: f64 = (1..=m).map(|i| 1.0 / i as f64).sum();
        let expected = h_m / a;
        assert!(((mean - expected) / expected).abs() < 0.02, "mean {mean}");
    }
}
