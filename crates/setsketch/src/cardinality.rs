//! Cardinality estimation from a SetSketch (paper §3.1, eq. (12), (18)).
//!
//! Three estimators are provided:
//!
//! * [`SetSketch::estimate_cardinality_simple`] — the closed form (12),
//!   valid while no register is clipped at 0 or q+1;
//! * [`SetSketch::estimate_cardinality`] — the corrected estimator (18)
//!   with the σ_b/τ_b range corrections (Appendix B); this is the robust
//!   default and requires no empirical calibration;
//! * [`SetSketch::estimate_cardinality_ml`] — maximum likelihood under the
//!   register value distribution (4), used by the paper (Figure 12) to
//!   verify that (12)/(18) lose essentially no efficiency.

use crate::sequence::ValueSequence;
use crate::sketch::SetSketch;
use sketch_math::{brent, sigma_b, tau_b};

impl<S: ValueSequence> SetSketch<S> {
    /// Closed-form estimator (12): `n̂ = m (1−1/b) / (a ln b Σ_i b^{-K_i})`.
    ///
    /// Fast and accurate while register values are strictly inside
    /// `(0, q+1)`; use [`estimate_cardinality`](Self::estimate_cardinality)
    /// when small or huge sets may clip the register range.
    ///
    /// Reads the maintained register histogram where one is kept
    /// (O(q) instead of O(m)); sparse scales scan the registers.
    pub fn estimate_cardinality_simple(&self) -> f64 {
        let table = self.power_table();
        let sum: f64 = match self.register_histogram() {
            Some(histogram) => histogram
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(k, &count)| count as f64 * table.pow_neg(k as u32))
                .sum(),
            None => self.registers().iter().map(|&k| table.pow_neg(k)).sum(),
        };
        let cfg = self.config();
        cfg.m() as f64 * (1.0 - 1.0 / cfg.b()) / (cfg.a() * cfg.b().ln() * sum)
    }

    /// Corrected estimator (18) handling registers clipped at 0 and q+1
    /// (paper Appendix B). Returns 0 for an unused sketch.
    pub fn estimate_cardinality(&self) -> f64 {
        let cfg = self.config();
        let m = cfg.m() as f64;
        let b = cfg.b();
        let (c0, mid_sum, c_limit) = self.histogram_sum();
        let low_term = m * sigma_b(b, c0 as f64 / m);
        if low_term.is_infinite() {
            // All registers zero: the sketch is empty.
            return 0.0;
        }
        let high_term =
            m * self.power_table().pow_neg(cfg.q()) * tau_b(b, 1.0 - c_limit as f64 / m);
        let denom = low_term + mid_sum + high_term;
        m * (1.0 - 1.0 / b) / (cfg.a() * b.ln() * denom)
    }

    /// Maximum-likelihood cardinality estimate under distribution (4) with
    /// range clipping (19)/(20) of Appendix B, solved by Brent's method
    /// over log-cardinality.
    ///
    /// The likelihood is evaluated over the *occupied value buckets*:
    /// registers sharing a value contribute one transcendental
    /// evaluation weighted by their count, so each Brent iteration costs
    /// O(min(m, q)) instead of O(m) exp/ln calls. The buckets come from
    /// the maintained histogram where one is kept, or from run-length
    /// encoding the sorted registers on sparse scales.
    pub fn estimate_cardinality_ml(&self) -> f64 {
        let start = self.estimate_cardinality();
        if start <= 0.0 {
            return 0.0;
        }
        let cfg = self.config();
        let a = cfg.a();
        let b = cfg.b();
        let q_limit = cfg.q() + 1;
        let table = self.power_table().clone();
        let occupied: Vec<(u32, f64)> = match self.register_histogram() {
            Some(histogram) => histogram
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(k, &count)| (k as u32, count as f64))
                .collect(),
            None => {
                let mut registers = self.registers().to_vec();
                registers.sort_unstable();
                let mut runs: Vec<(u32, f64)> = Vec::new();
                for &k in &registers {
                    match runs.last_mut() {
                        Some((value, count)) if *value == k => *count += 1.0,
                        _ => runs.push((k, 1.0)),
                    }
                }
                runs
            }
        };
        let log_likelihood = |ln_n: f64| {
            let n = ln_n.exp();
            let mut ll = 0.0f64;
            for &(k, count) in &occupied {
                if k == 0 {
                    // P(K <= 0) = e^{-n a}
                    ll += count * (-n * a);
                } else if k == q_limit {
                    // P(K >= q+1) = 1 - e^{-n a b^{-q}}
                    let rate = n * a * table.pow_neg(q_limit - 1);
                    ll += count * (-(-rate).exp_m1()).ln();
                } else {
                    // P(K = k) = e^{-A}(1 - e^{-A(b-1)}), A = n a b^{-k}
                    let rate = n * a * table.pow_neg(k);
                    ll += count * (-rate + (-(-rate * (b - 1.0)).exp_m1()).ln());
                }
            }
            ll
        };
        // The likelihood is unimodal in ln n; bracket generously around the
        // corrected estimate.
        let center = start.ln();
        let result = brent::maximize(log_likelihood, center - 3.0, center + 3.0, 1e-10);
        result.x.exp()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SetSketchConfig;
    use crate::sketch::{SetSketch1, SetSketch2};

    #[test]
    fn empty_sketch_estimates_zero() {
        let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
        let sketch = SetSketch1::new(cfg, 1);
        assert_eq!(sketch.estimate_cardinality(), 0.0);
        assert_eq!(sketch.estimate_cardinality_ml(), 0.0);
    }

    #[test]
    fn single_element_is_estimated_accurately() {
        // With m = 256 the RSD is ~6.5 %; average over seeds to verify the
        // estimator is centered at 1.
        let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
        let mut sum = 0.0;
        let runs = 50;
        for seed in 0..runs {
            let mut sketch = SetSketch2::new(cfg, seed);
            sketch.insert_u64(42);
            sum += sketch.estimate_cardinality();
        }
        let mean = sum / runs as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean estimate {mean}");
    }

    #[test]
    fn mid_range_cardinality_within_expected_error() {
        let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
        let n = 100_000u64;
        for seed in 0..3 {
            let mut sketch = SetSketch1::new(cfg, seed);
            sketch.extend(0..n);
            let est = sketch.estimate_cardinality();
            let rel = (est - n as f64) / n as f64;
            // 5 sigma of the theoretical 1.04/sqrt(256) = 6.5 % RSD.
            assert!(rel.abs() < 0.33, "seed {seed}: relative error {rel}");
        }
    }

    #[test]
    fn simple_and_corrected_agree_in_mid_range() {
        let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
        let mut sketch = SetSketch1::new(cfg, 7);
        sketch.extend(0..50_000);
        let simple = sketch.estimate_cardinality_simple();
        let corrected = sketch.estimate_cardinality();
        assert!(
            ((simple - corrected) / corrected).abs() < 1e-6,
            "{simple} vs {corrected}"
        );
    }

    #[test]
    fn ml_agrees_with_corrected_estimator() {
        // Figure 12 vs Figure 5: the two estimators are nearly equivalent.
        let cfg = SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap();
        for &n in &[100u64, 10_000] {
            let mut sketch = SetSketch1::new(cfg, 3);
            sketch.extend(0..n);
            let corrected = sketch.estimate_cardinality();
            let ml = sketch.estimate_cardinality_ml();
            assert!(
                ((corrected - ml) / corrected).abs() < 0.05,
                "n={n}: corrected {corrected} vs ml {ml}"
            );
        }
    }

    #[test]
    fn small_base_configuration_estimates_well() {
        let cfg = SetSketchConfig::new(256, 1.001, 20.0, (1 << 16) - 2).unwrap();
        let n = 10_000u64;
        let mut sketch = SetSketch1::new(cfg, 11);
        sketch.extend(0..n);
        let est = sketch.estimate_cardinality();
        let rel = (est - n as f64) / n as f64;
        assert!(rel.abs() < 0.33, "relative error {rel}");
    }

    #[test]
    fn fully_saturated_sketch_estimates_infinity() {
        // When every register is clipped at q+1 the sketch carries no
        // information beyond "cardinality exceeds the configured range":
        // τ_b(0) = 0 makes the denominator vanish and (18) diverges.
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 3).unwrap();
        let mut sketch = SetSketch1::new(cfg, 1);
        sketch.extend(0..100_000);
        assert!(sketch.registers().iter().all(|&k| k == 4));
        assert!(sketch.estimate_cardinality().is_infinite());
    }

    #[test]
    fn partially_saturated_registers_use_high_range_correction() {
        use crate::state::SketchState;
        // Hand-craft a state with a mix of interior and clipped registers:
        // the corrected estimator must exceed the naive (12), which treats
        // clipped registers as ordinary values.
        let cfg = SetSketchConfig::new(64, 2.0, 20.0, 3).unwrap();
        let mut registers = vec![4u32; 32];
        registers.extend(vec![3u32; 32]);
        let state = SketchState {
            variant: "setsketch1".to_owned(),
            config: cfg,
            seed: 1,
            registers,
        };
        let sketch = SetSketch1::from_state(state).unwrap();
        let corrected = sketch.estimate_cardinality();
        let simple = sketch.estimate_cardinality_simple();
        assert!(corrected.is_finite() && corrected > 0.0);
        assert!(corrected > simple, "{corrected} vs {simple}");
    }

    #[test]
    fn estimates_scale_with_cardinality() {
        let cfg = SetSketchConfig::new(1024, 2.0, 20.0, 62).unwrap();
        let mut sketch = SetSketch2::new(cfg, 13);
        let mut previous = 0.0;
        for &n in &[100u64, 1000, 10_000, 100_000] {
            let mut s = sketch.clone();
            s.extend(0..n);
            let est = s.estimate_cardinality();
            assert!(est > previous, "estimate must grow with n");
            previous = est;
        }
        sketch.extend(0..10);
        let _ = sketch;
    }
}
