//! # SetSketch
//!
//! A from-scratch Rust implementation of **SetSketch** (Otmar Ertl,
//! *SetSketch: Filling the Gap between MinHash and HyperLogLog*, VLDB
//! 2021), a mergeable data sketch for sets that continuously interpolates
//! between HyperLogLog (space-efficient cardinality estimation) and MinHash
//! (accurate joint estimation and locality sensitivity) through its base
//! parameter `b`:
//!
//! * `b = 2` with 6-bit registers behaves like HyperLogLog,
//! * `b = 1.001` with 2-byte registers gives MinHash-grade similarity
//!   estimation in a fraction of MinHash's space,
//! * everything in between trades space for joint-estimation accuracy.
//!
//! ## Quick start
//!
//! ```
//! use setsketch::{SetSketch1, SetSketchConfig};
//!
//! // The paper's example configuration: 8 kB, cardinalities up to 1e18.
//! let config = SetSketchConfig::example_16bit();
//! let mut paris = SetSketch1::new(config, 42);
//! let mut london = SetSketch1::new(config, 42); // same seed => mergeable
//!
//! for user in 0..10_000u64 {
//!     paris.insert_u64(user);
//! }
//! for user in 5_000..15_000u64 {
//!     london.insert_u64(user);
//! }
//!
//! let cardinality = paris.estimate_cardinality();
//! assert!((cardinality - 10_000.0).abs() / 10_000.0 < 0.1);
//!
//! let joint = paris.estimate_joint(&london).unwrap();
//! // True Jaccard similarity: 5000 / 15000 = 1/3.
//! assert!((joint.quantities.jaccard - 1.0 / 3.0).abs() < 0.05);
//!
//! // Distributed union: merge the two sketches.
//! let global = paris.merged(&london).unwrap();
//! assert!((global.estimate_cardinality() - 15_000.0).abs() / 15_000.0 < 0.1);
//! ```
//!
//! ## Variants
//!
//! [`SetSketch1`] generates statistically independent register values
//! (exponential spacings, eq. (7) of the paper); [`SetSketch2`] uses one
//! point per probability interval (eq. (8)), which correlates registers and
//! *reduces* estimation error for sets smaller than m. Their APIs are
//! identical.
//!
//! ## Module map
//!
//! * [`config`] — parameter selection and the Lemma 4/5 range guarantees;
//! * [`sequence`] — the two ascending register-value constructions;
//! * [`sketch`] — the data structure and Algorithm 1 with lower-bound
//!   tracking;
//! * [`cardinality`] — estimators (12), (18) and maximum likelihood;
//! * [`joint`] — joint estimation (Jaccard, intersection, differences,
//!   cosine, inclusion coefficients);
//! * [`locality`] — collision probabilities and the LSH estimators (15);
//! * [`codec`] / [`state`] — packed binary representation and serde;
//! * [`interop`] — implementations of the workspace-wide [`sketch_core`]
//!   traits (`Sketch`, `BatchInsert`, `Mergeable`, estimators).

#![warn(missing_docs)]

pub mod cardinality;
pub mod codec;
pub mod config;
pub mod interop;
pub mod joint;
pub mod locality;
pub mod sequence;
pub mod sketch;
pub mod state;

pub use config::{ConfigError, SetSketchConfig};
pub use joint::{JointEstimate, JointMethod};
pub use locality::{
    collision_probability, collision_probability_bounds, jaccard_lower_estimate,
    jaccard_upper_estimate, jaccard_upper_rmse,
};
pub use sequence::{ExponentialSpacings, IntervalSampling, ValueSequence};
pub use sketch::{IncompatibleSketches, SetSketch, SetSketch1, SetSketch2};
pub use state::{SketchState, StateError};

// Re-exported for downstream convenience: joint estimation results embed
// these types.
pub use sketch_math::{JointCounts, JointQuantities};
