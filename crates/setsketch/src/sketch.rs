//! The SetSketch data structure (paper §2, Algorithm 1).
//!
//! A SetSketch maps a set to m registers
//! `K_i = max_{d ∈ S} ⌊1 − log_b h_i(d)⌋` with exponentially distributed
//! hash values `h_i(d) ~ Exp(a)` (eq. (6)). The insert operation is
//! idempotent and commutative, and the state of the union of two sets is the
//! element-wise register maximum (mergeability).
//!
//! Algorithm 1 computes per element only the *ascending* sequence of its m
//! hash values and stops as soon as a value can no longer affect any
//! register — tracked through the lower bound `K_low` (§2.2) — giving an
//! amortized O(1) insert for sets much larger than m.

use crate::config::SetSketchConfig;
use crate::sequence::{ExponentialSpacings, IntervalSampling, ValueSequence};
use sketch_math::{kernels, PowerTable};
use sketch_rand::{hash_of, hash_u64, IncrementalShuffle, WyRand};
use std::sync::Arc;

/// SetSketch1: independent register values via exponential spacings.
pub type SetSketch1 = SetSketch<ExponentialSpacings>;

/// SetSketch2: correlated register values via interval sampling; same
/// estimators, smaller errors for small sets (paper §5.2, §5.3).
pub type SetSketch2 = SetSketch<IntervalSampling>;

/// Error raised when two sketches with incompatible configurations or
/// hash seeds are combined.
///
/// Carries exactly which part mismatched, so that a failed merge deep in
/// an aggregation pipeline (or a sketch store) reports something
/// actionable instead of a bare "incompatible".
#[derive(Debug, Clone, PartialEq)]
pub struct IncompatibleSketches {
    /// The two configurations, when they differ (`(left, right)`).
    pub configs: Option<(SetSketchConfig, SetSketchConfig)>,
    /// The two hash seeds, when they differ (`(left, right)`).
    pub seeds: Option<(u64, u64)>,
}

impl IncompatibleSketches {
    /// Checks two sketches' parameters, returning the detailed mismatch
    /// as an error and `Ok(())` when they are compatible.
    pub fn check(
        left_config: &SetSketchConfig,
        right_config: &SetSketchConfig,
        left_seed: u64,
        right_seed: u64,
    ) -> Result<(), Self> {
        let configs = (left_config != right_config).then_some((*left_config, *right_config));
        let seeds = (left_seed != right_seed).then_some((left_seed, right_seed));
        if configs.is_none() && seeds.is_none() {
            Ok(())
        } else {
            Err(IncompatibleSketches { configs, seeds })
        }
    }
}

impl std::fmt::Display for IncompatibleSketches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Guard the degenerate all-`None` state (constructible because the
        // fields are public) against rendering a dangling message.
        if self.configs.is_none() && self.seeds.is_none() {
            return write!(f, "sketches are incompatible");
        }
        write!(f, "sketches are incompatible:")?;
        if let Some((left, right)) = &self.configs {
            write!(
                f,
                " configurations differ (left: m={}, b={}, a={}, q={}; right: m={}, b={}, a={}, q={})",
                left.m(), left.b(), left.a(), left.q(),
                right.m(), right.b(), right.a(), right.q(),
            )?;
            if self.seeds.is_some() {
                write!(f, " and")?;
            }
        }
        if let Some((left, right)) = self.seeds {
            write!(f, " hash seeds differ (left: {left}, right: {right})")?;
        }
        Ok(())
    }
}

impl std::error::Error for IncompatibleSketches {}

/// A SetSketch instance (paper Algorithm 1).
///
/// The type parameter selects the register-value construction; use the
/// aliases [`SetSketch1`] and [`SetSketch2`].
#[derive(Debug, Clone)]
pub struct SetSketch<S: ValueSequence> {
    config: SetSketchConfig,
    seed: u64,
    registers: Vec<u32>,
    table: Arc<PowerTable>,
    sequence: S,
    shuffle: IncrementalShuffle,
    /// Lower bound K_low <= min(K_1..K_m) (paper §2.2).
    k_low: u32,
    /// Register modifications since the last K_low rescan (w in Alg. 1).
    modifications: u32,
    /// Incremental estimator state: `histogram[k]` counts the registers
    /// currently holding value `k` (`q + 2` buckets). Maintained on every
    /// register write, rebuilt from the registers after merges and
    /// deserialization, so cardinality estimation reads O(q) buckets
    /// instead of rescanning all m registers.
    ///
    /// Only kept for *dense* register scales (`q + 2 ≤ 4 m`, covering
    /// the paper's b = 2 configurations); for sparse scales (b close to
    /// 1, where q ≫ m) the bucket array would dwarf the registers and
    /// the O(m) register scan is the cheaper estimator, so the vector
    /// stays empty and estimation falls back to scanning.
    histogram: Vec<u32>,
    /// Reusable hash buffer of the batched insert paths
    /// ([`insert_batch`](Self::insert_batch) / [`extend`](Self::extend)):
    /// the batch is hashed, sorted and deduplicated in here, so steady
    /// ingest (e.g. through a sketch store) allocates once per sketch
    /// instead of once per batch. Always left empty between calls, so
    /// clones stay cheap and state comparisons are unaffected.
    batch_scratch: Vec<u64>,
}

/// True when a configuration's register scale is dense enough that the
/// maintained histogram (`q + 2` buckets) pays for itself against the m
/// registers it summarizes.
fn maintains_histogram(config: &SetSketchConfig) -> bool {
    config.q() as usize + 2 <= 4 * config.m()
}

impl<S: ValueSequence> SetSketch<S> {
    /// Creates an empty sketch with the given configuration and hash seed.
    ///
    /// Two sketches can only be merged or jointly estimated when both their
    /// configuration and their seed match.
    pub fn new(config: SetSketchConfig, seed: u64) -> Self {
        let table = Arc::new(PowerTable::new(config.b(), config.q()));
        Self::with_shared_table(config, seed, table)
    }

    /// Creates an empty sketch reusing a prepared power table (avoids
    /// rebuilding the table when many sketches share one configuration).
    ///
    /// # Panics
    /// Panics if the table was built for a different base or limit.
    pub fn with_shared_table(config: SetSketchConfig, seed: u64, table: Arc<PowerTable>) -> Self {
        assert_eq!(table.b(), config.b(), "power table base mismatch");
        assert_eq!(table.q(), config.q(), "power table limit mismatch");
        let histogram = if maintains_histogram(&config) {
            let mut histogram = vec![0u32; config.q() as usize + 2];
            histogram[0] = config.m() as u32;
            histogram
        } else {
            Vec::new()
        };
        Self {
            registers: vec![0; config.m()],
            sequence: S::create(config.m(), config.a()),
            shuffle: IncrementalShuffle::new(config.m()),
            table,
            config,
            seed,
            k_low: 0,
            modifications: 0,
            histogram,
            batch_scratch: Vec::new(),
        }
    }

    /// The configuration of this sketch.
    #[inline]
    pub fn config(&self) -> &SetSketchConfig {
        &self.config
    }

    /// The hash seed of this sketch.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of registers m.
    #[inline]
    pub fn m(&self) -> usize {
        self.config.m()
    }

    /// Read-only view of the register values.
    #[inline]
    pub fn registers(&self) -> &[u32] {
        &self.registers
    }

    /// The tracked lower bound K_low (for tests and diagnostics).
    #[inline]
    pub fn k_low(&self) -> u32 {
        self.k_low
    }

    /// The maintained register value histogram, when one is kept:
    /// `register_histogram().unwrap()[k]` is the number of registers
    /// currently equal to `k`, for `k ∈ 0..=q+1`, exactly in sync with
    /// [`registers`](Self::registers) across inserts, merges and state
    /// restores — this is what makes cardinality estimation O(q).
    ///
    /// Returns `None` for sparse register scales (`q + 2 > 4 m`, i.e. b
    /// close to 1 on a small sketch), where the bucket array would dwarf
    /// the registers and estimation scans the m registers directly.
    #[inline]
    pub fn register_histogram(&self) -> Option<&[u32]> {
        (!self.histogram.is_empty()).then_some(self.histogram.as_slice())
    }

    /// The shared power table of this sketch's scale.
    #[inline]
    pub fn power_table(&self) -> &Arc<PowerTable> {
        &self.table
    }

    /// Bytes this sketch keeps resident in memory: the inline struct
    /// plus its per-sketch heap allocations (registers, estimator
    /// histogram, shuffle scratch, batch scratch). Configuration-level
    /// state shared across sketches — the `Arc`'d power table and
    /// interval boundaries — is excluded, so demoting a sketch to a
    /// compressed tier reclaims (at least) this many bytes.
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + 4 * self.registers.capacity()
            + 4 * self.histogram.capacity()
            + 8 * self.batch_scratch.capacity()
            // IncrementalShuffle keeps two m-length u32 arrays.
            + 8 * self.config.m()
    }

    /// True if no register has ever been modified (O(1) when the
    /// histogram is maintained).
    pub fn is_unused(&self) -> bool {
        match self.register_histogram() {
            Some(histogram) => histogram[0] as usize == self.config.m(),
            None => self.registers.iter().all(|&k| k == 0),
        }
    }

    /// Inserts any hashable element.
    #[inline]
    pub fn insert<T: std::hash::Hash + ?Sized>(&mut self, element: &T) {
        self.insert_hash(hash_of(element, self.seed));
    }

    /// Inserts a 64-bit element (hashed with the sketch seed).
    #[inline]
    pub fn insert_u64(&mut self, element: u64) {
        self.insert_hash(hash_u64(element, self.seed));
    }

    /// Inserts all elements of an iterator through the batched fast path
    /// ([`insert_batch`](Self::insert_batch)): elements are hashed,
    /// sorted and deduplicated in bounded chunks, so within each chunk
    /// duplicates never reach Algorithm 1 and the `K_low` early exit
    /// tightens as the chunk proceeds.
    ///
    /// The stream is consumed in fixed-size chunks
    /// ([`EXTEND_CHUNK`](Self::EXTEND_CHUNK) elements), keeping peak
    /// memory constant for arbitrarily large iterators while retaining
    /// almost all of the batch speedup (chunks are much larger than m).
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, elements: I) {
        let seed = self.seed;
        let mut elements = elements.into_iter();
        // The scratch buffer is taken out of `self` for the duration so
        // the chunk loop can borrow `self` mutably; it goes back (empty,
        // capacity retained) when the stream is drained.
        let mut hashes = std::mem::take(&mut self.batch_scratch);
        loop {
            hashes.clear();
            hashes.extend(
                elements
                    .by_ref()
                    .take(Self::EXTEND_CHUNK)
                    .map(|e| hash_u64(e, seed)),
            );
            if hashes.is_empty() {
                break;
            }
            self.insert_hashes(&mut hashes);
        }
        hashes.clear();
        self.batch_scratch = hashes;
    }

    /// Chunk size of [`extend`](Self::extend)'s streaming batch
    /// processing (elements buffered, hashed, and sorted at a time).
    pub const EXTEND_CHUNK: usize = 1 << 16;

    /// Inserts a batch of 64-bit elements (batched Algorithm 1).
    ///
    /// Semantically identical to inserting each element individually,
    /// but the batch is hashed up front, sorted and deduplicated, so
    /// repeated elements are dropped before touching the register scan
    /// and the `K_low` lower-bound early exit (paper §2.2) — which only
    /// tightens as earlier batch elements raise the registers — discards
    /// most remaining elements after a single comparison.
    ///
    /// The hash buffer is the sketch's own reusable scratch
    /// allocation, so steady batched ingest does not allocate per call.
    pub fn insert_batch(&mut self, elements: &[u64]) {
        let seed = self.seed;
        let mut hashes = std::mem::take(&mut self.batch_scratch);
        hashes.clear();
        hashes.extend(elements.iter().map(|&e| hash_u64(e, seed)));
        self.insert_hashes(&mut hashes);
        hashes.clear();
        self.batch_scratch = hashes;
    }

    /// Sorts, deduplicates and inserts pre-hashed elements.
    fn insert_hashes(&mut self, hashes: &mut Vec<u64>) {
        hashes.sort_unstable();
        hashes.dedup();
        for &hash in hashes.iter() {
            self.insert_hash(hash);
        }
    }

    /// Inserts an already fully hashed element (Algorithm 1).
    ///
    /// The 64-bit value seeds the per-element pseudorandom generator; equal
    /// values leave the state unchanged (idempotency).
    pub fn insert_hash(&mut self, hash: u64) {
        let mut rng = WyRand::new(hash);
        self.sequence.start();
        self.shuffle.reset();
        let m = self.config.m();
        for _ in 0..m {
            let x = self.sequence.next(&mut rng);
            // Combined check of Algorithm 1: stop when x > b^{-K_low} or the
            // clamped update value k would satisfy k <= K_low.
            let Some(k) = self.table.update_value_above(x, self.k_low) else {
                break;
            };
            let i = self.shuffle.next(&mut rng) as usize;
            let old = self.registers[i];
            if k > old {
                self.registers[i] = k;
                if !self.histogram.is_empty() {
                    self.histogram[old as usize] -= 1;
                    self.histogram[k as usize] += 1;
                }
                self.modifications += 1;
                if self.modifications >= m as u32 {
                    self.rescan_lower_bound();
                }
            }
        }
    }

    /// Replaces the register contents (used when restoring serialized
    /// state); recomputes the lower bound and the estimator histogram.
    pub(crate) fn load_registers(&mut self, values: &[u32]) {
        debug_assert_eq!(values.len(), self.registers.len());
        self.registers.copy_from_slice(values);
        self.rebuild_histogram();
        self.rescan_lower_bound();
    }

    /// Recomputes the maintained histogram (if any) from the registers
    /// in one kernel pass.
    fn rebuild_histogram(&mut self) {
        if !self.histogram.is_empty() {
            kernels::histogram_counts(&self.registers, &mut self.histogram);
        }
    }

    /// Rescans all registers to raise K_low (amortized O(1) per register
    /// increment, §2.2).
    #[cold]
    fn rescan_lower_bound(&mut self) {
        self.k_low = kernels::min_scan(&self.registers);
        self.modifications = 0;
    }

    /// Checks configuration and seed compatibility with another sketch.
    pub fn is_compatible(&self, other: &Self) -> bool {
        self.config == other.config && self.seed == other.seed
    }

    /// Like [`is_compatible`](Self::is_compatible), but reports *which*
    /// of configuration and seed mismatched on failure.
    pub fn check_compatible(&self, other: &Self) -> Result<(), IncompatibleSketches> {
        IncompatibleSketches::check(&self.config, &other.config, self.seed, other.seed)
    }

    /// Merges `other` into `self` (union semantics): element-wise register
    /// maximum, which is idempotent, associative and commutative.
    ///
    /// Runs the fused [`kernels::max_merge_min`] register kernel — the
    /// merged `K_low` falls out of the same pass, so no separate rescan
    /// is needed — and rebuilds the estimator histogram once at the end.
    pub fn merge(&mut self, other: &Self) -> Result<(), IncompatibleSketches> {
        self.check_compatible(other)?;
        self.k_low = kernels::max_merge_min(&mut self.registers, &other.registers);
        self.modifications = 0;
        self.rebuild_histogram();
        Ok(())
    }

    /// Merges every sketch of the iterator into `self`, running the
    /// register kernel per operand but rebuilding the estimator
    /// histogram only once at the end (the batched form behind
    /// `Mergeable::merge_many`).
    ///
    /// On an incompatibility error the registers already absorbed stay
    /// merged (union semantics make partial application harmless) and
    /// all internal state is left consistent.
    pub fn merge_all<'a, I>(&mut self, others: I) -> Result<(), IncompatibleSketches>
    where
        I: IntoIterator<Item = &'a Self>,
        S: 'a,
    {
        let mut merged_any = false;
        let result = others.into_iter().try_for_each(|other| {
            self.check_compatible(other)?;
            self.k_low = kernels::max_merge_min(&mut self.registers, &other.registers);
            self.modifications = 0;
            merged_any = true;
            Ok(())
        });
        if merged_any {
            // One histogram rebuild covers every absorbed operand — also
            // on the error path, so the sketch stays internally
            // consistent even when a later operand is incompatible.
            self.rebuild_histogram();
        }
        result
    }

    /// Returns the union sketch of two compatible sketches.
    ///
    /// Starts from a clone of the side with the higher tracked `K_low`
    /// (the "larger" sketch): merging is commutative, and the
    /// better-filled side gives the result the tighter lower bound with
    /// fewer register overwrites.
    pub fn merged(&self, other: &Self) -> Result<Self, IncompatibleSketches> {
        let (base, addend) = if other.k_low > self.k_low {
            (other, self)
        } else {
            (self, other)
        };
        let mut result = base.clone();
        result.merge(addend)?;
        Ok(result)
    }

    /// Register histogram boundary counts and the estimator sum:
    /// `(C_0, Σ_{0<k<q+1} C_k b^{-k}, C_{q+1})`.
    ///
    /// Read from the maintained histogram in O(q) — independent of m —
    /// when one is kept; sparse scales (q ≫ m) scan the m registers
    /// directly instead.
    pub(crate) fn histogram_sum(&self) -> (usize, f64, usize) {
        let limit = self.config.q() as usize + 1;
        let Some(histogram) = self.register_histogram() else {
            let limit = limit as u32;
            let mut c0 = 0usize;
            let mut c_limit = 0usize;
            let mut sum = 0.0f64;
            for &k in &self.registers {
                if k == 0 {
                    c0 += 1;
                } else if k == limit {
                    c_limit += 1;
                } else {
                    sum += self.table.pow_neg(k);
                }
            }
            return (c0, sum, c_limit);
        };
        kernels::fold_histogram(histogram, &self.table)
    }
}

impl<S: ValueSequence> PartialEq for SetSketch<S> {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.seed == other.seed && self.registers == other.registers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_small() -> SetSketchConfig {
        SetSketchConfig::new(64, 2.0, 20.0, 62).unwrap()
    }

    #[test]
    fn empty_sketch_has_zero_registers() {
        let sketch = SetSketch1::new(config_small(), 1);
        assert!(sketch.is_unused());
        assert_eq!(sketch.registers().len(), 64);
        assert_eq!(sketch.k_low(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        for seed in 0..4 {
            let mut a = SetSketch1::new(config_small(), seed);
            let mut b = SetSketch1::new(config_small(), seed);
            for e in 0..200u64 {
                a.insert_u64(e);
                b.insert_u64(e);
                b.insert_u64(e); // duplicate inserts
            }
            for e in 0..200u64 {
                b.insert_u64(e); // full replay
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn insert_is_commutative() {
        let mut a = SetSketch2::new(config_small(), 7);
        let mut b = SetSketch2::new(config_small(), 7);
        let elements: Vec<u64> = (0..500).collect();
        for &e in &elements {
            a.insert_u64(e);
        }
        for &e in elements.iter().rev() {
            b.insert_u64(e);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_equals_inserting_union() {
        let cfg = config_small();
        let mut left = SetSketch1::new(cfg, 3);
        let mut right = SetSketch1::new(cfg, 3);
        let mut both = SetSketch1::new(cfg, 3);
        for e in 0..300u64 {
            left.insert_u64(e);
            both.insert_u64(e);
        }
        for e in 200..600u64 {
            right.insert_u64(e);
            both.insert_u64(e);
        }
        let merged = left.merged(&right).unwrap();
        assert_eq!(merged, both);
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let cfg = config_small();
        let mut a = SetSketch2::new(cfg, 9);
        let mut b = SetSketch2::new(cfg, 9);
        a.extend(0..100);
        b.extend(50..150);
        let ab = a.merged(&b).unwrap();
        let ba = b.merged(&a).unwrap();
        assert_eq!(ab, ba);
        let aa = a.merged(&a).unwrap();
        assert_eq!(aa, a);
    }

    #[test]
    fn merge_rejects_incompatible() {
        let a = SetSketch1::new(config_small(), 1);
        let b = SetSketch1::new(config_small(), 2);
        let err = a.merged(&b).unwrap_err();
        assert_eq!(err.seeds, Some((1, 2)));
        assert_eq!(err.configs, None);
        assert!(err.to_string().contains("seeds differ (left: 1, right: 2)"));
        let c_config = SetSketchConfig::new(32, 2.0, 20.0, 62).unwrap();
        let c = SetSketch1::new(c_config, 1);
        let err = a.merged(&c).unwrap_err();
        assert_eq!(err.configs, Some((*a.config(), c_config)));
        assert_eq!(err.seeds, None);
        assert!(err.to_string().contains("configurations differ"));
        // Both mismatched at once: both details are reported.
        let d = SetSketch1::new(c_config, 9);
        let err = a.merged(&d).unwrap_err();
        assert!(err.configs.is_some() && err.seeds.is_some());
        let message = err.to_string();
        assert!(message.contains("configurations differ") && message.contains("seeds differ"));
    }

    #[test]
    fn batch_scratch_is_reused_and_left_empty() {
        let mut sketch = SetSketch1::new(config_small(), 1);
        sketch.insert_batch(&(0..1000).collect::<Vec<_>>());
        assert!(sketch.batch_scratch.is_empty());
        let cap = sketch.batch_scratch.capacity();
        assert!(cap >= 1000, "first batch should size the scratch buffer");
        sketch.insert_batch(&(1000..1500).collect::<Vec<_>>());
        assert!(
            sketch.batch_scratch.capacity() >= cap,
            "smaller follow-up batches must reuse, not shrink, the buffer"
        );
        assert!(sketch.batch_scratch.is_empty());
        // The scratch is empty at rest, so clones don't copy batch data
        // and state equality is unaffected.
        let clone = sketch.clone();
        assert_eq!(clone, sketch);
        assert_eq!(clone.batch_scratch.capacity(), 0);
    }

    #[test]
    fn lower_bound_rises_with_cardinality() {
        let mut sketch = SetSketch1::new(config_small(), 5);
        sketch.extend(0..50_000);
        assert!(sketch.k_low() > 0, "K_low should have risen");
        let min = sketch.registers().iter().copied().min().unwrap();
        assert!(sketch.k_low() <= min, "K_low must be a lower bound");
    }

    #[test]
    fn registers_grow_monotonically() {
        let mut sketch = SetSketch2::new(config_small(), 11);
        let mut previous = sketch.registers().to_vec();
        for chunk in 0..20u64 {
            sketch.extend(chunk * 100..(chunk + 1) * 100);
            let current = sketch.registers().to_vec();
            for (p, c) in previous.iter().zip(&current) {
                assert!(c >= p);
            }
            previous = current;
        }
    }

    #[test]
    fn registers_saturate_at_q_plus_one() {
        // Tiny q forces saturation quickly.
        let cfg = SetSketchConfig::new(16, 2.0, 20.0, 3).unwrap();
        let mut sketch = SetSketch1::new(cfg, 1);
        sketch.extend(0..10_000);
        assert!(sketch.registers().iter().all(|&k| k <= 4));
        assert!(sketch.registers().contains(&4));
        // Saturated sketch: further inserts are no-ops.
        let snapshot = sketch.clone();
        sketch.extend(10_000..11_000);
        assert_eq!(sketch, snapshot);
    }

    #[test]
    fn different_seeds_give_different_states() {
        let mut a = SetSketch1::new(config_small(), 1);
        let mut b = SetSketch1::new(config_small(), 2);
        a.extend(0..100);
        b.extend(0..100);
        assert_ne!(a.registers(), b.registers());
    }

    #[test]
    fn insert_of_hashable_types() {
        let mut sketch = SetSketch1::new(config_small(), 1);
        sketch.insert("hello");
        sketch.insert(&("tuple", 42u32));
        sketch.insert(&12345u64);
        assert!(!sketch.is_unused());
        // Same element again: no change.
        let snapshot = sketch.clone();
        sketch.insert("hello");
        assert_eq!(sketch, snapshot);
    }

    #[test]
    fn histogram_sum_matches_registers() {
        let cfg = SetSketchConfig::new(32, 2.0, 20.0, 5).unwrap();
        let mut sketch = SetSketch1::new(cfg, 1);
        sketch.extend(0..1000);
        let (c0, sum, climit) = sketch.histogram_sum();
        let mut expect_c0 = 0;
        let mut expect_climit = 0;
        let mut expect_sum = 0.0;
        for &k in sketch.registers() {
            match k {
                0 => expect_c0 += 1,
                6 => expect_climit += 1,
                _ => expect_sum += 2.0f64.powi(-(k as i32)),
            }
        }
        assert_eq!(c0, expect_c0);
        assert_eq!(climit, expect_climit);
        assert!((sum - expect_sum).abs() < 1e-12);
    }

    #[test]
    fn sketch1_and_sketch2_states_differ() {
        let cfg = config_small();
        let mut s1 = SetSketch1::new(cfg, 1);
        let mut s2 = SetSketch2::new(cfg, 1);
        s1.extend(0..100);
        s2.extend(0..100);
        assert_ne!(s1.registers(), s2.registers());
    }
}
