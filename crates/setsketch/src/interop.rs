//! [`sketch_core`] trait implementations for SetSketch.
//!
//! These adapters let SetSketch participate in code written against the
//! workspace-wide abstraction layer (the sharded sketch store, generic
//! benchmarks, cross-family experiments) without giving up any of the
//! inherent API.

use crate::sequence::ValueSequence;
use crate::sketch::{IncompatibleSketches, SetSketch};
use sketch_core::{
    BatchInsert, CardinalityEstimator, JointEstimator, JointQuantities, Mergeable, Sketch,
};
use sketch_rand::{hash_bytes, hash_u64};

impl<S: ValueSequence> Sketch for SetSketch<S> {
    fn insert_u64(&mut self, element: u64) {
        SetSketch::insert_u64(self, element);
    }

    fn insert_bytes(&mut self, bytes: &[u8]) {
        let hash = hash_bytes(bytes, self.seed());
        self.insert_hash(hash);
    }
}

impl<S: ValueSequence> BatchInsert for SetSketch<S> {
    /// Batched Algorithm 1: the whole batch is hashed up front, sorted
    /// and deduplicated, so repeated elements never touch the register
    /// scan at all. Each surviving element still goes through the
    /// `K_low` lower-bound early exit (paper §2.2), which tightens as
    /// earlier batch elements raise the registers — for batches much
    /// larger than m most elements terminate after a single comparison.
    fn insert_batch(&mut self, elements: &[u64]) {
        let seed = self.seed();
        let mut hashes: Vec<u64> = elements.iter().map(|&e| hash_u64(e, seed)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        for hash in hashes {
            self.insert_hash(hash);
        }
    }
}

impl<S: ValueSequence> Mergeable for SetSketch<S> {
    type MergeError = IncompatibleSketches;

    fn is_compatible(&self, other: &Self) -> bool {
        SetSketch::is_compatible(self, other)
    }

    fn merge_from(&mut self, other: &Self) -> Result<(), IncompatibleSketches> {
        self.merge(other)
    }
}

impl<S: ValueSequence> CardinalityEstimator for SetSketch<S> {
    fn cardinality(&self) -> f64 {
        self.estimate_cardinality()
    }
}

impl<S: ValueSequence> JointEstimator for SetSketch<S> {
    type JointError = IncompatibleSketches;

    fn joint(&self, other: &Self) -> Result<JointQuantities, IncompatibleSketches> {
        Ok(self.estimate_joint(other)?.quantities)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SetSketchConfig;
    use crate::sketch::{SetSketch1, SetSketch2};
    use sketch_core::{BatchInsert, CardinalityEstimator, JointEstimator, Mergeable, Sketch};

    fn config() -> SetSketchConfig {
        SetSketchConfig::new(256, 2.0, 20.0, 62).unwrap()
    }

    #[test]
    fn batch_insert_equals_loop() {
        let elements: Vec<u64> = (0..5_000).map(|i| i % 3_000).collect();
        let mut batched = SetSketch1::new(config(), 3);
        let mut looped = SetSketch1::new(config(), 3);
        batched.insert_batch(&elements);
        for &e in &elements {
            looped.insert_u64(e);
        }
        assert_eq!(batched, looped);

        let mut batched2 = SetSketch2::new(config(), 3);
        let mut looped2 = SetSketch2::new(config(), 3);
        batched2.insert_batch(&elements);
        for &e in &elements {
            looped2.insert_u64(e);
        }
        assert_eq!(batched2, looped2);
    }

    #[test]
    fn batch_insert_is_incremental() {
        // Splitting a stream into batches must give the same state as one
        // big batch (the override may not depend on seeing everything).
        let elements: Vec<u64> = (0..4_000).collect();
        let mut whole = SetSketch1::new(config(), 5);
        whole.insert_batch(&elements);
        let mut chunked = SetSketch1::new(config(), 5);
        for chunk in elements.chunks(700) {
            chunked.insert_batch(chunk);
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn trait_estimators_match_inherent() {
        let mut a = SetSketch1::new(config(), 1);
        let mut b = SetSketch1::new(config(), 1);
        a.insert_batch(&(0..10_000).collect::<Vec<_>>());
        b.insert_batch(&(5_000..15_000).collect::<Vec<_>>());
        assert_eq!(a.cardinality(), a.estimate_cardinality());
        let joint = JointEstimator::joint(&a, &b).unwrap();
        assert_eq!(joint, a.estimate_joint(&b).unwrap().quantities);
        let merged = Mergeable::merged_with(&a, &b).unwrap();
        assert_eq!(merged, a.merged(&b).unwrap());
    }

    #[test]
    fn insert_bytes_is_deterministic_and_distinct() {
        let mut a = SetSketch1::new(config(), 1);
        let mut b = SetSketch1::new(config(), 1);
        Sketch::insert_bytes(&mut a, b"alpha");
        Sketch::insert_bytes(&mut b, b"alpha");
        assert_eq!(a, b);
        Sketch::insert_bytes(&mut b, b"beta");
        assert_ne!(a, b);
    }
}
